//! The Batch-Reduce GEMM TPP — "the main building block for general tensor
//! contractions in the TPP collection" (paper §II-A).
//!
//! BRGEMM materializes `C = beta * C + sum_{i=0}^{brcount-1} A_i x B_i`
//! over column-major `m x k` / `k x n` blocks. All three addressing variants
//! of the paper are provided: *stride* (blocks a fixed element distance
//! apart — Listing 1), *offset* (explicit per-block offsets — used for
//! `R,S`-folded convolutions, §III-B) and *address* (explicit block slices).
//!
//! The microkernel keeps an `MR x NR` tile of f32 accumulators live across
//! the **entire batch reduction** (exactly the register-blocking strategy of
//! libxsmm [21]) and only converts to the output element type once per tile.
//! Low-precision inputs widen elementwise to f32 — the AVX512-BF16 / AMX /
//! BFMMLA numerics.

use crate::cache;
use pl_tensor::Element;
use std::sync::Arc;

/// Register tile rows (f32 lanes: two AVX2 vectors / one AVX-512 vector).
const MR: usize = 8;
/// Register tile columns.
const NR: usize = 4;

/// Shape/layout descriptor — the cache key of the "JIT".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BrgemmDesc {
    /// Rows of `C` (and of every `A_i`).
    pub m: usize,
    /// Columns of `C` (and of every `B_i`).
    pub n: usize,
    /// Inner-product extent of one block pair.
    pub k: usize,
    /// Leading dimension of `A_i` (>= m).
    pub lda: usize,
    /// Leading dimension of `B_i` (>= k for flat layout; the packed column
    /// count for VNNI layout).
    pub ldb: usize,
    /// Leading dimension of `C` (>= m).
    pub ldc: usize,
    /// `beta == 1` (accumulate into C) versus `beta == 0` (overwrite).
    pub beta_one: bool,
    /// `Some(v)`: `B_i` blocks are VNNI-packed with factor `v`
    /// (element `(p, j)` at `(p/v)*ldb*v + j*v + p%v`).
    pub b_vnni: Option<usize>,
}

impl BrgemmDesc {
    /// Plain GEMM-shaped descriptor with tight leading dimensions and
    /// `beta = 1` (the paper's kernels zero `C` explicitly via `zero_tpp`).
    pub fn blocked(m: usize, n: usize, k: usize) -> Self {
        BrgemmDesc { m, n, k, lda: m, ldb: k, ldc: m, beta_one: true, b_vnni: None }
    }

    /// Same but with VNNI-packed B.
    pub fn blocked_vnni(m: usize, n: usize, k: usize, v: usize) -> Self {
        BrgemmDesc { m, n, k, lda: m, ldb: n, ldc: m, beta_one: true, b_vnni: Some(v) }
    }

    fn validate(&self) {
        assert!(self.m > 0 && self.n > 0 && self.k > 0, "empty BRGEMM shape");
        assert!(self.lda >= self.m, "lda {} < m {}", self.lda, self.m);
        assert!(self.ldc >= self.m, "ldc {} < m {}", self.ldc, self.m);
        match self.b_vnni {
            None => assert!(self.ldb >= self.k, "ldb {} < k {}", self.ldb, self.k),
            Some(v) => {
                assert!(
                    v > 0 && self.k.is_multiple_of(v),
                    "k {} not divisible by vnni {v}",
                    self.k
                );
                assert!(self.ldb >= self.n, "vnni ldb {} < n {}", self.ldb, self.n);
            }
        }
    }

    fn key_words(&self) -> [u64; 8] {
        [
            self.m as u64,
            self.n as u64,
            self.k as u64,
            self.lda as u64,
            self.ldb as u64,
            self.ldc as u64,
            self.beta_one as u64,
            self.b_vnni.map_or(0, |v| v as u64),
        ]
    }
}

/// Batch addressing for one operand (paper's stride/offset/address modes).
#[derive(Clone, Copy)]
pub enum Blocks<'a, T> {
    /// Block `i` starts at `base[i * stride]` (stride in elements).
    Stride {
        /// Backing slice holding all blocks.
        base: &'a [T],
        /// Element distance between consecutive blocks.
        stride: usize,
    },
    /// Block `i` starts at `base[offsets[i]]`.
    Offsets {
        /// Backing slice.
        base: &'a [T],
        /// Per-block element offsets (`len >= brcount`).
        offsets: &'a [usize],
    },
    /// Block `i` is `slices[i]`.
    Address {
        /// Per-block slices (`len >= brcount`).
        slices: &'a [&'a [T]],
    },
}

impl<'a, T> Blocks<'a, T> {
    /// The `i`-th block's backing data (starting at its first element).
    #[inline(always)]
    fn get(&self, i: usize) -> &'a [T] {
        match *self {
            Blocks::Stride { base, stride } => &base[i * stride..],
            Blocks::Offsets { base, offsets } => &base[offsets[i]..],
            Blocks::Address { slices } => slices[i],
        }
    }
}

type KernelFn<TA, TB, TC> =
    for<'a> fn(&BrgemmDesc, Blocks<'a, TA>, Blocks<'a, TB>, &mut [TC], usize);

/// A constructed (and cached) BRGEMM kernel handle.
pub struct Brgemm<TA: Element, TB: Element, TC: Element> {
    desc: BrgemmDesc,
    kernel: KernelFn<TA, TB, TC>,
}

/// Re-exported alias for the addressing modes (paper terminology).
pub type BrgemmVariant<'a, T> = Blocks<'a, T>;

impl<TA: Element, TB: Element, TC: Element> Brgemm<TA, TB, TC> {
    /// Builds (or fetches from the kernel cache) the kernel for `desc`.
    pub fn new(desc: BrgemmDesc) -> Arc<Self> {
        desc.validate();
        let tag = type_tag::<TA, TB, TC>();
        let cached = cache::get_or_jit(cache::hash_key(tag, &desc.key_words()), || Self {
            desc,
            kernel: select_kernel::<TA, TB, TC>(&desc),
        });
        // Hash collisions must never deliver a kernel for another shape.
        assert_eq!(cached.desc, desc, "kernel cache collision");
        cached
    }

    /// The descriptor this kernel was specialized for.
    pub fn desc(&self) -> &BrgemmDesc {
        &self.desc
    }

    /// Executes the batch reduction with arbitrary addressing.
    ///
    /// # Panics
    /// Panics (debug) if a block slice is too short for the descriptor.
    pub fn execute(&self, a: Blocks<'_, TA>, b: Blocks<'_, TB>, c: &mut [TC], brcount: usize) {
        (self.kernel)(&self.desc, a, b, c, brcount);
    }

    /// Stride variant: `addr(A_i) = addr(A_{i-1}) + stride_a` (Listing 1).
    pub fn execute_stride(
        &self,
        a: &[TA],
        stride_a: usize,
        b: &[TB],
        stride_b: usize,
        c: &mut [TC],
        brcount: usize,
    ) {
        self.execute(
            Blocks::Stride { base: a, stride: stride_a },
            Blocks::Stride { base: b, stride: stride_b },
            c,
            brcount,
        );
    }

    /// Offset variant (folded `R`/`S` loops in convolutions, §III-B).
    pub fn execute_offsets(
        &self,
        a: &[TA],
        offs_a: &[usize],
        b: &[TB],
        offs_b: &[usize],
        c: &mut [TC],
    ) {
        let brcount = offs_a.len().min(offs_b.len());
        self.execute(
            Blocks::Offsets { base: a, offsets: offs_a },
            Blocks::Offsets { base: b, offsets: offs_b },
            c,
            brcount,
        );
    }
}

fn type_tag<TA: Element, TB: Element, TC: Element>() -> u64 {
    // Stable small tag per dtype triple; BRGEMM lives in tag-space 1.
    let t = |d: pl_tensor::DType| match d {
        pl_tensor::DType::F32 => 1u64,
        pl_tensor::DType::F64 => 2,
        pl_tensor::DType::Bf16 => 3,
        pl_tensor::DType::I8 => 4,
    };
    (1 << 48) | (t(TA::DTYPE) << 16) | (t(TB::DTYPE) << 8) | t(TC::DTYPE)
}

/// Descriptor for the quantized `i8 x i8 -> i32` BRGEMM.
///
/// Unlike the [`Element`]-generic kernels (which widen everything through
/// f32), the int8 kernel accumulates the inner product **exactly in i32**
/// and dequantizes on store: `C[i, j] (+)= row_scale[i] * col_scale[j] *
/// sum_p qA[i, p] * qB[p, j]`. The `A` operand (the pack-once quantized
/// weight) is VNNI-packed along its *columns* — the reduction dimension for
/// `A` — with factor `a_vnni` ([`pl_tensor::InnerLayout::VnniCols`]); `B`
/// (the per-step quantized activation) is flat column-major.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BrgemmI8Desc {
    /// Rows of `C` (and of every `A_i`).
    pub m: usize,
    /// Columns of `C` (and of every `B_i`).
    pub n: usize,
    /// Inner-product extent of one block pair.
    pub k: usize,
    /// Row count of the VNNI-cols `A` layout (>= m): element `(i, p)` lives
    /// at `(p / v) * lda * v + i * v + p % v`.
    pub lda: usize,
    /// Leading dimension of flat column-major `B_i` (>= k).
    pub ldb: usize,
    /// Leading dimension of `C` (>= m).
    pub ldc: usize,
    /// `beta == 1` (accumulate into f32 `C`) versus `beta == 0` (overwrite).
    pub beta_one: bool,
    /// VNNI factor of the `A` columns; `k % a_vnni == 0`.
    pub a_vnni: usize,
}

impl BrgemmI8Desc {
    /// Tight-leading-dimension descriptor with `beta = 1`.
    pub fn blocked(m: usize, n: usize, k: usize, v: usize) -> Self {
        BrgemmI8Desc { m, n, k, lda: m, ldb: k, ldc: m, beta_one: true, a_vnni: v }
    }

    fn validate(&self) {
        assert!(self.m > 0 && self.n > 0 && self.k > 0, "empty BRGEMM shape");
        assert!(self.lda >= self.m, "lda {} < m {}", self.lda, self.m);
        assert!(self.ldb >= self.k, "ldb {} < k {}", self.ldb, self.k);
        assert!(self.ldc >= self.m, "ldc {} < m {}", self.ldc, self.m);
        assert!(
            self.a_vnni > 0 && self.k.is_multiple_of(self.a_vnni),
            "k {} not divisible by vnni {}",
            self.k,
            self.a_vnni
        );
    }

    fn key_words(&self) -> [u64; 8] {
        [
            self.m as u64,
            self.n as u64,
            self.k as u64,
            self.lda as u64,
            self.ldb as u64,
            self.ldc as u64,
            self.beta_one as u64,
            self.a_vnni as u64,
        ]
    }
}

/// A constructed (and cached) int8 BRGEMM kernel handle.
pub struct BrgemmI8 {
    desc: BrgemmI8Desc,
}

impl BrgemmI8 {
    /// Builds (or fetches from the kernel cache) the kernel for `desc`.
    pub fn new(desc: BrgemmI8Desc) -> Arc<Self> {
        desc.validate();
        // Int8 BRGEMM lives in tag-space 2 (disjoint from the generic
        // kernels: its descriptor has different field semantics).
        let cached =
            cache::get_or_jit(cache::hash_key(2 << 48, &desc.key_words()), || Self { desc });
        assert_eq!(cached.desc, desc, "kernel cache collision");
        cached
    }

    /// The descriptor this kernel was specialized for.
    pub fn desc(&self) -> &BrgemmI8Desc {
        &self.desc
    }

    /// Stride-addressed batch reduction with dequantize-on-store.
    ///
    /// `row_scales[i]` is the quantization scale of `A` row `i` (per output
    /// channel), `col_scales[j]` of `B` column `j` (per token). The i32
    /// accumulator is exact while `k * brcount <= i32::MAX / 127^2`
    /// (~133k reduction elements) — far beyond any block shape in use.
    #[allow(clippy::too_many_arguments)]
    pub fn execute_stride(
        &self,
        a: &[i8],
        stride_a: usize,
        b: &[i8],
        stride_b: usize,
        c: &mut [f32],
        brcount: usize,
        row_scales: &[f32],
        col_scales: &[f32],
    ) {
        let BrgemmI8Desc { m, n, k, lda, ldb, ldc, beta_one, a_vnni: v } = self.desc;
        debug_assert!(row_scales.len() >= m, "row scales shorter than m");
        debug_assert!(col_scales.len() >= n, "col scales shorter than n");
        let mut j0 = 0;
        while j0 < n {
            let nr = NR.min(n - j0);
            let mut i0 = 0;
            while i0 < m {
                let mr = MR.min(m - i0);
                let mut acc = [[0i32; MR]; NR];
                for blk in 0..brcount {
                    let ab = &a[blk * stride_a..];
                    let bb = &b[blk * stride_b..];
                    for p in 0..k {
                        let abase = (p / v) * lda * v + p % v;
                        for (jj, accj) in acc.iter_mut().enumerate().take(nr) {
                            let bv = bb[(j0 + jj) * ldb + p] as i32;
                            for (ii, dst) in accj.iter_mut().enumerate().take(mr) {
                                let av = ab[abase + (i0 + ii) * v] as i32;
                                *dst += av * bv;
                            }
                        }
                    }
                }
                for (jj, accj) in acc.iter().enumerate().take(nr) {
                    let cs = col_scales[j0 + jj];
                    for (ii, &sum) in accj.iter().enumerate().take(mr) {
                        let deq = row_scales[i0 + ii] * cs * sum as f32;
                        let idx = (j0 + jj) * ldc + i0 + ii;
                        c[idx] = if beta_one { c[idx] + deq } else { deq };
                    }
                }
                i0 += MR;
            }
            j0 += NR;
        }
    }
}

/// "Code generation": pick the monomorphized kernel for this descriptor.
fn select_kernel<TA: Element, TB: Element, TC: Element>(desc: &BrgemmDesc) -> KernelFn<TA, TB, TC> {
    match desc.b_vnni {
        None => kernel_flat::<TA, TB, TC> as KernelFn<TA, TB, TC>,
        Some(_) => kernel_vnni::<TA, TB, TC> as KernelFn<TA, TB, TC>,
    }
}

/// Flat-B microkernel: MRxNR register tiles held across the batch reduction.
fn kernel_flat<TA: Element, TB: Element, TC: Element>(
    desc: &BrgemmDesc,
    a: Blocks<'_, TA>,
    b: Blocks<'_, TB>,
    c: &mut [TC],
    brcount: usize,
) {
    let &BrgemmDesc { m, n, k, lda, ldb, ldc, beta_one, .. } = desc;
    let mut j0 = 0;
    while j0 < n {
        let nr = NR.min(n - j0);
        let mut i0 = 0;
        while i0 < m {
            let mr = MR.min(m - i0);
            if mr == MR && nr == NR {
                tile_full_flat::<TA, TB, TC>(a, b, c, brcount, k, lda, ldb, ldc, i0, j0, beta_one);
            } else {
                tile_edge_flat::<TA, TB, TC>(
                    a, b, c, brcount, k, lda, ldb, ldc, i0, j0, mr, nr, beta_one,
                );
            }
            i0 += MR;
        }
        j0 += NR;
    }
}

/// Full MRxNR tile, flat B.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn tile_full_flat<TA: Element, TB: Element, TC: Element>(
    a: Blocks<'_, TA>,
    b: Blocks<'_, TB>,
    c: &mut [TC],
    brcount: usize,
    k: usize,
    lda: usize,
    ldb: usize,
    ldc: usize,
    i0: usize,
    j0: usize,
    beta_one: bool,
) {
    let mut acc = [[0.0f32; MR]; NR];
    if beta_one {
        for (jj, accj) in acc.iter_mut().enumerate() {
            let ccol = &c[(j0 + jj) * ldc + i0..(j0 + jj) * ldc + i0 + MR];
            for (ii, dst) in accj.iter_mut().enumerate() {
                *dst = ccol[ii].to_f32();
            }
        }
    }
    for blk in 0..brcount {
        let ab = a.get(blk);
        let bb = b.get(blk);
        for p in 0..k {
            let acol = &ab[p * lda + i0..p * lda + i0 + MR];
            let mut av = [0.0f32; MR];
            for (dst, src) in av.iter_mut().zip(acol) {
                *dst = src.to_f32();
            }
            for (jj, accj) in acc.iter_mut().enumerate() {
                let bv = bb[(j0 + jj) * ldb + p].to_f32();
                for ii in 0..MR {
                    accj[ii] = av[ii].mul_add(bv, accj[ii]);
                }
            }
        }
    }
    for (jj, accj) in acc.iter().enumerate() {
        let ccol = &mut c[(j0 + jj) * ldc + i0..(j0 + jj) * ldc + i0 + MR];
        for (dst, src) in ccol.iter_mut().zip(accj) {
            *dst = TC::from_f32(*src);
        }
    }
}

/// Remainder tile, flat B (scalar, still f32-accumulated across the batch).
#[allow(clippy::too_many_arguments)]
fn tile_edge_flat<TA: Element, TB: Element, TC: Element>(
    a: Blocks<'_, TA>,
    b: Blocks<'_, TB>,
    c: &mut [TC],
    brcount: usize,
    k: usize,
    lda: usize,
    ldb: usize,
    ldc: usize,
    i0: usize,
    j0: usize,
    mr: usize,
    nr: usize,
    beta_one: bool,
) {
    let mut acc = [[0.0f32; MR]; NR];
    if beta_one {
        for jj in 0..nr {
            for ii in 0..mr {
                acc[jj][ii] = c[(j0 + jj) * ldc + i0 + ii].to_f32();
            }
        }
    }
    for blk in 0..brcount {
        let ab = a.get(blk);
        let bb = b.get(blk);
        for p in 0..k {
            for jj in 0..nr {
                let bv = bb[(j0 + jj) * ldb + p].to_f32();
                for ii in 0..mr {
                    let av = ab[p * lda + i0 + ii].to_f32();
                    acc[jj][ii] = av.mul_add(bv, acc[jj][ii]);
                }
            }
        }
    }
    for jj in 0..nr {
        for ii in 0..mr {
            c[(j0 + jj) * ldc + i0 + ii] = TC::from_f32(acc[jj][ii]);
        }
    }
}

/// VNNI-B microkernel: B element `(p, j)` at `(p/v)*ldb*v + j*v + p%v`.
fn kernel_vnni<TA: Element, TB: Element, TC: Element>(
    desc: &BrgemmDesc,
    a: Blocks<'_, TA>,
    b: Blocks<'_, TB>,
    c: &mut [TC],
    brcount: usize,
) {
    let &BrgemmDesc { m, n, k, lda, ldb, ldc, beta_one, b_vnni } = desc;
    let v = b_vnni.expect("vnni kernel without vnni factor");
    let mut j0 = 0;
    while j0 < n {
        let nr = NR.min(n - j0);
        let mut i0 = 0;
        while i0 < m {
            let mr = MR.min(m - i0);
            let mut acc = [[0.0f32; MR]; NR];
            if beta_one {
                for jj in 0..nr {
                    for ii in 0..mr {
                        acc[jj][ii] = c[(j0 + jj) * ldc + i0 + ii].to_f32();
                    }
                }
            }
            for blk in 0..brcount {
                let ab = a.get(blk);
                let bb = b.get(blk);
                for p in 0..k {
                    let boff = (p / v) * ldb * v + p % v;
                    for jj in 0..nr {
                        let bv = bb[boff + (j0 + jj) * v].to_f32();
                        for ii in 0..mr {
                            let av = ab[p * lda + i0 + ii].to_f32();
                            acc[jj][ii] = av.mul_add(bv, acc[jj][ii]);
                        }
                    }
                }
            }
            for jj in 0..nr {
                for ii in 0..mr {
                    c[(j0 + jj) * ldc + i0 + ii] = TC::from_f32(acc[jj][ii]);
                }
            }
            i0 += MR;
        }
        j0 += NR;
    }
}

/// Scalar reference implementation (f64 accumulation) for testing.
pub fn reference_brgemm(
    m: usize,
    n: usize,
    k: usize,
    a_blocks: &[Vec<f32>],
    b_blocks: &[Vec<f32>],
    c: &mut [f32],
    beta: f32,
) {
    for j in 0..n {
        for i in 0..m {
            let mut acc = (c[j * m + i] * beta) as f64;
            for (ab, bb) in a_blocks.iter().zip(b_blocks) {
                for p in 0..k {
                    acc += ab[p * m + i] as f64 * bb[j * k + p] as f64;
                }
            }
            c[j * m + i] = acc as f32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_tensor::{Bf16, Xorshift};

    fn rand_vec(rng: &mut Xorshift, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.next_f32() - 0.5).collect()
    }

    fn run_case(m: usize, n: usize, k: usize, br: usize, beta_one: bool) {
        let mut rng = Xorshift::new((m * 31 + n * 7 + k + br) as u64);
        let a_blocks: Vec<Vec<f32>> = (0..br).map(|_| rand_vec(&mut rng, m * k)).collect();
        let b_blocks: Vec<Vec<f32>> = (0..br).map(|_| rand_vec(&mut rng, k * n)).collect();
        let c_init = rand_vec(&mut rng, m * n);

        let mut c_ref = c_init.clone();
        reference_brgemm(m, n, k, &a_blocks, &b_blocks, &mut c_ref, beta_one as u8 as f32);

        // Flatten blocks contiguously for the stride variant.
        let a_flat: Vec<f32> = a_blocks.iter().flatten().copied().collect();
        let b_flat: Vec<f32> = b_blocks.iter().flatten().copied().collect();
        let mut c = c_init.clone();
        let desc = BrgemmDesc { beta_one, ..BrgemmDesc::blocked(m, n, k) };
        let kernel = Brgemm::<f32, f32, f32>::new(desc);
        kernel.execute_stride(&a_flat, m * k, &b_flat, k * n, &mut c, br);

        for i in 0..m * n {
            assert!(
                (c[i] - c_ref[i]).abs() < 1e-4 * (k * br) as f32,
                "m={m} n={n} k={k} br={br} idx={i}: {} vs {}",
                c[i],
                c_ref[i]
            );
        }
    }

    #[test]
    fn matches_reference_various_shapes() {
        for &(m, n, k, br) in &[
            (8, 4, 8, 1),
            (8, 4, 8, 4),
            (16, 16, 32, 2),
            (7, 5, 3, 2),  // edge tiles everywhere
            (9, 6, 10, 3), // mixed full/edge
            (1, 1, 1, 1),  // degenerate
            (32, 32, 64, 1),
        ] {
            run_case(m, n, k, br, true);
            run_case(m, n, k, br, false);
        }
    }

    #[test]
    fn beta_zero_overwrites_garbage() {
        let m = 8;
        let n = 8;
        let k = 8;
        let a = vec![1.0f32; m * k];
        let b = vec![1.0f32; k * n];
        let mut c = vec![f32::NAN; m * n];
        let desc = BrgemmDesc { beta_one: false, ..BrgemmDesc::blocked(m, n, k) };
        let kernel = Brgemm::<f32, f32, f32>::new(desc);
        kernel.execute_stride(&a, 0, &b, 0, &mut c, 1);
        assert!(c.iter().all(|&v| v == k as f32));
    }

    #[test]
    fn offsets_variant_matches_stride() {
        let (m, n, k, br) = (8, 8, 4, 3);
        let mut rng = Xorshift::new(5);
        let a = rand_vec(&mut rng, m * k * br);
        let b = rand_vec(&mut rng, k * n * br);
        let desc = BrgemmDesc::blocked(m, n, k);
        let kernel = Brgemm::<f32, f32, f32>::new(desc);
        let mut c1 = vec![0.0f32; m * n];
        kernel.execute_stride(&a, m * k, &b, k * n, &mut c1, br);
        let offs_a: Vec<usize> = (0..br).map(|i| i * m * k).collect();
        let offs_b: Vec<usize> = (0..br).map(|i| i * k * n).collect();
        let mut c2 = vec![0.0f32; m * n];
        kernel.execute_offsets(&a, &offs_a, &b, &offs_b, &mut c2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn address_variant_matches_stride() {
        let (m, n, k, br) = (8, 4, 4, 2);
        let mut rng = Xorshift::new(9);
        let a = rand_vec(&mut rng, m * k * br);
        let b = rand_vec(&mut rng, k * n * br);
        let desc = BrgemmDesc::blocked(m, n, k);
        let kernel = Brgemm::<f32, f32, f32>::new(desc);
        let mut c1 = vec![0.0f32; m * n];
        kernel.execute_stride(&a, m * k, &b, k * n, &mut c1, br);
        let a_slices: Vec<&[f32]> = (0..br).map(|i| &a[i * m * k..]).collect();
        let b_slices: Vec<&[f32]> = (0..br).map(|i| &b[i * k * n..]).collect();
        let mut c2 = vec![0.0f32; m * n];
        kernel.execute(
            Blocks::Address { slices: &a_slices },
            Blocks::Address { slices: &b_slices },
            &mut c2,
            br,
        );
        assert_eq!(c1, c2);
    }

    #[test]
    fn bf16_inputs_f32_accumulation() {
        let (m, n, k) = (8, 8, 32);
        let mut rng = Xorshift::new(17);
        let af = rand_vec(&mut rng, m * k);
        let bf = rand_vec(&mut rng, k * n);
        // Quantize to bf16 first so the reference sees the same values.
        let a: Vec<Bf16> = af.iter().map(|&v| Bf16::from(v)).collect();
        let b: Vec<Bf16> = bf.iter().map(|&v| Bf16::from(v)).collect();
        let aq: Vec<f32> = a.iter().map(|v| v.to_f32()).collect();
        let bq: Vec<f32> = b.iter().map(|v| v.to_f32()).collect();
        let mut c_ref = vec![0.0f32; m * n];
        reference_brgemm(m, n, k, &[aq], &[bq], &mut c_ref, 0.0);

        let desc = BrgemmDesc { beta_one: false, ..BrgemmDesc::blocked(m, n, k) };
        let kernel = Brgemm::<Bf16, Bf16, f32>::new(desc);
        let mut c = vec![0.0f32; m * n];
        kernel.execute_stride(&a, 0, &b, 0, &mut c, 1);
        for i in 0..m * n {
            // f32 accumulation over bf16 products: tight tolerance.
            assert!((c[i] - c_ref[i]).abs() < 1e-5 * k as f32, "{} vs {}", c[i], c_ref[i]);
        }
    }

    #[test]
    fn vnni_b_matches_flat() {
        let (m, n, k, v) = (8, 8, 16, 2);
        let mut rng = Xorshift::new(23);
        let a = rand_vec(&mut rng, m * k);
        let b_flat = rand_vec(&mut rng, k * n);
        // Pack B into VNNI-2.
        let mut b_vnni = vec![0.0f32; k * n];
        crate::transform::vnni_pack(k, n, v, &b_flat, k, &mut b_vnni, n);

        let flat = Brgemm::<f32, f32, f32>::new(BrgemmDesc {
            beta_one: false,
            ..BrgemmDesc::blocked(m, n, k)
        });
        let vnni = Brgemm::<f32, f32, f32>::new(BrgemmDesc {
            beta_one: false,
            ..BrgemmDesc::blocked_vnni(m, n, k, v)
        });
        let mut c1 = vec![0.0f32; m * n];
        flat.execute_stride(&a, 0, &b_flat, 0, &mut c1, 1);
        let mut c2 = vec![0.0f32; m * n];
        vnni.execute_stride(&a, 0, &b_vnni, 0, &mut c2, 1);
        for i in 0..m * n {
            assert!((c1[i] - c2[i]).abs() < 1e-5, "{} vs {}", c1[i], c2[i]);
        }
    }

    #[test]
    fn kernel_handles_are_cached() {
        let desc = BrgemmDesc::blocked(24, 24, 24);
        let k1 = Brgemm::<f32, f32, f32>::new(desc);
        let k2 = Brgemm::<f32, f32, f32>::new(desc);
        assert!(Arc::ptr_eq(&k1, &k2));
        // Distinct dtype triple -> distinct handle.
        let _k3 = Brgemm::<Bf16, Bf16, f32>::new(BrgemmDesc {
            // same shape, different types must not collide in the cache
            ..desc
        });
    }

    /// i64 reference for the quantized kernel: exact integer inner product,
    /// one f32 dequant multiply per element — the same arithmetic the
    /// kernel must perform, so results compare bitwise.
    fn reference_i8(
        m: usize,
        n: usize,
        k: usize,
        a_blocks: &[Vec<i8>], // column-major m x k
        b_blocks: &[Vec<i8>], // column-major k x n
        rs: &[f32],
        cs: &[f32],
    ) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for j in 0..n {
            for i in 0..m {
                let mut acc: i64 = 0;
                for (ab, bb) in a_blocks.iter().zip(b_blocks) {
                    for p in 0..k {
                        acc += ab[p * m + i] as i64 * bb[j * k + p] as i64;
                    }
                }
                c[j * m + i] = rs[i] * cs[j] * acc as f32;
            }
        }
        c
    }

    fn pack_a_vnni_cols(src: &[i8], m: usize, k: usize, v: usize) -> Vec<i8> {
        let mut out = vec![0i8; m * k];
        for p in 0..k {
            for i in 0..m {
                out[(p / v) * m * v + i * v + p % v] = src[p * m + i];
            }
        }
        out
    }

    #[test]
    fn i8_kernel_matches_integer_reference() {
        for &(m, n, k, br, v) in &[
            (8, 4, 8, 1, 4),
            (16, 8, 32, 2, 4),
            (7, 5, 8, 2, 4),
            (9, 6, 12, 3, 2),
            (8, 1, 16, 1, 4),
        ] {
            let mut rng = Xorshift::new((m * 13 + n * 5 + k + br) as u64);
            let gen = |rng: &mut Xorshift, len: usize| -> Vec<i8> {
                (0..len).map(|_| ((rng.next_f32() - 0.5) * 254.0) as i8).collect()
            };
            let a_blocks: Vec<Vec<i8>> = (0..br).map(|_| gen(&mut rng, m * k)).collect();
            let b_blocks: Vec<Vec<i8>> = (0..br).map(|_| gen(&mut rng, k * n)).collect();
            let rs: Vec<f32> = (0..m).map(|i| 0.01 + i as f32 * 0.003).collect();
            let cs: Vec<f32> = (0..n).map(|j| 0.02 + j as f32 * 0.005).collect();
            let c_ref = reference_i8(m, n, k, &a_blocks, &b_blocks, &rs, &cs);

            let a_flat: Vec<i8> =
                a_blocks.iter().flat_map(|blk| pack_a_vnni_cols(blk, m, k, v)).collect();
            let b_flat: Vec<i8> = b_blocks.iter().flatten().copied().collect();
            let mut c = vec![0.0f32; m * n];
            let desc = BrgemmI8Desc { beta_one: false, ..BrgemmI8Desc::blocked(m, n, k, v) };
            let kernel = BrgemmI8::new(desc);
            kernel.execute_stride(&a_flat, m * k, &b_flat, k * n, &mut c, br, &rs, &cs);
            assert_eq!(c, c_ref, "m={m} n={n} k={k} br={br} v={v}");
        }
    }

    #[test]
    fn i8_kernel_beta_one_accumulates() {
        let (m, n, k, v) = (8, 4, 8, 4);
        let a = pack_a_vnni_cols(&vec![1i8; m * k], m, k, v);
        let b = vec![1i8; k * n];
        let rs = vec![0.5f32; m];
        let cs = vec![2.0f32; n];
        let mut c = vec![10.0f32; m * n];
        let kernel = BrgemmI8::new(BrgemmI8Desc::blocked(m, n, k, v));
        kernel.execute_stride(&a, 0, &b, 0, &mut c, 1, &rs, &cs);
        // 10 + 0.5 * 2.0 * (1*1 summed over k=8) = 18.
        assert!(c.iter().all(|&x| x == 18.0), "{c:?}");
    }

    #[test]
    fn i8_kernel_handles_are_cached() {
        let desc = BrgemmI8Desc::blocked(24, 8, 24, 4);
        let k1 = BrgemmI8::new(desc);
        let k2 = BrgemmI8::new(desc);
        assert!(Arc::ptr_eq(&k1, &k2));
    }

    #[test]
    #[should_panic(expected = "not divisible by vnni")]
    fn i8_kernel_rejects_unaligned_k() {
        let _ = BrgemmI8::new(BrgemmI8Desc::blocked(8, 8, 6, 4));
    }

    #[test]
    #[should_panic(expected = "lda")]
    fn rejects_bad_leading_dim() {
        let _ = Brgemm::<f32, f32, f32>::new(BrgemmDesc { lda: 4, ..BrgemmDesc::blocked(8, 8, 8) });
    }

    #[test]
    fn strided_lds_work() {
        // A stored with lda > m, C with ldc > m.
        let (m, n, k) = (4, 3, 5);
        let (lda, ldb, ldc) = (7, 9, 6);
        let mut rng = Xorshift::new(31);
        let a = rand_vec(&mut rng, lda * k);
        let b = rand_vec(&mut rng, ldb * n);
        let mut c = vec![0.0f32; ldc * n];
        let desc = BrgemmDesc { m, n, k, lda, ldb, ldc, beta_one: false, b_vnni: None };
        let kernel = Brgemm::<f32, f32, f32>::new(desc);
        kernel.execute_stride(&a, 0, &b, 0, &mut c, 1);
        for j in 0..n {
            for i in 0..m {
                let mut acc = 0.0f64;
                for p in 0..k {
                    acc += a[p * lda + i] as f64 * b[j * ldb + p] as f64;
                }
                assert!((c[j * ldc + i] - acc as f32).abs() < 1e-4);
            }
        }
    }
}
