//! Layer normalization TPPs (forward + backward).
//!
//! Orientation: a "token" is one *column* of an `m x n` column-major view
//! (`m` = features being normalized over, `n` = tokens). The blocked-tensor
//! variant spanning several feature blocks lives in [`crate::equation`].

use crate::reduce::col_mean_var;
use pl_tensor::Element;

/// Layernorm forward over each column: `y = gamma * (x - mu) / sqrt(var +
/// eps) + beta`. Saves per-column `mean` and inverse-std `rstd` for the
/// backward pass (the paper's `&mean[s1], &var[s1]` outputs in Listing 6).
#[allow(clippy::too_many_arguments)]
pub fn layernorm<TI: Element, TO: Element>(
    m: usize,
    n: usize,
    input: &[TI],
    ldi: usize,
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
    out: &mut [TO],
    ldo: usize,
    mean: &mut [f32],
    rstd: &mut [f32],
) {
    debug_assert!(gamma.len() >= m && beta.len() >= m);
    col_mean_var(m, n, input, ldi, mean, rstd);
    for c in 0..n {
        let rs = 1.0 / (rstd[c] + eps).sqrt();
        rstd[c] = rs;
        let mu = mean[c];
        for r in 0..m {
            let xhat = (input[c * ldi + r].to_f32() - mu) * rs;
            out[c * ldo + r] = TO::from_f32(gamma[r] * xhat + beta[r]);
        }
    }
}

/// Layernorm backward. Given upstream `dy`, the saved `mean`/`rstd`, and the
/// forward input `x`, produces `dx` and accumulates `dgamma`/`dbeta`.
#[allow(clippy::too_many_arguments)]
pub fn layernorm_backward<TI: Element, TG: Element, TO: Element>(
    m: usize,
    n: usize,
    x: &[TI],
    ldx: usize,
    dy: &[TG],
    ldg: usize,
    gamma: &[f32],
    mean: &[f32],
    rstd: &[f32],
    dx: &mut [TO],
    ldo: usize,
    dgamma: &mut [f32],
    dbeta: &mut [f32],
) {
    let inv_m = 1.0 / m as f32;
    for c in 0..n {
        let mu = mean[c];
        let rs = rstd[c];
        // Two reductions per column.
        let mut sum_g = 0.0f32; // sum of gamma-scaled grads
        let mut sum_gx = 0.0f32; // sum of gamma-scaled grads * xhat
        for r in 0..m {
            let xhat = (x[c * ldx + r].to_f32() - mu) * rs;
            let g = dy[c * ldg + r].to_f32();
            let gg = g * gamma[r];
            sum_g += gg;
            sum_gx += gg * xhat;
            dgamma[r] += g * xhat;
            dbeta[r] += g;
        }
        for r in 0..m {
            let xhat = (x[c * ldx + r].to_f32() - mu) * rs;
            let gg = dy[c * ldg + r].to_f32() * gamma[r];
            let v = rs * (gg - inv_m * (sum_g + xhat * sum_gx));
            dx[c * ldo + r] = TO::from_f32(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_fwd(
        x: &[f32],
        m: usize,
        n: usize,
        gamma: &[f32],
        beta: &[f32],
    ) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let mut y = vec![0.0f32; m * n];
        let mut mean = vec![0.0f32; n];
        let mut rstd = vec![0.0f32; n];
        layernorm(m, n, x, m, gamma, beta, 1e-5, &mut y, m, &mut mean, &mut rstd);
        (y, mean, rstd)
    }

    #[test]
    fn output_is_normalized() {
        let x: Vec<f32> = (0..32).map(|i| (i as f32) * 0.37 - 3.0).collect();
        let gamma = vec![1.0f32; 16];
        let beta = vec![0.0f32; 16];
        let (y, _, _) = run_fwd(&x, 16, 2, &gamma, &beta);
        for c in 0..2 {
            let col = &y[c * 16..(c + 1) * 16];
            let mu: f32 = col.iter().sum::<f32>() / 16.0;
            let var: f32 = col.iter().map(|v| (v - mu) * (v - mu)).sum::<f32>() / 16.0;
            assert!(mu.abs() < 1e-5, "mean {mu}");
            assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
    }

    #[test]
    fn gamma_beta_affine() {
        let x: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let gamma = vec![2.0f32; 8];
        let beta = vec![3.0f32; 8];
        let (y, _, _) = run_fwd(&x, 8, 1, &gamma, &beta);
        let mu: f32 = y.iter().sum::<f32>() / 8.0;
        assert!((mu - 3.0).abs() < 1e-5); // beta shifts the mean
        let var: f32 = y.iter().map(|v| (v - mu) * (v - mu)).sum::<f32>() / 8.0;
        assert!((var - 4.0).abs() < 1e-2); // gamma^2 scales the variance
    }

    #[test]
    fn constant_column_is_stable() {
        let x = vec![5.0f32; 8];
        let gamma = vec![1.0f32; 8];
        let beta = vec![0.0f32; 8];
        let (y, _, _) = run_fwd(&x, 8, 1, &gamma, &beta);
        assert!(y.iter().all(|v| v.is_finite()));
        assert!(y.iter().all(|v| v.abs() < 1e-2));
    }

    #[test]
    fn backward_matches_finite_difference() {
        let m = 6;
        let x: Vec<f32> = vec![0.3, -1.2, 0.8, 2.0, -0.5, 0.1];
        let dy: Vec<f32> = vec![0.1, -0.2, 0.3, 0.05, -0.15, 0.25];
        let gamma: Vec<f32> = vec![1.2, 0.8, 1.0, 0.9, 1.1, 1.05];
        let beta = vec![0.0f32; m];

        let loss = |xv: &[f32]| -> f32 {
            let mut y = vec![0.0f32; m];
            let mut mean = vec![0.0f32; 1];
            let mut rstd = vec![0.0f32; 1];
            layernorm(m, 1, xv, m, &gamma, &beta, 1e-5, &mut y, m, &mut mean, &mut rstd);
            y.iter().zip(&dy).map(|(a, b)| a * b).sum()
        };

        let mut y = vec![0.0f32; m];
        let mut mean = vec![0.0f32; 1];
        let mut rstd = vec![0.0f32; 1];
        layernorm(m, 1, &x, m, &gamma, &beta, 1e-5, &mut y, m, &mut mean, &mut rstd);
        let mut dx = vec![0.0f32; m];
        let mut dgamma = vec![0.0f32; m];
        let mut dbeta = vec![0.0f32; m];
        layernorm_backward(
            m,
            1,
            &x,
            m,
            &dy,
            m,
            &gamma,
            &mean,
            &rstd,
            &mut dx,
            m,
            &mut dgamma,
            &mut dbeta,
        );
        let h = 1e-2;
        for i in 0..m {
            let mut xp = x.clone();
            xp[i] += h;
            let mut xm = x.clone();
            xm[i] -= h;
            let fd = (loss(&xp) - loss(&xm)) / (2.0 * h);
            assert!((dx[i] - fd).abs() < 2e-3, "i={i}: {} vs {}", dx[i], fd);
        }
        // dbeta is just the grad sum; dgamma = grad . xhat.
        assert!((dbeta.iter().sum::<f32>() - dy.iter().sum::<f32>()).abs() < 1e-6);
    }
}
