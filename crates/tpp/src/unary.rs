//! Unary TPPs: `zero`, `copy`/identity, activations and their backward
//! passes, and elementwise math over 2-D sub-tensors.
//!
//! Every operator takes column-major `(m, n, ldi, ldo)` views so it can act
//! on a sub-tensor of a larger blocked tensor — the defining property of
//! TPPs (they operate "at the sub-tensor granularity", paper §I).
//!
//! All computation widens to f32 (precision-aware semantics; see
//! [`crate::Element`]).

use pl_tensor::Element;

/// Iterates column-major over an input and an output view in lockstep.
#[inline(always)]
fn map2<TI: Element, TO: Element>(
    m: usize,
    n: usize,
    input: &[TI],
    ldi: usize,
    out: &mut [TO],
    ldo: usize,
    f: impl Fn(f32) -> f32,
) {
    debug_assert!(ldi >= m && ldo >= m, "leading dims must cover rows");
    for c in 0..n {
        let icol = &input[c * ldi..c * ldi + m];
        let ocol = &mut out[c * ldo..c * ldo + m];
        for (o, i) in ocol.iter_mut().zip(icol) {
            *o = TO::from_f32(f(i.to_f32()));
        }
    }
}

/// `zero_tpp`: sets an `m x n` view to zero (paper Listing 1, line 15).
pub fn zero<T: Element>(m: usize, n: usize, out: &mut [T], ldo: usize) {
    for c in 0..n {
        out[c * ldo..c * ldo + m].iter_mut().for_each(|v| *v = T::default());
    }
}

/// Identity/copy TPP, also performing dtype conversion when `TI != TO`.
pub fn copy<TI: Element, TO: Element>(
    m: usize,
    n: usize,
    input: &[TI],
    ldi: usize,
    out: &mut [TO],
    ldo: usize,
) {
    map2(m, n, input, ldi, out, ldo, |x| x);
}

/// Broadcast a scalar into an `m x n` view.
pub fn fill<T: Element>(m: usize, n: usize, value: f32, out: &mut [T], ldo: usize) {
    let v = T::from_f32(value);
    for c in 0..n {
        out[c * ldo..c * ldo + m].iter_mut().for_each(|o| *o = v);
    }
}

/// ReLU forward (paper §III-A1).
pub fn relu<TI: Element, TO: Element>(
    m: usize,
    n: usize,
    input: &[TI],
    ldi: usize,
    out: &mut [TO],
    ldo: usize,
) {
    map2(m, n, input, ldi, out, ldo, |x| x.max(0.0));
}

/// ReLU forward that also records a 0/1 mask for the backward pass.
pub fn relu_with_mask<TI: Element, TO: Element>(
    m: usize,
    n: usize,
    input: &[TI],
    ldi: usize,
    out: &mut [TO],
    ldo: usize,
    mask: &mut [u8],
) {
    debug_assert!(mask.len() >= m * n);
    for c in 0..n {
        for r in 0..m {
            let x = input[c * ldi + r].to_f32();
            let keep = x > 0.0;
            mask[c * m + r] = keep as u8;
            out[c * ldo + r] = TO::from_f32(if keep { x } else { 0.0 });
        }
    }
}

/// ReLU backward: `dx = dy * mask`.
pub fn relu_backward<TI: Element, TO: Element>(
    m: usize,
    n: usize,
    dy: &[TI],
    ldi: usize,
    dx: &mut [TO],
    ldo: usize,
    mask: &[u8],
) {
    for c in 0..n {
        for r in 0..m {
            let g = if mask[c * m + r] != 0 { dy[c * ldi + r].to_f32() } else { 0.0 };
            dx[c * ldo + r] = TO::from_f32(g);
        }
    }
}

/// The tanh-based GELU approximation used throughout BERT-era models.
#[inline(always)]
pub fn gelu_scalar(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + 0.044715 * x * x * x)).tanh())
}

/// Derivative of [`gelu_scalar`].
#[inline(always)]
pub fn gelu_grad_scalar(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    let x3 = x * x * x;
    let inner = SQRT_2_OVER_PI * (x + 0.044715 * x3);
    let t = inner.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * SQRT_2_OVER_PI * (1.0 + 3.0 * 0.044715 * x * x)
}

/// GELU forward (paper §IV-A, Bert-Intermediate layer).
pub fn gelu<TI: Element, TO: Element>(
    m: usize,
    n: usize,
    input: &[TI],
    ldi: usize,
    out: &mut [TO],
    ldo: usize,
) {
    map2(m, n, input, ldi, out, ldo, gelu_scalar);
}

/// GELU backward: `dx = dy * gelu'(x)` (needs the forward input).
pub fn gelu_backward<TI: Element, TG: Element, TO: Element>(
    m: usize,
    n: usize,
    x: &[TI],
    ldx: usize,
    dy: &[TG],
    ldg: usize,
    dx: &mut [TO],
    ldo: usize,
) {
    for c in 0..n {
        for r in 0..m {
            let g = dy[c * ldg + r].to_f32() * gelu_grad_scalar(x[c * ldx + r].to_f32());
            dx[c * ldo + r] = TO::from_f32(g);
        }
    }
}

/// Logistic sigmoid.
pub fn sigmoid<TI: Element, TO: Element>(
    m: usize,
    n: usize,
    input: &[TI],
    ldi: usize,
    out: &mut [TO],
    ldo: usize,
) {
    map2(m, n, input, ldi, out, ldo, |x| 1.0 / (1.0 + (-x).exp()));
}

/// Hyperbolic tangent.
pub fn tanh<TI: Element, TO: Element>(
    m: usize,
    n: usize,
    input: &[TI],
    ldi: usize,
    out: &mut [TO],
    ldo: usize,
) {
    map2(m, n, input, ldi, out, ldo, f32::tanh);
}

/// Elementwise exponential.
pub fn exp<TI: Element, TO: Element>(
    m: usize,
    n: usize,
    input: &[TI],
    ldi: usize,
    out: &mut [TO],
    ldo: usize,
) {
    map2(m, n, input, ldi, out, ldo, f32::exp);
}

/// Elementwise square.
pub fn square<TI: Element, TO: Element>(
    m: usize,
    n: usize,
    input: &[TI],
    ldi: usize,
    out: &mut [TO],
    ldo: usize,
) {
    map2(m, n, input, ldi, out, ldo, |x| x * x);
}

/// Elementwise square root.
pub fn sqrt<TI: Element, TO: Element>(
    m: usize,
    n: usize,
    input: &[TI],
    ldi: usize,
    out: &mut [TO],
    ldo: usize,
) {
    map2(m, n, input, ldi, out, ldo, f32::sqrt);
}

/// Elementwise reciprocal square root.
pub fn rsqrt<TI: Element, TO: Element>(
    m: usize,
    n: usize,
    input: &[TI],
    ldi: usize,
    out: &mut [TO],
    ldo: usize,
) {
    map2(m, n, input, ldi, out, ldo, |x| 1.0 / x.sqrt());
}

/// Multiply by a scalar.
pub fn scale<TI: Element, TO: Element>(
    m: usize,
    n: usize,
    alpha: f32,
    input: &[TI],
    ldi: usize,
    out: &mut [TO],
    ldo: usize,
) {
    map2(m, n, input, ldi, out, ldo, |x| alpha * x);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_tensor::Bf16;

    fn colmajor(m: usize, n: usize, f: impl Fn(usize, usize) -> f32) -> Vec<f32> {
        let mut v = vec![0.0; m * n];
        for c in 0..n {
            for r in 0..m {
                v[c * m + r] = f(r, c);
            }
        }
        v
    }

    #[test]
    fn zero_respects_ld_and_view() {
        let mut buf = vec![1.0f32; 6 * 4]; // ld 6, view 4x4
        zero(4, 4, &mut buf, 6);
        for c in 0..4 {
            for r in 0..6 {
                let expect = if r < 4 { 0.0 } else { 1.0 };
                assert_eq!(buf[c * 6 + r], expect, "r={r} c={c}");
            }
        }
    }

    #[test]
    fn copy_converts_precision() {
        let src = colmajor(3, 3, |r, c| (r + 10 * c) as f32 + 0.25);
        let mut dst = vec![Bf16::ZERO; 9];
        copy(3, 3, &src, 3, &mut dst, 3);
        // 0.25 is exactly representable in bf16 for these magnitudes.
        for i in 0..9 {
            assert_eq!(dst[i].to_f32(), src[i]);
        }
    }

    #[test]
    fn relu_clamps_negatives() {
        let src = colmajor(4, 2, |r, c| r as f32 - 1.5 + c as f32);
        let mut dst = vec![0.0f32; 8];
        relu(4, 2, &src, 4, &mut dst, 4);
        for i in 0..8 {
            assert_eq!(dst[i], src[i].max(0.0));
        }
    }

    #[test]
    fn relu_mask_roundtrip() {
        let src = colmajor(4, 4, |r, c| (r as f32 - 2.0) * (c as f32 - 1.5));
        let mut out = vec![0.0f32; 16];
        let mut mask = vec![0u8; 16];
        relu_with_mask(4, 4, &src, 4, &mut out, 4, &mut mask);
        // Backward of ones recovers the indicator.
        let dy = vec![1.0f32; 16];
        let mut dx = vec![0.0f32; 16];
        relu_backward(4, 4, &dy, 4, &mut dx, 4, &mask);
        for i in 0..16 {
            assert_eq!(dx[i], if src[i] > 0.0 { 1.0 } else { 0.0 });
        }
    }

    #[test]
    fn gelu_reference_points() {
        // GELU(0) = 0, GELU is odd-ish: gelu(x) + gelu(-x) = x... actually
        // gelu(x) - x/2 is odd; check a few known values of the tanh approx.
        assert_eq!(gelu_scalar(0.0), 0.0);
        assert!((gelu_scalar(1.0) - 0.8412).abs() < 1e-3);
        assert!((gelu_scalar(-1.0) + 0.1588).abs() < 1e-3);
        // Large positive ~ identity, large negative ~ 0.
        assert!((gelu_scalar(10.0) - 10.0).abs() < 1e-4);
        assert!(gelu_scalar(-10.0).abs() < 1e-4);
    }

    #[test]
    fn gelu_grad_matches_finite_difference() {
        for &x in &[-3.0f32, -1.0, -0.1, 0.0, 0.5, 2.0] {
            let h = 1e-3;
            let fd = (gelu_scalar(x + h) - gelu_scalar(x - h)) / (2.0 * h);
            assert!((gelu_grad_scalar(x) - fd).abs() < 1e-3, "x={x}");
        }
    }

    #[test]
    fn sigmoid_tanh_exp_behave() {
        let src = vec![0.0f32, 1.0, -1.0, 3.0];
        let mut s = vec![0.0f32; 4];
        sigmoid(4, 1, &src, 4, &mut s, 4);
        assert!((s[0] - 0.5).abs() < 1e-6);
        let mut t = vec![0.0f32; 4];
        tanh(4, 1, &src, 4, &mut t, 4);
        assert!((t[1] - 0.76159).abs() < 1e-4);
        let mut e = vec![0.0f32; 4];
        exp(4, 1, &src, 4, &mut e, 4);
        assert!((e[2] - (-1.0f32).exp()).abs() < 1e-6);
    }

    #[test]
    fn scale_and_square_and_sqrt() {
        let src = vec![4.0f32, 9.0, 16.0];
        let mut out = vec![0.0f32; 3];
        scale(3, 1, 0.5, &src, 3, &mut out, 3);
        assert_eq!(out, vec![2.0, 4.5, 8.0]);
        square(3, 1, &src, 3, &mut out, 3);
        assert_eq!(out, vec![16.0, 81.0, 256.0]);
        sqrt(3, 1, &src, 3, &mut out, 3);
        assert_eq!(out, vec![2.0, 3.0, 4.0]);
        rsqrt(3, 1, &src, 3, &mut out, 3);
        assert!((out[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn different_input_output_lds() {
        let src = colmajor(8, 2, |r, c| (r + c) as f32); // ld 8
        let mut dst = vec![0.0f32; 5 * 2]; // ld 5
        copy(4, 2, &src, 8, &mut dst, 5);
        for c in 0..2 {
            for r in 0..4 {
                assert_eq!(dst[c * 5 + r], (r + c) as f32);
            }
        }
    }
}
