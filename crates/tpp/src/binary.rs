//! Binary TPPs: elementwise combination of two 2-D views, plus the
//! broadcast variants the fused DL modules rely on (bias add over rows,
//! residual add — paper Listing 6 `copy_bias_tpp` / `add_tpp`).

use pl_tensor::Element;

#[inline(always)]
fn zip2<TA: Element, TB: Element, TO: Element>(
    m: usize,
    n: usize,
    a: &[TA],
    lda: usize,
    b: &[TB],
    ldb: usize,
    out: &mut [TO],
    ldo: usize,
    f: impl Fn(f32, f32) -> f32,
) {
    debug_assert!(lda >= m && ldb >= m && ldo >= m);
    for c in 0..n {
        let acol = &a[c * lda..c * lda + m];
        let bcol = &b[c * ldb..c * ldb + m];
        let ocol = &mut out[c * ldo..c * ldo + m];
        for ((o, x), y) in ocol.iter_mut().zip(acol).zip(bcol) {
            *o = TO::from_f32(f(x.to_f32(), y.to_f32()));
        }
    }
}

/// Elementwise addition (`add_tpp` — residual connections).
pub fn add<TA: Element, TB: Element, TO: Element>(
    m: usize,
    n: usize,
    a: &[TA],
    lda: usize,
    b: &[TB],
    ldb: usize,
    out: &mut [TO],
    ldo: usize,
) {
    zip2(m, n, a, lda, b, ldb, out, ldo, |x, y| x + y);
}

/// Elementwise subtraction.
pub fn sub<TA: Element, TB: Element, TO: Element>(
    m: usize,
    n: usize,
    a: &[TA],
    lda: usize,
    b: &[TB],
    ldb: usize,
    out: &mut [TO],
    ldo: usize,
) {
    zip2(m, n, a, lda, b, ldb, out, ldo, |x, y| x - y);
}

/// Elementwise multiplication (masking, gating).
pub fn mul<TA: Element, TB: Element, TO: Element>(
    m: usize,
    n: usize,
    a: &[TA],
    lda: usize,
    b: &[TB],
    ldb: usize,
    out: &mut [TO],
    ldo: usize,
) {
    zip2(m, n, a, lda, b, ldb, out, ldo, |x, y| x * y);
}

/// `out += alpha * a` (axpy view).
pub fn axpy<TA: Element, TO: Element>(
    m: usize,
    n: usize,
    alpha: f32,
    a: &[TA],
    lda: usize,
    out: &mut [TO],
    ldo: usize,
) {
    for c in 0..n {
        for r in 0..m {
            let cur = out[c * ldo + r].to_f32();
            out[c * ldo + r] = TO::from_f32(cur + alpha * a[c * lda + r].to_f32());
        }
    }
}

/// `copy_bias_tpp`: broadcasts a length-`m` bias vector (the feature/row
/// dimension) into every column of an `m x n` view.
pub fn bias_broadcast<TB: Element, TO: Element>(
    m: usize,
    n: usize,
    bias: &[TB],
    out: &mut [TO],
    ldo: usize,
) {
    debug_assert!(bias.len() >= m);
    for c in 0..n {
        for r in 0..m {
            out[c * ldo + r] = TO::from_f32(bias[r].to_f32());
        }
    }
}

/// Adds a length-`m` bias vector to every column of an `m x n` view.
pub fn bias_add<TB: Element, TO: Element>(
    m: usize,
    n: usize,
    bias: &[TB],
    out: &mut [TO],
    ldo: usize,
) {
    debug_assert!(bias.len() >= m);
    for c in 0..n {
        for r in 0..m {
            let cur = out[c * ldo + r].to_f32();
            out[c * ldo + r] = TO::from_f32(cur + bias[r].to_f32());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_tensor::Bf16;

    #[test]
    fn add_and_sub_and_mul() {
        let a = vec![1.0f32, 2.0, 3.0, 4.0];
        let b = vec![10.0f32, 20.0, 30.0, 40.0];
        let mut o = vec![0.0f32; 4];
        add(2, 2, &a, 2, &b, 2, &mut o, 2);
        assert_eq!(o, vec![11.0, 22.0, 33.0, 44.0]);
        sub(2, 2, &b, 2, &a, 2, &mut o, 2);
        assert_eq!(o, vec![9.0, 18.0, 27.0, 36.0]);
        mul(2, 2, &a, 2, &b, 2, &mut o, 2);
        assert_eq!(o, vec![10.0, 40.0, 90.0, 160.0]);
    }

    #[test]
    fn mixed_precision_add() {
        let a = vec![Bf16::from(1.5f32), Bf16::from(2.5f32)];
        let b = vec![0.5f32, 0.25];
        let mut o = vec![Bf16::ZERO; 2];
        add(2, 1, &a, 2, &b, 2, &mut o, 2);
        assert_eq!(o[0].to_f32(), 2.0);
        assert_eq!(o[1].to_f32(), 2.75);
    }

    #[test]
    fn axpy_accumulates() {
        let a = vec![1.0f32, 1.0, 1.0, 1.0];
        let mut o = vec![1.0f32, 2.0, 3.0, 4.0];
        axpy(4, 1, 0.5, &a, 4, &mut o, 4);
        assert_eq!(o, vec![1.5, 2.5, 3.5, 4.5]);
    }

    #[test]
    fn bias_broadcast_fills_columns() {
        let bias = vec![7.0f32, 8.0];
        let mut o = vec![0.0f32; 6]; // 2x3
        bias_broadcast(2, 3, &bias, &mut o, 2);
        assert_eq!(o, vec![7.0, 8.0, 7.0, 8.0, 7.0, 8.0]);
    }

    #[test]
    fn bias_add_accumulates_per_row() {
        let bias = vec![1.0f32, -1.0];
        let mut o = vec![10.0f32, 20.0, 30.0, 40.0]; // 2x2
        bias_add(2, 2, &bias, &mut o, 2);
        assert_eq!(o, vec![11.0, 19.0, 31.0, 39.0]);
    }

    #[test]
    fn views_with_strides() {
        // 2x2 views inside ld-4 buffers.
        let a = vec![1.0f32, 2.0, 9.0, 9.0, 3.0, 4.0, 9.0, 9.0];
        let b = vec![5.0f32, 6.0, 9.0, 9.0, 7.0, 8.0, 9.0, 9.0];
        let mut o = vec![0.0f32; 8];
        add(2, 2, &a, 4, &b, 4, &mut o, 4);
        assert_eq!(&o[0..2], &[6.0, 8.0]);
        assert_eq!(&o[4..6], &[10.0, 12.0]);
        assert_eq!(o[2], 0.0); // untouched past the view
    }
}
