//! Dropout TPP with explicit RNG state and mask output
//! (paper Listing 6: `dropout_tpp(&dout..., get_rng_state(), ..., &dp_mask...)`).

use pl_tensor::{Element, Xorshift};

/// Dropout forward: zeroes each element with probability `p` and scales
/// survivors by `1/(1-p)` (inverted dropout). Writes the keep-mask so the
/// backward pass can replay the decision.
///
/// `p == 0` degenerates to a copy with an all-ones mask.
#[allow(clippy::too_many_arguments)]
pub fn dropout<TI: Element, TO: Element>(
    m: usize,
    n: usize,
    p: f32,
    input: &[TI],
    ldi: usize,
    rng: &mut Xorshift,
    out: &mut [TO],
    ldo: usize,
    mask: &mut [u8],
) {
    debug_assert!((0.0..1.0).contains(&p));
    debug_assert!(mask.len() >= m * n);
    let scale = 1.0 / (1.0 - p);
    for c in 0..n {
        for r in 0..m {
            let keep = rng.next_f32() >= p;
            mask[c * m + r] = keep as u8;
            let v = if keep { input[c * ldi + r].to_f32() * scale } else { 0.0 };
            out[c * ldo + r] = TO::from_f32(v);
        }
    }
}

/// Dropout backward: `dx = dy * mask / (1-p)`.
#[allow(clippy::too_many_arguments)]
pub fn dropout_backward<TI: Element, TO: Element>(
    m: usize,
    n: usize,
    p: f32,
    dy: &[TI],
    ldi: usize,
    mask: &[u8],
    dx: &mut [TO],
    ldo: usize,
) {
    let scale = 1.0 / (1.0 - p);
    for c in 0..n {
        for r in 0..m {
            let v = if mask[c * m + r] != 0 { dy[c * ldi + r].to_f32() * scale } else { 0.0 };
            dx[c * ldo + r] = TO::from_f32(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_probability_is_identity() {
        let x: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let mut y = vec![0.0f32; 16];
        let mut mask = vec![0u8; 16];
        let mut rng = Xorshift::new(1);
        dropout(4, 4, 0.0, &x, 4, &mut rng, &mut y, 4, &mut mask);
        assert_eq!(x, y);
        assert!(mask.iter().all(|&b| b == 1));
    }

    #[test]
    fn drop_rate_is_respected() {
        let n = 40_000;
        let x = vec![1.0f32; n];
        let mut y = vec![0.0f32; n];
        let mut mask = vec![0u8; n];
        let mut rng = Xorshift::new(7);
        dropout(n, 1, 0.3, &x, n, &mut rng, &mut y, n, &mut mask);
        let kept = mask.iter().filter(|&&b| b != 0).count() as f32 / n as f32;
        assert!((kept - 0.7).abs() < 0.01, "keep rate {kept}");
        // Survivors are scaled so the expectation is preserved.
        let mean = y.iter().sum::<f32>() / n as f32;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn backward_replays_mask() {
        let x = vec![1.0f32; 64];
        let mut y = vec![0.0f32; 64];
        let mut mask = vec![0u8; 64];
        let mut rng = Xorshift::new(3);
        dropout(8, 8, 0.5, &x, 8, &mut rng, &mut y, 8, &mut mask);
        let dy = vec![2.0f32; 64];
        let mut dx = vec![0.0f32; 64];
        dropout_backward(8, 8, 0.5, &dy, 8, &mask, &mut dx, 8);
        for i in 0..64 {
            let expect = if mask[i] != 0 { 4.0 } else { 0.0 };
            assert_eq!(dx[i], expect);
        }
    }

    #[test]
    fn deterministic_under_same_rng_state() {
        let x = vec![1.0f32; 32];
        let run = |seed| {
            let mut y = vec![0.0f32; 32];
            let mut mask = vec![0u8; 32];
            let mut rng = Xorshift::new(seed);
            dropout(32, 1, 0.4, &x, 32, &mut rng, &mut y, 32, &mut mask);
            (y, mask)
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11).1, run(12).1);
    }
}
