//! Data-movement TPPs: transpose and the VNNI (re)formatting primitives
//! ("The TPP collection provides the corresponding reformatting primitives",
//! paper §III-A2).

use pl_tensor::Element;

/// Out-of-place transpose: `out (n x m) = input (m x n)^T`, column-major.
pub fn transpose<TI: Element, TO: Element>(
    m: usize,
    n: usize,
    input: &[TI],
    ldi: usize,
    out: &mut [TO],
    ldo: usize,
) {
    debug_assert!(ldi >= m && ldo >= n);
    // Tile 8x8 for cache friendliness on large panels.
    const TILE: usize = 8;
    for c0 in (0..n).step_by(TILE) {
        for r0 in (0..m).step_by(TILE) {
            for c in c0..(c0 + TILE).min(n) {
                for r in r0..(r0 + TILE).min(m) {
                    out[r * ldo + c] = TO::from_f32(input[c * ldi + r].to_f32());
                }
            }
        }
    }
}

/// Packs a column-major `k x n` panel into VNNI-`v` format:
/// element `(p, j)` goes to `(p/v) * ldo * v + j * v + p%v`, where `ldo`
/// is the packed panel's column count (usually `n`). `k % v` must be 0.
pub fn vnni_pack<TI: Element, TO: Element>(
    k: usize,
    n: usize,
    v: usize,
    input: &[TI],
    ldi: usize,
    out: &mut [TO],
    ldo: usize,
) {
    debug_assert_eq!(k % v, 0, "reduction dim must divide the vnni factor");
    for j in 0..n {
        for p in 0..k {
            out[(p / v) * ldo * v + j * v + p % v] = TO::from_f32(input[j * ldi + p].to_f32());
        }
    }
}

/// Inverse of [`vnni_pack`].
pub fn vnni_unpack<TI: Element, TO: Element>(
    k: usize,
    n: usize,
    v: usize,
    input: &[TI],
    ldi: usize,
    out: &mut [TO],
    ldo: usize,
) {
    debug_assert_eq!(k % v, 0);
    for j in 0..n {
        for p in 0..k {
            out[j * ldo + p] = TO::from_f32(input[(p / v) * ldi * v + j * v + p % v].to_f32());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_tensor::Bf16;

    #[test]
    fn transpose_small() {
        // 2x3 col-major: [[1,3,5],[2,4,6]] logically.
        let x = vec![1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut y = vec![0.0f32; 6];
        transpose(2, 3, &x, 2, &mut y, 3);
        // y is 3x2 col-major: col0 = row0 of x = [1,3,5].
        assert_eq!(y, vec![1.0, 3.0, 5.0, 2.0, 4.0, 6.0]);
    }

    #[test]
    fn transpose_twice_is_identity() {
        let (m, n) = (13, 9); // deliberately not tile-aligned
        let x: Vec<f32> = (0..m * n).map(|i| i as f32 * 0.7).collect();
        let mut t = vec![0.0f32; m * n];
        let mut tt = vec![0.0f32; m * n];
        transpose(m, n, &x, m, &mut t, n);
        transpose(n, m, &t, n, &mut tt, m);
        assert_eq!(x, tt);
    }

    #[test]
    fn transpose_with_lds() {
        let x = vec![1.0f32, 2.0, 99.0, 3.0, 4.0, 99.0]; // 2x2 in ld-3
        let mut y = vec![0.0f32; 8]; // ld 4
        transpose(2, 2, &x, 3, &mut y, 4);
        assert_eq!(y[0], 1.0);
        assert_eq!(y[1], 3.0);
        assert_eq!(y[4], 2.0);
        assert_eq!(y[5], 4.0);
    }

    #[test]
    fn vnni_pack_layout_v2() {
        // k=4, n=2, v=2. Col-major input: col0=[a0,a1,a2,a3], col1=[b0..b3].
        let x = vec![0.0f32, 1.0, 2.0, 3.0, 10.0, 11.0, 12.0, 13.0];
        let mut y = vec![0.0f32; 8];
        vnni_pack(4, 2, 2, &x, 4, &mut y, 2);
        // Group 0 (rows 0-1): [a0,a1, b0,b1]; group 1 (rows 2-3): [a2,a3, b2,b3].
        assert_eq!(y, vec![0.0, 1.0, 10.0, 11.0, 2.0, 3.0, 12.0, 13.0]);
    }

    #[test]
    fn vnni_roundtrip_bf16() {
        let (k, n, v) = (16, 6, 2);
        let x: Vec<f32> = (0..k * n).map(|i| (i % 31) as f32 - 15.0).collect();
        let mut packed = vec![Bf16::ZERO; k * n];
        vnni_pack(k, n, v, &x, k, &mut packed, n);
        let mut back = vec![0.0f32; k * n];
        vnni_unpack(k, n, v, &packed, n, &mut back, k);
        assert_eq!(x, back);
    }

    #[test]
    fn vnni_v1_is_row_major() {
        // With v=1 the packed layout [K][N][1] degenerates to row-major,
        // i.e. the transpose of the column-major input.
        let x = vec![1.0f32, 2.0, 3.0, 4.0];
        let mut y = vec![0.0f32; 4];
        vnni_pack(2, 2, 1, &x, 2, &mut y, 2);
        assert_eq!(y, vec![1.0, 3.0, 2.0, 4.0]);
    }
}
