//! Kernel handle cache — the stand-in for libxsmm's JIT code cache.
//!
//! libxsmm generates machine code per kernel descriptor and memoizes it so
//! repeated requests return the cached code pointer. Our "code generation"
//! is the selection of a monomorphized microkernel (see `DESIGN.md`), and
//! this module memoizes the resulting handles with the same observable
//! behaviour: one construction per distinct descriptor, cheap lookups after,
//! and introspectable hit/miss statistics (used by tests and by the JIT
//! overhead discussion of paper §II-B).

use parking_lot::RwLock;
use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Global cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from the cache.
    pub hits: u64,
    /// Requests that constructed a new kernel.
    pub misses: u64,
    /// Live entries.
    pub entries: usize,
}

struct CacheInner {
    map: RwLock<HashMap<u64, Arc<dyn Any + Send + Sync>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

fn cache() -> &'static CacheInner {
    static CACHE: OnceLock<CacheInner> = OnceLock::new();
    CACHE.get_or_init(|| CacheInner {
        map: RwLock::new(HashMap::new()),
        hits: AtomicU64::new(0),
        misses: AtomicU64::new(0),
    })
}

/// Returns the cached kernel for `key`, constructing it with `make` on the
/// first request. `key` must already encode the element types (see
/// [`hash_key`]).
pub fn get_or_jit<K: Send + Sync + 'static>(key: u64, make: impl FnOnce() -> K) -> Arc<K> {
    let c = cache();
    if let Some(hit) = c.map.read().get(&key) {
        if let Ok(typed) = Arc::clone(hit).downcast::<K>() {
            c.hits.fetch_add(1, Ordering::Relaxed);
            return typed;
        }
    }
    let mut map = c.map.write();
    // Double-checked: another thread may have inserted meanwhile.
    if let Some(hit) = map.get(&key) {
        if let Ok(typed) = Arc::clone(hit).downcast::<K>() {
            c.hits.fetch_add(1, Ordering::Relaxed);
            return typed;
        }
    }
    c.misses.fetch_add(1, Ordering::Relaxed);
    let v = Arc::new(make());
    map.insert(key, Arc::clone(&v) as Arc<dyn Any + Send + Sync>);
    v
}

/// FNV-1a over descriptor bytes + a type tag; collisions across distinct
/// descriptors would only cost a redundant compile, never wrong code,
/// because the full descriptor is stored inside the handle and re-verified
/// by `Brgemm::new`.
pub fn hash_key(type_tag: u64, words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325 ^ type_tag.wrapping_mul(0x100000001b3);
    for &w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Snapshot of the global cache statistics.
pub fn stats() -> CacheStats {
    let c = cache();
    CacheStats {
        hits: c.hits.load(Ordering::Relaxed),
        misses: c.misses.load(Ordering::Relaxed),
        entries: c.map.read().len(),
    }
}

/// Drops every cached kernel (tests only; running kernels keep their Arcs).
pub fn clear() {
    cache().map.write().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct FakeKernel(u32);

    #[test]
    fn second_lookup_hits() {
        let key = hash_key(998877, &[1, 2, 3]);
        let before = stats();
        let a = get_or_jit(key, || FakeKernel(7));
        let b = get_or_jit(key, || FakeKernel(99));
        assert_eq!(*a, FakeKernel(7));
        assert_eq!(*b, FakeKernel(7)); // second make() never ran
        assert!(Arc::ptr_eq(&a, &b));
        let after = stats();
        assert!(after.hits > before.hits);
        assert!(after.misses > before.misses);
    }

    #[test]
    fn distinct_keys_get_distinct_kernels() {
        let k1 = hash_key(5544, &[10]);
        let k2 = hash_key(5544, &[11]);
        let a = get_or_jit(k1, || FakeKernel(1));
        let b = get_or_jit(k2, || FakeKernel(2));
        assert_ne!(*a, *b);
    }

    #[test]
    fn concurrent_construction_is_single() {
        use std::sync::atomic::AtomicUsize;
        static MAKES: AtomicUsize = AtomicUsize::new(0);
        let key = hash_key(31337, &[42, 42]);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let _ = get_or_jit(key, || {
                        MAKES.fetch_add(1, Ordering::SeqCst);
                        FakeKernel(0)
                    });
                });
            }
        });
        assert_eq!(MAKES.load(Ordering::SeqCst), 1);
    }
}
