//! The Block-Sparse x Dense matrix-multiply TPP (paper §III-C, Listing 5).
//!
//! `C = A x B` with `A` block-sparse in BCSC format (see
//! [`pl_tensor::BcscMatrix`]) and `B`, `C` dense in VNNI-packed layout. The
//! microkernel walks the non-zero `bm x bk` blocks of one row-block of `A`,
//! multiplies each with the matching `bk x bn` panel of `B`, and keeps the
//! `bm x bn` output tile in f32 accumulators for the whole walk — the 2-D
//! register-blocking strategy of the paper "whenever possible (i.e. large
//! bn and bm)".

use pl_tensor::{BcscMatrix, Element, VnniMatrix};
use std::ops::Range;

/// Maximum `bm * bn` tile the kernel accumulates on the stack.
const MAX_TILE: usize = 64 * 64;

/// Descriptor/handle for the BCSC SpMM TPP.
#[derive(Debug, Clone, Copy)]
pub struct BcscSpmm {
    /// Row-block extent of `A` (and of the output tile).
    pub bm: usize,
    /// Column-block extent of `A` (reduction granularity).
    pub bk: usize,
    /// Column-block extent of `B`/`C` panels.
    pub bn: usize,
}

impl BcscSpmm {
    /// Creates the kernel handle; `bm * bn` must fit the accumulator tile.
    pub fn new(bm: usize, bk: usize, bn: usize) -> Self {
        assert!(bm > 0 && bk > 0 && bn > 0);
        assert!(bm * bn <= MAX_TILE, "output tile {bm}x{bn} exceeds accumulator capacity");
        BcscSpmm { bm, bk, bn }
    }

    /// Computes the `(im, inb)` output block:
    /// `C[im-block, inb-panel] (+)= sum_{ik in k_blocks} A[im,ik] x B[ik, inb]`
    ///
    /// `k_blocks` restricts the reduction to a block range of `K` (the
    /// paper's blocked `a` loop); pass `0..a.col_blocks()` for the full
    /// reduction. `beta_zero` overwrites `C` (the `ik == 0` zero_tpp of
    /// Listing 5); otherwise accumulates.
    #[allow(clippy::too_many_arguments)]
    pub fn execute<TA: Element, TB: Element, TC: Element>(
        &self,
        a: &BcscMatrix<TA>,
        im: usize,
        k_blocks: Range<usize>,
        b: &VnniMatrix<TB>,
        inb: usize,
        c: &mut VnniMatrix<TC>,
        beta_zero: bool,
    ) {
        let (rows, v) = (c.rows(), c.v());
        self.execute_into(a, im, k_blocks, b, inb, c.data_mut(), rows, v, beta_zero);
    }

    /// Raw-output variant of [`Self::execute`]: `c_data` is the backing
    /// buffer of a VNNI matrix with `c_rows` rows, packing factor `c_v` and
    /// column blocking `bn`. Used by the PARLOOPER kernel, which hands out
    /// disjoint output blocks to concurrent threads.
    #[allow(clippy::too_many_arguments)]
    pub fn execute_into<TA: Element, TB: Element, TC: Element>(
        &self,
        a: &BcscMatrix<TA>,
        im: usize,
        k_blocks: Range<usize>,
        b: &VnniMatrix<TB>,
        inb: usize,
        c_data: &mut [TC],
        c_rows: usize,
        c_v: usize,
        beta_zero: bool,
    ) {
        let (bm, bk, bn) = (self.bm, self.bk, self.bn);
        debug_assert_eq!(a.bm(), bm);
        debug_assert_eq!(a.bk(), bk);
        debug_assert_eq!(b.bn(), bn);
        debug_assert_eq!(a.cols(), b.rows(), "A cols must equal B rows");

        let c_off = |r: usize, cidx: usize| -> usize {
            let nb = cidx / bn;
            let cc = cidx % bn;
            ((nb * (c_rows / c_v) + r / c_v) * bn + cc) * c_v + r % c_v
        };

        // f32 accumulator tile, column-major bm x bn.
        let mut acc = [0.0f32; MAX_TILE];
        let tile = &mut acc[..bm * bn];
        if !beta_zero {
            for j in 0..bn {
                for r in 0..bm {
                    tile[j * bm + r] = c_data[c_off(im * bm + r, inb * bn + j)].to_f32();
                }
            }
        }

        let bv = b.v();
        let b_data = b.data();
        let rows_over_v = b.rows() / bv;
        for (ik, vals) in a.row_block_iter(im) {
            if ik < k_blocks.start || ik >= k_blocks.end {
                continue;
            }
            // Panel of B: rows ik*bk .. ik*bk+bk, column block inb.
            for p in 0..bk {
                let row = ik * bk + p;
                let grp_base = (inb * rows_over_v + row / bv) * bn * bv + row % bv;
                let acol = &vals[p * bm..p * bm + bm];
                for j in 0..bn {
                    let bval = b_data[grp_base + j * bv].to_f32();
                    if bval == 0.0 {
                        continue;
                    }
                    let out = &mut tile[j * bm..j * bm + bm];
                    for (o, av) in out.iter_mut().zip(acol) {
                        *o = av.to_f32().mul_add(bval, *o);
                    }
                }
            }
        }

        for j in 0..bn {
            for r in 0..bm {
                c_data[c_off(im * bm + r, inb * bn + j)] = TC::from_f32(tile[j * bm + r]);
            }
        }
    }
}

/// Dense reference: `C = A_dense x B` in plain f64-accumulated form.
pub fn reference_spmm(
    a_dense: &[f32],
    m: usize,
    k: usize,
    b_colmajor: &[f32],
    n: usize,
) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    for j in 0..n {
        for i in 0..m {
            let mut acc = 0.0f64;
            for p in 0..k {
                acc += a_dense[p * m + i] as f64 * b_colmajor[j * k + p] as f64;
            }
            c[j * m + i] = acc as f32;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_tensor::{Bf16, Xorshift};

    fn run_spmm_case(m: usize, k: usize, n: usize, bm: usize, bk: usize, bn: usize, sp: f64) {
        let mut rng = Xorshift::new((m + k * 3 + n * 7) as u64 + (sp * 100.0) as u64);
        let a = BcscMatrix::<f32>::random(m, k, bm, bk, sp, &mut rng).unwrap();
        let b_cm: Vec<f32> = (0..k * n).map(|_| rng.next_f32() - 0.5).collect();
        let mut b = VnniMatrix::<f32>::new(k, n, bn, 1).unwrap();
        b.pack_from_colmajor(&b_cm);
        let mut c = VnniMatrix::<f32>::new(m, n, bn, 1).unwrap();

        let kernel = BcscSpmm::new(bm, bk, bn);
        for im in 0..m / bm {
            for inb in 0..n / bn {
                kernel.execute(&a, im, 0..k / bk, &b, inb, &mut c, true);
            }
        }

        let c_ref = reference_spmm(&a.to_dense_colmajor(), m, k, &b_cm, n);
        let c_got = c.unpack_to_colmajor();
        for i in 0..m * n {
            assert!(
                (c_got[i] - c_ref[i]).abs() < 1e-4 * k as f32,
                "m={m} k={k} n={n} sp={sp} i={i}: {} vs {}",
                c_got[i],
                c_ref[i]
            );
        }
    }

    #[test]
    fn matches_dense_reference_across_sparsities() {
        for &sp in &[0.0, 0.3, 0.7, 0.95, 1.0] {
            run_spmm_case(32, 32, 16, 8, 8, 4, sp);
        }
    }

    #[test]
    fn various_block_shapes() {
        run_spmm_case(16, 24, 12, 4, 8, 6, 0.5);
        run_spmm_case(64, 32, 32, 16, 16, 16, 0.5);
        run_spmm_case(8, 8, 8, 8, 8, 8, 0.5);
    }

    fn run_spmm_case_blocks(m: usize, k: usize, n: usize, bm: usize, bk: usize, bn: usize) {
        run_spmm_case(m, k, n, bm, bk, bn, 0.5);
    }

    #[test]
    fn k_range_partitions_compose() {
        // Running [0..half) then [half..end) with accumulate equals full run.
        let (m, k, n, bm, bk, bn) = (16, 32, 8, 8, 8, 4);
        let mut rng = Xorshift::new(77);
        let a = BcscMatrix::<f32>::random(m, k, bm, bk, 0.4, &mut rng).unwrap();
        let b_cm: Vec<f32> = (0..k * n).map(|_| rng.next_f32() - 0.5).collect();
        let mut b = VnniMatrix::<f32>::new(k, n, bn, 1).unwrap();
        b.pack_from_colmajor(&b_cm);
        let kernel = BcscSpmm::new(bm, bk, bn);

        let mut c_full = VnniMatrix::<f32>::new(m, n, bn, 1).unwrap();
        let mut c_split = VnniMatrix::<f32>::new(m, n, bn, 1).unwrap();
        let kb = k / bk;
        for im in 0..m / bm {
            for inb in 0..n / bn {
                kernel.execute(&a, im, 0..kb, &b, inb, &mut c_full, true);
                kernel.execute(&a, im, 0..kb / 2, &b, inb, &mut c_split, true);
                kernel.execute(&a, im, kb / 2..kb, &b, inb, &mut c_split, false);
            }
        }
        assert_eq!(c_full.unpack_to_colmajor(), c_split.unpack_to_colmajor());
    }

    #[test]
    fn bf16_vnni2_path() {
        let (m, k, n, bm, bk, bn, v) = (16, 16, 8, 8, 8, 4, 2);
        let mut rng = Xorshift::new(13);
        let a = BcscMatrix::<Bf16>::random(m, k, bm, bk, 0.5, &mut rng).unwrap();
        let b_cm: Vec<f32> = (0..k * n).map(|_| (rng.next_f32() - 0.5) * 0.25).collect();
        let mut b = VnniMatrix::<Bf16>::new(k, n, bn, v).unwrap();
        b.pack_from_colmajor(&b_cm);
        let mut c = VnniMatrix::<f32>::new(m, n, bn, 1).unwrap();
        let kernel = BcscSpmm::new(bm, bk, bn);
        for im in 0..m / bm {
            for inb in 0..n / bn {
                kernel.execute(&a, im, 0..k / bk, &b, inb, &mut c, true);
            }
        }
        // Reference over the bf16-quantized operands.
        let bq: Vec<f32> = {
            let mut t = VnniMatrix::<Bf16>::new(k, n, bn, v).unwrap();
            t.pack_from_colmajor(&b_cm);
            t.unpack_to_colmajor()
        };
        let c_ref = reference_spmm(&a.to_dense_colmajor(), m, k, &bq, n);
        let c_got = c.unpack_to_colmajor();
        for i in 0..m * n {
            assert!((c_got[i] - c_ref[i]).abs() < 1e-4 * k as f32);
        }
    }

    #[test]
    #[should_panic(expected = "accumulator capacity")]
    fn oversized_tile_is_rejected() {
        let _ = BcscSpmm::new(128, 8, 64);
    }

    #[test]
    fn empty_row_block_leaves_zero() {
        let mut rng = Xorshift::new(1);
        let a = BcscMatrix::<f32>::random(16, 16, 8, 8, 1.0, &mut rng).unwrap();
        let b = VnniMatrix::<f32>::new(16, 8, 4, 1).unwrap();
        let mut c = VnniMatrix::<f32>::new(16, 8, 4, 1).unwrap();
        let kernel = BcscSpmm::new(8, 8, 4);
        kernel.execute(&a, 0, 0..2, &b, 0, &mut c, true);
        assert!(c.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn exercises_nontrivial_blocks() {
        run_spmm_case_blocks(48, 32, 24, 16, 8, 8);
    }
}
