//! TPP *equations*: fused multi-operator primitives over blocked layouts
//! (the paper's `layernorm_tpp_eqn` in Listing 6 line 18, and friends).
//!
//! The end-to-end BERT modules keep activations in blocked form
//! `[S1][Nk][S2][bk]` (token blocks x feature blocks x tokens x features).
//! Operators that reduce over the *full* feature dimension must therefore
//! span all `Nk` feature blocks of one token block at once — that is what
//! these equations do.

use pl_tensor::Element;

/// Layernorm over the blocked activation slice of one token block:
/// `x` is `[Nk][S2][bk]` (contiguous), normalization is per token `s2`
/// across all `(nk, bk)` features. `gamma`/`beta` are `[Nk][bk]`.
/// Saves `mean[s2]` and `rstd[s2]`.
#[allow(clippy::too_many_arguments)]
pub fn layernorm_blocked<TI: Element, TO: Element>(
    nk: usize,
    s2: usize,
    bk: usize,
    x: &[TI],
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
    out: &mut [TO],
    mean: &mut [f32],
    rstd: &mut [f32],
) {
    debug_assert!(x.len() >= nk * s2 * bk && out.len() >= nk * s2 * bk);
    debug_assert!(gamma.len() >= nk * bk && beta.len() >= nk * bk);
    let features = (nk * bk) as f32;
    for t in 0..s2 {
        let mut sum = 0.0f32;
        let mut sumsq = 0.0f32;
        for nkb in 0..nk {
            let base = (nkb * s2 + t) * bk;
            for v in &x[base..base + bk] {
                let f = v.to_f32();
                sum += f;
                sumsq += f * f;
            }
        }
        let mu = sum / features;
        let var = (sumsq / features - mu * mu).max(0.0);
        let rs = 1.0 / (var + eps).sqrt();
        mean[t] = mu;
        rstd[t] = rs;
        for nkb in 0..nk {
            let base = (nkb * s2 + t) * bk;
            let gslice = &gamma[nkb * bk..(nkb + 1) * bk];
            let bslice = &beta[nkb * bk..(nkb + 1) * bk];
            for i in 0..bk {
                let xhat = (x[base + i].to_f32() - mu) * rs;
                out[base + i] = TO::from_f32(gslice[i] * xhat + bslice[i]);
            }
        }
    }
}

/// Backward of [`layernorm_blocked`]: produces `dx` (same blocked layout)
/// and accumulates `dgamma`/`dbeta` (`[Nk][bk]`).
#[allow(clippy::too_many_arguments)]
pub fn layernorm_blocked_backward<TI: Element, TG: Element, TO: Element>(
    nk: usize,
    s2: usize,
    bk: usize,
    x: &[TI],
    dy: &[TG],
    gamma: &[f32],
    mean: &[f32],
    rstd: &[f32],
    dx: &mut [TO],
    dgamma: &mut [f32],
    dbeta: &mut [f32],
) {
    let features = (nk * bk) as f32;
    for t in 0..s2 {
        let mu = mean[t];
        let rs = rstd[t];
        let mut sum_g = 0.0f32;
        let mut sum_gx = 0.0f32;
        for nkb in 0..nk {
            let base = (nkb * s2 + t) * bk;
            for i in 0..bk {
                let xhat = (x[base + i].to_f32() - mu) * rs;
                let g = dy[base + i].to_f32();
                let gg = g * gamma[nkb * bk + i];
                sum_g += gg;
                sum_gx += gg * xhat;
                dgamma[nkb * bk + i] += g * xhat;
                dbeta[nkb * bk + i] += g;
            }
        }
        for nkb in 0..nk {
            let base = (nkb * s2 + t) * bk;
            for i in 0..bk {
                let xhat = (x[base + i].to_f32() - mu) * rs;
                let gg = dy[base + i].to_f32() * gamma[nkb * bk + i];
                dx[base + i] = TO::from_f32(rs * (gg - (sum_g + xhat * sum_gx) / features));
            }
        }
    }
}

/// Fused bias + GELU over a `bk x s2` feature-major block
/// (Bert-Intermediate, §IV-A): `out = gelu(x + bias)`.
pub fn bias_gelu<TI: Element, TO: Element>(
    bk: usize,
    s2: usize,
    x: &[TI],
    bias: &[f32],
    out: &mut [TO],
) {
    for t in 0..s2 {
        for i in 0..bk {
            let v = x[t * bk + i].to_f32() + bias[i];
            out[t * bk + i] = TO::from_f32(crate::unary::gelu_scalar(v));
        }
    }
}

/// Fused bias + ReLU over a `bk x s2` feature-major block (MLP, §III-A).
pub fn bias_relu<TI: Element, TO: Element>(
    bk: usize,
    s2: usize,
    x: &[TI],
    bias: &[f32],
    out: &mut [TO],
) {
    for t in 0..s2 {
        for i in 0..bk {
            let v = (x[t * bk + i].to_f32() + bias[i]).max(0.0);
            out[t * bk + i] = TO::from_f32(v);
        }
    }
}

/// Scale + residual-add + store, the tail of the Bert-Output fusion chain:
/// `out = a * alpha + b`.
pub fn scale_add<TA: Element, TB: Element, TO: Element>(
    len: usize,
    alpha: f32,
    a: &[TA],
    b: &[TB],
    out: &mut [TO],
) {
    for i in 0..len {
        out[i] = TO::from_f32(a[i].to_f32().mul_add(alpha, b[i].to_f32()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocked_layernorm_matches_flat() {
        // nk=2, s2=3, bk=4 -> 8 features per token, 3 tokens.
        let (nk, s2, bk) = (2usize, 3usize, 4usize);
        let total = nk * s2 * bk;
        let x: Vec<f32> = (0..total).map(|i| (i as f32 * 0.7).sin() * 2.0).collect();
        let gamma: Vec<f32> = (0..nk * bk).map(|i| 1.0 + 0.1 * i as f32).collect();
        let beta: Vec<f32> = (0..nk * bk).map(|i| 0.05 * i as f32).collect();
        let mut y = vec![0.0f32; total];
        let mut mean = vec![0.0f32; s2];
        let mut rstd = vec![0.0f32; s2];
        layernorm_blocked(nk, s2, bk, &x, &gamma, &beta, 1e-5, &mut y, &mut mean, &mut rstd);

        // Flat reference per token.
        for t in 0..s2 {
            let feats: Vec<f32> =
                (0..nk * bk).map(|f| x[((f / bk) * s2 + t) * bk + f % bk]).collect();
            let mu: f32 = feats.iter().sum::<f32>() / feats.len() as f32;
            let var: f32 =
                feats.iter().map(|v| (v - mu) * (v - mu)).sum::<f32>() / feats.len() as f32;
            let rs = 1.0 / (var + 1e-5).sqrt();
            for f in 0..nk * bk {
                let expect = gamma[f] * (feats[f] - mu) * rs + beta[f];
                let got = y[((f / bk) * s2 + t) * bk + f % bk];
                assert!((got - expect).abs() < 1e-4, "t={t} f={f}: {got} vs {expect}");
            }
            assert!((mean[t] - mu).abs() < 1e-5);
        }
    }

    #[test]
    fn blocked_layernorm_backward_finite_difference() {
        let (nk, s2, bk) = (2usize, 1usize, 3usize);
        let total = nk * s2 * bk;
        let x: Vec<f32> = vec![0.4, -0.9, 1.3, 0.2, -0.6, 0.8];
        let dy: Vec<f32> = vec![0.3, -0.2, 0.1, 0.25, -0.05, 0.15];
        let gamma: Vec<f32> = vec![1.1, 0.9, 1.0, 1.2, 0.8, 1.05];
        let beta = vec![0.0f32; total];

        let fwd = |xs: &[f32]| -> f32 {
            let mut y = vec![0.0f32; total];
            let mut mean = vec![0.0f32; s2];
            let mut rstd = vec![0.0f32; s2];
            layernorm_blocked(nk, s2, bk, xs, &gamma, &beta, 1e-5, &mut y, &mut mean, &mut rstd);
            y.iter().zip(&dy).map(|(a, b)| a * b).sum()
        };

        let mut y = vec![0.0f32; total];
        let mut mean = vec![0.0f32; s2];
        let mut rstd = vec![0.0f32; s2];
        layernorm_blocked(nk, s2, bk, &x, &gamma, &beta, 1e-5, &mut y, &mut mean, &mut rstd);
        let mut dx = vec![0.0f32; total];
        let mut dgamma = vec![0.0f32; total];
        let mut dbeta = vec![0.0f32; total];
        layernorm_blocked_backward(
            nk,
            s2,
            bk,
            &x,
            &dy,
            &gamma,
            &mean,
            &rstd,
            &mut dx,
            &mut dgamma,
            &mut dbeta,
        );
        for i in 0..total {
            let h = 1e-2;
            let mut xp = x.clone();
            xp[i] += h;
            let mut xm = x.clone();
            xm[i] -= h;
            let fd = (fwd(&xp) - fwd(&xm)) / (2.0 * h);
            assert!((dx[i] - fd).abs() < 3e-3, "i={i}: {} vs {}", dx[i], fd);
        }
    }

    #[test]
    fn bias_activations() {
        let x = vec![-1.0f32, 0.5, 2.0, -0.25];
        let bias = vec![0.5f32, 0.5];
        let mut r = vec![0.0f32; 4];
        bias_relu(2, 2, &x, &bias, &mut r);
        assert_eq!(r, vec![0.0, 1.0, 2.5, 0.25]);
        let mut g = vec![0.0f32; 4];
        bias_gelu(2, 2, &x, &bias, &mut g);
        assert!((g[0] - crate::unary::gelu_scalar(-0.5)).abs() < 1e-6);
    }

    #[test]
    fn scale_add_fma() {
        let a = vec![1.0f32, 2.0];
        let b = vec![10.0f32, 20.0];
        let mut o = vec![0.0f32; 2];
        scale_add(2, 0.5, &a, &b, &mut o);
        assert_eq!(o, vec![10.5, 21.0]);
    }
}
