//! # pl-tpp — Tensor Processing Primitives
//!
//! A Rust reimplementation of the TPP collection the paper builds on
//! (Georganas et al. 2021) and extends: a compact, versatile, *precision
//! aware* set of 2-D tensor operators from which higher-level DL/HPC
//! operators are composed.
//!
//! ## Orientation conventions
//!
//! Tensor-contraction TPPs ([`brgemm`], [`spmm`], [`transform`]) follow the
//! paper's column-major convention: an `m x n` operand has element `(r, c)`
//! at `c * ld + r`. Row-wise DL operators ([`softmax`], [`norm`],
//! [`dropout`], bias add) state their own orientation in their docs — in the
//! end-to-end workloads they act on `(rows = features, cols = tokens)`
//! blocks exactly as the fused modules of paper Listing 6 do.
//!
//! ## The "JIT" substitution
//!
//! libxsmm emits machine code per kernel descriptor and caches it. Here a
//! descriptor selects a monomorphized, shape-specialized Rust microkernel
//! (rustc/LLVM performed the vectorization ahead of time), and handles are
//! cached in [`cache`] keyed by descriptor — the same architecture with the
//! code generator swapped out, as recorded in `DESIGN.md`.

// TPP entry points mirror libxsmm descriptor signatures (m, n, in, ldi,
// out, ldo, ...), so the argument-count lint is noise here.
#![allow(clippy::too_many_arguments)]

pub mod binary;
pub mod brgemm;
pub mod cache;
pub mod dropout;
pub mod equation;
pub mod norm;
pub mod reduce;
pub mod softmax;
pub mod spmm;
pub mod transform;
pub mod unary;

pub use brgemm::{Brgemm, BrgemmDesc, BrgemmI8, BrgemmI8Desc, BrgemmVariant};
pub use spmm::BcscSpmm;

/// Convenience re-export: every TPP works over these element types.
pub use pl_tensor::{Bf16, DType, Element};
