//! Softmax TPPs (forward and backward), numerically stabilized by
//! max-subtraction. Used by the Bert-Self-Attention fused blocks
//! (paper §IV-A).

use pl_tensor::Element;

/// Softmax over each *column* of an `m x n` column-major view.
pub fn softmax_cols<TI: Element, TO: Element>(
    m: usize,
    n: usize,
    input: &[TI],
    ldi: usize,
    out: &mut [TO],
    ldo: usize,
) {
    for c in 0..n {
        let icol = &input[c * ldi..c * ldi + m];
        let max = icol.iter().map(|v| v.to_f32()).fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        let ocol = &mut out[c * ldo..c * ldo + m];
        for (o, v) in ocol.iter_mut().zip(icol) {
            let e = (v.to_f32() - max).exp();
            denom += e;
            *o = TO::from_f32(e);
        }
        let inv = 1.0 / denom;
        for o in ocol.iter_mut() {
            *o = TO::from_f32(o.to_f32() * inv);
        }
    }
}

/// Softmax over each *row* of an `m x n` column-major view (equivalently,
/// over the contiguous rows of a row-major buffer when `m` and `n` are
/// swapped by the caller).
pub fn softmax_rows<TI: Element, TO: Element>(
    m: usize,
    n: usize,
    input: &[TI],
    ldi: usize,
    out: &mut [TO],
    ldo: usize,
) {
    for r in 0..m {
        let mut max = f32::NEG_INFINITY;
        for c in 0..n {
            max = max.max(input[c * ldi + r].to_f32());
        }
        let mut denom = 0.0f32;
        for c in 0..n {
            let e = (input[c * ldi + r].to_f32() - max).exp();
            denom += e;
            out[c * ldo + r] = TO::from_f32(e);
        }
        let inv = 1.0 / denom;
        for c in 0..n {
            let v = out[c * ldo + r].to_f32() * inv;
            out[c * ldo + r] = TO::from_f32(v);
        }
    }
}

/// Backward of [`softmax_cols`]: given `y = softmax(x)` and upstream `dy`,
/// computes `dx = y * (dy - <dy, y>)` per column.
pub fn softmax_cols_backward<TY: Element, TG: Element, TO: Element>(
    m: usize,
    n: usize,
    y: &[TY],
    ldy: usize,
    dy: &[TG],
    ldg: usize,
    dx: &mut [TO],
    ldo: usize,
) {
    for c in 0..n {
        let ycol = &y[c * ldy..c * ldy + m];
        let gcol = &dy[c * ldg..c * ldg + m];
        let dot: f32 = ycol.iter().zip(gcol).map(|(a, b)| a.to_f32() * b.to_f32()).sum();
        for r in 0..m {
            let v = ycol[r].to_f32() * (gcol[r].to_f32() - dot);
            dx[c * ldo + r] = TO::from_f32(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_sum_to_one() {
        let x = vec![1.0f32, 2.0, 3.0, -1.0, 0.0, 1.0]; // 3x2
        let mut y = vec![0.0f32; 6];
        softmax_cols(3, 2, &x, 3, &mut y, 3);
        for c in 0..2 {
            let s: f32 = y[c * 3..c * 3 + 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        // Monotone: bigger logits get bigger mass.
        assert!(y[2] > y[1] && y[1] > y[0]);
    }

    #[test]
    fn shift_invariance() {
        let x = vec![1.0f32, 2.0, 3.0];
        let shifted: Vec<f32> = x.iter().map(|v| v + 100.0).collect();
        let mut y1 = vec![0.0f32; 3];
        let mut y2 = vec![0.0f32; 3];
        softmax_cols(3, 1, &x, 3, &mut y1, 3);
        softmax_cols(3, 1, &shifted, 3, &mut y2, 3);
        for i in 0..3 {
            assert!((y1[i] - y2[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn handles_extreme_logits() {
        let x = vec![1000.0f32, -1000.0, 0.0];
        let mut y = vec![0.0f32; 3];
        softmax_cols(3, 1, &x, 3, &mut y, 3);
        assert!((y[0] - 1.0).abs() < 1e-6);
        assert!(y.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn rows_variant_matches_transposed_cols() {
        let x = vec![1.0f32, 4.0, 2.0, 5.0, 3.0, 6.0]; // 2x3 col-major
        let mut yr = vec![0.0f32; 6];
        softmax_rows(2, 3, &x, 2, &mut yr, 2);
        // Row 0 = softmax(1,2,3), row 1 = softmax(4,5,6).
        let mut yc = vec![0.0f32; 3];
        softmax_cols(3, 1, &[1.0, 2.0, 3.0], 3, &mut yc, 3);
        for c in 0..3 {
            assert!((yr[c * 2] - yc[c]).abs() < 1e-6);
        }
    }

    #[test]
    fn backward_matches_finite_difference() {
        let x = vec![0.5f32, -0.3, 1.2, 0.1];
        let dy = vec![0.2f32, -0.1, 0.4, 0.3];
        let mut y = vec![0.0f32; 4];
        softmax_cols(4, 1, &x, 4, &mut y, 4);
        let mut dx = vec![0.0f32; 4];
        softmax_cols_backward(4, 1, &y, 4, &dy, 4, &mut dx, 4);
        // Finite differences of L = <dy, softmax(x)>.
        let h = 1e-3;
        for i in 0..4 {
            let mut xp = x.clone();
            xp[i] += h;
            let mut xm = x.clone();
            xm[i] -= h;
            let mut yp = vec![0.0f32; 4];
            let mut ym = vec![0.0f32; 4];
            softmax_cols(4, 1, &xp, 4, &mut yp, 4);
            softmax_cols(4, 1, &xm, 4, &mut ym, 4);
            let lp: f32 = yp.iter().zip(&dy).map(|(a, b)| a * b).sum();
            let lm: f32 = ym.iter().zip(&dy).map(|(a, b)| a * b).sum();
            let fd = (lp - lm) / (2.0 * h);
            assert!((dx[i] - fd).abs() < 1e-3, "i={i}: {} vs {}", dx[i], fd);
        }
    }
}
