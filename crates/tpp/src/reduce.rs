//! Reduction TPPs over 2-D views: row/column sums, maxima, and the
//! mean/variance pairs consumed by the normalization equations.

use pl_tensor::Element;

/// Sums each row of an `m x n` column-major view into `out[0..m]`.
pub fn row_sum<TI: Element, TO: Element>(
    m: usize,
    n: usize,
    input: &[TI],
    ldi: usize,
    out: &mut [TO],
) {
    debug_assert!(out.len() >= m);
    let mut acc = vec![0.0f32; m];
    for c in 0..n {
        for (a, v) in acc.iter_mut().zip(&input[c * ldi..c * ldi + m]) {
            *a += v.to_f32();
        }
    }
    for (o, a) in out.iter_mut().take(m).zip(&acc) {
        *o = TO::from_f32(*a);
    }
}

/// Sums each column of an `m x n` view into `out[0..n]`.
pub fn col_sum<TI: Element, TO: Element>(
    m: usize,
    n: usize,
    input: &[TI],
    ldi: usize,
    out: &mut [TO],
) {
    debug_assert!(out.len() >= n);
    for c in 0..n {
        let s: f32 = input[c * ldi..c * ldi + m].iter().map(|v| v.to_f32()).sum();
        out[c] = TO::from_f32(s);
    }
}

/// Row-wise maximum.
pub fn row_max<TI: Element>(m: usize, n: usize, input: &[TI], ldi: usize, out: &mut [f32]) {
    debug_assert!(out.len() >= m);
    out[..m].iter_mut().for_each(|v| *v = f32::NEG_INFINITY);
    for c in 0..n {
        for (o, v) in out.iter_mut().take(m).zip(&input[c * ldi..c * ldi + m]) {
            *o = o.max(v.to_f32());
        }
    }
}

/// Column-wise maximum.
pub fn col_max<TI: Element>(m: usize, n: usize, input: &[TI], ldi: usize, out: &mut [f32]) {
    debug_assert!(out.len() >= n);
    for c in 0..n {
        out[c] = input[c * ldi..c * ldi + m]
            .iter()
            .map(|v| v.to_f32())
            .fold(f32::NEG_INFINITY, f32::max);
    }
}

/// Column-wise mean and (population) variance — the layernorm statistics.
pub fn col_mean_var<TI: Element>(
    m: usize,
    n: usize,
    input: &[TI],
    ldi: usize,
    mean: &mut [f32],
    var: &mut [f32],
) {
    debug_assert!(mean.len() >= n && var.len() >= n);
    let inv_m = 1.0 / m as f32;
    for c in 0..n {
        let col = &input[c * ldi..c * ldi + m];
        let mu: f32 = col.iter().map(|v| v.to_f32()).sum::<f32>() * inv_m;
        let v: f32 = col
            .iter()
            .map(|x| {
                let d = x.to_f32() - mu;
                d * d
            })
            .sum::<f32>()
            * inv_m;
        mean[c] = mu;
        var[c] = v;
    }
}

/// Sum of all elements of the view (used for loss reductions).
pub fn total_sum<TI: Element>(m: usize, n: usize, input: &[TI], ldi: usize) -> f32 {
    let mut s = 0.0f64;
    for c in 0..n {
        s += input[c * ldi..c * ldi + m].iter().map(|v| v.to_f32() as f64).sum::<f64>();
    }
    s as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    // 3x2 col-major: col0 = [1,2,3], col1 = [4,5,6].
    const X: [f32; 6] = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];

    #[test]
    fn row_and_col_sums() {
        let mut rs = vec![0.0f32; 3];
        row_sum(3, 2, &X, 3, &mut rs);
        assert_eq!(rs, vec![5.0, 7.0, 9.0]);
        let mut cs = vec![0.0f32; 2];
        col_sum(3, 2, &X, 3, &mut cs);
        assert_eq!(cs, vec![6.0, 15.0]);
    }

    #[test]
    fn maxima() {
        let mut rm = vec![0.0f32; 3];
        row_max(3, 2, &X, 3, &mut rm);
        assert_eq!(rm, vec![4.0, 5.0, 6.0]);
        let mut cm = vec![0.0f32; 2];
        col_max(3, 2, &X, 3, &mut cm);
        assert_eq!(cm, vec![3.0, 6.0]);
    }

    #[test]
    fn mean_var() {
        let mut mean = vec![0.0f32; 2];
        let mut var = vec![0.0f32; 2];
        col_mean_var(3, 2, &X, 3, &mut mean, &mut var);
        assert_eq!(mean, vec![2.0, 5.0]);
        assert!((var[0] - 2.0 / 3.0).abs() < 1e-6);
        assert!((var[1] - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn total() {
        assert_eq!(total_sum(3, 2, &X, 3), 21.0);
        // Sub-view: first 2 rows only.
        assert_eq!(total_sum(2, 2, &X, 3), 12.0);
    }

    #[test]
    fn respects_leading_dim() {
        // 2x2 view of a 3-ld buffer.
        let buf = [1.0f32, 2.0, 99.0, 3.0, 4.0, 99.0];
        let mut cs = vec![0.0f32; 2];
        col_sum(2, 2, &buf, 3, &mut cs);
        assert_eq!(cs, vec![3.0, 7.0]);
    }
}
