//! Multi-level LRU cache simulation at tensor-slice granularity
//! (paper §II-E).
//!
//! "These traces are compact since they register accesses of full tensor
//! slices instead of individual cache-lines" — a cache level is a set of
//! slice ids with byte-accounted capacity and LRU replacement.

use std::collections::HashMap;

/// Identifies one tensor slice: `(tensor id, slice index)`.
pub type SliceId = (u8, u64);

/// Where an access was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitLevel {
    /// Cache level `i` (0 = L1).
    Cache(usize),
    /// Main memory.
    Memory,
}

/// One LRU set of slices with a byte capacity.
#[derive(Debug)]
struct SliceLru {
    capacity: usize,
    used: usize,
    /// slice -> (bytes, last-use stamp)
    entries: HashMap<SliceId, (usize, u64)>,
    clock: u64,
}

impl SliceLru {
    fn new(capacity: usize) -> Self {
        SliceLru { capacity, used: 0, entries: HashMap::new(), clock: 0 }
    }

    fn contains(&self, id: SliceId) -> bool {
        self.entries.contains_key(&id)
    }

    /// Inserts/touches a slice, evicting LRU slices to fit. Slices larger
    /// than the capacity simply stream through (never resident).
    fn insert(&mut self, id: SliceId, bytes: usize) {
        self.clock += 1;
        if bytes > self.capacity {
            if let Some((b, _)) = self.entries.remove(&id) {
                self.used -= b;
            }
            return;
        }
        if let Some(e) = self.entries.get_mut(&id) {
            // Size change (shouldn't happen in practice) handled anyway.
            self.used = self.used - e.0 + bytes;
            *e = (bytes, self.clock);
            return;
        }
        while self.used + bytes > self.capacity && !self.entries.is_empty() {
            // Evict the least recently used slice.
            let victim = *self
                .entries
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k)
                .expect("non-empty");
            let (b, _) = self.entries.remove(&victim).expect("present");
            self.used -= b;
        }
        self.entries.insert(id, (bytes, self.clock));
        self.used += bytes;
    }
}

/// A per-thread cache hierarchy (up to 3 levels, inclusive).
#[derive(Debug)]
pub struct CacheHierarchy {
    levels: Vec<SliceLru>,
}

impl CacheHierarchy {
    /// Builds from per-level capacities in bytes (L1 first).
    pub fn new(capacities: &[usize]) -> Self {
        CacheHierarchy { levels: capacities.iter().map(|&c| SliceLru::new(c)).collect() }
    }

    /// Simulates one access; returns where the slice was found *before*
    /// the access, then makes it most-recently-used in every level.
    pub fn access(&mut self, id: SliceId, bytes: usize) -> HitLevel {
        let mut hit = HitLevel::Memory;
        for (i, lvl) in self.levels.iter().enumerate() {
            if lvl.contains(id) {
                hit = HitLevel::Cache(i);
                break;
            }
        }
        for lvl in self.levels.iter_mut() {
            lvl.insert(id, bytes);
        }
        hit
    }

    /// Number of simulated levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_misses_second_hits_l1() {
        let mut c = CacheHierarchy::new(&[1024, 4096, 16384]);
        assert_eq!(c.access((0, 1), 256), HitLevel::Memory);
        assert_eq!(c.access((0, 1), 256), HitLevel::Cache(0));
    }

    #[test]
    fn capacity_eviction_falls_back_to_l2() {
        let mut c = CacheHierarchy::new(&[512, 4096]);
        // Two 256B slices fill L1; the third evicts the LRU (slice 1).
        c.access((0, 1), 256);
        c.access((0, 2), 256);
        c.access((0, 3), 256);
        assert_eq!(c.access((0, 1), 256), HitLevel::Cache(1)); // still in L2
    }

    #[test]
    fn lru_order_respects_touches() {
        let mut c = CacheHierarchy::new(&[512]);
        c.access((0, 1), 256);
        c.access((0, 2), 256);
        c.access((0, 1), 256); // touch 1 -> 2 becomes LRU
        c.access((0, 3), 256); // evicts 2
        assert_eq!(c.access((0, 1), 256), HitLevel::Cache(0));
        // Re-access of 1 above evicted... verify 2 is gone by checking it
        // misses everywhere (single level).
        let mut c2 = CacheHierarchy::new(&[512]);
        c2.access((0, 1), 256);
        c2.access((0, 2), 256);
        c2.access((0, 1), 256);
        c2.access((0, 3), 256);
        assert_eq!(c2.access((0, 2), 256), HitLevel::Memory);
    }

    #[test]
    fn oversized_slices_stream_through() {
        let mut c = CacheHierarchy::new(&[512, 1024]);
        assert_eq!(c.access((0, 9), 4096), HitLevel::Memory);
        assert_eq!(c.access((0, 9), 4096), HitLevel::Memory);
        // Small slices still cache normally afterwards.
        c.access((0, 1), 128);
        assert_eq!(c.access((0, 1), 128), HitLevel::Cache(0));
    }

    #[test]
    fn distinct_tensors_do_not_collide() {
        let mut c = CacheHierarchy::new(&[1024]);
        c.access((0, 7), 256);
        assert_eq!(c.access((1, 7), 256), HitLevel::Memory);
    }
}
