//! The loop-schedule performance predictor (paper §II-E).
//!
//! For every virtual thread, [`predict`] replays the schedule produced by
//! [`parlooper::ThreadedLoop::simulate`], generating the chronological
//! trace of tensor-slice accesses of each body invocation, feeding them
//! through the per-thread [`CacheHierarchy`], and charging
//! `max(compute cycles, sum of transfer cycles)` per BRGEMM invocation.
//! The kernel time is the slowest thread's time — which automatically
//! penalizes schedules with poor concurrency (redundant or imbalanced
//! work), as the paper notes.

use crate::cachesim::{CacheHierarchy, HitLevel, SliceId};
use crate::platform::Platform;
use parlooper::ThreadedLoop;
use pl_tensor::DType;

/// One slice access of a body invocation.
#[derive(Debug, Clone, Copy)]
pub struct Access {
    /// Which slice.
    pub id: SliceId,
    /// Slice footprint in bytes.
    pub bytes: usize,
}

/// Flop count of one body invocation at the given logical indices.
pub type FlopsFn<'a> = Box<dyn Fn(&[usize]) -> f64 + 'a>;

/// Slice accesses of one invocation (appended to the scratch vec).
pub type AccessesFn<'a> = Box<dyn Fn(&[usize], &mut Vec<Access>) + 'a>;

/// Per-invocation behaviour of the kernel body.
pub struct BodyModel<'a> {
    /// Flops performed by one body invocation.
    pub flops: FlopsFn<'a>,
    /// Slice accesses of one invocation (appended to the scratch vec).
    pub accesses: AccessesFn<'a>,
}

/// Prediction result.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// Wall time in seconds (slowest thread).
    pub seconds: f64,
    /// Useful throughput: problem flops / wall time. Replicated work in
    /// poorly parallelized schedules costs time without adding useful
    /// flops — exactly how the paper's tool assigns low scores to
    /// low-concurrency schedules.
    pub gflops: f64,
    /// Flops actually executed across all threads (>= problem flops when
    /// work is replicated).
    pub executed_gflop: f64,
    /// Per-thread busy seconds.
    pub per_thread_seconds: Vec<f64>,
}

/// Predicts the execution of `tl` with the given body model on `threads`
/// virtual threads of `platform`.
pub fn predict(
    platform: &Platform,
    threads: usize,
    tl: &ThreadedLoop,
    body: &BodyModel<'_>,
    dtype: DType,
    useful_flops: f64,
) -> Prediction {
    let capacities: Vec<usize> = platform
        .caches
        .iter()
        .map(|c| if c.shared { (c.size / threads.max(1)).max(1) } else { c.size })
        .collect();
    let mut per_thread_seconds = Vec::with_capacity(threads);
    let mut total_flops = 0.0f64;
    let mut scratch: Vec<Access> = Vec::with_capacity(16);
    for tid in 0..threads {
        let class = platform.class_of(tid);
        let fpc = match dtype {
            DType::Bf16 => class.bf16_flops_per_cycle,
            _ => class.fp32_flops_per_cycle,
        };
        let dram_bpc = platform.dram_bytes_per_cycle_per_thread(threads, tid);
        let mut caches = CacheHierarchy::new(&capacities);
        let trace = tl.plan().simulate_member(tid, threads);
        let mut cycles = 0.0f64;
        for ind in &trace {
            let flops = (body.flops)(ind);
            total_flops += flops;
            scratch.clear();
            (body.accesses)(ind, &mut scratch);
            let mut transfer = 0.0f64;
            for a in &scratch {
                let bw = match caches.access(a.id, a.bytes) {
                    HitLevel::Cache(l) => platform.caches[l].bw_bytes_per_cycle,
                    HitLevel::Memory => dram_bpc,
                };
                transfer += a.bytes as f64 / bw;
            }
            let compute = flops / fpc;
            cycles += compute.max(transfer);
        }
        per_thread_seconds.push(cycles / (class.freq_ghz * 1e9));
    }
    let seconds = per_thread_seconds.iter().cloned().fold(0.0f64, f64::max).max(1e-12);
    Prediction {
        seconds,
        gflops: useful_flops / seconds / 1e9,
        executed_gflop: total_flops / 1e9,
        per_thread_seconds,
    }
}

/// A GEMM problem in model space — mirrors `pl_kernels::Gemm` exactly
/// (same logical loops, same slice identities) without executing anything.
#[derive(Debug, Clone)]
pub struct GemmModelSpec {
    /// Logical sizes.
    pub m: usize,
    /// Columns of C.
    pub n: usize,
    /// Reduction dim.
    pub k: usize,
    /// Block sizes.
    pub bm: usize,
    /// N blocking.
    pub bn: usize,
    /// K blocking.
    pub bk: usize,
    /// K-blocks per BRGEMM.
    pub k_step: usize,
    /// The `loop_spec_string`.
    pub spec: String,
    /// Blocking-step lists for loops a/b/c (block units).
    pub blocks: [Vec<usize>; 3],
    /// Input datatype (drives both peak and operand footprints).
    pub dtype: DType,
}

impl GemmModelSpec {
    /// Total flops.
    pub fn flops(&self) -> f64 {
        2.0 * self.m as f64 * self.n as f64 * self.k as f64
    }

    /// Builds the loop nest of this spec.
    pub fn threaded_loop(&self) -> Result<ThreadedLoop, parlooper::SpecError> {
        let specs = vec![
            parlooper::LoopSpecs::blocked(0, self.k / self.bk, self.k_step, self.blocks[0].clone()),
            parlooper::LoopSpecs::blocked(0, self.m / self.bm, 1, self.blocks[1].clone()),
            parlooper::LoopSpecs::blocked(0, self.n / self.bn, 1, self.blocks[2].clone()),
        ];
        ThreadedLoop::new(&specs, &self.spec)
    }

    /// The body model of Listing 1: `k_step` A and B blocks plus one C
    /// block per invocation.
    pub fn body_model(&self) -> BodyModel<'_> {
        let ds = self.dtype.size_of();
        let cs = 4; // C accumulates in f32
        let (bm, bn, bk, k_step) = (self.bm, self.bn, self.bk, self.k_step);
        let kb = self.k / self.bk;
        let mb = self.m / self.bm;
        let flops = move |ind: &[usize]| {
            let brcount = k_step.min(kb - ind[0]);
            2.0 * bm as f64 * bn as f64 * (bk * brcount) as f64
        };
        let accesses = move |ind: &[usize], out: &mut Vec<Access>| {
            let (ik, im, inn) = (ind[0], ind[1], ind[2]);
            let brcount = k_step.min(kb - ik);
            for j in 0..brcount {
                out.push(Access { id: (0, (im * kb + ik + j) as u64), bytes: bm * bk * ds });
                out.push(Access { id: (1, (inn * kb + ik + j) as u64), bytes: bk * bn * ds });
            }
            out.push(Access { id: (2, (inn * mb + im) as u64), bytes: bm * bn * cs });
        };
        BodyModel { flops: Box::new(flops), accesses: Box::new(accesses) }
    }

    /// Predicts GFLOPS of this spec on a platform.
    pub fn predict(
        &self,
        platform: &Platform,
        threads: usize,
    ) -> Result<Prediction, parlooper::SpecError> {
        let tl = self.threaded_loop()?;
        Ok(predict(platform, threads, &tl, &self.body_model(), self.dtype, self.flops()))
    }
}

/// Ranks candidate `(spec, blocks)` pairs for one GEMM problem by
/// predicted GFLOPS, best first — the model-as-*ranker* API (PolyDL's
/// usage of analytical models: the model orders the candidate space, a
/// measured pass decides among the survivors). `template` fixes the
/// problem (sizes, blockings, `k_step`, dtype); each candidate overrides
/// only `spec`/`blocks`. Candidates the model rejects (infeasible nest)
/// are dropped. Returns `(index into candidates, prediction)` pairs.
pub fn rank_gemm_candidates(
    template: &GemmModelSpec,
    candidates: &[(String, [Vec<usize>; 3])],
    platform: &Platform,
    threads: usize,
) -> Vec<(usize, Prediction)> {
    let mut ranked = Vec::new();
    for (i, (spec, blocks)) in candidates.iter().enumerate() {
        let model =
            GemmModelSpec { spec: spec.clone(), blocks: blocks.clone(), ..template.clone() };
        if let Ok(pred) = model.predict(platform, threads) {
            ranked.push((i, pred));
        }
    }
    ranked.sort_by(|a, b| b.1.gflops.total_cmp(&a.1.gflops));
    ranked
}

/// A direct-convolution problem in model space — mirrors
/// `pl_kernels::ConvForward` (7 logical loops, offset-based BRGEMM body).
#[derive(Debug, Clone)]
pub struct ConvModelSpec {
    /// Minibatch.
    pub n: usize,
    /// Input/output channels.
    pub c: usize,
    /// Output channels.
    pub k: usize,
    /// Spatial input size (square).
    pub hw: usize,
    /// Filter size (square).
    pub rs: usize,
    /// Stride.
    pub stride: usize,
    /// Padding.
    pub pad: usize,
    /// Channel blockings.
    pub bc: usize,
    /// Output channel blocking.
    pub bk: usize,
    /// Output pixels per BRGEMM.
    pub w_step: usize,
    /// The spec string over loops a..g.
    pub spec: String,
    /// Input datatype.
    pub dtype: DType,
}

impl ConvModelSpec {
    /// Output spatial extent.
    pub fn pq(&self) -> usize {
        (self.hw + 2 * self.pad - self.rs) / self.stride + 1
    }

    /// Total conv flops.
    pub fn flops(&self) -> f64 {
        2.0 * (self.n * self.k * self.c * self.pq() * self.pq() * self.rs * self.rs) as f64
    }

    /// Builds the 7-loop nest (full reduction folded per BRGEMM call).
    pub fn threaded_loop(&self) -> Result<ThreadedLoop, parlooper::SpecError> {
        let specs = vec![
            parlooper::LoopSpecs::new(0, self.n, 1),
            parlooper::LoopSpecs::new(0, self.c / self.bc, self.c / self.bc),
            parlooper::LoopSpecs::new(0, self.k / self.bk, 1),
            parlooper::LoopSpecs::new(0, self.pq(), 1),
            parlooper::LoopSpecs::new(0, self.pq(), self.w_step),
            parlooper::LoopSpecs::new(0, self.rs, self.rs),
            parlooper::LoopSpecs::new(0, self.rs, self.rs),
        ];
        ThreadedLoop::new(&specs, &self.spec)
    }

    /// Body model: weight blocks + input rows + one output row segment.
    pub fn body_model(&self) -> BodyModel<'_> {
        let ds = self.dtype.size_of();
        let (bc, bk) = (self.bc, self.bk);
        let cb = self.c / self.bc;
        let (rs, stride, pad, hw) = (self.rs, self.stride, self.pad, self.hw);
        let pq = self.pq();
        let w_step = self.w_step;
        let kb = self.k / self.bk;
        let flops = move |_ind: &[usize]| 2.0 * (bk * w_step * bc * cb * rs * rs) as f64;
        let accesses = move |ind: &[usize], out: &mut Vec<Access>| {
            let (i_n, _ic, ik, ih, iw) = (ind[0], ind[1], ind[2], ind[3], ind[4]);
            // Weight slab for (ik, all c, all r/s).
            out.push(Access { id: (0, ik as u64), bytes: bk * bc * cb * rs * rs * ds });
            // Input rows touched: rs rows of the padded image per channel
            // block; identified by (n, row) at stride granularity.
            let wp = hw + 2 * pad;
            for rr in 0..rs {
                let row = ih * stride + rr;
                out.push(Access {
                    id: (1, ((i_n * cb) as u64) << 32 | row as u64),
                    bytes: wp * bc * cb * ds,
                });
            }
            // Output row segment.
            out.push(Access {
                id: (2, (((i_n * kb + ik) * pq + ih) * pq + iw) as u64),
                bytes: w_step * bk * 4,
            });
        };
        BodyModel { flops: Box::new(flops), accesses: Box::new(accesses) }
    }

    /// Predicts GFLOPS on a platform.
    pub fn predict(
        &self,
        platform: &Platform,
        threads: usize,
    ) -> Result<Prediction, parlooper::SpecError> {
        let tl = self.threaded_loop()?;
        Ok(predict(platform, threads, &tl, &self.body_model(), self.dtype, self.flops()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(spec: &str, m: usize, k_step: usize) -> GemmModelSpec {
        GemmModelSpec {
            m,
            n: m,
            k: m,
            bm: 32,
            bn: 32,
            bk: 32,
            k_step,
            spec: spec.into(),
            blocks: [vec![], vec![], vec![]],
            dtype: DType::F32,
        }
    }

    #[test]
    fn parallel_beats_sequential() {
        let p = Platform::zen4();
        let seq = spec("abc", 512, 1).predict(&p, 16).unwrap();
        let par = spec("aBC", 512, 1).predict(&p, 16).unwrap();
        // Sequential nests replicate on all threads: ~16x slower.
        assert!(par.gflops > 8.0 * seq.gflops, "par {} vs seq {}", par.gflops, seq.gflops);
    }

    #[test]
    fn prediction_under_peak() {
        let p = Platform::zen4();
        let pred = spec("BCa", 1024, 32).predict(&p, 16).unwrap();
        let peak = p.peak_gflops(DType::F32, 16);
        assert!(pred.gflops <= peak + 1.0, "{} > peak {}", pred.gflops, peak);
        assert!(pred.gflops > 0.05 * peak, "unreasonably slow: {}", pred.gflops);
    }

    #[test]
    fn schedules_are_distinguished() {
        // The whole point of the tool: different loop_spec_strings get
        // different scores, all positive, finite and below peak.
        let p = Platform::zen4();
        let preds: Vec<f64> = ["BCa", "aBC", "bcaBC", "CBa"]
            .iter()
            .map(|s| {
                let mut g = spec(s, 512, 4);
                if s.contains("bca") {
                    g.blocks = [vec![], vec![8], vec![8]];
                }
                g.predict(&p, 16).unwrap().gflops
            })
            .collect();
        let peak = p.peak_gflops(DType::F32, 16);
        for &g in &preds {
            assert!(g.is_finite() && g > 0.0 && g <= peak + 1.0, "pred {g}");
        }
        // At least two distinct scores (the model is not constant).
        let min = preds.iter().cloned().fold(f64::MAX, f64::min);
        let max = preds.iter().cloned().fold(0.0f64, f64::max);
        assert!(max / min > 1.001, "model cannot rank schedules: {preds:?}");
    }

    #[test]
    fn bf16_predicts_faster_than_fp32_on_spr() {
        let p = Platform::spr();
        let mut s = spec("BCa", 1024, 8);
        let f32_pred = s.predict(&p, 56).unwrap();
        s.dtype = DType::Bf16;
        let bf16_pred = s.predict(&p, 56).unwrap();
        // AMX peak is 16x; cache-bandwidth-bound reality keeps the modeled
        // gain well below that, but BF16 must clearly win.
        assert!(
            bf16_pred.gflops > 1.5 * f32_pred.gflops,
            "bf16 {} vs f32 {}",
            bf16_pred.gflops,
            f32_pred.gflops
        );
    }

    #[test]
    fn ranker_orders_candidates_and_drops_infeasible() {
        let p = Platform::zen4();
        let template = spec("abc", 512, 1);
        let candidates = vec![
            ("abc".to_string(), [vec![], vec![], vec![]]),
            ("aBC".to_string(), [vec![], vec![], vec![]]),
            ("azq".to_string(), [vec![], vec![], vec![]]), // rejected by the nest builder
        ];
        let ranked = rank_gemm_candidates(&template, &candidates, &p, 16);
        assert_eq!(ranked.len(), 2, "infeasible spec must be dropped");
        // Best-first, and the parallel spec must outrank the sequential one.
        assert_eq!(ranked[0].0, 1);
        assert!(ranked[0].1.gflops >= ranked[1].1.gflops);
    }

    #[test]
    fn imbalance_is_penalized() {
        // 3 M-blocks over 2 threads force one thread to do double work;
        // 4 blocks balance perfectly.
        let p = Platform::zen4();
        let balanced = GemmModelSpec { m: 128, n: 32, bn: 32, ..spec("Bca", 128, 4) };
        let q = balanced.predict(&p, 2).unwrap();
        let spread = q.per_thread_seconds.iter().cloned().fold(0.0f64, f64::max)
            / q.per_thread_seconds.iter().cloned().fold(f64::MAX, f64::min);
        let odd = GemmModelSpec { m: 96, n: 32, bn: 32, ..spec("Bca", 96, 4) };
        let q2 = odd.predict(&p, 2).unwrap();
        let spread2 = q2.per_thread_seconds.iter().cloned().fold(0.0f64, f64::max)
            / q2.per_thread_seconds.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread2 > spread * 1.5, "{spread2} vs {spread}");
    }
}
