//! Coarse roofline estimates for whole layers/models.
//!
//! The per-schedule predictor ([`crate::model`]) is exact about loop
//! schedules but too slow for full 24-layer transformer sweeps; the
//! end-to-end figure harnesses (Figs. 9-11, Tables I-II) use per-layer
//! rooflines: `time = max(flops / (peak * eff), bytes / dram_bw)`.

use crate::platform::Platform;
use pl_tensor::DType;

/// One unit of work (a layer, a kernel call, a token step...).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkItem {
    /// Floating-point operations.
    pub flops: f64,
    /// Bytes moved from/to DRAM (weights + activations not cached).
    pub bytes: f64,
}

impl WorkItem {
    /// Sum of two work items.
    pub fn plus(self, other: WorkItem) -> WorkItem {
        WorkItem { flops: self.flops + other.flops, bytes: self.bytes + other.bytes }
    }

    /// Scaled work item.
    pub fn times(self, k: f64) -> WorkItem {
        WorkItem { flops: self.flops * k, bytes: self.bytes * k }
    }
}

/// Roofline time in seconds for `threads` cores of `platform`.
///
/// `efficiency` is the fraction of compute peak the kernel family reaches
/// (e.g. measured GEMM efficiency); bandwidth uses the full socket figure.
pub fn time_seconds(
    platform: &Platform,
    threads: usize,
    dtype: DType,
    item: WorkItem,
    efficiency: f64,
) -> f64 {
    let peak = platform.peak_gflops(dtype, threads) * 1e9 * efficiency.clamp(0.01, 1.0);
    let bw = platform.dram_gbs * 1e9;
    (item.flops / peak).max(item.bytes / bw)
}

/// Whether the item is compute-bound on this configuration.
pub fn compute_bound(
    platform: &Platform,
    threads: usize,
    dtype: DType,
    item: WorkItem,
    efficiency: f64,
) -> bool {
    let peak = platform.peak_gflops(dtype, threads) * 1e9 * efficiency.clamp(0.01, 1.0);
    let bw = platform.dram_gbs * 1e9;
    item.flops / peak >= item.bytes / bw
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_vs_memory_bound_regimes() {
        let p = Platform::spr();
        // Huge-flops tiny-bytes: compute bound.
        let cb = WorkItem { flops: 1e12, bytes: 1e6 };
        assert!(compute_bound(&p, 56, DType::F32, cb, 0.8));
        // Tiny-flops huge-bytes: memory bound (LLM next-token regime).
        let mb = WorkItem { flops: 1e9, bytes: 1e11 };
        assert!(!compute_bound(&p, 56, DType::Bf16, mb, 0.8));
    }

    #[test]
    fn bf16_helps_compute_bound_not_memory_bound() {
        let p = Platform::spr();
        let cb = WorkItem { flops: 1e13, bytes: 1e8 };
        let t_f32 = time_seconds(&p, 56, DType::F32, cb, 0.8);
        let t_bf16 = time_seconds(&p, 56, DType::Bf16, cb, 0.8);
        assert!(t_f32 / t_bf16 > 4.0, "compute-bound speedup {}", t_f32 / t_bf16);

        // Memory bound: same bytes, same time (bf16 halves *bytes* in
        // practice; the caller models that by shrinking `bytes`).
        let mb = WorkItem { flops: 1e9, bytes: 1e11 };
        let m_f32 = time_seconds(&p, 56, DType::F32, mb, 0.8);
        let m_bf16 = time_seconds(&p, 56, DType::Bf16, mb, 0.8);
        assert!((m_f32 - m_bf16).abs() / m_f32 < 1e-9);
    }

    #[test]
    fn work_item_algebra() {
        let a = WorkItem { flops: 1.0, bytes: 2.0 };
        let b = WorkItem { flops: 3.0, bytes: 4.0 };
        assert_eq!(a.plus(b), WorkItem { flops: 4.0, bytes: 6.0 });
        assert_eq!(a.times(2.0), WorkItem { flops: 2.0, bytes: 4.0 });
    }
}
