//! Distributed-training strong-scaling projection (Table I).
//!
//! The MLPerf BERT submissions of the paper run on 8/16 SPR nodes; without
//! a cluster we project the time-to-train from a single-socket throughput
//! with a simple compute + allreduce model:
//! `t(nodes) = work / (nodes * sockets * throughput) + comm * log2(nodes)`
//! — a standard ring/tree-allreduce cost shape.

/// Strong-scaling model parameters.
#[derive(Debug, Clone, Copy)]
pub struct ScalingModel {
    /// Total training work in socket-minutes (single-socket time).
    pub work_socket_minutes: f64,
    /// Sockets per node.
    pub sockets_per_node: usize,
    /// Allreduce/communication minutes per log2(nodes) step.
    pub comm_minutes_per_hop: f64,
}

impl ScalingModel {
    /// Projected time-to-train in minutes on `nodes` nodes.
    pub fn time_to_train(&self, nodes: usize) -> f64 {
        let n = nodes.max(1) as f64;
        self.work_socket_minutes / (n * self.sockets_per_node as f64)
            + self.comm_minutes_per_hop * n.log2()
    }

    /// Parallel efficiency going from `a` to `b` nodes.
    pub fn scaling_efficiency(&self, a: usize, b: usize) -> f64 {
        let ta = self.time_to_train(a);
        let tb = self.time_to_train(b);
        (ta / tb) / (b as f64 / a as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_nodes_is_faster_but_sublinear() {
        let m = ScalingModel {
            work_socket_minutes: 1292.0,
            sockets_per_node: 2,
            comm_minutes_per_hop: 1.7,
        };
        let t8 = m.time_to_train(8);
        let t16 = m.time_to_train(16);
        assert!(t16 < t8);
        let eff = m.scaling_efficiency(8, 16);
        assert!(eff > 0.5 && eff < 1.0, "efficiency {eff}");
    }

    #[test]
    fn paper_ratio_shape() {
        // Calibrated to the paper's Table I: 85.91 min on 8 nodes,
        // 47.26 min on 16 (ratio ~1.82).
        let m = ScalingModel {
            work_socket_minutes: 1292.0,
            sockets_per_node: 2,
            comm_minutes_per_hop: 1.72,
        };
        let ratio = m.time_to_train(8) / m.time_to_train(16);
        assert!((ratio - 1.82).abs() < 0.15, "ratio {ratio}");
    }
}
