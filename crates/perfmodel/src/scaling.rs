//! Distributed-training strong-scaling projection (Table I).
//!
//! The MLPerf BERT submissions of the paper run on 8/16 SPR nodes; without
//! a cluster we project the time-to-train from a single-socket throughput
//! with a simple compute + allreduce model:
//! `t(nodes) = work / (nodes * sockets * throughput) + comm * log2(nodes)`
//! — a standard ring/tree-allreduce cost shape.

/// Strong-scaling model parameters.
#[derive(Debug, Clone, Copy)]
pub struct ScalingModel {
    /// Total training work in socket-minutes (single-socket time).
    pub work_socket_minutes: f64,
    /// Sockets per node.
    pub sockets_per_node: usize,
    /// Allreduce/communication minutes per log2(nodes) step.
    pub comm_minutes_per_hop: f64,
}

impl ScalingModel {
    /// Projected time-to-train in minutes on `nodes` nodes.
    pub fn time_to_train(&self, nodes: usize) -> f64 {
        let n = nodes.max(1) as f64;
        self.work_socket_minutes / (n * self.sockets_per_node as f64)
            + self.comm_minutes_per_hop * n.log2()
    }

    /// Parallel efficiency going from `a` to `b` nodes.
    pub fn scaling_efficiency(&self, a: usize, b: usize) -> f64 {
        let ta = self.time_to_train(a);
        let tb = self.time_to_train(b);
        (ta / tb) / (b as f64 / a as f64)
    }

    /// Projected **throughput speedup** of `n` units over a single one:
    /// `t(1) / t(n)`. The same compute + log2-hop-communication shape that
    /// projects Table I's time-to-train also projects a sharded serving
    /// tier — "units" are then `Server` shards and the hop term is routing
    /// /aggregation overhead — so a router can print the model's projected
    /// multi-shard steps/s next to the measured value.
    pub fn projected_speedup(&self, n: usize) -> f64 {
        self.time_to_train(1) / self.time_to_train(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_nodes_is_faster_but_sublinear() {
        let m = ScalingModel {
            work_socket_minutes: 1292.0,
            sockets_per_node: 2,
            comm_minutes_per_hop: 1.7,
        };
        let t8 = m.time_to_train(8);
        let t16 = m.time_to_train(16);
        assert!(t16 < t8);
        let eff = m.scaling_efficiency(8, 16);
        assert!(eff > 0.5 && eff < 1.0, "efficiency {eff}");
    }

    #[test]
    fn projected_speedup_is_sublinear_and_monotonic() {
        let m = ScalingModel {
            work_socket_minutes: 1.0,
            sockets_per_node: 1,
            comm_minutes_per_hop: 0.02,
        };
        assert!((m.projected_speedup(1) - 1.0).abs() < 1e-12);
        let s2 = m.projected_speedup(2);
        let s4 = m.projected_speedup(4);
        assert!(s2 > 1.0 && s2 < 2.0, "s2 {s2}");
        assert!(s4 > s2 && s4 < 4.0, "s4 {s4}");
        // Zero communication cost degenerates to perfectly linear scaling.
        let ideal = ScalingModel { comm_minutes_per_hop: 0.0, ..m };
        assert!((ideal.projected_speedup(4) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn paper_ratio_shape() {
        // Calibrated to the paper's Table I: 85.91 min on 8 nodes,
        // 47.26 min on 16 (ratio ~1.82).
        let m = ScalingModel {
            work_socket_minutes: 1292.0,
            sockets_per_node: 2,
            comm_minutes_per_hop: 1.72,
        };
        let ratio = m.time_to_train(8) / m.time_to_train(16);
        assert!((ratio - 1.82).abs() < 0.15, "ratio {ratio}");
    }
}
