//! Platform descriptions of the paper's evaluation machines (§V).
//!
//! Each description carries per-core compute peaks per datatype, up to
//! three cache levels (size + bandwidth) and the DRAM bandwidth — exactly
//! the "few parameters modeling the target CPU" the performance-modeling
//! tool of §II-E consumes. The numbers are published figures (ISA width x
//! FMA pipes x frequency; memory channels x transfer rate); we reproduce
//! performance *shapes*, not the authors' exact measurements.

use pl_tensor::DType;

/// One cache level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheLevel {
    /// Capacity in bytes (per core for private levels, total for shared).
    pub size: usize,
    /// Bandwidth in bytes/cycle/core.
    pub bw_bytes_per_cycle: f64,
    /// Shared across cores (capacity is divided among threads in the
    /// per-thread simulation, matching the paper's simplification).
    pub shared: bool,
}

/// A class of cores (homogeneous platforms have one; ADL has P + E).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreClass {
    /// Number of cores of this class.
    pub count: usize,
    /// Sustained all-core frequency in GHz.
    pub freq_ghz: f64,
    /// FP32 flops/cycle/core (FMA counted as 2).
    pub fp32_flops_per_cycle: f64,
    /// BF16 flops/cycle/core (AMX / MMLA / AVX512-BF16 accelerated).
    pub bf16_flops_per_cycle: f64,
}

/// A modeled CPU platform.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    /// Short name used in benchmark output.
    pub name: &'static str,
    /// Core classes (fastest first).
    pub cores: Vec<CoreClass>,
    /// Cache hierarchy, L1 first (up to 3 levels, paper §II-E).
    pub caches: Vec<CacheLevel>,
    /// Socket DRAM bandwidth in GB/s.
    pub dram_gbs: f64,
}

impl Platform {
    /// Intel Xeon 8480+ "Sapphire Rapids", one socket: 56 Golden Cove
    /// cores, AVX-512 + AMX, 8ch DDR5-4800.
    pub fn spr() -> Self {
        Platform {
            name: "SPR",
            cores: vec![CoreClass {
                count: 56,
                freq_ghz: 2.0,
                fp32_flops_per_cycle: 64.0,   // 2x 512-bit FMA
                bf16_flops_per_cycle: 1024.0, // AMX: 16x FP32 (paper §V-A1)
            }],
            caches: vec![
                CacheLevel { size: 48 << 10, bw_bytes_per_cycle: 128.0, shared: false },
                CacheLevel { size: 2 << 20, bw_bytes_per_cycle: 64.0, shared: false },
                CacheLevel { size: 105 << 20, bw_bytes_per_cycle: 16.0, shared: true },
            ],
            dram_gbs: 307.0, // 8 x DDR5-4800
        }
    }

    /// AWS Graviton 3: 64 Neoverse V1 cores, SVE256 + BF16 MMLA,
    /// 8ch DDR5-4800.
    pub fn gvt3() -> Self {
        Platform {
            name: "GVT3",
            cores: vec![CoreClass {
                count: 64,
                freq_ghz: 2.6,
                fp32_flops_per_cycle: 32.0,  // 2x 256-bit SVE FMA
                bf16_flops_per_cycle: 110.0, // MMLA: ~3.4x FP32 (paper: 3.43x)
            }],
            caches: vec![
                CacheLevel { size: 64 << 10, bw_bytes_per_cycle: 96.0, shared: false },
                CacheLevel { size: 1 << 20, bw_bytes_per_cycle: 48.0, shared: false },
                CacheLevel { size: 32 << 20, bw_bytes_per_cycle: 12.0, shared: true },
            ],
            dram_gbs: 307.0,
        }
    }

    /// AMD Ryzen 9 7950X "Zen 4": 16 cores, AVX-512 (double-pumped) with
    /// AVX512-BF16, 2ch DDR5-6000.
    pub fn zen4() -> Self {
        Platform {
            name: "Zen4",
            cores: vec![CoreClass {
                count: 16,
                freq_ghz: 4.5,
                fp32_flops_per_cycle: 32.0, // 2x 256-bit FMA datapaths
                bf16_flops_per_cycle: 64.0, // AVX512-BF16: 2x (paper: 2x)
            }],
            caches: vec![
                CacheLevel { size: 32 << 10, bw_bytes_per_cycle: 96.0, shared: false },
                CacheLevel { size: 1 << 20, bw_bytes_per_cycle: 48.0, shared: false },
                CacheLevel { size: 64 << 20, bw_bytes_per_cycle: 14.0, shared: true },
            ],
            dram_gbs: 96.0, // 2 x DDR5-6000
        }
    }

    /// Intel i9-12900K "Alder Lake": 8 P-cores + 8 E-cores (hybrid),
    /// AVX2 only (AVX-512 fused off), 2ch DDR5-5600.
    pub fn adl() -> Self {
        Platform {
            name: "ADL",
            cores: vec![
                CoreClass {
                    count: 8,
                    freq_ghz: 4.9,
                    fp32_flops_per_cycle: 32.0, // 2x 256-bit FMA
                    bf16_flops_per_cycle: 32.0, // no BF16 HW (paper runs FP32)
                },
                CoreClass {
                    count: 8,
                    freq_ghz: 3.7,
                    fp32_flops_per_cycle: 16.0, // Gracemont: narrower
                    bf16_flops_per_cycle: 16.0,
                },
            ],
            caches: vec![
                CacheLevel { size: 48 << 10, bw_bytes_per_cycle: 96.0, shared: false },
                CacheLevel { size: 1280 << 10, bw_bytes_per_cycle: 48.0, shared: false },
                CacheLevel { size: 30 << 20, bw_bytes_per_cycle: 12.0, shared: true },
            ],
            dram_gbs: 89.6, // 2 x DDR5-5600
        }
    }

    /// AWS c5.4xlarge (Xeon Platinum 8223CL, Cascade Lake): the Mojo
    /// comparison platform (Fig. 5), 8 cores used.
    pub fn xeon_8223() -> Self {
        Platform {
            name: "Xeon-8223CL",
            cores: vec![CoreClass {
                count: 8,
                freq_ghz: 3.0,
                fp32_flops_per_cycle: 64.0, // 2x 512-bit FMA
                bf16_flops_per_cycle: 64.0, // no BF16 HW
            }],
            caches: vec![
                CacheLevel { size: 32 << 10, bw_bytes_per_cycle: 128.0, shared: false },
                CacheLevel { size: 1 << 20, bw_bytes_per_cycle: 64.0, shared: false },
                CacheLevel { size: 25 << 20, bw_bytes_per_cycle: 12.0, shared: true },
            ],
            dram_gbs: 90.0,
        }
    }

    /// AWS c5.12xlarge (Xeon Platinum 8275CL): the DeepSparse comparison
    /// platform (Fig. 10 right), 24 cores.
    pub fn xeon_8275() -> Self {
        Platform {
            name: "Xeon-8275CL",
            cores: vec![CoreClass {
                count: 24,
                freq_ghz: 3.0,
                fp32_flops_per_cycle: 64.0,
                bf16_flops_per_cycle: 64.0,
            }],
            caches: vec![
                CacheLevel { size: 32 << 10, bw_bytes_per_cycle: 128.0, shared: false },
                CacheLevel { size: 1 << 20, bw_bytes_per_cycle: 64.0, shared: false },
                CacheLevel { size: 35 << 20, bw_bytes_per_cycle: 12.0, shared: true },
            ],
            dram_gbs: 120.0,
        }
    }

    /// A description of the machine the test-suite runs on: generic x86
    /// with AVX2-class width. Used by Fig. 6 to correlate model vs host
    /// measurements.
    pub fn generic_host(cores: usize) -> Self {
        Platform {
            name: "host",
            cores: vec![CoreClass {
                count: cores.max(1),
                freq_ghz: 3.0,
                fp32_flops_per_cycle: 32.0,
                bf16_flops_per_cycle: 8.0, // software widening, no HW
            }],
            caches: vec![
                CacheLevel { size: 32 << 10, bw_bytes_per_cycle: 96.0, shared: false },
                CacheLevel { size: 1 << 20, bw_bytes_per_cycle: 48.0, shared: false },
                CacheLevel { size: 16 << 20, bw_bytes_per_cycle: 12.0, shared: true },
            ],
            dram_gbs: 40.0,
        }
    }

    /// All evaluation platforms of the paper.
    pub fn all_eval() -> Vec<Platform> {
        vec![Self::spr(), Self::gvt3(), Self::zen4(), Self::adl()]
    }

    /// Total core count.
    pub fn total_cores(&self) -> usize {
        self.cores.iter().map(|c| c.count).sum()
    }

    /// The core class executing virtual thread `tid` (threads fill classes
    /// in order, the scheduler pinning fast cores first).
    pub fn class_of(&self, tid: usize) -> &CoreClass {
        let mut t = tid;
        for c in &self.cores {
            if t < c.count {
                return c;
            }
            t -= c.count;
        }
        self.cores.last().expect("platform without cores")
    }

    /// Peak GFLOPS of `threads` cores for the datatype.
    pub fn peak_gflops(&self, dtype: DType, threads: usize) -> f64 {
        let mut total = 0.0;
        let mut remaining = threads;
        for c in &self.cores {
            let used = remaining.min(c.count);
            let per_core = match dtype {
                DType::Bf16 => c.bf16_flops_per_cycle,
                _ => c.fp32_flops_per_cycle,
            };
            total += used as f64 * per_core * c.freq_ghz;
            remaining -= used;
            if remaining == 0 {
                break;
            }
        }
        total
    }

    /// DRAM bandwidth available per participating thread, bytes/cycle,
    /// relative to that thread's frequency.
    pub fn dram_bytes_per_cycle_per_thread(&self, threads: usize, tid: usize) -> f64 {
        let freq = self.class_of(tid).freq_ghz;
        (self.dram_gbs / threads.max(1) as f64) / freq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spr_amx_ratio_matches_paper() {
        let spr = Platform::spr();
        let fp32 = spr.peak_gflops(DType::F32, 56);
        let bf16 = spr.peak_gflops(DType::Bf16, 56);
        // "AMX ... up to 16x more peak flops than the FP32 execution".
        assert!((bf16 / fp32 - 16.0).abs() < 0.01);
        // ~7.2 TF FP32 on one socket.
        assert!((fp32 - 7168.0).abs() < 1.0);
    }

    #[test]
    fn gvt3_mmla_speedup_band() {
        let g = Platform::gvt3();
        let r = g.peak_gflops(DType::Bf16, 64) / g.peak_gflops(DType::F32, 64);
        // Paper reports up to 3.43x for BF16-MMLA over FP32 SVE256.
        assert!(r > 3.0 && r < 3.6, "ratio {r}");
    }

    #[test]
    fn zen4_bf16_is_2x() {
        let z = Platform::zen4();
        let r = z.peak_gflops(DType::Bf16, 16) / z.peak_gflops(DType::F32, 16);
        assert!((r - 2.0).abs() < 0.01);
    }

    #[test]
    fn adl_is_heterogeneous() {
        let a = Platform::adl();
        assert_eq!(a.total_cores(), 16);
        assert!(a.class_of(0).freq_ghz > a.class_of(8).freq_ghz);
        // P-core peak > E-core peak.
        assert!(a.class_of(0).fp32_flops_per_cycle > a.class_of(15).fp32_flops_per_cycle);
    }

    #[test]
    fn platform_ranking_matches_paper_fig3() {
        // SPR >> GVT3 > Zen4 in BF16 peak (paper: SPR up to 3.3x GVT3 and
        // 6.6x Zen4 on MLP).
        let spr = Platform::spr().peak_gflops(DType::Bf16, 56);
        let gvt = Platform::gvt3().peak_gflops(DType::Bf16, 64);
        let zen = Platform::zen4().peak_gflops(DType::Bf16, 16);
        assert!(spr > 2.0 * gvt);
        assert!(gvt > 2.0 * zen);
    }

    #[test]
    fn dram_share_scales_down_with_threads() {
        let p = Platform::spr();
        assert!(p.dram_bytes_per_cycle_per_thread(56, 0) < p.dram_bytes_per_cycle_per_thread(1, 0));
    }
}
