//! # pl-perfmodel — the high-level loop/tensor performance model
//!
//! Reproduces the paper's "lightweight, high-level performance modeling
//! tool" (§II-E) used for offline, cross-architecture loop tuning, and the
//! platform descriptions of the evaluation machines (§V):
//!
//! * [`platform`] — SPR / GVT3 / Zen4 / ADL / Xeon-CLX descriptions
//!   (per-core peaks per dtype, 3 cache levels, DRAM bandwidth).
//! * [`cachesim`] — tensor-slice-granular multi-level LRU simulation.
//! * [`model`] — per-thread trace replay + BRGEMM cycle prediction +
//!   schedule scoring ([`model::GemmModelSpec`]).
//! * [`roofline`] — coarse per-layer estimates for end-to-end workloads.
//! * [`scaling`] — multi-node strong-scaling projection (Table I).

pub mod cachesim;
pub mod model;
pub mod platform;
pub mod roofline;
pub mod scaling;

pub use cachesim::{CacheHierarchy, HitLevel, SliceId};
pub use model::{
    predict, rank_gemm_candidates, Access, BodyModel, ConvModelSpec, GemmModelSpec, Prediction,
};
pub use platform::{CacheLevel, CoreClass, Platform};
pub use roofline::WorkItem;
pub use scaling::ScalingModel;
