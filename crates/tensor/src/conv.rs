//! Blocked convolution tensors (paper Listing 4).
//!
//! * Activations: `[N][Cb][H][W][bc]` — feature maps blocked by `bc`, the
//!   block being the innermost (contiguous) dimension.
//! * Weights: `[Kb][Cb][R][S][bc][bk]` — input features outer-of-innermost,
//!   output features innermost, so each `(kb, cb, r, s)` sub-tensor is a
//!   `bk x bc` column-major matrix directly usable as the BRGEMM `A` block.
//! * Outputs: `[N][Kb][P][Q][bk]`.
//!
//! Spatial padding is *physical*: the activation buffer is allocated with
//! `H + 2*pad_h` rows so the compute kernel indexes `ih*stride + ir` without
//! any branch, exactly as in the paper's listing.

use crate::buffer::AlignedVec;
use crate::dtype::Element;
use crate::{check_block, TensorError};

/// Full description of a 2-D convolution problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvShape {
    /// Minibatch.
    pub n: usize,
    /// Input feature maps.
    pub c: usize,
    /// Output feature maps.
    pub k: usize,
    /// Input spatial height/width (unpadded).
    pub h: usize,
    /// Input spatial width (unpadded).
    pub w: usize,
    /// Filter height.
    pub r: usize,
    /// Filter width.
    pub s: usize,
    /// Spatial stride (same in both dims).
    pub stride: usize,
    /// Spatial zero padding (same in both dims).
    pub pad: usize,
    /// Input feature blocking.
    pub bc: usize,
    /// Output feature blocking.
    pub bk: usize,
}

impl ConvShape {
    /// Output height `P`.
    pub fn p(&self) -> usize {
        (self.h + 2 * self.pad - self.r) / self.stride + 1
    }

    /// Output width `Q`.
    pub fn q(&self) -> usize {
        (self.w + 2 * self.pad - self.s) / self.stride + 1
    }

    /// Number of input feature blocks.
    pub fn cb(&self) -> usize {
        self.c / self.bc
    }

    /// Number of output feature blocks.
    pub fn kb(&self) -> usize {
        self.k / self.bk
    }

    /// Multiply-add count x2 of the forward pass.
    pub fn flops(&self) -> u64 {
        2 * self.n as u64
            * self.k as u64
            * self.c as u64
            * self.p() as u64
            * self.q() as u64
            * self.r as u64
            * self.s as u64
    }

    /// Validates divisibility constraints.
    pub fn validate(&self) -> Result<(), TensorError> {
        check_block("C", self.c, self.bc)?;
        check_block("K", self.k, self.bk)?;
        if self.n == 0 || self.h == 0 || self.w == 0 || self.r == 0 || self.s == 0 {
            return Err(TensorError::ZeroDim("conv spatial"));
        }
        if self.stride == 0 {
            return Err(TensorError::ZeroDim("stride"));
        }
        Ok(())
    }
}

/// Blocked activation tensor `[N][Cb][Hp][Wp][bc]` with physical padding.
#[derive(Debug)]
pub struct ActTensor<T> {
    data: AlignedVec<T>,
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    bc: usize,
    pad: usize,
}

impl<T: Element> ActTensor<T> {
    /// Zeroed activation tensor; `pad` rows/cols of physical zero padding.
    pub fn new(
        n: usize,
        c: usize,
        h: usize,
        w: usize,
        bc: usize,
        pad: usize,
    ) -> Result<Self, TensorError> {
        check_block("C", c, bc)?;
        if n == 0 || h == 0 || w == 0 {
            return Err(TensorError::ZeroDim("activation"));
        }
        let (hp, wp) = (h + 2 * pad, w + 2 * pad);
        Ok(ActTensor { data: AlignedVec::zeroed(n * c * hp * wp), n, c, h, w, bc, pad })
    }

    /// Minibatch extent.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Feature map extent.
    pub fn c(&self) -> usize {
        self.c
    }

    /// Unpadded height.
    pub fn h(&self) -> usize {
        self.h
    }

    /// Unpadded width.
    pub fn w(&self) -> usize {
        self.w
    }

    /// Feature blocking.
    pub fn bc(&self) -> usize {
        self.bc
    }

    /// Physical padding.
    pub fn pad(&self) -> usize {
        self.pad
    }

    /// Padded height.
    #[inline(always)]
    pub fn hp(&self) -> usize {
        self.h + 2 * self.pad
    }

    /// Padded width.
    #[inline(always)]
    pub fn wp(&self) -> usize {
        self.w + 2 * self.pad
    }

    /// Flat offset of the `bc`-vector at `(n, cb, y, x)` in *padded*
    /// coordinates (`y in 0..hp`, `x in 0..wp`).
    #[inline(always)]
    pub fn offset_padded(&self, ni: usize, cb: usize, y: usize, x: usize) -> usize {
        debug_assert!(ni < self.n && cb < self.c / self.bc && y < self.hp() && x < self.wp());
        (((ni * (self.c / self.bc) + cb) * self.hp() + y) * self.wp() + x) * self.bc
    }

    /// Read logical element `(n, ch, y, x)` in unpadded coordinates.
    #[inline(always)]
    pub fn get(&self, ni: usize, ch: usize, y: usize, x: usize) -> T {
        let off = self.offset_padded(ni, ch / self.bc, y + self.pad, x + self.pad) + ch % self.bc;
        self.data[off]
    }

    /// Write logical element `(n, ch, y, x)` in unpadded coordinates.
    #[inline(always)]
    pub fn set(&mut self, ni: usize, ch: usize, y: usize, x: usize, v: T) {
        let off = self.offset_padded(ni, ch / self.bc, y + self.pad, x + self.pad) + ch % self.bc;
        self.data[off] = v;
    }

    /// Backing buffer (padded).
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Mutable backing buffer (padded). Writing into the halo breaks the
    /// zero-padding invariant; use [`Self::clear_padding`] to restore it.
    pub fn data_mut(&mut self) -> &mut [T] {
        self.data.as_mut_slice()
    }

    /// Re-zeroes the padding halo (needed after whole-buffer writes).
    pub fn clear_padding(&mut self) {
        if self.pad == 0 {
            return;
        }
        let (hp, wp, bc, pad) = (self.hp(), self.wp(), self.bc, self.pad);
        let cb = self.c / bc;
        for ni in 0..self.n {
            for cbi in 0..cb {
                for y in 0..hp {
                    for x in 0..wp {
                        if y < pad || y >= hp - pad || x < pad || x >= wp - pad {
                            let off = self.offset_padded(ni, cbi, y, x);
                            self.data.as_mut_slice()[off..off + bc]
                                .iter_mut()
                                .for_each(|v| *v = T::default());
                        }
                    }
                }
            }
        }
    }

    /// Builds from a closure over logical `(n, ch, y, x)`.
    pub fn from_fn(
        n: usize,
        c: usize,
        h: usize,
        w: usize,
        bc: usize,
        pad: usize,
        mut f: impl FnMut(usize, usize, usize, usize) -> f32,
    ) -> Result<Self, TensorError> {
        let mut t = Self::new(n, c, h, w, bc, pad)?;
        for ni in 0..n {
            for ch in 0..c {
                for y in 0..h {
                    for x in 0..w {
                        t.set(ni, ch, y, x, T::from_f32(f(ni, ch, y, x)));
                    }
                }
            }
        }
        Ok(t)
    }
}

/// Blocked convolution weights `[Kb][Cb][R][S][bc][bk]`.
#[derive(Debug)]
pub struct ConvWeights<T> {
    data: AlignedVec<T>,
    c: usize,
    k: usize,
    r: usize,
    s: usize,
    bc: usize,
    bk: usize,
}

impl<T: Element> ConvWeights<T> {
    /// Zeroed weight tensor.
    pub fn new(
        c: usize,
        k: usize,
        r: usize,
        s: usize,
        bc: usize,
        bk: usize,
    ) -> Result<Self, TensorError> {
        check_block("C", c, bc)?;
        check_block("K", k, bk)?;
        if r == 0 || s == 0 {
            return Err(TensorError::ZeroDim("filter"));
        }
        Ok(ConvWeights { data: AlignedVec::zeroed(c * k * r * s), c, k, r, s, bc, bk })
    }

    /// Input feature extent.
    pub fn c(&self) -> usize {
        self.c
    }

    /// Output feature extent.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Filter height.
    pub fn r(&self) -> usize {
        self.r
    }

    /// Filter width.
    pub fn s(&self) -> usize {
        self.s
    }

    /// Input feature blocking.
    pub fn bc(&self) -> usize {
        self.bc
    }

    /// Output feature blocking.
    pub fn bk(&self) -> usize {
        self.bk
    }

    /// Flat offset of the `bc*bk` sub-matrix at `(kb, cb, r, s)`; within it,
    /// element `(ci, ki)` lives at `ci*bk + ki` — a `bk x bc` column-major
    /// matrix, the BRGEMM `A` block of Listing 4.
    #[inline(always)]
    pub fn block_offset(&self, kb: usize, cb: usize, ri: usize, si: usize) -> usize {
        debug_assert!(kb < self.k / self.bk && cb < self.c / self.bc && ri < self.r && si < self.s);
        (((kb * (self.c / self.bc) + cb) * self.r + ri) * self.s + si) * self.bc * self.bk
    }

    /// Read logical element `(ch_in, ch_out, r, s)`.
    #[inline(always)]
    pub fn get(&self, ci: usize, ko: usize, ri: usize, si: usize) -> T {
        let off = self.block_offset(ko / self.bk, ci / self.bc, ri, si)
            + (ci % self.bc) * self.bk
            + ko % self.bk;
        self.data[off]
    }

    /// Write logical element `(ch_in, ch_out, r, s)`.
    #[inline(always)]
    pub fn set(&mut self, ci: usize, ko: usize, ri: usize, si: usize, v: T) {
        let off = self.block_offset(ko / self.bk, ci / self.bc, ri, si)
            + (ci % self.bc) * self.bk
            + ko % self.bk;
        self.data[off] = v;
    }

    /// Backing buffer.
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Mutable backing buffer.
    pub fn data_mut(&mut self) -> &mut [T] {
        self.data.as_mut_slice()
    }

    /// Builds from a closure over `(ch_in, ch_out, r, s)`.
    pub fn from_fn(
        c: usize,
        k: usize,
        r: usize,
        s: usize,
        bc: usize,
        bk: usize,
        mut f: impl FnMut(usize, usize, usize, usize) -> f32,
    ) -> Result<Self, TensorError> {
        let mut t = Self::new(c, k, r, s, bc, bk)?;
        for ci in 0..c {
            for ko in 0..k {
                for ri in 0..r {
                    for si in 0..s {
                        t.set(ci, ko, ri, si, T::from_f32(f(ci, ko, ri, si)));
                    }
                }
            }
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shape_output_dims() {
        // ResNet-50 first conv: 224x224, 7x7/s2/p3 -> 112x112.
        let s = ConvShape {
            n: 1,
            c: 4,
            k: 64,
            h: 224,
            w: 224,
            r: 7,
            s: 7,
            stride: 2,
            pad: 3,
            bc: 4,
            bk: 64,
        };
        assert_eq!(s.p(), 112);
        assert_eq!(s.q(), 112);
        s.validate().unwrap();
    }

    #[test]
    fn act_padding_is_zero_and_indexing_consistent() {
        let t = ActTensor::<f32>::from_fn(2, 8, 4, 4, 4, 1, |n, c, y, x| {
            (n * 1000 + c * 100 + y * 10 + x) as f32
        })
        .unwrap();
        assert_eq!(t.get(1, 5, 2, 3), 1523.0);
        // Halo around the image is zero: padded coordinate (0,0) is halo.
        assert_eq!(t.data()[t.offset_padded(0, 0, 0, 0)], 0.0);
        assert_eq!(t.hp(), 6);
        assert_eq!(t.wp(), 6);
    }

    #[test]
    fn act_padded_vs_logical_coordinates() {
        let mut t = ActTensor::<f32>::new(1, 4, 2, 2, 4, 1).unwrap();
        t.set(0, 0, 0, 0, 5.0);
        // Logical (0,0) is padded (1,1).
        let off = t.offset_padded(0, 0, 1, 1);
        assert_eq!(t.data()[off], 5.0);
    }

    #[test]
    fn weight_block_is_bk_x_bc_colmajor() {
        let w = ConvWeights::<f32>::from_fn(4, 6, 3, 3, 2, 3, |ci, ko, r, s| {
            (ci * 1000 + ko * 100 + r * 10 + s) as f32
        })
        .unwrap();
        // Element (ci=3, ko=4, r=1, s=2): block (kb=1, cb=1), inner (ci%2=1, ko%3=1)
        // -> offset block + 1*3 + 1.
        let off = w.block_offset(1, 1, 1, 2) + 3 + 1; // inner (1, 1) at ld 3
        assert_eq!(w.data()[off], 3412.0);
        assert_eq!(w.get(3, 4, 1, 2), 3412.0);
    }

    #[test]
    fn clear_padding_restores_halo() {
        let mut t = ActTensor::<f32>::new(1, 4, 2, 2, 4, 1).unwrap();
        t.data_mut().iter_mut().for_each(|v| *v = 1.0);
        t.clear_padding();
        // Interior survives...
        assert_eq!(t.get(0, 0, 0, 0), 1.0);
        // ...halo is zero again.
        assert_eq!(t.data()[t.offset_padded(0, 0, 0, 0)], 0.0);
        let hp = t.hp();
        let wp = t.wp();
        assert_eq!(t.data()[t.offset_padded(0, 0, hp - 1, wp - 1)], 0.0);
    }

    #[test]
    fn rejects_invalid_shapes() {
        assert!(ActTensor::<f32>::new(1, 5, 4, 4, 4, 0).is_err());
        assert!(ConvWeights::<f32>::new(4, 5, 3, 3, 4, 4).is_err());
        let bad =
            ConvShape { n: 1, c: 4, k: 4, h: 4, w: 4, r: 3, s: 3, stride: 0, pad: 1, bc: 4, bk: 4 };
        assert!(bad.validate().is_err());
    }
}

impl<T: Element> Clone for ActTensor<T> {
    fn clone(&self) -> Self {
        ActTensor {
            data: self.data.clone(),
            n: self.n,
            c: self.c,
            h: self.h,
            w: self.w,
            bc: self.bc,
            pad: self.pad,
        }
    }
}

impl<T: Element> Clone for ConvWeights<T> {
    fn clone(&self) -> Self {
        ConvWeights {
            data: self.data.clone(),
            c: self.c,
            k: self.k,
            r: self.r,
            s: self.s,
            bc: self.bc,
            bk: self.bk,
        }
    }
}
