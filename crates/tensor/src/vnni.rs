//! Flat VNNI-packed matrices (paper Listing 5, lines 3-4).
//!
//! The Block-SpMM kernel keeps its dense operands `B` and `C` in a flat
//! VNNI-packed layout `[Nb][rows/v][bn][v]`: the column dimension is blocked
//! by `bn`, and `v` consecutive *rows* (the reduction dimension for `B`, the
//! `M` dimension for `C`) are interleaved so that low-precision FMA
//! sequences (AVX512-BF16 `VDPBF16PS`, AMX tiles, SVE BFMMLA) can consume
//! them directly.

use crate::buffer::AlignedVec;
use crate::dtype::Element;
use crate::{check_block, TensorError};

/// A flat `rows x cols` matrix packed as `[Nb][rows/v][bn][v]`.
#[derive(Debug)]
pub struct VnniMatrix<T> {
    data: AlignedVec<T>,
    rows: usize,
    cols: usize,
    bn: usize,
    v: usize,
}

impl<T: Element> VnniMatrix<T> {
    /// Creates a zeroed matrix. `rows` must divide by `v`, `cols` by `bn`.
    pub fn new(rows: usize, cols: usize, bn: usize, v: usize) -> Result<Self, TensorError> {
        check_block("rows (vnni)", rows, v)?;
        check_block("cols", cols, bn)?;
        Ok(VnniMatrix { data: AlignedVec::zeroed(rows * cols), rows, cols, bn, v })
    }

    /// Logical row count.
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical column count.
    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Column blocking factor.
    #[inline(always)]
    pub fn bn(&self) -> usize {
        self.bn
    }

    /// VNNI packing factor.
    #[inline(always)]
    pub fn v(&self) -> usize {
        self.v
    }

    /// Number of column blocks.
    #[inline(always)]
    pub fn col_blocks(&self) -> usize {
        self.cols / self.bn
    }

    /// Flat offset of logical element `(r, c)`.
    #[inline(always)]
    pub fn offset(&self, r: usize, c: usize) -> usize {
        debug_assert!(r < self.rows && c < self.cols);
        let nb = c / self.bn;
        let cc = c % self.bn;
        ((nb * (self.rows / self.v) + r / self.v) * self.bn + cc) * self.v + r % self.v
    }

    /// Offset of the `v`-row group starting at row `r` (must be `v`-aligned)
    /// in column block `nb` — the pointer the SpMM TPP receives
    /// (`&B[in][ik/v][0][ik%v]` in the paper collapses to this for
    /// `v`-aligned `ik`).
    #[inline(always)]
    pub fn group_offset(&self, nb: usize, r: usize) -> usize {
        debug_assert_eq!(r % self.v, 0);
        (nb * (self.rows / self.v) + r / self.v) * self.bn * self.v
    }

    /// Read logical element `(r, c)`.
    #[inline(always)]
    pub fn get(&self, r: usize, c: usize) -> T {
        self.data[self.offset(r, c)]
    }

    /// Write logical element `(r, c)`.
    #[inline(always)]
    pub fn set(&mut self, r: usize, c: usize, val: T) {
        let off = self.offset(r, c);
        self.data[off] = val;
    }

    /// Backing buffer.
    #[inline(always)]
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Mutable backing buffer.
    #[inline(always)]
    pub fn data_mut(&mut self) -> &mut [T] {
        self.data.as_mut_slice()
    }

    /// Packs from a flat column-major array (leading dimension = rows).
    pub fn pack_from_colmajor(&mut self, src: &[f32]) {
        assert_eq!(src.len(), self.rows * self.cols, "source size mismatch");
        for c in 0..self.cols {
            for r in 0..self.rows {
                self.set(r, c, T::from_f32(src[c * self.rows + r]));
            }
        }
    }

    /// Unpacks to a flat column-major f32 array.
    pub fn unpack_to_colmajor(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.rows * self.cols];
        for c in 0..self.cols {
            for r in 0..self.rows {
                out[c * self.rows + r] = self.get(r, c).to_f32();
            }
        }
        out
    }

    /// Builds from a closure over logical `(row, col)` indices.
    pub fn from_fn(
        rows: usize,
        cols: usize,
        bn: usize,
        v: usize,
        mut f: impl FnMut(usize, usize) -> f32,
    ) -> Result<Self, TensorError> {
        let mut m = Self::new(rows, cols, bn, v)?;
        for c in 0..cols {
            for r in 0..rows {
                m.set(r, c, T::from_f32(f(r, c)));
            }
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::Bf16;

    #[test]
    fn offset_formula_v2() {
        // rows=4, cols=4, bn=2, v=2: layout [2][2][2][2].
        let m = VnniMatrix::<f32>::new(4, 4, 2, 2).unwrap();
        assert_eq!(m.offset(0, 0), 0);
        assert_eq!(m.offset(1, 0), 1);
        assert_eq!(m.offset(0, 1), 2);
        assert_eq!(m.offset(2, 0), 4); // next v-group
        assert_eq!(m.offset(0, 2), 8); // next column block
    }

    #[test]
    fn group_offset_matches_offset() {
        let m = VnniMatrix::<f32>::new(8, 6, 3, 2).unwrap();
        for nb in 0..m.col_blocks() {
            for r in (0..8).step_by(2) {
                assert_eq!(m.group_offset(nb, r), m.offset(r, nb * 3));
            }
        }
    }

    #[test]
    fn roundtrip_f32_and_bf16() {
        let src: Vec<f32> = (0..16 * 8).map(|i| i as f32 - 60.0).collect();
        let mut a = VnniMatrix::<f32>::new(16, 8, 4, 1).unwrap();
        a.pack_from_colmajor(&src);
        assert_eq!(a.unpack_to_colmajor(), src);

        let mut b = VnniMatrix::<Bf16>::new(16, 8, 4, 2).unwrap();
        b.pack_from_colmajor(&src);
        assert_eq!(b.unpack_to_colmajor(), src);
    }

    #[test]
    fn rejects_unaligned() {
        assert!(VnniMatrix::<Bf16>::new(7, 8, 4, 2).is_err());
        assert!(VnniMatrix::<Bf16>::new(8, 7, 4, 2).is_err());
    }
}

impl<T: Element> Clone for VnniMatrix<T> {
    fn clone(&self) -> Self {
        VnniMatrix {
            data: self.data.clone(),
            rows: self.rows,
            cols: self.cols,
            bn: self.bn,
            v: self.v,
        }
    }
}
