//! Element types and the precision-awareness machinery of the TPP collection.
//!
//! TPPs are *precision aware per design* (paper §II-C): the same kernel code
//! works for any supported datatype. We reproduce that with the [`Element`]
//! trait: computation happens in `f32` (matching the F32 accumulation
//! semantics of AVX512-BF16/AMX/SVE-MMLA hardware), storage happens in the
//! element type.

use std::fmt;

/// Runtime datatype tag carried by kernel descriptors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// IEEE-754 binary32.
    F32,
    /// IEEE-754 binary64 (used by reference checks only).
    F64,
    /// bfloat16: 1 sign, 8 exponent, 7 mantissa bits.
    Bf16,
    /// Signed 8-bit integer (quantized storage; i32 accumulation).
    I8,
}

impl DType {
    /// Size of one element in bytes.
    pub const fn size_of(self) -> usize {
        match self {
            DType::F32 => 4,
            DType::F64 => 8,
            DType::Bf16 => 2,
            DType::I8 => 1,
        }
    }

    /// The VNNI packing factor hardware requires for this dtype.
    ///
    /// VNNI instructions consume a fixed 4-byte granule of the reduction
    /// dimension per lane, so sub-word types pack `v = 4 / size_of` elements
    /// per granule: 2 for BF16 (`VDPBF16PS`), 4 for I8 (`VPDPBUSD`). Types of
    /// 4 or more bytes (F32, F64) are consumed one element at a time and need
    /// no repacking, so `v = 1` — *not* `4 / size_of`, which would be 0 for
    /// F64. The rule is `max(4 / size_of, 1)`.
    pub const fn vnni_factor(self) -> usize {
        match self {
            DType::F32 | DType::F64 => 1,
            DType::Bf16 => 2,
            DType::I8 => 4,
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DType::F32 => write!(f, "f32"),
            DType::F64 => write!(f, "f64"),
            DType::Bf16 => write!(f, "bf16"),
            DType::I8 => write!(f, "i8"),
        }
    }
}

/// A storage element usable inside tensors and TPP kernels.
///
/// All arithmetic in the TPP back-end converts through `f32`, mirroring the
/// F32-accumulate semantics of the low-precision FMA/AMX/MMLA instructions
/// the paper targets.
pub trait Element: Copy + Clone + Default + Send + Sync + PartialEq + fmt::Debug + 'static {
    /// Runtime tag for this type.
    const DTYPE: DType;

    /// Widen to f32 (exact for `Bf16` and `f32`).
    fn to_f32(self) -> f32;

    /// Narrow from f32 (round-to-nearest-even for `Bf16`).
    fn from_f32(v: f32) -> Self;
}

impl Element for f32 {
    const DTYPE: DType = DType::F32;

    #[inline(always)]
    fn to_f32(self) -> f32 {
        self
    }

    #[inline(always)]
    fn from_f32(v: f32) -> Self {
        v
    }
}

impl Element for f64 {
    const DTYPE: DType = DType::F64;

    #[inline(always)]
    fn to_f32(self) -> f32 {
        self as f32
    }

    #[inline(always)]
    fn from_f32(v: f32) -> Self {
        v as f64
    }
}

impl Element for i8 {
    const DTYPE: DType = DType::I8;

    #[inline(always)]
    fn to_f32(self) -> f32 {
        self as f32
    }

    /// Round-to-nearest, saturating to the symmetric range `[-127, 127]`.
    ///
    /// The symmetric range (no `-128`) keeps quantization sign-symmetric and
    /// matches the convention of VNNI int8 kernels, where `|q| <= 127` also
    /// guarantees the `i8 x i8` product never overflows an i16 lane pair.
    #[inline(always)]
    fn from_f32(v: f32) -> Self {
        v.round().clamp(-127.0, 127.0) as i8
    }
}

/// Software bfloat16.
///
/// Stored as the upper 16 bits of an f32. Conversion to f32 is exact;
/// conversion from f32 uses round-to-nearest-even, matching `VCVTNEPS2BF16`
/// and the ARM `BFCVT` instruction.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
#[repr(transparent)]
pub struct Bf16(pub u16);

impl Bf16 {
    /// Positive zero.
    pub const ZERO: Bf16 = Bf16(0);
    /// One.
    pub const ONE: Bf16 = Bf16(0x3f80);

    /// Round-to-nearest-even conversion from f32.
    #[inline(always)]
    pub fn from_f32_rne(v: f32) -> Self {
        let x = v.to_bits();
        if v.is_nan() {
            // Quiet the NaN, preserve sign and payload top bits.
            return Bf16(((x >> 16) as u16) | 0x0040);
        }
        let round_bit = (x >> 16) & 1;
        Bf16(((x.wrapping_add(0x7fff + round_bit)) >> 16) as u16)
    }

    /// Exact widening conversion to f32.
    #[inline(always)]
    pub fn to_f32_exact(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }
}

impl Element for Bf16 {
    const DTYPE: DType = DType::Bf16;

    #[inline(always)]
    fn to_f32(self) -> f32 {
        self.to_f32_exact()
    }

    #[inline(always)]
    fn from_f32(v: f32) -> Self {
        Bf16::from_f32_rne(v)
    }
}

impl fmt::Debug for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}bf", self.to_f32_exact())
    }
}

impl fmt::Display for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32_exact())
    }
}

impl From<f32> for Bf16 {
    fn from(v: f32) -> Self {
        Bf16::from_f32_rne(v)
    }
}

impl From<Bf16> for f32 {
    fn from(v: Bf16) -> Self {
        v.to_f32_exact()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bf16_roundtrip_exact_values() {
        // Values representable exactly in bf16 must round-trip bit-exactly.
        for &v in &[0.0f32, 1.0, -1.0, 0.5, 2.0, -0.25, 1.5, 65280.0] {
            assert_eq!(Bf16::from_f32_rne(v).to_f32_exact(), v, "value {v}");
        }
    }

    #[test]
    fn bf16_rounds_to_nearest_even() {
        // 1.0 + 2^-8 is exactly halfway between 1.0 and the next bf16;
        // round-to-even picks 1.0 (even mantissa).
        let halfway = 1.0f32 + 2.0f32.powi(-8);
        assert_eq!(Bf16::from_f32_rne(halfway).to_f32_exact(), 1.0);
        // Slightly above halfway rounds up.
        let above = 1.0f32 + 2.0f32.powi(-8) + 2.0f32.powi(-16);
        assert_eq!(Bf16::from_f32_rne(above).to_f32_exact(), 1.0 + 2.0f32.powi(-7));
    }

    #[test]
    fn bf16_preserves_specials() {
        assert!(Bf16::from_f32_rne(f32::NAN).to_f32_exact().is_nan());
        assert_eq!(Bf16::from_f32_rne(f32::INFINITY).to_f32_exact(), f32::INFINITY);
        assert_eq!(Bf16::from_f32_rne(f32::NEG_INFINITY).to_f32_exact(), f32::NEG_INFINITY);
        // Sign of zero survives.
        assert!(Bf16::from_f32_rne(-0.0).to_f32_exact().is_sign_negative());
    }

    #[test]
    fn bf16_relative_error_bound() {
        // bf16 has 8 mantissa bits -> relative error <= 2^-8.
        let mut v = 1.1f32;
        for _ in 0..64 {
            let r = Bf16::from_f32_rne(v).to_f32_exact();
            assert!(((r - v) / v).abs() <= 2.0f32.powi(-8), "v={v} r={r}");
            v *= 1.7;
            if !v.is_finite() {
                break;
            }
        }
    }

    #[test]
    fn dtype_sizes_and_vnni() {
        assert_eq!(DType::F32.size_of(), 4);
        assert_eq!(DType::Bf16.size_of(), 2);
        assert_eq!(DType::F32.vnni_factor(), 1);
        assert_eq!(DType::Bf16.vnni_factor(), 2);
    }

    #[test]
    fn vnni_factor_rule_over_all_variants() {
        // The real rule is `v = max(4 / size_of, 1)`: sub-word types fill a
        // 4-byte reduction granule, wider types don't repack. Naively
        // `4 / size_of` would give 0 for F64.
        for d in [DType::F32, DType::F64, DType::Bf16, DType::I8] {
            let expect = (4 / d.size_of()).max(1);
            assert_eq!(d.vnni_factor(), expect, "dtype {d}");
            assert!(d.vnni_factor() >= 1, "dtype {d} must never be 0");
            if d.size_of() < 4 {
                // Sub-word types exactly fill the granule.
                assert_eq!(d.vnni_factor() * d.size_of(), 4, "dtype {d}");
            }
        }
        assert_eq!(DType::F64.vnni_factor(), 1);
        assert_eq!(DType::I8.vnni_factor(), 4);
    }

    #[test]
    fn i8_element_saturating_round() {
        assert_eq!(i8::from_f32(0.4), 0);
        assert_eq!(i8::from_f32(0.6), 1);
        assert_eq!(i8::from_f32(-0.6), -1);
        assert_eq!(i8::from_f32(300.0), 127);
        assert_eq!(i8::from_f32(-300.0), -127);
        assert_eq!(i8::from_f32(f32::NAN), 0);
        assert_eq!(i8::from_f32(126.5), 127);
        assert_eq!((-5i8).to_f32(), -5.0);
    }

    #[test]
    fn element_trait_through_generics() {
        fn roundtrip<T: Element>(v: f32) -> f32 {
            T::from_f32(v).to_f32()
        }
        assert_eq!(roundtrip::<f32>(3.25), 3.25);
        assert_eq!(roundtrip::<Bf16>(3.25), 3.25);
        assert_eq!(roundtrip::<f64>(3.25), 3.25);
    }
}
