//! Symmetric int8 quantization for the low-precision GEMM path.
//!
//! The quantized decode path follows the paper's precision-aware kernel
//! design (§II-C): weights are quantized **once** at plan build into the
//! VNNI-blocked `A` layout with one f32 scale per output channel (logical
//! row of `W`), and activations are quantized per step with one f32 scale
//! per logical column (one column = one token/session). Both sides use the
//! symmetric range `[-127, 127]`, so
//!
//! ```text
//! C[r, j] ~= scale_w[r] * scale_a[j] * sum_p qW[r, p] * qA[p, j]
//! ```
//!
//! with the inner sum accumulated exactly in i32 (`127 * 127 * k` stays far
//! below `i32::MAX` for any realistic `k`).

use crate::blocked::BlockedMatrix;
use crate::dtype::Element;
use crate::TensorError;

/// Scale for a symmetric int8 quantizer covering `max_abs`: `max_abs / 127`,
/// or 1.0 for an all-zero range (any scale reproduces zeros exactly).
#[inline]
pub fn symmetric_scale(max_abs: f32) -> f32 {
    if max_abs > 0.0 {
        max_abs / 127.0
    } else {
        1.0
    }
}

/// Quantizes a flat column-major `m x k` weight matrix into the VNNI-blocked
/// GEMM `A` layout ([`BlockedMatrix::a_layout_vnni`]) with per-output-channel
/// scales.
///
/// Returns `(q, scales)` where `scales[r]` reconstructs row `r` as
/// `w[r, c] ~= scales[r] * q[r, c]`. This is the pack-once half of the
/// quantized prepared-op path: it runs at plan build, never per step.
pub fn quantize_weight_a_vnni(
    src: &[f32],
    m: usize,
    k: usize,
    bm: usize,
    bk: usize,
    v: usize,
) -> Result<(BlockedMatrix<i8>, Vec<f32>), TensorError> {
    assert_eq!(src.len(), m * k, "weight size mismatch");
    let mut q = BlockedMatrix::<i8>::a_layout_vnni(m, k, bm, bk, v)?;
    let mut scales = vec![0.0f32; m];
    for (r, s) in scales.iter_mut().enumerate() {
        let mut max_abs = 0.0f32;
        for c in 0..k {
            max_abs = max_abs.max(src[c * m + r].abs());
        }
        *s = symmetric_scale(max_abs);
    }
    for c in 0..k {
        for r in 0..m {
            q.set(r, c, i8::from_f32(src[c * m + r] / scales[r]));
        }
    }
    Ok((q, scales))
}

/// Quantizes an f32 blocked activation into an i8 blocked twin with one
/// scale per logical column — the on-the-fly half of the quantized path,
/// run once per step per distinct activation.
///
/// `dst` must have the same logical extents as `src` (blocking may differ);
/// `scales` must hold one slot per column.
pub fn quantize_cols_blocked(
    src: &BlockedMatrix<f32>,
    dst: &mut BlockedMatrix<i8>,
    scales: &mut [f32],
) {
    assert_eq!((src.rows(), src.cols()), (dst.rows(), dst.cols()), "activation shape mismatch");
    assert_eq!(scales.len(), src.cols(), "one scale per column");
    for (c, slot) in scales.iter_mut().enumerate() {
        let mut max_abs = 0.0f32;
        for r in 0..src.rows() {
            max_abs = max_abs.max(src.get(r, c).abs());
        }
        let s = symmetric_scale(max_abs);
        *slot = s;
        for r in 0..src.rows() {
            dst.set(r, c, i8::from_f32(src.get(r, c) / s));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fill::{fill_normal, Xorshift};
    use crate::{GridOrder, InnerLayout};

    #[test]
    fn weight_quantization_error_bounded_per_channel() {
        let (m, k) = (16, 32);
        let mut rng = Xorshift::new(7);
        let mut w = vec![0.0f32; m * k];
        fill_normal(&mut w, &mut rng, 0.0, 1.0);
        // Give rows wildly different magnitudes: per-channel scales must adapt.
        for r in 0..m {
            let gain = 10.0f32.powi(r as i32 % 5 - 2);
            for c in 0..k {
                w[c * m + r] *= gain;
            }
        }
        let (q, scales) = quantize_weight_a_vnni(&w, m, k, 8, 8, 4).unwrap();
        assert_eq!(q.inner(), InnerLayout::VnniCols(4));
        assert_eq!(q.grid(), GridOrder::RowBlockMajor);
        for r in 0..m {
            for c in 0..k {
                let deq = scales[r] * q.get(r, c) as f32;
                let err = (deq - w[c * m + r]).abs();
                // Round-to-nearest: at most half a quantization step.
                assert!(err <= 0.5 * scales[r] + 1e-6, "r={r} c={c} err={err}");
            }
        }
    }

    #[test]
    fn zero_row_gets_unit_scale() {
        let (m, k) = (4, 8);
        let mut w = vec![1.0f32; m * k];
        for c in 0..k {
            w[c * m + 2] = 0.0;
        }
        let (q, scales) = quantize_weight_a_vnni(&w, m, k, 4, 4, 4).unwrap();
        assert_eq!(scales[2], 1.0);
        for c in 0..k {
            assert_eq!(q.get(2, c), 0);
        }
    }

    #[test]
    fn column_quantization_tracks_per_column_range() {
        let (k, n) = (16, 4);
        let mut src = BlockedMatrix::<f32>::b_layout(k, n, 8, 2).unwrap();
        let mut flat = vec![0.0f32; k * n];
        let mut rng = Xorshift::new(11);
        fill_normal(&mut flat, &mut rng, 0.0, 2.0);
        for (j, col_gain) in [1.0f32, 100.0, 0.01, 3.0].iter().enumerate() {
            for r in 0..k {
                flat[j * k + r] *= col_gain;
            }
        }
        src.pack_from_colmajor(&flat);
        let mut dst = BlockedMatrix::<i8>::b_layout(k, n, 8, 2).unwrap();
        let mut scales = vec![0.0f32; n];
        quantize_cols_blocked(&src, &mut dst, &mut scales);
        for c in 0..n {
            for r in 0..k {
                let deq = scales[c] * dst.get(r, c) as f32;
                let err = (deq - flat[c * k + r]).abs();
                assert!(err <= 0.5 * scales[c] + 1e-6, "r={r} c={c} err={err}");
            }
        }
    }
}
