//! Deterministic pseudo-random fills and the RNG state used by the dropout
//! TPP (`get_rng_state()` in paper Listing 6).

use crate::dtype::Element;

/// xorshift64* generator: tiny, fast, reproducible — the style of RNG the
/// TPP dropout primitive keeps as per-thread state.
#[derive(Debug, Clone)]
pub struct Xorshift {
    state: u64,
}

impl Xorshift {
    /// Creates a generator; a zero seed is remapped to a fixed constant
    /// (xorshift has a zero fixpoint).
    pub fn new(seed: u64) -> Self {
        Xorshift { state: if seed == 0 { 0x9e3779b97f4a7c15 } else { seed } }
    }

    /// Next 64 random bits.
    #[inline(always)]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    /// Next 32 random bits.
    #[inline(always)]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform f32 in `[0, 1)`.
    #[inline(always)]
    pub fn next_f32(&mut self) -> f32 {
        // 24 mantissa-ish bits scaled down: exact representability.
        (self.next_u32() >> 8) as f32 * (1.0 / 16_777_216.0)
    }

    /// Standard normal via Box-Muller.
    pub fn next_normal(&mut self) -> f32 {
        let mut u1 = self.next_f32();
        if u1 < 1e-12 {
            u1 = 1e-12;
        }
        let u2 = self.next_f32();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }
}

/// Fills a slice with uniform values in `[lo, hi)`.
pub fn fill_uniform<T: Element>(data: &mut [T], rng: &mut Xorshift, lo: f32, hi: f32) {
    for v in data {
        *v = T::from_f32(lo + (hi - lo) * rng.next_f32());
    }
}

/// Fills a slice with normal values.
pub fn fill_normal<T: Element>(data: &mut [T], rng: &mut Xorshift, mean: f32, std: f32) {
    for v in data {
        *v = T::from_f32(mean + std * rng.next_normal());
    }
}

/// Largest elementwise relative error between two equal-length slices,
/// with a `1e-6` magnitude floor in the denominator so near-zero values
/// compare absolutely. This is the single definition of the accuracy
/// metric the tolerance-based equivalence checks (fused vs serial decode)
/// assert against.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn max_rel_err(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "max_rel_err over mismatched lengths");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs() / x.abs().max(y.abs()).max(1e-6))
        .fold(0.0f32, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::Bf16;

    #[test]
    fn max_rel_err_floors_tiny_denominators() {
        assert_eq!(max_rel_err(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        // 2.0 vs 2.2 -> 0.2 / 2.2.
        let e = max_rel_err(&[1.0, 2.0], &[1.0, 2.2]);
        assert!((e - 0.2 / 2.2).abs() < 1e-6, "{e}");
        // Near zero the comparison is absolute (floored at 1e-6).
        let e = max_rel_err(&[0.0], &[1e-9]);
        assert!((e - 1e-3).abs() < 1e-6, "{e}");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Xorshift::new(123);
        let mut b = Xorshift::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xorshift::new(1);
        let mut b = Xorshift::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = Xorshift::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn uniform_range_and_mean() {
        let mut rng = Xorshift::new(99);
        let mut buf = vec![0.0f32; 40_000];
        fill_uniform(&mut buf, &mut rng, -1.0, 1.0);
        assert!(buf.iter().all(|&v| (-1.0..1.0).contains(&v)));
        let mean = buf.iter().sum::<f32>() / buf.len() as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = Xorshift::new(7);
        let mut buf = vec![0.0f32; 40_000];
        fill_normal(&mut buf, &mut rng, 2.0, 0.5);
        let mean = buf.iter().sum::<f32>() / buf.len() as f32;
        let var = buf.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / buf.len() as f32;
        assert!((mean - 2.0).abs() < 0.02, "mean {mean}");
        assert!((var - 0.25).abs() < 0.02, "var {var}");
    }

    #[test]
    fn bf16_fill_stays_in_range() {
        let mut rng = Xorshift::new(11);
        let mut buf = vec![Bf16::ZERO; 1000];
        fill_uniform(&mut buf, &mut rng, 0.0, 1.0);
        assert!(buf.iter().all(|v| (0.0..=1.0).contains(&v.to_f32())));
    }
}
