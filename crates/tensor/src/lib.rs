//! # pl-tensor — tensor substrate for the PARLOOPER/TPP reproduction
//!
//! This crate provides everything the TPP back-end and the kernel layer need
//! to describe data: element types (including a software [`Bf16`]), 64-byte
//! aligned buffers, the blocked matrix/activation/weight layouts used by the
//! paper (Listings 1, 4 and 5), the VNNI packed layout used by low-precision
//! contractions, and the BCSC block-sparse format used by the Block-SpMM TPP.
//!
//! Layout conventions follow the paper exactly:
//!
//! * GEMM operands are logically **column-major** 2-D matrices; blocking the
//!   `M`/`K`/`N` dimensions by `bm`/`bk`/`bn` yields
//!   `A[Mb][Kb][bk][bm]`, `B[Nb][Kb][bn][bk]`, `C[Nb][Mb][bn][bm]`
//!   (innermost index contiguous).
//! * Convolution activations are `[N][Cb][H][W][bc]`, weights are
//!   `[Kb][Cb][R][S][bc][bk]`, outputs are `[N][Kb][P][Q][bk]`.
//! * VNNI packing groups `v` consecutive rows (the reduction dimension) so a
//!   `K x N` matrix becomes `[Nb][K/v][bn][v]` — the layout consumed by
//!   AVX512-BF16 / AMX / SVE-MMLA style accumulation.

// Seed layout keeps private helpers below each file's test module.
#![allow(clippy::items_after_test_module)]

pub mod bcsc;
pub mod blocked;
pub mod buffer;
pub mod conv;
pub mod dtype;
pub mod fill;
pub mod quant;
pub mod vnni;

pub use bcsc::BcscMatrix;
pub use blocked::{reuse_blocked, BlockedMatrix, GridOrder, InnerLayout};
pub use buffer::AlignedVec;
pub use conv::{ActTensor, ConvShape, ConvWeights};
pub use dtype::{Bf16, DType, Element};
pub use fill::{fill_normal, fill_uniform, max_rel_err, Xorshift};
pub use quant::{quantize_cols_blocked, quantize_weight_a_vnni, symmetric_scale};
pub use vnni::VnniMatrix;

/// Errors produced by layout constructors and converters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// A dimension is not divisible by its requested blocking factor.
    NotDivisible {
        /// Human-readable dimension name (e.g. `"M"`).
        dim: &'static str,
        /// The dimension extent.
        extent: usize,
        /// The requested blocking factor.
        block: usize,
    },
    /// Two tensors that must agree on a dimension do not.
    ShapeMismatch {
        /// Description of the mismatch.
        what: &'static str,
        /// Left-hand extent.
        lhs: usize,
        /// Right-hand extent.
        rhs: usize,
    },
    /// A zero-sized dimension or block was requested.
    ZeroDim(&'static str),
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::NotDivisible { dim, extent, block } => {
                write!(f, "dimension {dim}={extent} is not divisible by block {block}")
            }
            TensorError::ShapeMismatch { what, lhs, rhs } => {
                write!(f, "shape mismatch for {what}: {lhs} vs {rhs}")
            }
            TensorError::ZeroDim(dim) => write!(f, "dimension {dim} must be non-zero"),
        }
    }
}

impl std::error::Error for TensorError {}

/// Checks `extent % block == 0` and both non-zero, the common constructor guard.
pub(crate) fn check_block(
    dim: &'static str,
    extent: usize,
    block: usize,
) -> Result<(), TensorError> {
    if extent == 0 || block == 0 {
        return Err(TensorError::ZeroDim(dim));
    }
    if !extent.is_multiple_of(block) {
        return Err(TensorError::NotDivisible { dim, extent, block });
    }
    Ok(())
}
