//! Block Compressed Sparse Column storage for the Block-SpMM TPP
//! (paper §III-C, Listing 5).
//!
//! The sparse operand `A` of `C = A x B` is an `M x K` matrix whose non-zero
//! structure is constrained to whole `bm x bk` blocks. Following the paper's
//! kernel interface (`bcsc_spmm_tpp(A_vals, &A_colptr[im], A_rowidx, ...)`),
//! the pointer array is indexed by *output row-block* `im`: all non-zero
//! blocks contributing to one `M`-block of `C` are contiguous, and each
//! entry records which `K`-block it multiplies. (Relative to textbook BCSC
//! this stores `A` transposed-by-blocks; the paper inherits the convention
//! from libxsmm where `A` is the weight tensor of a column-major GEMM.)
//!
//! Block values are stored column-major (`bm` contiguous), ready to be used
//! as BRGEMM-style `A` micro-panels.

use crate::buffer::AlignedVec;
use crate::dtype::Element;
use crate::fill::Xorshift;
use crate::{check_block, TensorError};

/// Block-sparse `M x K` matrix in (row-block-grouped) BCSC format.
#[derive(Debug)]
pub struct BcscMatrix<T> {
    rows: usize,
    cols: usize,
    bm: usize,
    bk: usize,
    /// `ptr[im]..ptr[im+1]` indexes the non-zero blocks of row-block `im`.
    ptr: Vec<usize>,
    /// `K`-block index of each non-zero block.
    kidx: Vec<usize>,
    /// Dense values, `bm*bk` per block, column-major within the block.
    vals: AlignedVec<T>,
}

impl<T: Element> BcscMatrix<T> {
    /// Compresses a dense column-major `rows x cols` array (leading
    /// dimension = rows), dropping blocks whose every element is exactly 0.
    pub fn from_dense_colmajor(
        dense: &[f32],
        rows: usize,
        cols: usize,
        bm: usize,
        bk: usize,
    ) -> Result<Self, TensorError> {
        check_block("M", rows, bm)?;
        check_block("K", cols, bk)?;
        if dense.len() != rows * cols {
            return Err(TensorError::ShapeMismatch {
                what: "dense input",
                lhs: dense.len(),
                rhs: rows * cols,
            });
        }
        let (mb, kb) = (rows / bm, cols / bk);
        let mut ptr = Vec::with_capacity(mb + 1);
        let mut kidx = Vec::new();
        let mut blocks: Vec<f32> = Vec::new();
        ptr.push(0);
        for im in 0..mb {
            for ik in 0..kb {
                let mut block = vec![0.0f32; bm * bk];
                let mut nonzero = false;
                for c in 0..bk {
                    for r in 0..bm {
                        let v = dense[(ik * bk + c) * rows + im * bm + r];
                        block[c * bm + r] = v;
                        nonzero |= v != 0.0;
                    }
                }
                if nonzero {
                    kidx.push(ik);
                    blocks.extend_from_slice(&block);
                }
            }
            ptr.push(kidx.len());
        }
        let vals = AlignedVec::from_fn(blocks.len(), |i| T::from_f32(blocks[i]));
        Ok(BcscMatrix { rows, cols, bm, bk, ptr, kidx, vals })
    }

    /// Generates a random block-sparse matrix with the given fraction of
    /// *zero* blocks (e.g. `sparsity = 0.8` keeps 20 % of blocks).
    /// Non-zero block values are uniform in `[-0.5, 0.5)`.
    pub fn random(
        rows: usize,
        cols: usize,
        bm: usize,
        bk: usize,
        sparsity: f64,
        rng: &mut Xorshift,
    ) -> Result<Self, TensorError> {
        check_block("M", rows, bm)?;
        check_block("K", cols, bk)?;
        let (mb, kb) = (rows / bm, cols / bk);
        let total = mb * kb;
        // Choose exactly round((1-sparsity)*total) non-zero blocks so the
        // effective sparsity matches the request (a per-block coin flip
        // would wobble for small grids).
        let keep = ((1.0 - sparsity) * total as f64).round() as usize;
        let mut mask = vec![false; total];
        for slot in mask.iter_mut().take(keep) {
            *slot = true;
        }
        // Fisher-Yates shuffle of the mask.
        for i in (1..total).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            mask.swap(i, j);
        }
        let mut ptr = Vec::with_capacity(mb + 1);
        let mut kidx = Vec::new();
        ptr.push(0);
        let mut count = 0usize;
        for im in 0..mb {
            for ik in 0..kb {
                if mask[im * kb + ik] {
                    kidx.push(ik);
                    count += 1;
                }
            }
            ptr.push(count);
        }
        let vals = AlignedVec::from_fn(count * bm * bk, |_| T::from_f32(rng.next_f32() - 0.5));
        Ok(BcscMatrix { rows, cols, bm, bk, ptr, kidx, vals })
    }

    /// Logical row count (`M`).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical column count (`K`).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Block row extent.
    pub fn bm(&self) -> usize {
        self.bm
    }

    /// Block column extent.
    pub fn bk(&self) -> usize {
        self.bk
    }

    /// Number of row blocks.
    pub fn row_blocks(&self) -> usize {
        self.rows / self.bm
    }

    /// Number of column blocks.
    pub fn col_blocks(&self) -> usize {
        self.cols / self.bk
    }

    /// Number of stored (non-zero) blocks.
    pub fn nnz_blocks(&self) -> usize {
        self.kidx.len()
    }

    /// Fraction of blocks that are zero.
    pub fn sparsity(&self) -> f64 {
        1.0 - self.nnz_blocks() as f64 / (self.row_blocks() * self.col_blocks()) as f64
    }

    /// The pointer array (`row_blocks + 1` entries).
    pub fn ptr(&self) -> &[usize] {
        &self.ptr
    }

    /// `K`-block indices of the stored blocks.
    pub fn kidx(&self) -> &[usize] {
        &self.kidx
    }

    /// All stored block values.
    pub fn vals(&self) -> &[T] {
        &self.vals
    }

    /// Values of stored block `b` (column-major `bm x bk`).
    #[inline(always)]
    pub fn block_vals(&self, b: usize) -> &[T] {
        let bsz = self.bm * self.bk;
        &self.vals[b * bsz..(b + 1) * bsz]
    }

    /// Iterator over `(k_block_index, block_values)` for row-block `im` —
    /// what the SpMM microkernel walks.
    pub fn row_block_iter(&self, im: usize) -> impl Iterator<Item = (usize, &[T])> + '_ {
        let (lo, hi) = (self.ptr[im], self.ptr[im + 1]);
        (lo..hi).map(move |b| (self.kidx[b], self.block_vals(b)))
    }

    /// Decompresses to a dense column-major f32 array.
    pub fn to_dense_colmajor(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.rows * self.cols];
        for im in 0..self.row_blocks() {
            for (ik, block) in self.row_block_iter(im) {
                for c in 0..self.bk {
                    for r in 0..self.bm {
                        out[(ik * self.bk + c) * self.rows + im * self.bm + r] =
                            block[c * self.bm + r].to_f32();
                    }
                }
            }
        }
        out
    }

    /// Bytes used by the compressed representation (values + indices).
    pub fn compressed_bytes(&self) -> usize {
        self.vals.len() * std::mem::size_of::<T>()
            + self.kidx.len() * std::mem::size_of::<usize>()
            + self.ptr.len() * std::mem::size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_with_pattern(rows: usize, cols: usize, bm: usize, bk: usize) -> Vec<f32> {
        // Zero out every block where (im + ik) is odd -> 50% block sparsity.
        let mut d = vec![0.0f32; rows * cols];
        for c in 0..cols {
            for r in 0..rows {
                if (r / bm + c / bk).is_multiple_of(2) {
                    d[c * rows + r] = (r * cols + c) as f32 + 1.0;
                }
            }
        }
        d
    }

    #[test]
    fn dense_roundtrip() {
        let (rows, cols, bm, bk) = (16, 12, 4, 3);
        let d = dense_with_pattern(rows, cols, bm, bk);
        let s = BcscMatrix::<f32>::from_dense_colmajor(&d, rows, cols, bm, bk).unwrap();
        assert_eq!(s.to_dense_colmajor(), d);
        assert!((s.sparsity() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn row_block_iter_covers_exactly_nonzero_blocks() {
        let (rows, cols, bm, bk) = (8, 8, 4, 4);
        let d = dense_with_pattern(rows, cols, bm, bk);
        let s = BcscMatrix::<f32>::from_dense_colmajor(&d, rows, cols, bm, bk).unwrap();
        // Row-block 0 keeps ik=0; row-block 1 keeps ik=1.
        let r0: Vec<usize> = s.row_block_iter(0).map(|(ik, _)| ik).collect();
        let r1: Vec<usize> = s.row_block_iter(1).map(|(ik, _)| ik).collect();
        assert_eq!(r0, vec![0]);
        assert_eq!(r1, vec![1]);
    }

    #[test]
    fn random_hits_target_sparsity_exactly() {
        let mut rng = Xorshift::new(42);
        for &sp in &[0.0, 0.1, 0.5, 0.8, 0.9] {
            let s = BcscMatrix::<f32>::random(64, 64, 8, 8, sp, &mut rng).unwrap();
            let total = s.row_blocks() * s.col_blocks();
            let expect = ((1.0 - sp) * total as f64).round() as usize;
            assert_eq!(s.nnz_blocks(), expect, "sparsity {sp}");
        }
    }

    #[test]
    fn fully_sparse_and_fully_dense_edges() {
        let mut rng = Xorshift::new(7);
        let empty = BcscMatrix::<f32>::random(16, 16, 4, 4, 1.0, &mut rng).unwrap();
        assert_eq!(empty.nnz_blocks(), 0);
        assert!(empty.to_dense_colmajor().iter().all(|&v| v == 0.0));
        let full = BcscMatrix::<f32>::random(16, 16, 4, 4, 0.0, &mut rng).unwrap();
        assert_eq!(full.nnz_blocks(), 16);
    }

    #[test]
    fn compressed_bytes_shrink_with_sparsity() {
        let mut rng = Xorshift::new(3);
        let dense = BcscMatrix::<f32>::random(128, 128, 8, 8, 0.0, &mut rng).unwrap();
        let sparse = BcscMatrix::<f32>::random(128, 128, 8, 8, 0.9, &mut rng).unwrap();
        assert!(sparse.compressed_bytes() < dense.compressed_bytes() / 5);
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(BcscMatrix::<f32>::from_dense_colmajor(&[0.0; 12], 4, 3, 4, 2).is_err());
        assert!(BcscMatrix::<f32>::from_dense_colmajor(&[0.0; 11], 4, 3, 2, 3).is_err());
    }
}

impl<T: Element> Clone for BcscMatrix<T> {
    fn clone(&self) -> Self {
        BcscMatrix {
            rows: self.rows,
            cols: self.cols,
            bm: self.bm,
            bk: self.bk,
            ptr: self.ptr.clone(),
            kidx: self.kidx.clone(),
            vals: self.vals.clone(),
        }
    }
}
