//! Cache-line aligned storage.
//!
//! DL kernels are sensitive to the alignment of tensor rows (vector loads,
//! split cache lines, false sharing of adjacent output tiles). All tensor
//! types in this crate store their elements in an [`AlignedVec`], which
//! guarantees 64-byte alignment — one x86/ARM cache line.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;

/// Alignment for all tensor allocations (one cache line).
pub const TENSOR_ALIGN: usize = 64;

/// A fixed-length, 64-byte aligned, zero-initialized array of `T`.
///
/// Unlike `Vec<T>`, the length is fixed at construction: tensors never grow,
/// and a fixed length lets kernels rely on stable pointers.
pub struct AlignedVec<T> {
    ptr: NonNull<T>,
    len: usize,
}

// SAFETY: AlignedVec owns its allocation exclusively; `T: Send/Sync` bounds
// make sharing references or moving the buffer across threads sound.
unsafe impl<T: Send> Send for AlignedVec<T> {}
unsafe impl<T: Sync> Sync for AlignedVec<T> {}

impl<T: Copy + Default> AlignedVec<T> {
    /// Allocates `len` zero-initialized elements aligned to 64 bytes.
    ///
    /// # Panics
    /// Panics on allocation failure or if `len * size_of::<T>()` overflows.
    pub fn zeroed(len: usize) -> Self {
        if len == 0 {
            return AlignedVec { ptr: NonNull::dangling(), len: 0 };
        }
        let layout = Self::layout(len);
        // SAFETY: layout has non-zero size (len > 0 checked above).
        let raw = unsafe { alloc_zeroed(layout) };
        let Some(ptr) = NonNull::new(raw as *mut T) else {
            handle_alloc_error(layout);
        };
        AlignedVec { ptr, len }
    }

    /// Allocates and fills from a slice.
    pub fn from_slice(src: &[T]) -> Self {
        let mut v = Self::zeroed(src.len());
        v.as_mut_slice().copy_from_slice(src);
        v
    }

    /// Allocates `len` elements, each produced by `f(i)`.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> T) -> Self {
        let mut v = Self::zeroed(len);
        for (i, e) in v.as_mut_slice().iter_mut().enumerate() {
            *e = f(i);
        }
        v
    }

    fn layout(len: usize) -> Layout {
        let bytes = len.checked_mul(std::mem::size_of::<T>()).expect("AlignedVec: size overflow");
        Layout::from_size_align(bytes, TENSOR_ALIGN.max(std::mem::align_of::<T>()))
            .expect("AlignedVec: invalid layout")
    }
}

impl<T> AlignedVec<T> {
    /// Number of elements.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds zero elements.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Immutable view of the whole buffer.
    #[inline(always)]
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: ptr is valid for len elements for the lifetime of self.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// Mutable view of the whole buffer.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        // SAFETY: exclusive borrow of self gives exclusive access to the data.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }

    /// Raw const pointer to the first element.
    #[inline(always)]
    pub fn as_ptr(&self) -> *const T {
        self.ptr.as_ptr()
    }

    /// Raw mutable pointer to the first element.
    #[inline(always)]
    pub fn as_mut_ptr(&mut self) -> *mut T {
        self.ptr.as_ptr()
    }
}

impl<T> Drop for AlignedVec<T> {
    fn drop(&mut self) {
        if self.len == 0 {
            return;
        }
        let bytes = self.len * std::mem::size_of::<T>();
        let layout =
            Layout::from_size_align(bytes, TENSOR_ALIGN.max(std::mem::align_of::<T>())).unwrap();
        // SAFETY: allocated with the identical layout in `zeroed`.
        unsafe { dealloc(self.ptr.as_ptr() as *mut u8, layout) }
    }
}

impl<T: Copy + Default> Clone for AlignedVec<T> {
    fn clone(&self) -> Self {
        Self::from_slice(self.as_slice())
    }
}

impl<T> Deref for AlignedVec<T> {
    type Target = [T];

    #[inline(always)]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T> DerefMut for AlignedVec<T> {
    #[inline(always)]
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for AlignedVec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AlignedVec(len={})", self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_is_zero_and_aligned() {
        let v = AlignedVec::<f32>::zeroed(1000);
        assert_eq!(v.len(), 1000);
        assert!(v.iter().all(|&x| x == 0.0));
        assert_eq!(v.as_ptr() as usize % TENSOR_ALIGN, 0);
    }

    #[test]
    fn empty_buffer_is_fine() {
        let v = AlignedVec::<f32>::zeroed(0);
        assert!(v.is_empty());
        assert_eq!(v.as_slice(), &[] as &[f32]);
        let _c = v.clone();
    }

    #[test]
    fn from_fn_and_clone_preserve_contents() {
        let v = AlignedVec::from_fn(64, |i| i as u16);
        let c = v.clone();
        assert_eq!(v.as_slice(), c.as_slice());
        assert_eq!(c[63], 63);
    }

    #[test]
    fn mutation_through_deref() {
        let mut v = AlignedVec::<f32>::zeroed(8);
        v[3] = 7.0;
        v.as_mut_slice()[4] = 9.0;
        assert_eq!(v[3], 7.0);
        assert_eq!(v[4], 9.0);
        assert_eq!(v.iter().sum::<f32>(), 16.0);
    }

    #[test]
    fn many_small_allocations_drop_cleanly() {
        for len in 1..200 {
            let v = AlignedVec::<u8>::zeroed(len);
            assert_eq!(v.len(), len);
        }
    }
}
