//! Blocked 2-D matrix layouts (paper Listing 1).
//!
//! A logical column-major `rows x cols` matrix is tiled into `br x bc`
//! blocks. The block *grid* can be laid out row-block-major (the paper's
//! `A[Mb][Kb][bk][bm]`) or column-block-major (`B[Nb][Kb][bn][bk]`,
//! `C[Nb][Mb][bn][bm]`). Inside a block, elements are column-major, or
//! VNNI-packed for low-precision operands.

use crate::buffer::AlignedVec;
use crate::dtype::Element;
use crate::{check_block, TensorError};

/// Order of the two block-grid dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridOrder {
    /// Grid indexed `[row_block][col_block]` — the paper's `A[Mb][Kb]`.
    RowBlockMajor,
    /// Grid indexed `[col_block][row_block]` — the paper's `B[Nb][Kb]` and
    /// `C[Nb][Mb]`.
    ColBlockMajor,
}

/// Within-block element layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InnerLayout {
    /// Plain column-major: element `(r, c)` at `c * br + r`.
    ColMajor,
    /// VNNI packed with factor `v`: element `(r, c)` at
    /// `(r / v) * bc * v + c * v + r % v`. Rows are the reduction dimension.
    Vnni(usize),
    /// VNNI packed along the *column* dimension with factor `v`: element
    /// `(r, c)` at `(c / v) * br * v + r * v + c % v`. Columns are the
    /// reduction dimension — the `A`-operand twin of [`InnerLayout::Vnni`],
    /// used by the quantized weight pack where `A = W (M x K)` and `K` runs
    /// along block columns.
    VnniCols(usize),
}

/// A blocked logical matrix. See module docs for the layout.
#[derive(Debug)]
pub struct BlockedMatrix<T> {
    data: AlignedVec<T>,
    rows: usize,
    cols: usize,
    br: usize,
    bc: usize,
    grid: GridOrder,
    inner: InnerLayout,
}

impl<T: Element> BlockedMatrix<T> {
    /// Generic constructor; prefer the [`Self::a_layout`] /
    /// [`Self::b_layout`] / [`Self::c_layout`] shorthands for GEMM operands.
    pub fn new(
        rows: usize,
        cols: usize,
        br: usize,
        bc: usize,
        grid: GridOrder,
        inner: InnerLayout,
    ) -> Result<Self, TensorError> {
        check_block("rows", rows, br)?;
        check_block("cols", cols, bc)?;
        match inner {
            InnerLayout::Vnni(v) => check_block("block-rows (vnni)", br, v)?,
            InnerLayout::VnniCols(v) => check_block("block-cols (vnni)", bc, v)?,
            InnerLayout::ColMajor => {}
        }
        Ok(BlockedMatrix { data: AlignedVec::zeroed(rows * cols), rows, cols, br, bc, grid, inner })
    }

    /// GEMM `A` operand: `M x K` blocked `bm x bk`, grid `[Mb][Kb]`.
    pub fn a_layout(m: usize, k: usize, bm: usize, bk: usize) -> Result<Self, TensorError> {
        Self::new(m, k, bm, bk, GridOrder::RowBlockMajor, InnerLayout::ColMajor)
    }

    /// GEMM `B` operand: `K x N` blocked `bk x bn`, grid `[Nb][Kb]`.
    pub fn b_layout(k: usize, n: usize, bk: usize, bn: usize) -> Result<Self, TensorError> {
        Self::new(k, n, bk, bn, GridOrder::ColBlockMajor, InnerLayout::ColMajor)
    }

    /// GEMM `B` operand in VNNI-packed blocks (low-precision path).
    pub fn b_layout_vnni(
        k: usize,
        n: usize,
        bk: usize,
        bn: usize,
        v: usize,
    ) -> Result<Self, TensorError> {
        Self::new(k, n, bk, bn, GridOrder::ColBlockMajor, InnerLayout::Vnni(v))
    }

    /// GEMM `A` operand in VNNI-packed blocks (quantized weight path):
    /// `M x K` blocked `bm x bk`, grid `[Mb][Kb]`, `v` consecutive `K`
    /// elements of each row contiguous within a block.
    pub fn a_layout_vnni(
        m: usize,
        k: usize,
        bm: usize,
        bk: usize,
        v: usize,
    ) -> Result<Self, TensorError> {
        Self::new(m, k, bm, bk, GridOrder::RowBlockMajor, InnerLayout::VnniCols(v))
    }

    /// GEMM `C` operand: `M x N` blocked `bm x bn`, grid `[Nb][Mb]`.
    pub fn c_layout(m: usize, n: usize, bm: usize, bn: usize) -> Result<Self, TensorError> {
        Self::new(m, n, bm, bn, GridOrder::ColBlockMajor, InnerLayout::ColMajor)
    }

    /// Logical row count.
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical column count.
    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Block row extent.
    #[inline(always)]
    pub fn br(&self) -> usize {
        self.br
    }

    /// Block column extent.
    #[inline(always)]
    pub fn bc(&self) -> usize {
        self.bc
    }

    /// Number of row blocks (`rows / br`).
    #[inline(always)]
    pub fn row_blocks(&self) -> usize {
        self.rows / self.br
    }

    /// Number of column blocks (`cols / bc`).
    #[inline(always)]
    pub fn col_blocks(&self) -> usize {
        self.cols / self.bc
    }

    /// Within-block layout.
    #[inline(always)]
    pub fn inner(&self) -> InnerLayout {
        self.inner
    }

    /// Block grid order.
    #[inline(always)]
    pub fn grid(&self) -> GridOrder {
        self.grid
    }

    /// Flat offset of block `(rb, cb)` in element units.
    #[inline(always)]
    pub fn block_offset(&self, rb: usize, cb: usize) -> usize {
        debug_assert!(rb < self.row_blocks() && cb < self.col_blocks());
        let bsz = self.br * self.bc;
        match self.grid {
            GridOrder::RowBlockMajor => (rb * self.col_blocks() + cb) * bsz,
            GridOrder::ColBlockMajor => (cb * self.row_blocks() + rb) * bsz,
        }
    }

    /// Immutable view of block `(rb, cb)` (`br * bc` elements).
    #[inline(always)]
    pub fn block(&self, rb: usize, cb: usize) -> &[T] {
        let off = self.block_offset(rb, cb);
        &self.data[off..off + self.br * self.bc]
    }

    /// Mutable view of block `(rb, cb)`.
    #[inline(always)]
    pub fn block_mut(&mut self, rb: usize, cb: usize) -> &mut [T] {
        let off = self.block_offset(rb, cb);
        let end = off + self.br * self.bc;
        &mut self.data.as_mut_slice()[off..end]
    }

    /// Offset of logical element `(r, c)` within its block.
    #[inline(always)]
    fn inner_offset(&self, r: usize, c: usize) -> usize {
        let (ri, ci) = (r % self.br, c % self.bc);
        match self.inner {
            InnerLayout::ColMajor => ci * self.br + ri,
            InnerLayout::Vnni(v) => (ri / v) * self.bc * v + ci * v + ri % v,
            InnerLayout::VnniCols(v) => (ci / v) * self.br * v + ri * v + ci % v,
        }
    }

    /// Read logical element `(r, c)`.
    #[inline(always)]
    pub fn get(&self, r: usize, c: usize) -> T {
        let off = self.block_offset(r / self.br, c / self.bc) + self.inner_offset(r, c);
        self.data[off]
    }

    /// Write logical element `(r, c)`.
    #[inline(always)]
    pub fn set(&mut self, r: usize, c: usize, v: T) {
        let off = self.block_offset(r / self.br, c / self.bc) + self.inner_offset(r, c);
        self.data[off] = v;
    }

    /// Whole backing buffer (blocks in grid order).
    #[inline(always)]
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Mutable backing buffer.
    #[inline(always)]
    pub fn data_mut(&mut self) -> &mut [T] {
        self.data.as_mut_slice()
    }

    /// Packs a flat column-major `rows x cols` array (leading dim = rows).
    pub fn pack_from_colmajor(&mut self, src: &[f32]) {
        assert_eq!(src.len(), self.rows * self.cols, "source size mismatch");
        for c in 0..self.cols {
            for r in 0..self.rows {
                self.set(r, c, T::from_f32(src[c * self.rows + r]));
            }
        }
    }

    /// Unpacks into a flat column-major `rows x cols` f32 array.
    pub fn unpack_to_colmajor(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.rows * self.cols];
        self.unpack_into_colmajor(&mut out);
        out
    }

    /// Unpacks into a caller-provided flat column-major buffer — the
    /// allocation-reuse twin of [`Self::unpack_to_colmajor`] for callers
    /// that drain the same blocked operand every call (prepared-op
    /// execution paths).
    pub fn unpack_into_colmajor(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.rows * self.cols, "destination size mismatch");
        for c in 0..self.cols {
            for r in 0..self.rows {
                out[c * self.rows + r] = self.get(r, c).to_f32();
            }
        }
    }

    /// Whether this matrix has exactly the given layout (logical extents,
    /// blocking, grid order and inner layout) — the reuse predicate of
    /// [`reuse_blocked`].
    pub fn layout_matches(
        &self,
        rows: usize,
        cols: usize,
        br: usize,
        bc: usize,
        grid: GridOrder,
        inner: InnerLayout,
    ) -> bool {
        self.rows == rows
            && self.cols == cols
            && self.br == br
            && self.bc == bc
            && self.grid == grid
            && self.inner == inner
    }

    /// Builds from a closure over logical indices.
    pub fn from_fn(
        rows: usize,
        cols: usize,
        br: usize,
        bc: usize,
        grid: GridOrder,
        inner: InnerLayout,
        mut f: impl FnMut(usize, usize) -> f32,
    ) -> Result<Self, TensorError> {
        let mut m = Self::new(rows, cols, br, bc, grid, inner)?;
        for c in 0..cols {
            for r in 0..rows {
                m.set(r, c, T::from_f32(f(r, c)));
            }
        }
        Ok(m)
    }
}

/// Returns a blocked matrix of exactly the requested layout, reusing the
/// one already in `slot` when its layout matches (its contents are stale —
/// callers overwrite via [`BlockedMatrix::pack_from_colmajor`] or
/// kernel-side zeroing) and allocating a fresh one otherwise.
///
/// This is the layout-reuse primitive of prepared-op execution: a decode
/// step re-blocks activations with the same `(rows, cols, br, bc)` every
/// layer, so one slot amortizes the allocation across the whole forward.
pub fn reuse_blocked<T: Element>(
    slot: &mut Option<BlockedMatrix<T>>,
    rows: usize,
    cols: usize,
    br: usize,
    bc: usize,
    grid: GridOrder,
    inner: InnerLayout,
) -> Result<&mut BlockedMatrix<T>, TensorError> {
    let reusable = slot.as_ref().is_some_and(|m| m.layout_matches(rows, cols, br, bc, grid, inner));
    if !reusable {
        *slot = Some(BlockedMatrix::new(rows, cols, br, bc, grid, inner)?);
    }
    Ok(slot.as_mut().expect("slot just filled"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::Bf16;

    #[test]
    fn reuse_blocked_reuses_matching_layouts() {
        let mut slot: Option<BlockedMatrix<f32>> = None;
        let first =
            reuse_blocked(&mut slot, 8, 4, 4, 2, GridOrder::ColBlockMajor, InnerLayout::ColMajor)
                .unwrap() as *const BlockedMatrix<f32>;
        // Same layout: same allocation comes back.
        let again =
            reuse_blocked(&mut slot, 8, 4, 4, 2, GridOrder::ColBlockMajor, InnerLayout::ColMajor)
                .unwrap() as *const BlockedMatrix<f32>;
        assert_eq!(first, again);
        // Different layout: replaced.
        let other =
            reuse_blocked(&mut slot, 8, 6, 4, 2, GridOrder::ColBlockMajor, InnerLayout::ColMajor)
                .unwrap();
        assert_eq!(other.cols(), 6);
        // Bad layout: error, slot refreshed on next good request.
        assert!(reuse_blocked(
            &mut slot,
            7,
            6,
            4,
            2,
            GridOrder::ColBlockMajor,
            InnerLayout::ColMajor
        )
        .is_err());
    }

    #[test]
    fn unpack_into_matches_unpack_to() {
        let (m, k) = (12, 8);
        let src: Vec<f32> = (0..m * k).map(|i| i as f32 * 0.25 - 3.0).collect();
        let mut a = BlockedMatrix::<f32>::a_layout(m, k, 4, 2).unwrap();
        a.pack_from_colmajor(&src);
        let mut out = vec![0.0f32; m * k];
        a.unpack_into_colmajor(&mut out);
        assert_eq!(out, a.unpack_to_colmajor());
        assert_eq!(out, src);
    }

    #[test]
    fn a_layout_matches_paper_indexing() {
        // A[Mb][Kb][bk][bm]: element (r,c) of block (im, ik) lives at
        // ((im*Kb + ik) * bk + c%bk) * bm + r%bm.
        let m = 8;
        let k = 6;
        let (bm, bk) = (4, 3);
        let a = BlockedMatrix::<f32>::from_fn(
            m,
            k,
            bm,
            bk,
            GridOrder::RowBlockMajor,
            InnerLayout::ColMajor,
            |r, c| (r * 100 + c) as f32,
        )
        .unwrap();
        let kb = k / bk;
        for r in 0..m {
            for c in 0..k {
                let (im, ik) = (r / bm, c / bk);
                let expect = ((im * kb + ik) * bk + c % bk) * bm + r % bm;
                assert_eq!(a.data()[expect], (r * 100 + c) as f32);
            }
        }
    }

    #[test]
    fn c_layout_grid_is_col_block_major() {
        let c = BlockedMatrix::<f32>::c_layout(8, 8, 4, 4).unwrap();
        // C[Nb][Mb]: block (rb=1, cb=0) immediately follows (rb=0, cb=0).
        assert_eq!(c.block_offset(0, 0), 0);
        assert_eq!(c.block_offset(1, 0), 16);
        assert_eq!(c.block_offset(0, 1), 32);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let (m, k) = (12, 8);
        let src: Vec<f32> = (0..m * k).map(|i| i as f32 * 0.5).collect();
        let mut a = BlockedMatrix::<f32>::a_layout(m, k, 4, 2).unwrap();
        a.pack_from_colmajor(&src);
        assert_eq!(a.unpack_to_colmajor(), src);
    }

    #[test]
    fn vnni_inner_layout_offsets() {
        // bk=4, bn=2, v=2: (r,c) at (r/2)*bn*2 + c*2 + r%2.
        let b = BlockedMatrix::<Bf16>::from_fn(
            4,
            2,
            4,
            2,
            GridOrder::ColBlockMajor,
            InnerLayout::Vnni(2),
            |r, c| (r * 10 + c) as f32,
        )
        .unwrap();
        let raw: Vec<f32> = b.data().iter().map(|x| x.to_f32()).collect();
        // Expected order: (0,0),(1,0),(0,1),(1,1),(2,0),(3,0),(2,1),(3,1)
        assert_eq!(raw, vec![0., 10., 1., 11., 20., 30., 21., 31.]);
    }

    #[test]
    fn vnni_roundtrip_bf16() {
        let src: Vec<f32> = (0..32 * 16).map(|i| (i % 17) as f32 - 8.0).collect();
        let mut b = BlockedMatrix::<Bf16>::b_layout_vnni(32, 16, 8, 4, 2).unwrap();
        b.pack_from_colmajor(&src);
        assert_eq!(b.unpack_to_colmajor(), src);
    }

    #[test]
    fn rejects_bad_blockings() {
        assert!(BlockedMatrix::<f32>::a_layout(10, 10, 3, 2).is_err());
        assert!(BlockedMatrix::<f32>::a_layout(0, 10, 1, 2).is_err());
        assert!(BlockedMatrix::<Bf16>::b_layout_vnni(8, 8, 3, 2, 2).is_err());
        // VnniCols requires the block *column* extent divisible by v.
        assert!(BlockedMatrix::<i8>::a_layout_vnni(8, 6, 4, 3, 4).is_err());
    }

    #[test]
    fn vnni_cols_inner_layout_offsets() {
        // bm=2, bk=4, v=2: (r,c) at (c/2)*bm*2 + r*2 + c%2.
        let a = BlockedMatrix::<i8>::from_fn(
            2,
            4,
            2,
            4,
            GridOrder::RowBlockMajor,
            InnerLayout::VnniCols(2),
            |r, c| (r * 10 + c) as f32,
        )
        .unwrap();
        let raw: Vec<f32> = a.data().iter().map(|x| x.to_f32()).collect();
        // Expected order: (0,0),(0,1),(1,0),(1,1),(0,2),(0,3),(1,2),(1,3)
        assert_eq!(raw, vec![0., 1., 10., 11., 2., 3., 12., 13.]);
    }

    #[test]
    fn vnni_cols_roundtrip_i8() {
        let src: Vec<f32> = (0..16 * 32).map(|i| (i % 17) as f32 - 8.0).collect();
        let mut a = BlockedMatrix::<i8>::a_layout_vnni(16, 32, 8, 8, 4).unwrap();
        a.pack_from_colmajor(&src);
        assert_eq!(a.unpack_to_colmajor(), src);
    }

    #[test]
    fn block_views_are_disjoint_and_complete() {
        let mut c = BlockedMatrix::<f32>::c_layout(8, 8, 4, 2).unwrap();
        for rb in 0..c.row_blocks() {
            for cb in 0..c.col_blocks() {
                let v = (rb * 10 + cb) as f32;
                c.block_mut(rb, cb).iter_mut().for_each(|x| *x = v);
            }
        }
        for r in 0..8 {
            for col in 0..8 {
                assert_eq!(c.get(r, col), ((r / 4) * 10 + col / 2) as f32);
            }
        }
    }
}

impl<T: Element> Clone for BlockedMatrix<T> {
    fn clone(&self) -> Self {
        BlockedMatrix {
            data: self.data.clone(),
            rows: self.rows,
            cols: self.cols,
            br: self.br,
            bc: self.bc,
            grid: self.grid,
            inner: self.inner,
        }
    }
}
