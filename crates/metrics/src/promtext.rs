//! A small Prometheus text-format parser used as an in-repo conformance
//! check: [`parse_prometheus`] validates family/type/label/sample
//! well-formedness, that no `# TYPE` header is an orphan (a declared
//! family with zero samples), that every sample belongs to a declared
//! family, and that histogram series are internally consistent —
//! cumulative buckets monotone non-decreasing under ascending `le`,
//! `+Inf` present and equal to `_count`.
//!
//! This is a *validator*, not a full client: it understands exactly the
//! subset [`crate::render_prometheus`] emits (which is spec-conformant
//! text format), and errors out loudly on anything else.

use std::collections::BTreeMap;

/// What [`parse_prometheus`] found, when the document validates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PromReport {
    /// Families declared via `# TYPE`, name → kind keyword.
    pub families: BTreeMap<String, String>,
    /// Total sample lines.
    pub samples: usize,
    /// Histogram series validated (one per `(family, labelset)`).
    pub histogram_series: usize,
}

#[derive(Debug, Default)]
struct HistSeries {
    buckets: Vec<(f64, f64)>, // (le, cumulative count) in order seen
    sum: Option<f64>,
    count: Option<f64>,
}

fn parse_labels(block: &str) -> Result<Vec<(String, String)>, String> {
    // block is the text between `{` and `}`.
    let mut labels = Vec::new();
    let mut rest = block.trim();
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or_else(|| format!("label without '=': {rest:?}"))?;
        let key = rest[..eq].trim().to_string();
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(format!("bad label name {key:?}"));
        }
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            return Err(format!("label value not quoted: {after:?}"));
        }
        // Scan the quoted value honouring backslash escapes.
        let mut value = String::new();
        let mut chars = after[1..].char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, e)) => value.push(e),
                    None => return Err(format!("dangling escape in {after:?}")),
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end.ok_or_else(|| format!("unterminated label value: {after:?}"))?;
        labels.push((key, value));
        rest = after[1 + end + 1..].trim_start();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r.trim_start();
        } else if !rest.is_empty() {
            return Err(format!("junk after label value: {rest:?}"));
        }
    }
    Ok(labels)
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// One parsed sample line: `(metric name, labels, value)`.
type Sample = (String, Vec<(String, String)>, f64);

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name_part, labels, rest) = match line.find('{') {
        Some(open) => {
            let close =
                line.rfind('}').ok_or_else(|| format!("unbalanced label braces: {line:?}"))?;
            if close < open {
                return Err(format!("unbalanced label braces: {line:?}"));
            }
            (&line[..open], parse_labels(&line[open + 1..close])?, &line[close + 1..])
        }
        None => {
            let sp = line
                .find(|c: char| c.is_ascii_whitespace())
                .ok_or_else(|| format!("sample without value: {line:?}"))?;
            (&line[..sp], Vec::new(), &line[sp..])
        }
    };
    let name = name_part.trim().to_string();
    if !valid_metric_name(&name) {
        return Err(format!("bad metric name {name:?}"));
    }
    let value_text = rest.trim();
    let value = match value_text {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v.parse::<f64>().map_err(|_| format!("bad sample value {v:?} in {line:?}"))?,
    };
    Ok((name, labels, value))
}

/// The family a sample belongs to: for histograms the `_bucket`/`_sum`/
/// `_count` suffix strips back to the declared family name.
fn family_of<'a>(name: &'a str, families: &BTreeMap<String, String>) -> Option<(String, &'a str)> {
    if families.contains_key(name) {
        return Some((name.to_string(), ""));
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if families.get(base).map(String::as_str) == Some("histogram") {
                return Some((base.to_string(), suffix));
            }
        }
    }
    None
}

fn series_id(family: &str, labels: &[(String, String)]) -> String {
    let mut l: Vec<String> =
        labels.iter().filter(|(k, _)| k != "le").map(|(k, v)| format!("{k}={v}")).collect();
    l.sort();
    format!("{family}|{}", l.join(","))
}

/// Parses and validates a Prometheus text exposition. Returns an error
/// string naming the first violation, or a [`PromReport`] summarising
/// the validated document.
pub fn parse_prometheus(text: &str) -> Result<PromReport, String> {
    let mut families: BTreeMap<String, String> = BTreeMap::new();
    let mut samples_per_family: BTreeMap<String, usize> = BTreeMap::new();
    let mut hist: BTreeMap<String, HistSeries> = BTreeMap::new();
    let mut samples = 0usize;

    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.trim_start().splitn(3, ' ');
            match parts.next() {
                Some("TYPE") => {
                    let name = parts.next().ok_or(format!("line {}: TYPE without name", ln + 1))?;
                    let kind = parts.next().ok_or(format!("line {}: TYPE without kind", ln + 1))?;
                    if !valid_metric_name(name) {
                        return Err(format!("line {}: bad family name {name:?}", ln + 1));
                    }
                    if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind) {
                        return Err(format!("line {}: unknown TYPE kind {kind:?}", ln + 1));
                    }
                    if families.insert(name.to_string(), kind.to_string()).is_some() {
                        return Err(format!("line {}: duplicate TYPE for {name:?}", ln + 1));
                    }
                }
                Some("HELP") => {
                    let name = parts.next().ok_or(format!("line {}: HELP without name", ln + 1))?;
                    if !valid_metric_name(name) {
                        return Err(format!("line {}: bad HELP name {name:?}", ln + 1));
                    }
                }
                _ => {} // other comments are legal and ignored
            }
            continue;
        }
        let (name, labels, value) =
            parse_sample(line).map_err(|e| format!("line {}: {e}", ln + 1))?;
        let Some((family, suffix)) = family_of(&name, &families) else {
            return Err(format!("line {}: sample {name:?} has no preceding # TYPE", ln + 1));
        };
        samples += 1;
        *samples_per_family.entry(family.clone()).or_insert(0) += 1;
        if families.get(&family).map(String::as_str) == Some("histogram") {
            let id = series_id(&family, &labels);
            let entry = hist.entry(id).or_default();
            match suffix {
                "_bucket" => {
                    let le = labels
                        .iter()
                        .find(|(k, _)| k == "le")
                        .ok_or(format!("line {}: _bucket without le label", ln + 1))?;
                    let le_val = match le.1.as_str() {
                        "+Inf" => f64::INFINITY,
                        v => v
                            .parse::<f64>()
                            .map_err(|_| format!("line {}: bad le value {v:?}", ln + 1))?,
                    };
                    entry.buckets.push((le_val, value));
                }
                "_sum" => entry.sum = Some(value),
                "_count" => entry.count = Some(value),
                _ => {
                    return Err(format!(
                        "line {}: bare sample {name:?} for histogram family",
                        ln + 1
                    ))
                }
            }
        }
    }

    // No orphan TYPE headers.
    for family in families.keys() {
        if samples_per_family.get(family).copied().unwrap_or(0) == 0 {
            return Err(format!("family {family:?} declared by # TYPE but has no samples"));
        }
    }
    // Histogram series consistency.
    for (id, series) in &hist {
        if series.buckets.is_empty() {
            return Err(format!("histogram series {id:?} has no _bucket samples"));
        }
        for pair in series.buckets.windows(2) {
            if pair[1].0 <= pair[0].0 {
                return Err(format!("histogram series {id:?}: le edges not ascending"));
            }
            if pair[1].1 < pair[0].1 {
                return Err(format!("histogram series {id:?}: cumulative buckets decrease"));
            }
        }
        let (last_le, last_count) = *series.buckets.last().unwrap();
        if !last_le.is_infinite() {
            return Err(format!("histogram series {id:?}: missing le=\"+Inf\" bucket"));
        }
        let count =
            series.count.ok_or_else(|| format!("histogram series {id:?}: missing _count"))?;
        if series.sum.is_none() {
            return Err(format!("histogram series {id:?}: missing _sum"));
        }
        if last_count != count {
            return Err(format!(
                "histogram series {id:?}: +Inf bucket {last_count} != _count {count}"
            ));
        }
    }

    Ok(PromReport { families, samples, histogram_series: hist.len() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;
    use crate::render::render_prometheus;

    #[test]
    fn rendered_exposition_validates() {
        let r = MetricsRegistry::new();
        r.help("pl_steps_total", "steps");
        r.counter("pl_steps_total", &[("tenant", "0")]).add(3);
        r.gauge("pl_shard_health", &[("shard", "0")]).set(0.0);
        let h = r.histogram("pl_queue_wait_us", &[("tenant", "0")]);
        h.observe(7);
        h.observe(12345);
        let report = parse_prometheus(&render_prometheus(&r.snapshot())).expect("validates");
        assert_eq!(report.families.len(), 3);
        assert_eq!(report.families["pl_queue_wait_us"], "histogram");
        assert_eq!(report.histogram_series, 1);
        assert!(report.samples > 40, "histogram emits one line per bucket");
    }

    #[test]
    fn orphan_type_is_rejected() {
        let text = "# TYPE pl_ghost counter\n# TYPE pl_real counter\npl_real 1\n";
        let err = parse_prometheus(text).unwrap_err();
        assert!(err.contains("pl_ghost"), "{err}");
    }

    #[test]
    fn undeclared_sample_is_rejected() {
        let err = parse_prometheus("pl_mystery 42\n").unwrap_err();
        assert!(err.contains("no preceding # TYPE"), "{err}");
    }

    #[test]
    fn non_monotone_histogram_is_rejected() {
        let text = "# TYPE pl_h histogram\n\
                    pl_h_bucket{le=\"1\"} 5\n\
                    pl_h_bucket{le=\"2\"} 3\n\
                    pl_h_bucket{le=\"+Inf\"} 5\n\
                    pl_h_sum 9\npl_h_count 5\n";
        let err = parse_prometheus(text).unwrap_err();
        assert!(err.contains("decrease"), "{err}");
    }

    #[test]
    fn inf_bucket_must_equal_count() {
        let text = "# TYPE pl_h histogram\n\
                    pl_h_bucket{le=\"1\"} 5\n\
                    pl_h_bucket{le=\"+Inf\"} 5\n\
                    pl_h_sum 9\npl_h_count 6\n";
        let err = parse_prometheus(text).unwrap_err();
        assert!(err.contains("!= _count"), "{err}");
    }

    #[test]
    fn missing_inf_bucket_is_rejected() {
        let text = "# TYPE pl_h histogram\n\
                    pl_h_bucket{le=\"1\"} 5\n\
                    pl_h_sum 9\npl_h_count 5\n";
        let err = parse_prometheus(text).unwrap_err();
        assert!(err.contains("+Inf"), "{err}");
    }

    #[test]
    fn bad_label_syntax_is_rejected() {
        assert!(parse_prometheus("# TYPE a counter\na{x=unquoted} 1\n").is_err());
        assert!(parse_prometheus("# TYPE a counter\na{x=\"open} 1\n").is_err());
        assert!(parse_prometheus("# TYPE a counter\na{} nope\n").is_err());
    }

    #[test]
    fn escaped_label_values_round_trip() {
        let r = MetricsRegistry::new();
        r.counter("pl_x_total", &[("p", "a\"b\\c\nd")]).inc();
        let report = parse_prometheus(&render_prometheus(&r.snapshot())).expect("validates");
        assert_eq!(report.samples, 1);
    }
}
