//! Rolling-window SLO tracking.
//!
//! An [`SloWindow`] holds a target p99 latency and a ring of per-second
//! slots over the last N seconds; each slot counts observations, how
//! many exceeded the target, and log2 latency buckets. From those it
//! answers the two operator questions: *what fraction of recent
//! requests violated the target* (expressed as a **burn rate** against
//! a 1% error budget — burn ≥ 1.0 means the budget is being spent as
//! fast as it accrues) and *what is the windowed p99 right now*.
//!
//! Time is injectable: the serving hot path calls [`SloWindow::record`]
//! (internal monotonic clock), tests call [`SloWindow::record_at`] /
//! [`SloWindow::burn_rate_at`] with explicit milliseconds to drive the
//! window deterministically.

use crate::buckets::{bucket_of, merge_buckets, quantile_from_buckets};
use std::sync::Mutex;
use std::time::Instant;

/// Fraction of requests allowed over target — the error budget burn
/// rates are normalised against (1%: matching a "p99 under target"
/// objective).
pub const ERROR_BUDGET: f64 = 0.01;

const SLOT_BUCKETS: usize = 40;

#[derive(Debug, Clone)]
struct Slot {
    /// Which absolute second this slot currently holds (u64::MAX =
    /// never written).
    sec: u64,
    total: u64,
    over: u64,
    buckets: Vec<u64>,
}

impl Slot {
    fn empty() -> Self {
        Slot { sec: u64::MAX, total: 0, over: 0, buckets: vec![0; SLOT_BUCKETS] }
    }

    fn reset_to(&mut self, sec: u64) {
        self.sec = sec;
        self.total = 0;
        self.over = 0;
        self.buckets.iter_mut().for_each(|b| *b = 0);
    }
}

/// A rolling per-second window tracking a latency target. Interior
/// mutability (one mutex over the ring) so the server can share it
/// behind an `Arc` between the pump thread and scrapers; the critical
/// section is a few adds.
#[derive(Debug)]
pub struct SloWindow {
    target_us: u64,
    window_s: u64,
    epoch: Instant,
    slots: Mutex<Vec<Slot>>,
}

impl SloWindow {
    /// A window targeting `target_us` p99 over the last `window_s`
    /// seconds (clamped to ≥ 1).
    pub fn new(target_us: u64, window_s: u64) -> Self {
        let window_s = window_s.max(1);
        SloWindow {
            target_us,
            window_s,
            epoch: Instant::now(),
            slots: Mutex::new(vec![Slot::empty(); window_s as usize]),
        }
    }

    /// The latency target in microseconds.
    pub fn target_us(&self) -> u64 {
        self.target_us
    }

    /// The window length in seconds.
    pub fn window_s(&self) -> u64 {
        self.window_s
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Records one latency observation at the internal clock's now.
    pub fn record(&self, us: u64) {
        self.record_at(self.now_ms(), us);
    }

    /// Records one latency observation at explicit time `ms` since the
    /// window's epoch — the deterministic injection point for tests.
    pub fn record_at(&self, ms: u64, us: u64) {
        let sec = ms / 1000;
        let mut slots = self.slots.lock().unwrap();
        let idx = (sec % self.window_s) as usize;
        let slot = &mut slots[idx];
        if slot.sec != sec {
            slot.reset_to(sec);
        }
        slot.total += 1;
        if us > self.target_us {
            slot.over += 1;
        }
        slot.buckets[bucket_of(us, SLOT_BUCKETS)] += 1;
    }

    /// `(total, over_target, summed buckets)` across slots still inside
    /// the window ending at `ms`.
    fn window_at(&self, ms: u64) -> (u64, u64, Vec<u64>) {
        let now_sec = ms / 1000;
        let oldest = now_sec.saturating_sub(self.window_s - 1);
        let slots = self.slots.lock().unwrap();
        let (mut total, mut over) = (0u64, 0u64);
        let mut buckets = vec![0u64; SLOT_BUCKETS];
        for slot in slots.iter() {
            if slot.sec != u64::MAX && slot.sec >= oldest && slot.sec <= now_sec {
                total += slot.total;
                over += slot.over;
                merge_buckets(&mut buckets, &slot.buckets);
            }
        }
        (total, over, buckets)
    }

    /// Burn rate at explicit time `ms`: the windowed violation fraction
    /// divided by [`ERROR_BUDGET`]. 0.0 when the window is empty; 1.0
    /// means the error budget is being consumed exactly as fast as it
    /// accrues; > 1.0 means the SLO is burning down.
    pub fn burn_rate_at(&self, ms: u64) -> f64 {
        let (total, over, _) = self.window_at(ms);
        if total == 0 {
            return 0.0;
        }
        (over as f64 / total as f64) / ERROR_BUDGET
    }

    /// Burn rate at the internal clock's now.
    pub fn burn_rate(&self) -> f64 {
        self.burn_rate_at(self.now_ms())
    }

    /// Windowed p99 (upper-edge estimate, µs) at explicit time `ms`.
    pub fn p99_at(&self, ms: u64) -> u64 {
        let (_, _, buckets) = self.window_at(ms);
        quantile_from_buckets(&buckets, 0.99)
    }

    /// Windowed p99 at the internal clock's now.
    pub fn p99(&self) -> u64 {
        self.p99_at(self.now_ms())
    }

    /// Windowed observation count at the internal clock's now.
    pub fn observations(&self) -> u64 {
        self.window_at(self.now_ms()).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_burns_nothing() {
        let w = SloWindow::new(1000, 10);
        assert_eq!(w.burn_rate_at(0), 0.0);
        assert_eq!(w.p99_at(0), 0);
    }

    #[test]
    fn violations_divide_by_the_error_budget() {
        let w = SloWindow::new(1000, 10);
        // 99 in-target + 1 over: exactly the 1% budget -> burn 1.0.
        for _ in 0..99 {
            w.record_at(500, 100);
        }
        w.record_at(500, 5000);
        assert!((w.burn_rate_at(900) - 1.0).abs() < 1e-9);
        // All over target -> burn 100x.
        let hot = SloWindow::new(1000, 10);
        for _ in 0..10 {
            hot.record_at(0, 9999);
        }
        assert!((hot.burn_rate_at(0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn old_slots_age_out_of_the_window() {
        let w = SloWindow::new(1000, 5);
        for _ in 0..50 {
            w.record_at(1000, 9999); // second 1, all violations
        }
        assert!(w.burn_rate_at(1000) > 1.0);
        // 5 seconds later the window has slid past second 1.
        assert_eq!(w.burn_rate_at(6500), 0.0);
        // New traffic in the fresh window dominates.
        w.record_at(7000, 10);
        assert_eq!(w.burn_rate_at(7000), 0.0);
        assert_eq!(w.p99_at(7000), 16); // bucket [8,16) upper edge
    }

    #[test]
    fn ring_reuse_resets_stale_slots() {
        let w = SloWindow::new(1000, 2);
        w.record_at(0, 5000); // second 0 -> slot 0
        w.record_at(2000, 10); // second 2 -> same slot 0, must reset
        let (total, over, _) = w.window_at(2500);
        assert_eq!((total, over), (1, 0), "stale second-0 data must not leak");
    }

    #[test]
    fn windowed_p99_recomputes_from_summed_buckets() {
        let w = SloWindow::new(1_000_000, 10);
        for _ in 0..99 {
            w.record_at(100, 3); // bucket [2,4)
        }
        w.record_at(1100, 1_000_000);
        assert_eq!(w.p99_at(1500), 4);
        assert_eq!(w.observations_at_test(1500), 100);
    }

    impl SloWindow {
        fn observations_at_test(&self, ms: u64) -> u64 {
            self.window_at(ms).0
        }
    }
}
