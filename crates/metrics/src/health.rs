//! Shard health: the state machine placement consumes.
//!
//! [`Health`] is the operator-facing summary of one serving shard;
//! [`HealthTracker`] derives it from an SLO burn rate and a watchdog
//! verdict, with a hysteresis band (enter `Degraded` at burn ≥ 1.0,
//! recover only once burn falls to ≤ 0.5) so a shard hovering at the
//! threshold does not flap in and out of new-session placement.

use std::sync::atomic::{AtomicBool, Ordering};

/// Health of one serving shard. Ordering reflects severity; the numeric
/// value is what the `pl_shard_health` gauge exports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Health {
    /// Serving normally; eligible for new-session placement.
    Healthy,
    /// SLO burn over threshold; existing sessions keep stepping, new
    /// sessions are placed elsewhere.
    Degraded,
    /// Administratively draining (operator intent, overlaid by the
    /// router) — no new sessions by definition.
    Draining,
    /// Watchdog fired: work pending but no batch collected for the
    /// deadline.
    Stalled,
}

impl Health {
    /// Whether a shard in this state accepts **new** sessions.
    pub fn placeable(self) -> bool {
        matches!(self, Health::Healthy)
    }

    /// Gauge encoding (0 healthy, 1 degraded, 2 draining, 3 stalled).
    pub fn as_f64(self) -> f64 {
        match self {
            Health::Healthy => 0.0,
            Health::Degraded => 1.0,
            Health::Draining => 2.0,
            Health::Stalled => 3.0,
        }
    }

    /// Lower-case name for logs and label values.
    pub fn name(self) -> &'static str {
        match self {
            Health::Healthy => "healthy",
            Health::Degraded => "degraded",
            Health::Draining => "draining",
            Health::Stalled => "stalled",
        }
    }
}

impl std::fmt::Display for Health {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Default burn rate at which a shard enters `Degraded`.
pub const DEFAULT_ENTER_BURN: f64 = 1.0;
/// Default burn rate a degraded shard must fall to before recovering.
pub const DEFAULT_EXIT_BURN: f64 = 0.5;

/// Derives [`Health`] from (burn rate, stalled) with hysteresis. The
/// tracker remembers only whether it is currently degraded; a stalled
/// verdict overrides everything and does not disturb the degraded latch
/// (a shard can come out of a stall still degraded).
#[derive(Debug)]
pub struct HealthTracker {
    enter_burn: f64,
    exit_burn: f64,
    degraded: AtomicBool,
}

impl Default for HealthTracker {
    fn default() -> Self {
        Self::new(DEFAULT_ENTER_BURN, DEFAULT_EXIT_BURN)
    }
}

impl HealthTracker {
    /// A tracker entering `Degraded` at `enter_burn` and recovering at
    /// `exit_burn` (asserts `exit_burn <= enter_burn` — an inverted
    /// band would flap by construction).
    pub fn new(enter_burn: f64, exit_burn: f64) -> Self {
        assert!(
            exit_burn <= enter_burn,
            "hysteresis band inverted: exit {exit_burn} > enter {enter_burn}"
        );
        HealthTracker { enter_burn, exit_burn, degraded: AtomicBool::new(false) }
    }

    /// Folds one evaluation in and returns the current health.
    pub fn evaluate(&self, burn_rate: f64, stalled: bool) -> Health {
        let was = self.degraded.load(Ordering::Relaxed);
        let now = if was { burn_rate > self.exit_burn } else { burn_rate >= self.enter_burn };
        self.degraded.store(now, Ordering::Relaxed);
        if stalled {
            Health::Stalled
        } else if now {
            Health::Degraded
        } else {
            Health::Healthy
        }
    }

    /// Whether the degraded latch is currently set (without evaluating).
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placeability_and_encoding() {
        assert!(Health::Healthy.placeable());
        for h in [Health::Degraded, Health::Draining, Health::Stalled] {
            assert!(!h.placeable(), "{h}");
        }
        assert_eq!(Health::Stalled.as_f64(), 3.0);
        assert_eq!(Health::Healthy.to_string(), "healthy");
    }

    #[test]
    fn hysteresis_band_prevents_flapping() {
        let t = HealthTracker::new(1.0, 0.5);
        assert_eq!(t.evaluate(0.9, false), Health::Healthy);
        assert_eq!(t.evaluate(1.0, false), Health::Degraded, "enter at threshold");
        // Hovering inside the band stays degraded — no oscillation.
        assert_eq!(t.evaluate(0.9, false), Health::Degraded);
        assert_eq!(t.evaluate(0.6, false), Health::Degraded);
        assert_eq!(t.evaluate(0.51, false), Health::Degraded);
        // Only a drop to the exit threshold recovers.
        assert_eq!(t.evaluate(0.5, false), Health::Healthy);
        assert_eq!(t.evaluate(0.9, false), Health::Healthy, "below enter stays healthy");
    }

    #[test]
    fn stall_overrides_but_preserves_the_degraded_latch() {
        let t = HealthTracker::new(1.0, 0.5);
        assert_eq!(t.evaluate(5.0, true), Health::Stalled);
        // Stall clears while burn is still inside the band: degraded.
        assert_eq!(t.evaluate(0.7, false), Health::Degraded);
    }

    #[test]
    #[should_panic(expected = "hysteresis band inverted")]
    fn inverted_band_is_rejected() {
        let _ = HealthTracker::new(0.5, 1.0);
    }
}
