//! Snapshot renderers: Prometheus text exposition and JSON.

use crate::registry::{MetricKind, MetricsSnapshot, SeriesKey};
use std::fmt::Write;

/// Escapes a label value per the Prometheus text format (`\`, `"`,
/// newline).
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Escapes `# HELP` text (`\` and newline only; quotes are legal).
fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

fn label_block(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    format!("{{{}}}", inner.join(","))
}

fn label_block_with_le(labels: &[(String, String)], le: &str) -> String {
    let mut inner: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    inner.push(format!("le=\"{le}\""));
    format!("{{{}}}", inner.join(","))
}

/// Renders a gauge value the way Prometheus expects (`NaN`/`+Inf`
/// spelled out; integral values without a trailing `.0` is fine — the
/// format is float-typed).
fn render_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v.is_infinite() {
        if v > 0.0 {
            "+Inf".into()
        } else {
            "-Inf".into()
        }
    } else {
        format!("{v}")
    }
}

/// Renders a snapshot in the Prometheus text exposition format:
/// `# HELP` / `# TYPE` per family (families sorted by name, series by
/// labels), counters as plain samples, histograms as cumulative
/// `_bucket{le=...}` series (upper edges `2^i`, final catch-all as
/// `+Inf`) plus `_sum` and `_count`. Every emitted `# TYPE` is followed
/// by at least one sample — a family exists only through its series, so
/// orphan headers cannot occur.
pub fn render_prometheus(snapshot: &MetricsSnapshot) -> String {
    let kinds = snapshot.kinds();
    let mut out = String::new();
    for (family, kind) in &kinds {
        if let Some(help) = snapshot.help.get(family) {
            let _ = writeln!(out, "# HELP {family} {}", escape_help(help));
        }
        let _ = writeln!(out, "# TYPE {family} {}", kind.prom_name());
        match kind {
            MetricKind::Counter => {
                for ((name, labels), v) in &snapshot.counters {
                    if name == family {
                        let _ = writeln!(out, "{name}{} {v}", label_block(labels));
                    }
                }
            }
            MetricKind::Gauge => {
                for ((name, labels), v) in &snapshot.gauges {
                    if name == family {
                        let _ = writeln!(out, "{name}{} {}", label_block(labels), render_f64(*v));
                    }
                }
            }
            MetricKind::Histogram => {
                for ((name, labels), h) in &snapshot.histograms {
                    if name != family {
                        continue;
                    }
                    let mut cumulative = 0u64;
                    for (i, &c) in h.buckets.iter().enumerate() {
                        cumulative += c;
                        let le = if i + 1 == h.buckets.len() {
                            "+Inf".to_string()
                        } else {
                            format!("{}", 1u128 << i)
                        };
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {cumulative}",
                            label_block_with_le(labels, &le)
                        );
                    }
                    // An empty bucket vector still needs the +Inf edge
                    // for spec conformance.
                    if h.buckets.is_empty() {
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {}",
                            label_block_with_le(labels, "+Inf"),
                            h.count
                        );
                    }
                    let _ = writeln!(out, "{name}_sum{} {}", label_block(labels), h.sum);
                    let _ = writeln!(out, "{name}_count{} {}", label_block(labels), h.count);
                }
            }
        }
    }
    out
}

fn escape_json(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_labels(labels: &[(String, String)]) -> String {
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", escape_json(k), escape_json(v)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

fn json_series_head(key: &SeriesKey) -> String {
    format!("\"name\":\"{}\",\"labels\":{}", escape_json(&key.0), json_labels(&key.1))
}

/// Renders a snapshot as a JSON document (hand-rolled like the rest of
/// the workspace's artifacts):
/// `{"counters":[...],"gauges":[...],"histograms":[...]}` with each
/// series carrying `name`, `labels`, and its value(s).
pub fn snapshot_to_json(snapshot: &MetricsSnapshot) -> String {
    let counters: Vec<String> = snapshot
        .counters
        .iter()
        .map(|(k, v)| format!("{{{},\"value\":{v}}}", json_series_head(k)))
        .collect();
    let gauges: Vec<String> = snapshot
        .gauges
        .iter()
        .map(|(k, v)| format!("{{{},\"value\":{}}}", json_series_head(k), render_f64(*v)))
        .collect();
    let histograms: Vec<String> = snapshot
        .histograms
        .iter()
        .map(|(k, h)| {
            let buckets: Vec<String> = h.buckets.iter().map(|b| b.to_string()).collect();
            format!(
                "{{{},\"count\":{},\"sum\":{},\"buckets\":[{}]}}",
                json_series_head(k),
                h.count,
                h.sum,
                buckets.join(",")
            )
        })
        .collect();
    format!(
        "{{\"counters\":[{}],\"gauges\":[{}],\"histograms\":[{}]}}",
        counters.join(","),
        gauges.join(","),
        histograms.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn sample_snapshot() -> MetricsSnapshot {
        let r = MetricsRegistry::new();
        r.help("pl_steps_total", "Decode steps delivered");
        r.counter("pl_steps_total", &[("tenant", "0")]).add(10);
        r.counter("pl_steps_total", &[("tenant", "1")]).add(4);
        r.gauge("pl_pending", &[]).set(3.0);
        let h = r.histogram("pl_queue_wait_us", &[("tenant", "0")]);
        h.observe(3);
        h.observe(900);
        r.snapshot()
    }

    #[test]
    fn prometheus_families_and_samples_render() {
        let text = render_prometheus(&sample_snapshot());
        assert!(text.contains("# HELP pl_steps_total Decode steps delivered"));
        assert!(text.contains("# TYPE pl_steps_total counter"));
        assert!(text.contains("pl_steps_total{tenant=\"0\"} 10"));
        assert!(text.contains("pl_steps_total{tenant=\"1\"} 4"));
        assert!(text.contains("# TYPE pl_pending gauge"));
        assert!(text.contains("pl_pending 3"));
        assert!(text.contains("# TYPE pl_queue_wait_us histogram"));
        assert!(text.contains("pl_queue_wait_us_sum{tenant=\"0\"} 903"));
        assert!(text.contains("pl_queue_wait_us_count{tenant=\"0\"} 2"));
        assert!(text.contains("le=\"+Inf\""));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_count() {
        let text = render_prometheus(&sample_snapshot());
        // 3 lands in bucket 2 (le=4 cumulative 1); 900 in bucket 10
        // (le=1024 cumulative 2).
        assert!(text.contains("le=\"4\"} 1"), "{text}");
        assert!(text.contains("le=\"1024\"} 2"), "{text}");
        let inf = text
            .lines()
            .find(|l| l.starts_with("pl_queue_wait_us_bucket") && l.contains("+Inf"))
            .unwrap();
        assert!(inf.ends_with(" 2"), "{inf}");
    }

    #[test]
    fn label_escaping() {
        let r = MetricsRegistry::new();
        r.counter("pl_x_total", &[("path", "a\"b\\c\nd")]).inc();
        let text = render_prometheus(&r.snapshot());
        assert!(text.contains("path=\"a\\\"b\\\\c\\nd\""), "{text}");
    }

    #[test]
    fn json_renders_every_map() {
        let json = snapshot_to_json(&sample_snapshot());
        assert!(json.contains("\"name\":\"pl_steps_total\""));
        assert!(json.contains("\"labels\":{\"tenant\":\"0\"}"));
        assert!(json.contains("\"name\":\"pl_pending\""));
        assert!(json.contains("\"count\":2,\"sum\":903"));
        assert!(json.starts_with("{\"counters\":["));
    }
}
