//! `pl_metrics` — the unified metrics & health plane.
//!
//! A dependency-free (std-only) labeled metrics registry: counters,
//! gauges and log2-bucket histograms keyed by `(name, labels)`, with
//! lock-light accumulation (hot paths touch pre-created handles backed
//! by atomics — the registry lock is only taken at handle creation and
//! snapshot time), mergeable snapshots reusing the serving layer's
//! summed-bucket discipline, and two renderers: Prometheus text
//! exposition ([`render_prometheus`]) and JSON ([`snapshot_to_json`]).
//!
//! On top of the registry sit three operator-facing primitives:
//!
//! - [`SloWindow`]: rolling per-second window tracking a latency target
//!   (violation fraction → burn rate, windowed p99).
//! - [`Health`] / [`HealthTracker`]: the shard health state machine
//!   (`Healthy | Degraded | Draining | Stalled`) with a hysteresis band
//!   so a flapping shard does not oscillate in and out of placement.
//! - [`Watchdog`]: detects a stalled pump — work pending but no batch
//!   collected for a deadline.
//!
//! This crate sits at the very bottom of the workspace graph (no
//! dependencies at all), so `pl_trace`, `pl_serve`, `pl_router` and
//! `pl_retune` all publish into it without cycles. The shared
//! log2-bucket fold in [`buckets`] is the single implementation behind
//! `pl_serve`'s and `pl_trace`'s histograms.

#![warn(missing_docs)]

pub mod buckets;
pub mod health;
pub mod promtext;
pub mod registry;
pub mod render;
pub mod slo;
pub mod watchdog;

pub use buckets::{bucket_of, merge_buckets, quantile_from_buckets};
pub use health::{Health, HealthTracker};
pub use promtext::{parse_prometheus, PromReport};
pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricKind, MetricsRegistry, MetricsSnapshot,
    HIST_BUCKETS,
};
pub use render::{render_prometheus, snapshot_to_json};
pub use slo::SloWindow;
pub use watchdog::Watchdog;
