//! The stall watchdog: detects a pump that has stopped making progress
//! while work is queued.
//!
//! The contract mirrors the livelock class the serving layer's ticket
//! interlock closed per-bug: if `pending > 0` and the batch counter has
//! not advanced for `deadline`, something is wedged — report `Stalled`.
//! An **idle** server (`pending == 0`) never fires, no matter how long
//! it sits. Progress (the batch counter advancing) or going idle clears
//! the stall.
//!
//! Time is injectable: [`Watchdog::check`] uses the internal monotonic
//! clock; [`Watchdog::observe`] takes explicit milliseconds for
//! deterministic tests.

use std::sync::Mutex;
use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy)]
struct WatchState {
    /// Whether we are currently timing a pending backlog.
    armed: bool,
    /// When the backlog last made progress (ms on the caller's clock).
    last_progress_ms: u64,
    /// Batch counter at the last observation.
    last_batches: u64,
    /// Latched verdict.
    stalled: bool,
}

/// Stall detector over `(pending, batches)` observations.
#[derive(Debug)]
pub struct Watchdog {
    deadline: Duration,
    epoch: Instant,
    state: Mutex<WatchState>,
}

impl Watchdog {
    /// A watchdog firing when `pending > 0` and no batch completes for
    /// `deadline`.
    pub fn new(deadline: Duration) -> Self {
        Watchdog {
            deadline,
            epoch: Instant::now(),
            state: Mutex::new(WatchState {
                armed: false,
                last_progress_ms: 0,
                last_batches: 0,
                stalled: false,
            }),
        }
    }

    /// The configured deadline.
    pub fn deadline(&self) -> Duration {
        self.deadline
    }

    /// Feeds one observation at explicit time `now_ms`: current queue
    /// depth and the cumulative batch counter. Returns whether the pump
    /// is considered stalled as of this observation.
    pub fn observe(&self, now_ms: u64, pending: u64, batches: u64) -> bool {
        let mut s = self.state.lock().unwrap();
        if pending == 0 {
            // Idle-but-empty is healthy by definition.
            s.armed = false;
            s.stalled = false;
            s.last_batches = batches;
            return false;
        }
        if !s.armed {
            s.armed = true;
            s.last_progress_ms = now_ms;
            s.last_batches = batches;
            return s.stalled;
        }
        if batches != s.last_batches {
            s.last_batches = batches;
            s.last_progress_ms = now_ms;
            s.stalled = false;
            return false;
        }
        if now_ms.saturating_sub(s.last_progress_ms) >= self.deadline.as_millis() as u64 {
            s.stalled = true;
        }
        s.stalled
    }

    /// [`Watchdog::observe`] at the internal clock's now.
    pub fn check(&self, pending: u64, batches: u64) -> bool {
        self.observe(self.epoch.elapsed().as_millis() as u64, pending, batches)
    }

    /// The latched verdict from the last observation (no re-evaluation).
    pub fn is_stalled(&self) -> bool {
        self.state.lock().unwrap().stalled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dog(ms: u64) -> Watchdog {
        Watchdog::new(Duration::from_millis(ms))
    }

    #[test]
    fn idle_but_empty_never_fires() {
        let w = dog(100);
        for t in (0..10_000).step_by(500) {
            assert!(!w.observe(t, 0, 0), "idle server must never stall (t={t})");
        }
    }

    #[test]
    fn pending_without_progress_fires_after_the_deadline() {
        let w = dog(100);
        assert!(!w.observe(0, 3, 7), "first pending observation arms, not fires");
        assert!(!w.observe(50, 3, 7), "inside deadline");
        assert!(w.observe(100, 3, 7), "deadline reached with no batch progress");
        assert!(w.is_stalled());
    }

    #[test]
    fn batch_progress_resets_the_deadline_and_clears_the_latch() {
        let w = dog(100);
        assert!(!w.observe(0, 3, 7));
        assert!(w.observe(150, 3, 7), "stalled");
        // A batch completes: stall clears, timer restarts.
        assert!(!w.observe(160, 2, 8));
        assert!(!w.observe(250, 2, 8), "90ms since progress — inside deadline");
        assert!(w.observe(260, 2, 8), "100ms since progress — stalled again");
    }

    #[test]
    fn going_idle_disarms_and_rearms_fresh() {
        let w = dog(100);
        assert!(!w.observe(0, 1, 0));
        assert!(!w.observe(90, 1, 0));
        assert!(!w.observe(95, 0, 1), "drained: disarm");
        // New backlog much later: the old timer must not count.
        assert!(!w.observe(10_000, 1, 1), "re-arm");
        assert!(!w.observe(10_090, 1, 1));
        assert!(w.observe(10_100, 1, 1));
    }

    #[test]
    fn burst_of_observations_at_the_same_instant_does_not_fire() {
        let w = dog(100);
        for _ in 0..100 {
            assert!(!w.observe(5, 4, 2));
        }
    }
}
