//! The labeled metrics registry: counters, gauges and log2-bucket
//! histograms keyed by `(name, sorted labels)`.
//!
//! Hot paths never touch the registry: `counter`/`gauge`/`histogram`
//! are get-or-create calls that hand back cheap cloneable handles
//! backed by shared atomics — create handles once (per tenant, per
//! shard), then record lock-free. The registry's own mutex is only
//! taken at handle creation and [`MetricsRegistry::snapshot`] time.

use crate::buckets::{bucket_of, merge_buckets, quantile_from_buckets};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Buckets per registry histogram — same width as `pl_serve`'s latency
/// histograms (bucket `i` covers `[2^(i-1), 2^i)` of whatever unit the
/// metric's name declares, conventionally µs).
pub const HIST_BUCKETS: usize = 40;

/// What a metric family is — determines Prometheus `# TYPE` and which
/// snapshot map carries it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing u64 (`_total` names by convention).
    Counter,
    /// Point-in-time f64.
    Gauge,
    /// Log2-bucket distribution with count and sum.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword.
    pub fn prom_name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Canonical series key: metric family name + label pairs sorted by
/// label name.
pub type SeriesKey = (String, Vec<(String, String)>);

fn series_key(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
    let mut l: Vec<(String, String)> =
        labels.iter().map(|&(k, v)| (k.to_string(), v.to_string())).collect();
    l.sort();
    (name.to_string(), l)
}

/// A monotonically increasing counter handle. Clone freely; all clones
/// share the same cell.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time gauge handle (f64 stored as bits in an atomic).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
pub(crate) struct HistogramCore {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A log2-bucket histogram handle.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: u64) {
        self.0.buckets[bucket_of(v, HIST_BUCKETS)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Upper-edge estimate of quantile `q` (`0.0..=1.0`).
    pub fn quantile(&self, q: f64) -> u64 {
        let buckets: Vec<u64> = self.0.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        quantile_from_buckets(&buckets, q)
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<SeriesKey, Arc<AtomicU64>>,
    gauges: BTreeMap<SeriesKey, Arc<AtomicU64>>,
    histograms: BTreeMap<SeriesKey, Arc<HistogramCore>>,
    kinds: BTreeMap<String, MetricKind>,
    help: BTreeMap<String, String>,
}

impl RegistryInner {
    fn claim_kind(&mut self, name: &str, kind: MetricKind) {
        match self.kinds.get(name) {
            None => {
                self.kinds.insert(name.to_string(), kind);
            }
            Some(&existing) => assert_eq!(
                existing, kind,
                "metric family {name:?} registered as {existing:?} and {kind:?}"
            ),
        }
    }
}

/// The registry. One per `Server`; a `Router` merges its shards'
/// snapshots with a `shard` label instead of sharing one registry.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("MetricsRegistry")
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get-or-create the counter `(name, labels)`. Panics if `name` was
    /// already registered as a different kind (a programming error, not
    /// an operational condition).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = series_key(name, labels);
        let mut inner = self.inner.lock().unwrap();
        inner.claim_kind(name, MetricKind::Counter);
        Counter(Arc::clone(inner.counters.entry(key).or_default()))
    }

    /// Get-or-create the gauge `(name, labels)`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = series_key(name, labels);
        let mut inner = self.inner.lock().unwrap();
        inner.claim_kind(name, MetricKind::Gauge);
        Gauge(Arc::clone(inner.gauges.entry(key).or_default()))
    }

    /// Get-or-create the histogram `(name, labels)`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let key = series_key(name, labels);
        let mut inner = self.inner.lock().unwrap();
        inner.claim_kind(name, MetricKind::Histogram);
        Histogram(Arc::clone(
            inner.histograms.entry(key).or_insert_with(|| Arc::new(HistogramCore::new())),
        ))
    }

    /// Attaches `# HELP` text to a family (idempotent; last write wins).
    pub fn help(&self, name: &str, text: &str) {
        self.inner.lock().unwrap().help.insert(name.to_string(), text.to_string());
    }

    /// Point-in-time copy of every series.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
                .collect(),
            histograms: inner.histograms.iter().map(|(k, v)| (k.clone(), v.snapshot())).collect(),
            help: inner.help.clone(),
        }
    }
}

/// Raw state of one histogram series at snapshot time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Raw log2 bucket counts (index `i` = bucket `i`).
    pub buckets: Vec<u64>,
    /// Observation count.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Upper-edge quantile estimate over the snapshot's buckets.
    pub fn quantile(&self, q: f64) -> u64 {
        quantile_from_buckets(&self.buckets, q)
    }
}

/// A mergeable point-in-time copy of a registry (or of several,
/// folded). Merging follows the serving layer's discipline: counters
/// and histogram buckets **sum**, quantiles are recomputed from summed
/// buckets, never averaged. Gauges also sum on key collision — shard
/// gauges are expected to be disambiguated with
/// [`MetricsSnapshot::with_label`] first, and the fleet-total of
/// `pending`-style gauges is exactly the sum.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter series.
    pub counters: BTreeMap<SeriesKey, u64>,
    /// Gauge series.
    pub gauges: BTreeMap<SeriesKey, f64>,
    /// Histogram series.
    pub histograms: BTreeMap<SeriesKey, HistogramSnapshot>,
    /// `# HELP` text per family.
    pub help: BTreeMap<String, String>,
}

impl MetricsSnapshot {
    /// Folds `other` in (counters/buckets add, gauges add, help fills
    /// gaps).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0.0) += v;
        }
        for (k, h) in &other.histograms {
            let mine = self.histograms.entry(k.clone()).or_default();
            merge_buckets(&mut mine.buckets, &h.buckets);
            mine.count += h.count;
            mine.sum += h.sum;
        }
        for (k, v) in &other.help {
            self.help.entry(k.clone()).or_insert_with(|| v.clone());
        }
    }

    /// Returns the snapshot with `(label, value)` appended to every
    /// series — how a router stamps `shard="N"` onto a shard's snapshot
    /// before merging the fleet view.
    pub fn with_label(self, label: &str, value: &str) -> MetricsSnapshot {
        fn relabel<V>(
            map: BTreeMap<SeriesKey, V>,
            label: &str,
            value: &str,
        ) -> BTreeMap<SeriesKey, V> {
            map.into_iter()
                .map(|(mut key, val)| {
                    key.1.push((label.to_string(), value.to_string()));
                    key.1.sort();
                    (key, val)
                })
                .collect()
        }
        MetricsSnapshot {
            counters: relabel(self.counters, label, value),
            gauges: relabel(self.gauges, label, value),
            histograms: relabel(self.histograms, label, value),
            help: self.help,
        }
    }

    /// The kind of each family present, derived from which map carries
    /// it (a family never spans maps — the registry enforces that).
    pub fn kinds(&self) -> BTreeMap<String, MetricKind> {
        let mut kinds = BTreeMap::new();
        for (name, _) in self.counters.keys() {
            kinds.insert(name.clone(), MetricKind::Counter);
        }
        for (name, _) in self.gauges.keys() {
            kinds.insert(name.clone(), MetricKind::Gauge);
        }
        for (name, _) in self.histograms.keys() {
            kinds.insert(name.clone(), MetricKind::Histogram);
        }
        kinds
    }

    /// Convenience: counter value for `(name, labels)` (0 when absent).
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.counters.get(&series_key(name, labels)).copied().unwrap_or(0)
    }

    /// Convenience: gauge value for `(name, labels)` (`None` when
    /// absent).
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.gauges.get(&series_key(name, labels)).copied()
    }

    /// Convenience: histogram snapshot for `(name, labels)`.
    pub fn histogram_series(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<&HistogramSnapshot> {
        self.histograms.get(&series_key(name, labels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_cells_and_labels_canonicalize() {
        let r = MetricsRegistry::new();
        let a = r.counter("pl_steps_total", &[("tenant", "0"), ("mode", "serial")]);
        // Same series under reordered labels: same cell.
        let b = r.counter("pl_steps_total", &[("mode", "serial"), ("tenant", "0")]);
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        let snap = r.snapshot();
        assert_eq!(snap.counter_value("pl_steps_total", &[("tenant", "0"), ("mode", "serial")]), 4);
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_conflict_panics() {
        let r = MetricsRegistry::new();
        let _ = r.counter("pl_x", &[]);
        let _ = r.gauge("pl_x", &[]);
    }

    #[test]
    fn gauge_round_trips_f64() {
        let r = MetricsRegistry::new();
        let g = r.gauge("pl_burn", &[]);
        g.set(1.25);
        assert_eq!(g.get(), 1.25);
        assert_eq!(r.snapshot().gauge_value("pl_burn", &[]), Some(1.25));
    }

    #[test]
    fn histogram_counts_sums_and_quantiles() {
        let r = MetricsRegistry::new();
        let h = r.histogram("pl_queue_wait_us", &[("tenant", "1")]);
        for us in [3u64, 3, 3, 100] {
            h.observe(us);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 109);
        assert_eq!(h.quantile(0.5), 4); // bucket [2,4) upper edge
        assert_eq!(h.quantile(1.0), 128); // bucket [64,128) upper edge
    }

    #[test]
    fn merge_sums_counters_and_buckets_and_is_commutative() {
        let ra = MetricsRegistry::new();
        ra.counter("pl_steps_total", &[]).add(10);
        ra.histogram("pl_lat_us", &[]).observe(3);
        let rb = MetricsRegistry::new();
        rb.counter("pl_steps_total", &[]).add(5);
        rb.histogram("pl_lat_us", &[]).observe(1000);

        let (a, b) = (ra.snapshot(), rb.snapshot());
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.counter_value("pl_steps_total", &[]), 15);
        assert_eq!(ab.counters, ba.counters);
        assert_eq!(ab.histograms, ba.histograms);
        let h = ab.histogram_series("pl_lat_us", &[]).unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 1003);
        assert_eq!(h.quantile(1.0), 1024);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let r = MetricsRegistry::new();
        r.counter("pl_steps_total", &[("tenant", "0")]).add(7);
        let snap = r.snapshot();
        let mut merged = snap.clone();
        merged.merge(&MetricsSnapshot::default());
        assert_eq!(merged.counters, snap.counters);
    }

    #[test]
    fn with_label_stamps_every_series() {
        let r = MetricsRegistry::new();
        r.counter("pl_steps_total", &[("tenant", "0")]).inc();
        r.gauge("pl_pending", &[]).set(2.0);
        let snap = r.snapshot().with_label("shard", "3");
        assert_eq!(snap.counter_value("pl_steps_total", &[("shard", "3"), ("tenant", "0")]), 1);
        assert_eq!(snap.gauge_value("pl_pending", &[("shard", "3")]), Some(2.0));
    }
}
