//! The shared log2-bucket fold.
//!
//! One implementation of the power-of-two histogram discipline used
//! across the workspace: bucket `i` covers `[2^(i-1), 2^i)` (bucket 0 is
//! `< 1` unit), a quantile answer is the **upper edge** of the bucket
//! containing the requested rank (within 2x of the true value — the
//! fidelity latency SLOs actually need, at the cost of a few dozen
//! counters and zero locks), and cross-shard aggregation **sums raw
//! buckets and recomputes** — never averages per-shard quantiles.
//!
//! `pl_serve::stats` (40 µs-buckets), `pl_trace::summary` (48
//! ns-buckets) and [`crate::registry::Histogram`] all delegate here.

/// Index of the log2 bucket holding `value`, clamped to `n_buckets`.
/// Bucket 0 holds `value < 1` (i.e. 0); bucket `i` holds
/// `[2^(i-1), 2^i)`; the last bucket is a catch-all for the tail.
pub fn bucket_of(value: u64, n_buckets: usize) -> usize {
    ((64 - value.leading_zeros()) as usize).min(n_buckets - 1)
}

/// Quantile estimate from raw log2 bucket counts: the upper edge
/// (`2^i`) of the bucket containing rank `ceil(q * n)` (clamped to at
/// least rank 1). Returns 0 for empty buckets. `q` is clamped to
/// `0.0..=1.0`, so `q = 0.0` answers the smallest observed bucket's
/// edge and `q = 1.0` the largest.
pub fn quantile_from_buckets(buckets: &[u64], q: f64) -> u64 {
    let n: u64 = buckets.iter().sum();
    if n == 0 {
        return 0;
    }
    let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
    let mut seen = 0u64;
    for (i, &b) in buckets.iter().enumerate() {
        seen += b;
        if seen >= rank {
            return 1u64 << i; // upper edge of bucket i
        }
    }
    1u64 << buckets.len().saturating_sub(1)
}

/// Element-wise sum of `other` into `mine`, growing `mine` as needed —
/// the merge half of the discipline: aggregate raw buckets, then
/// recompute quantiles from the sum.
pub fn merge_buckets(mine: &mut Vec<u64>, other: &[u64]) {
    if mine.len() < other.len() {
        mine.resize(other.len(), 0);
    }
    for (i, &c) in other.iter().enumerate() {
        mine[i] += c;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_buckets_answer_zero_at_every_quantile() {
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(quantile_from_buckets(&[], q), 0);
            assert_eq!(quantile_from_buckets(&[0, 0, 0], q), 0);
        }
    }

    #[test]
    fn single_sample_answers_its_bucket_edge_at_every_quantile() {
        // One observation of 5 µs lands in bucket 3 ([4, 8)), edge 8.
        let mut buckets = vec![0u64; 40];
        buckets[bucket_of(5, 40)] += 1;
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(quantile_from_buckets(&buckets, q), 8, "q={q}");
        }
    }

    #[test]
    fn q0_and_q1_hit_first_and_last_occupied_buckets() {
        let mut buckets = vec![0u64; 16];
        buckets[2] = 10; // [2, 4) -> edge 4
        buckets[7] = 10; // [64, 128) -> edge 128
        assert_eq!(quantile_from_buckets(&buckets, 0.0), 4);
        assert_eq!(quantile_from_buckets(&buckets, 1.0), 128);
        // Out-of-range q clamps rather than panicking.
        assert_eq!(quantile_from_buckets(&buckets, -3.0), 4);
        assert_eq!(quantile_from_buckets(&buckets, 7.0), 128);
    }

    #[test]
    fn bucket_of_clamps_to_the_catch_all_tail() {
        assert_eq!(bucket_of(0, 40), 0);
        assert_eq!(bucket_of(1, 40), 1);
        assert_eq!(bucket_of(2, 40), 2);
        assert_eq!(bucket_of(3, 40), 2);
        assert_eq!(bucket_of(u64::MAX, 40), 39);
    }

    #[test]
    fn merge_grows_and_sums() {
        let mut mine = vec![1, 2];
        merge_buckets(&mut mine, &[10, 0, 5]);
        assert_eq!(mine, vec![11, 2, 5]);
        // Merging a shorter vector leaves the tail alone.
        merge_buckets(&mut mine, &[1]);
        assert_eq!(mine, vec![12, 2, 5]);
        // Merge identity: empty other.
        merge_buckets(&mut mine, &[]);
        assert_eq!(mine, vec![12, 2, 5]);
    }

    #[test]
    fn quantiles_recomputed_from_summed_buckets_match_pooled_data() {
        // Shard A: 99 fast (bucket 1), shard B: 1 slow (bucket 10).
        let mut a = vec![0u64; 12];
        a[1] = 99;
        let mut b = vec![0u64; 12];
        b[10] = 1;
        let mut merged = a.clone();
        merge_buckets(&mut merged, &b);
        // Pooled p99 rank is 99 -> still the fast bucket; p100 is slow.
        assert_eq!(quantile_from_buckets(&merged, 0.99), 2);
        assert_eq!(quantile_from_buckets(&merged, 1.0), 1 << 10);
    }
}
