//! Prepared (pack-once) execution plans — the paper's "layout
//! transformation paid once per layer boundary" turned into the execution
//! API.
//!
//! The flat bridge ([`crate::matmul::matmul`]) re-copies/transposes its
//! operands, re-packs them into PARLOOPER blocked layouts, re-resolves the
//! tuning spec and re-constructs the GEMM kernel on **every** invocation.
//! For a weight contraction executed thousands of times per second that is
//! pure overhead: the weight bytes never change. The prepared-op lifecycle
//! front-loads all of it:
//!
//! * **build** — [`MatmulPlan::new`] transposes (if needed) and packs the
//!   weight into the blocked `A` layout exactly once, with the same
//!   M/K blockings the per-call bridge would pick
//!   ([`GemmShape::default_block`]), so results stay bit-identical;
//! * **warm** — [`MatmulPlan::warm`] pre-constructs the kernel for every
//!   activation width the caller will execute, and [`MatmulPlan::problem`]
//!   names the exact `(m, n, k)` shapes so a serving runtime's tuning
//!   warmer covers precisely what will run;
//! * **execute** — [`MatmulPlan::execute`] packs only the activations per
//!   call; the split surface ([`MatmulPlan::pack_activations`] +
//!   [`MatmulPlan::execute_packed`]) lets one packed activation matrix
//!   feed several plans (a layer's QKV projections) and reuses blocked
//!   scratch ([`ActivationBuf`]) across calls and layers.
//!
//! Kernel selection resolves through [`crate::tuning`]: cached kernels are
//! tagged with the registry [`crate::tuning::epoch`] and re-resolve when a
//! new snapshot is installed, so a plan built before
//! [`crate::tuning::install`] runs the tuned specs right after it. Values
//! are unchanged either way — every legal spec produces each output block
//! on exactly one thread with the same ascending-K reduction order.
//!
//! [`SpmmPlan`] is the Block-SpMM twin for block-sparse weights: the BCSC
//! operand is already a pack-once artifact (pruning produces it), so the
//! plan's job is caching the constructed kernels per width and registering
//! the `spmm/...` tuning shapes for warmers.
//!
//! The module also exposes [`pack_events`], a process-wide count of weight
//! pack/transpose work, as the assertion hook for the packing discipline:
//! decode paths over prepared models must leave it unchanged.

use crate::matmul::{transpose_cm, Trans};
use pl_autotuner::GemmProblem;
use pl_kernels::{BlockSpmm, Gemm, GemmInt8, GemmShape, GemmTuning, SpmmTuning};
use pl_runtime::ThreadPool;
use pl_tensor::{
    quantize_cols_blocked, quantize_weight_a_vnni, reuse_blocked, BcscMatrix, BlockedMatrix, DType,
    GridOrder, InnerLayout, VnniMatrix,
};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Process-wide count of weight pack/transpose events: one per
/// [`MatmulPlan`] build (the pack-once cost, plus one more when the weight
/// needed a transpose) and therefore one per [`crate::matmul::matmul`]
/// call (the pack-per-call compatibility bridge builds a throwaway plan).
static PACK_EVENTS: AtomicU64 = AtomicU64::new(0);

/// Reads the weight-pack event counter (see [`PACK_EVENTS`]).
///
/// This is the observability hook for the prepared-op packing discipline:
/// after a model is constructed (its plans built), running `step` /
/// `step_batch` / `step_batch_fused` / `forward` must leave this counter
/// unchanged — no weight bytes are packed or transposed on the decode
/// path. `tests/pack_discipline.rs` asserts exactly that.
pub fn pack_events() -> u64 {
    PACK_EVENTS.load(Ordering::Relaxed)
}

fn record_pack_event() {
    PACK_EVENTS.fetch_add(1, Ordering::Relaxed);
}

/// Numeric precision of a prepared plan (and, through
/// `pl_serve::ServerConfig`, of a whole serving stack).
///
/// `F32` is the default and keeps every existing guarantee: serial decode
/// stays bit-identical to the unbatched baseline. `Int8` trades a bounded
/// relative error for ~4x less weight traffic per decode step: weights are
/// quantized **once** at plan build (symmetric int8, one f32 scale per
/// output channel, VNNI-blocked), activations are quantized on the fly per
/// step (one scale per column/token), the inner product accumulates in i32
/// and dequantizes on store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// f32 weights and arithmetic (bit-identity guarantees hold).
    #[default]
    F32,
    /// Pack-once symmetric int8 weights, i32 accumulation, f32 outputs.
    Int8,
}

impl Precision {
    /// The storage dtype of the plan weight — the dtype that scopes tuning
    /// keys, trace spans and kernel caches.
    pub fn dtype(self) -> DType {
        match self {
            Precision::F32 => DType::F32,
            Precision::Int8 => DType::I8,
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Precision::F32 => write!(f, "f32"),
            Precision::Int8 => write!(f, "int8"),
        }
    }
}

impl std::str::FromStr for Precision {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "f32" | "fp32" => Ok(Precision::F32),
            "int8" | "i8" => Ok(Precision::Int8),
            other => Err(format!("unknown precision '{other}' (expected f32 or int8)")),
        }
    }
}

/// Cap on cached per-width kernels per plan. Steady-state serving hits a
/// bounded width set (decode `1..=max_batch` plus the prefill ladder —
/// far below this), but a long-running server also sees arbitrary
/// prompt-length prefill widths; beyond the cap those build a throwaway
/// kernel per call instead of growing the cache without bound.
const KERNEL_CACHE_CAP: usize = 64;

/// A reusable blocked-operand scratch slot for the prepared execution
/// paths: holds the last `B`- or `C`-layout matrix and hands it back when
/// the next call wants the same layout (see [`pl_tensor::reuse_blocked`]).
#[derive(Debug, Default)]
pub struct ActivationBuf {
    slot: Option<BlockedMatrix<f32>>,
    /// Quantized-activation scratch of the int8 path (unused at f32): the
    /// i8 twin of the packed activation plus its per-column scales.
    qslot: Option<BlockedMatrix<i8>>,
    qscales: Vec<f32>,
}

impl ActivationBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The per-width compiled kernel: f32 and int8 plans build different
/// kernel types over the same loop-nest machinery.
enum PlanGemm {
    F32(Gemm<f32, f32, f32>),
    Int8(GemmInt8),
}

struct PlanKernel {
    /// The [`crate::tuning::epoch`] this kernel's spec resolved under.
    epoch: u64,
    shape: GemmShape,
    gemm: PlanGemm,
}

/// The pack-once weight operand of a [`MatmulPlan`], per precision.
#[derive(Clone)]
enum PlanWeight {
    /// Blocked `A` layout, f32.
    F32(BlockedMatrix<f32>),
    /// VNNI-blocked quantized `A` plus one dequantization scale per output
    /// channel (logical row). `v` is the VNNI factor actually used: the
    /// dtype's factor ([`DType::vnni_factor`]) degraded to the largest
    /// divisor of `bk` when the K blocking is narrower than the granule.
    Int8 { q: BlockedMatrix<i8>, scales: Vec<f32>, v: usize },
}

/// A compiled, pack-once GEMM plan over one weight operand.
///
/// Built from the flat column-major weight once; executes
/// `out (m x n) = W (m x k) x act (k x n)` for any activation width `n`
/// with zero per-call weight packing, transposition, tuning resolution or
/// kernel construction (each width's kernel is built on first use — or by
/// [`MatmulPlan::warm`] — and cached). Execution is `&self` and
/// thread-safe: one plan serves any number of concurrent sessions.
pub struct MatmulPlan {
    m: usize,
    k: usize,
    bm: usize,
    bk: usize,
    precision: Precision,
    weight: PlanWeight,
    kernels: RwLock<HashMap<usize, Arc<PlanKernel>>>,
}

impl MatmulPlan {
    /// Packs `w` — flat column-major, `m x k` after `trans` — into the
    /// blocked `A` layout. This is the **only** place the weight bytes are
    /// touched; every later [`MatmulPlan::execute`] reuses the packed
    /// operand.
    pub fn new(w: &[f32], trans: Trans, m: usize, k: usize) -> Self {
        Self::with_precision(w, trans, m, k, Precision::F32)
    }

    /// [`MatmulPlan::new`] with an explicit precision. At
    /// [`Precision::Int8`] the build quantizes the weight into the
    /// VNNI-blocked int8 `A` layout with per-output-channel scales — still
    /// exactly one pack event: weight bytes are touched once at build and
    /// never on the execute path.
    pub fn with_precision(w: &[f32], trans: Trans, m: usize, k: usize, p: Precision) -> Self {
        assert_eq!(w.len(), m * k, "weight size mismatch: {} != {m}x{k}", w.len());
        let bm = GemmShape::default_block(m);
        let bk = GemmShape::default_block(k);
        let flat: std::borrow::Cow<'_, [f32]> = match trans {
            Trans::No => std::borrow::Cow::Borrowed(w),
            Trans::Yes => {
                record_pack_event(); // the transpose touches every weight byte
                std::borrow::Cow::Owned(transpose_cm(w, k, m))
            }
        };
        let weight = match p {
            Precision::F32 => {
                let mut packed =
                    BlockedMatrix::<f32>::a_layout(m, k, bm, bk).expect("plan weight layout");
                packed.pack_from_colmajor(&flat);
                PlanWeight::F32(packed)
            }
            Precision::Int8 => {
                let v = vnni_fit(DType::I8.vnni_factor(), bk);
                let (q, scales) =
                    quantize_weight_a_vnni(&flat, m, k, bm, bk, v).expect("plan weight layout");
                PlanWeight::Int8 { q, scales, v }
            }
        };
        record_pack_event();
        MatmulPlan { m, k, bm, bk, precision: p, weight, kernels: RwLock::new(HashMap::new()) }
    }

    /// The precision this plan was built at.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Bytes of packed weight operand streamed through memory by one
    /// execution of this plan (any width): the packed weight data itself
    /// plus, for quantized plans, the per-channel scale vector. This is
    /// the counter behind the ~4x decode-traffic claim: an int8 plan
    /// streams `m*k + 4*m` bytes where the f32 plan streams `4*m*k`.
    pub fn weight_stream_bytes(&self) -> usize {
        match &self.weight {
            PlanWeight::F32(wt) => std::mem::size_of_val(wt.data()),
            PlanWeight::Int8 { q, scales, .. } => {
                std::mem::size_of_val(q.data()) + std::mem::size_of_val(scales.as_slice())
            }
        }
    }

    /// Output rows (`m`).
    pub fn m(&self) -> usize {
        self.m
    }

    /// Reduction extent (`k`) — the activation row count.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The exact GEMM problem this plan executes at activation width `n` —
    /// blocked identically to the kernel that will run, so tuning warmers
    /// cover precisely the shapes that execute.
    pub fn problem(&self, n: usize) -> GemmProblem {
        GemmProblem {
            m: self.m,
            n,
            k: self.k,
            bm: self.bm,
            bn: GemmShape::default_block(n),
            bk: self.bk,
            dtype: self.precision.dtype(),
        }
    }

    /// Pre-constructs (and caches) the kernel for width `n`, so the first
    /// real execution at `n` builds nothing.
    pub fn warm(&self, n: usize) {
        let _ = self.kernel_for(n);
    }

    /// Widths with a cached kernel (diagnostics).
    pub fn warmed_widths(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.kernels.read().unwrap().keys().copied().collect();
        v.sort_unstable();
        v
    }

    fn kernel_for(&self, n: usize) -> Arc<PlanKernel> {
        assert!(n > 0, "activation width must be non-zero");
        let epoch = crate::tuning::epoch();
        if let Some(k) = self.kernels.read().unwrap().get(&n) {
            if k.epoch == epoch {
                return Arc::clone(k);
            }
        }
        // Build (or re-resolve after a registry install). Same
        // degrade-don't-panic contract as the flat bridge: a rejected
        // registry spec falls back to the built-in parallel spec.
        let shape = GemmShape {
            m: self.m,
            n,
            k: self.k,
            bm: self.bm,
            bn: GemmShape::default_block(n),
            bk: self.bk,
        };
        let tuning = crate::tuning::gemm_tuning_for(&shape, self.precision.dtype());
        let fallback = || GemmTuning::default_parallel(shape.kb());
        let gemm = match &self.weight {
            PlanWeight::F32(_) => Gemm::<f32, f32, f32>::new(shape, tuning)
                .or_else(|_| Gemm::<f32, f32, f32>::new(shape, fallback()))
                .map(PlanGemm::F32)
                .expect("plan kernel shape"),
            PlanWeight::Int8 { v, .. } => GemmInt8::new(shape, tuning, *v)
                .or_else(|_| GemmInt8::new(shape, fallback(), *v))
                .map(PlanGemm::Int8)
                .expect("plan kernel shape"),
        };
        let kernel = Arc::new(PlanKernel { epoch, shape, gemm });
        let mut cache = self.kernels.write().unwrap();
        if cache.len() < KERNEL_CACHE_CAP || cache.contains_key(&n) {
            cache.insert(n, Arc::clone(&kernel));
        }
        kernel
    }

    /// Packs a flat column-major `k x n` activation matrix into `buf`
    /// (reusing its allocation when the layout matches) and returns the
    /// blocked view. The layout depends only on `(k, n)`, so one packed
    /// matrix can feed every plan with the same reduction extent — a
    /// layer's QKV projections pack their shared input **once**.
    pub fn pack_activations<'a>(
        &self,
        act: &[f32],
        n: usize,
        buf: &'a mut ActivationBuf,
    ) -> &'a BlockedMatrix<f32> {
        assert_eq!(act.len(), self.k * n, "activation size mismatch");
        let bn = GemmShape::default_block(n);
        let b = reuse_blocked(
            &mut buf.slot,
            self.k,
            n,
            self.bk,
            bn,
            GridOrder::ColBlockMajor,
            InnerLayout::ColMajor,
        )
        .expect("activation layout");
        b.pack_from_colmajor(act);
        b
    }

    /// Runs the plan over an already-blocked activation operand (from
    /// [`MatmulPlan::pack_activations`] — possibly packed by a sibling
    /// plan with the same `k`), reusing `c_buf` for the blocked output.
    /// Returns the flat column-major `m x n` result.
    pub fn execute_packed(
        &self,
        act: &BlockedMatrix<f32>,
        c_buf: &mut ActivationBuf,
        pool: &ThreadPool,
    ) -> Vec<f32> {
        let n = act.cols();
        // Per-shape wall-clock span: aggregated by (m, n, k) this is the
        // measured-timing table the autotuning roadmap item consumes. The
        // span name carries the plan dtype so f32 and i8 timings of the
        // same shape stay distinguishable in `TRACE_shapes.json`.
        let span_name = match self.precision {
            Precision::F32 => "gemm.execute",
            Precision::Int8 => "gemm.i8.execute",
        };
        let _span = pl_trace::span(span_name, [self.m as u64, n as u64, self.k as u64]);
        let kernel = self.kernel_for(n);
        match (&self.weight, &kernel.gemm) {
            (PlanWeight::F32(wt), PlanGemm::F32(g)) => {
                let c = reuse_blocked(
                    &mut c_buf.slot,
                    self.m,
                    n,
                    self.bm,
                    kernel.shape.bn,
                    GridOrder::ColBlockMajor,
                    InnerLayout::ColMajor,
                )
                .expect("output layout");
                g.execute(wt, act, c, pool).expect("plan execute");
            }
            (PlanWeight::Int8 { q, scales, .. }, PlanGemm::Int8(g)) => {
                // Quantize the f32 activations on the fly (per step, per
                // column) into the i8 scratch; weight bytes stay untouched.
                let qact = reuse_blocked(
                    &mut c_buf.qslot,
                    self.k,
                    n,
                    self.bk,
                    kernel.shape.bn,
                    GridOrder::ColBlockMajor,
                    InnerLayout::ColMajor,
                )
                .expect("quantized activation layout");
                c_buf.qscales.resize(n, 0.0);
                quantize_cols_blocked(act, qact, &mut c_buf.qscales);
                let c = reuse_blocked(
                    &mut c_buf.slot,
                    self.m,
                    n,
                    self.bm,
                    kernel.shape.bn,
                    GridOrder::ColBlockMajor,
                    InnerLayout::ColMajor,
                )
                .expect("output layout");
                g.execute(q, scales, qact, &c_buf.qscales, c, pool).expect("plan execute");
            }
            _ => unreachable!("plan weight/kernel precision mismatch"),
        }
        let c = c_buf.slot.as_ref().expect("c slot");
        let mut out = vec![0.0f32; self.m * n];
        c.unpack_into_colmajor(&mut out);
        out
    }

    /// `out (m x n) = W x act` over a flat column-major `k x n` activation
    /// matrix. Packs the activations (never the weight) and executes the
    /// cached kernel for width `n`.
    pub fn execute(&self, act: &[f32], n: usize, pool: &ThreadPool) -> Vec<f32> {
        let mut b = ActivationBuf::new();
        let mut c = ActivationBuf::new();
        let packed = self.pack_activations(act, n, &mut b);
        self.execute_packed(packed, &mut c, pool)
    }
}

impl fmt::Debug for MatmulPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MatmulPlan")
            .field("m", &self.m)
            .field("k", &self.k)
            .field("bm", &self.bm)
            .field("bk", &self.bk)
            .field("precision", &self.precision)
            .field("warmed_widths", &self.warmed_widths())
            .finish()
    }
}

impl Clone for MatmulPlan {
    fn clone(&self) -> Self {
        // The packed weight is copied as-is (no re-pack/re-quantize — and
        // no pack event); kernels are cheap to rebuild, so the clone
        // starts cold.
        MatmulPlan {
            m: self.m,
            k: self.k,
            bm: self.bm,
            bk: self.bk,
            precision: self.precision,
            weight: self.weight.clone(),
            kernels: RwLock::new(HashMap::new()),
        }
    }
}

/// The VNNI factor an int8 plan actually uses: the dtype granule `v`
/// degraded (by halving) to the largest power of two dividing the K
/// blocking, so narrow layers (`bk < 4` or odd) still build. Every value
/// this returns divides `bk`, which `BrgemmI8Desc::validate` requires.
fn vnni_fit(v: usize, bk: usize) -> usize {
    let mut f = v.max(1);
    while f > 1 && !bk.is_multiple_of(f) {
        f /= 2;
    }
    f
}

/// The `bn` blocking the Block-SpMM bridge picks for an activation width.
pub(crate) fn spmm_bn(tokens: usize) -> usize {
    for cand in [16, 8, 4, 2, 1] {
        if tokens.is_multiple_of(cand) {
            return cand;
        }
    }
    1
}

/// Constructs a Block-SpMM kernel for `tokens` activation columns over an
/// `m x k` sparse operand blocked `bm x bk`, resolving the spec through
/// [`crate::tuning`] with the degrade-don't-panic fallback. Shared by
/// [`SpmmPlan`] and the pack-per-call [`crate::sparse_bert::spmm_matmul`].
pub(crate) fn build_spmm_kernel(
    m: usize,
    k: usize,
    bm: usize,
    bk: usize,
    tokens: usize,
) -> (usize, BlockSpmm) {
    let bn = spmm_bn(tokens);
    let shape = GemmShape { m, n: tokens, k, bm, bn, bk };
    let tuning = crate::tuning::spmm_tuning_for(&shape);
    let kernel = BlockSpmm::new(m, tokens, k, bm, bk, bn, tuning)
        .or_else(|_| {
            let fallback = SpmmTuning::default_parallel(k / bk);
            BlockSpmm::new(m, tokens, k, bm, bk, bn, fallback)
        })
        .expect("spmm kernel shape");
    (bn, kernel)
}

struct SpmmPlanKernel {
    epoch: u64,
    bn: usize,
    kernel: BlockSpmm,
}

/// A compiled Block-SpMM plan over one block-sparse (BCSC) weight.
///
/// The BCSC operand is itself a pack-once artifact (pruning produced it);
/// the plan adds what the pack-per-call bridge re-did every call: kernel
/// construction and tuning resolution, cached per activation width with
/// the same registry-epoch re-resolution as [`MatmulPlan`].
pub struct SpmmPlan {
    weight: BcscMatrix<f32>,
    kernels: RwLock<HashMap<usize, Arc<SpmmPlanKernel>>>,
}

impl SpmmPlan {
    /// Wraps an already-compressed weight.
    pub fn new(weight: BcscMatrix<f32>) -> Self {
        SpmmPlan { weight, kernels: RwLock::new(HashMap::new()) }
    }

    /// The compressed weight (sparsity/footprint accounting).
    pub fn weight(&self) -> &BcscMatrix<f32> {
        &self.weight
    }

    /// The exact SpMM problem this plan executes at `tokens` activation
    /// columns — the shape (`spmm/...` key) a tuning warmer must cover.
    pub fn problem(&self, tokens: usize) -> GemmProblem {
        GemmProblem {
            m: self.weight.rows(),
            n: tokens,
            k: self.weight.cols(),
            bm: self.weight.bm(),
            bn: spmm_bn(tokens),
            bk: self.weight.bk(),
            dtype: DType::F32,
        }
    }

    /// Pre-constructs (and caches) the kernel for `tokens` columns.
    pub fn warm(&self, tokens: usize) {
        let _ = self.kernel_for(tokens);
    }

    fn kernel_for(&self, tokens: usize) -> Arc<SpmmPlanKernel> {
        assert!(tokens > 0, "activation width must be non-zero");
        let epoch = crate::tuning::epoch();
        if let Some(k) = self.kernels.read().unwrap().get(&tokens) {
            if k.epoch == epoch {
                return Arc::clone(k);
            }
        }
        let (bn, kernel) = build_spmm_kernel(
            self.weight.rows(),
            self.weight.cols(),
            self.weight.bm(),
            self.weight.bk(),
            tokens,
        );
        let k = Arc::new(SpmmPlanKernel { epoch, bn, kernel });
        let mut cache = self.kernels.write().unwrap();
        if cache.len() < KERNEL_CACHE_CAP || cache.contains_key(&tokens) {
            cache.insert(tokens, Arc::clone(&k));
        }
        k
    }

    /// `y (m x tokens) = A_sparse x x (k x tokens)` over flat column-major
    /// activations, through the cached kernel for this width.
    pub fn execute(&self, x: &[f32], tokens: usize, pool: &ThreadPool) -> Vec<f32> {
        let (m, k) = (self.weight.rows(), self.weight.cols());
        assert_eq!(x.len(), k * tokens, "activation size mismatch");
        let _span = pl_trace::span("spmm.execute", [m as u64, tokens as u64, k as u64]);
        let kernel = self.kernel_for(tokens);
        let mut b = VnniMatrix::<f32>::new(k, tokens, kernel.bn, 1).expect("b layout");
        b.pack_from_colmajor(x);
        let mut c = VnniMatrix::<f32>::new(m, tokens, kernel.bn, 1).expect("c layout");
        kernel.kernel.execute(&self.weight, &b, &mut c, pool).expect("spmm execute");
        c.unpack_to_colmajor()
    }
}

impl fmt::Debug for SpmmPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpmmPlan")
            .field("m", &self.weight.rows())
            .field("k", &self.weight.cols())
            .field("sparsity", &self.weight.sparsity())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_kernels::gemm::reference_gemm;
    use pl_tensor::{fill_uniform, Xorshift};

    #[test]
    fn plan_matches_reference_and_reuses_kernels() {
        let pool = ThreadPool::new(2);
        let (m, n, k) = (24, 20, 28);
        let mut rng = Xorshift::new(41);
        let mut w = vec![0.0f32; m * k];
        let mut x = vec![0.0f32; k * n];
        fill_uniform(&mut w, &mut rng, -0.5, 0.5);
        fill_uniform(&mut x, &mut rng, -0.5, 0.5);
        let plan = MatmulPlan::new(&w, Trans::No, m, k);
        let want = reference_gemm(&w, &x, m, n, k);
        let got1 = plan.execute(&x, n, &pool);
        let got2 = plan.execute(&x, n, &pool); // cached kernel
        assert_eq!(got1, got2, "cached-kernel execution must be bitwise stable");
        for i in 0..m * n {
            assert!((got1[i] - want[i]).abs() < 1e-3, "idx {i}");
        }
        assert_eq!(plan.warmed_widths(), vec![n]);
        let p = plan.problem(n);
        assert_eq!((p.m, p.n, p.k), (m, n, k));
    }

    #[test]
    fn transposed_weight_plan_matches_reference() {
        let pool = ThreadPool::new(2);
        let (m, n, k) = (16, 8, 12);
        let mut rng = Xorshift::new(43);
        let mut w = vec![0.0f32; m * k];
        let mut x = vec![0.0f32; k * n];
        fill_uniform(&mut w, &mut rng, -0.5, 0.5);
        fill_uniform(&mut x, &mut rng, -0.5, 0.5);
        let wt = transpose_cm(&w, m, k); // (k x m) storing W^T
        let plan = MatmulPlan::new(&wt, Trans::Yes, m, k);
        let got = plan.execute(&x, n, &pool);
        let want = reference_gemm(&w, &x, m, n, k);
        for i in 0..m * n {
            assert!((got[i] - want[i]).abs() < 1e-3, "idx {i}");
        }
    }

    #[test]
    fn shared_packed_activations_feed_sibling_plans() {
        let pool = ThreadPool::new(2);
        let (m, n, k) = (16, 6, 16);
        let mut rng = Xorshift::new(44);
        let mut w1 = vec![0.0f32; m * k];
        let mut w2 = vec![0.0f32; m * k];
        let mut x = vec![0.0f32; k * n];
        fill_uniform(&mut w1, &mut rng, -0.5, 0.5);
        fill_uniform(&mut w2, &mut rng, -0.5, 0.5);
        fill_uniform(&mut x, &mut rng, -0.5, 0.5);
        let p1 = MatmulPlan::new(&w1, Trans::No, m, k);
        let p2 = MatmulPlan::new(&w2, Trans::No, m, k);
        let mut bbuf = ActivationBuf::new();
        let mut cbuf = ActivationBuf::new();
        let xp = p1.pack_activations(&x, n, &mut bbuf);
        let y1 = p1.execute_packed(xp, &mut cbuf, &pool);
        let y2 = p2.execute_packed(xp, &mut cbuf, &pool);
        assert_eq!(y1, p1.execute(&x, n, &pool), "shared-pack path matches the direct path");
        assert_eq!(y2, p2.execute(&x, n, &pool));
    }

    #[test]
    fn kernel_cache_is_bounded() {
        let pool = ThreadPool::new(1);
        let (m, k) = (8, 8);
        let w = vec![0.25f32; m * k];
        let plan = MatmulPlan::new(&w, Trans::No, m, k);
        for n in 1..=KERNEL_CACHE_CAP + 8 {
            let x = vec![0.5f32; k * n];
            let _ = plan.execute(&x, n, &pool);
        }
        assert_eq!(plan.warmed_widths().len(), KERNEL_CACHE_CAP, "cache must stop at the cap");
        // Over-cap widths still execute correctly, just uncached.
        let n = KERNEL_CACHE_CAP + 8;
        let x = vec![0.5f32; k * n];
        let got = plan.execute(&x, n, &pool);
        assert_eq!(got.len(), m * n);
        assert!((got[0] - (0.25 * 0.5 * k as f32)).abs() < 1e-4);
    }

    #[test]
    fn pack_events_count_plan_builds() {
        // Only a monotonicity check here: unit tests run concurrently and
        // sibling tests build plans of their own, so exact-delta
        // assertions live in the isolated `tests/pack_discipline.rs`
        // binary instead.
        let (m, k) = (8, 8);
        let w = vec![0.5f32; m * k];
        let before = pack_events();
        let _plan = MatmulPlan::new(&w, Trans::No, m, k);
        assert!(pack_events() > before, "plan build is a pack event");
    }

    #[test]
    fn int8_plan_tracks_f32_within_quantization_error() {
        let pool = ThreadPool::new(2);
        let (m, n, k) = (32, 8, 48);
        let mut rng = Xorshift::new(46);
        let mut w = vec![0.0f32; m * k];
        let mut x = vec![0.0f32; k * n];
        fill_uniform(&mut w, &mut rng, -0.5, 0.5);
        fill_uniform(&mut x, &mut rng, -0.5, 0.5);
        let fplan = MatmulPlan::new(&w, Trans::No, m, k);
        let qplan = MatmulPlan::with_precision(&w, Trans::No, m, k, Precision::Int8);
        assert_eq!(fplan.precision(), Precision::F32);
        assert_eq!(qplan.precision(), Precision::Int8);
        assert_eq!(qplan.problem(n).dtype, DType::I8);
        // The ~4x decode-traffic claim, exactly: i8 data + f32 row scales.
        assert_eq!(fplan.weight_stream_bytes(), 4 * m * k);
        assert_eq!(qplan.weight_stream_bytes(), m * k + 4 * m);
        let want = fplan.execute(&x, n, &pool);
        let got = qplan.execute(&x, n, &pool);
        // Two symmetric-int8 roundings (weight + activation) bound the
        // per-product relative error by ~2/127; the dot product's relative
        // error stays in the same ballpark (errors don't all align), so 5%
        // against a 1.0-floored denominator is comfortably conservative.
        for i in 0..m * n {
            let rel = (got[i] - want[i]).abs() / want[i].abs().max(1.0);
            assert!(rel < 0.05, "idx {i}: int8 {} vs f32 {}", got[i], want[i]);
        }
        // Quantized execution is deterministic (same cached kernel).
        assert_eq!(got, qplan.execute(&x, n, &pool));
        // Clones keep the precision and the quantized bytes.
        let clone = qplan.clone();
        assert_eq!(clone.precision(), Precision::Int8);
        assert_eq!(clone.execute(&x, n, &pool), got);
    }

    #[test]
    fn int8_plan_handles_transposed_and_narrow_k() {
        let pool = ThreadPool::new(2);
        // k = 6 blocks as bk = 2, forcing the VNNI factor to degrade 4 -> 2.
        let (m, n, k) = (16, 4, 6);
        let mut rng = Xorshift::new(47);
        let mut w = vec![0.0f32; m * k];
        let mut x = vec![0.0f32; k * n];
        fill_uniform(&mut w, &mut rng, -0.5, 0.5);
        fill_uniform(&mut x, &mut rng, -0.5, 0.5);
        let wt = transpose_cm(&w, m, k);
        let qplan = MatmulPlan::with_precision(&wt, Trans::Yes, m, k, Precision::Int8);
        let want = MatmulPlan::new(&w, Trans::No, m, k).execute(&x, n, &pool);
        let got = qplan.execute(&x, n, &pool);
        for i in 0..m * n {
            let rel = (got[i] - want[i]).abs() / want[i].abs().max(1.0);
            assert!(rel < 0.05, "idx {i}: int8 {} vs f32 {}", got[i], want[i]);
        }
    }

    #[test]
    fn vnni_fit_degrades_to_a_bk_divisor() {
        assert_eq!(vnni_fit(4, 32), 4);
        assert_eq!(vnni_fit(4, 48), 4);
        assert_eq!(vnni_fit(4, 6), 2);
        assert_eq!(vnni_fit(4, 3), 1);
        assert_eq!(vnni_fit(4, 1), 1);
        assert_eq!(vnni_fit(1, 7), 1);
    }

    #[test]
    fn spmm_plan_matches_dense_reference() {
        let pool = ThreadPool::new(2);
        let (m, k, tokens) = (32, 32, 8);
        let mut rng = Xorshift::new(45);
        let a = BcscMatrix::<f32>::random(m, k, 8, 8, 0.5, &mut rng).unwrap();
        let mut x = vec![0.0f32; k * tokens];
        fill_uniform(&mut x, &mut rng, -0.5, 0.5);
        let plan = SpmmPlan::new(a);
        let got = plan.execute(&x, tokens, &pool);
        let want = reference_gemm(&plan.weight().to_dense_colmajor(), &x, m, tokens, k);
        for i in 0..got.len() {
            assert!((got[i] - want[i]).abs() < 1e-3, "idx {i}");
        }
        let p = plan.problem(tokens);
        assert_eq!((p.m, p.n, p.k), (m, tokens, k));
        assert_eq!(p.bn, 8);
    }
}
