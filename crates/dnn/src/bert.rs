//! BERT encoder via the PARLOOPER/TPP paradigm (paper §IV-A).
//!
//! The four fused modules of the paper are reproduced: Self-Attention
//! (blocked contractions + scale + softmax + dropout), Output / SelfOutput
//! (Listing 6: BRGEMM + bias + dropout + residual add + layernorm fused on
//! block granularity), and Intermediate (BRGEMM + bias + GELU). Activations
//! are `hidden x tokens` column-major f32; weight contractions run through
//! the PARLOOPER GEMM kernel.
//!
//! Both forward and backward are implemented (Fig. 9 measures SQuAD
//! *fine-tuning* throughput). Embedding lookup is a negligible gather next
//! to the encoder and is replaced by synthetic hidden states in the
//! harnesses (recorded in DESIGN.md).
//!
//! Forward weight contractions run through prepared plans
//! ([`crate::prepared::MatmulPlan`]): each weight is packed into its
//! blocked kernel layout when the layer is built (and re-packed once per
//! [`BertLayer::sgd_step`]); inference-only forwards pack zero weight
//! bytes per call. The backward pass keeps the flat
//! [`crate::matmul::matmul`] bridge — its contractions combine
//! per-iteration gradient/activation operands that no plan could own.

use crate::matmul::{matmul, transpose_cm, Trans};
use crate::prepared::{ActivationBuf, MatmulPlan};
use pl_runtime::ThreadPool;
use pl_tensor::Xorshift;
use pl_tpp::{norm, softmax, unary};

/// Model hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BertConfig {
    /// Hidden width.
    pub hidden: usize,
    /// Attention heads (must divide hidden).
    pub heads: usize,
    /// Intermediate (FFN) width.
    pub intermediate: usize,
    /// Encoder layers.
    pub layers: usize,
    /// Maximum sequence length.
    pub seq: usize,
}

impl BertConfig {
    /// BERT-Large (paper Fig. 9): 24 x 1024 x 16 heads x 4096 FFN,
    /// max sequence 384.
    pub fn large() -> Self {
        BertConfig { hidden: 1024, heads: 16, intermediate: 4096, layers: 24, seq: 384 }
    }

    /// BERT-Base (paper Fig. 10): 12 x 768 x 12 heads x 3072 FFN.
    pub fn base() -> Self {
        BertConfig { hidden: 768, heads: 12, intermediate: 3072, layers: 12, seq: 384 }
    }

    /// A scaled-down config with the same architecture, for host tests.
    pub fn tiny() -> Self {
        BertConfig { hidden: 32, heads: 4, intermediate: 64, layers: 2, seq: 16 }
    }

    /// Flops of one encoder layer forward over `tokens` tokens
    /// (4 projections + FFN pair + attention matmuls).
    pub fn layer_flops(&self, tokens: usize) -> f64 {
        let h = self.hidden as f64;
        let i = self.intermediate as f64;
        let t = tokens as f64;
        let proj = 4.0 * 2.0 * h * h * t;
        let ffn = 2.0 * 2.0 * h * i * t;
        let attn = 2.0 * 2.0 * h * t * t; // scores + context
        proj + ffn + attn
    }

    /// Whole-model forward flops.
    pub fn model_flops(&self, tokens: usize) -> f64 {
        self.layers as f64 * self.layer_flops(tokens)
    }

    /// Weight bytes of one layer at the given element size.
    pub fn layer_weight_bytes(&self, elem: usize) -> f64 {
        ((4 * self.hidden * self.hidden + 2 * self.hidden * self.intermediate) * elem) as f64
    }
}

/// Weights of one encoder layer.
///
/// The flat column-major weights remain the source of truth (the backward
/// pass, SGD updates and the pruning view consume them); the **forward**
/// contractions run through prepared plans (`plans`, one [`MatmulPlan`]
/// per weight in `wq, wk, wv, wo, w1, w2` order) rebuilt once per
/// [`BertLayer::sgd_step`] — pack-once per *update*, amortized over every
/// forward in between, instead of pack-per-projection-call.
#[derive(Debug, Clone)]
pub struct BertLayer {
    cfg: BertConfig,
    wq: Vec<f32>,
    wk: Vec<f32>,
    wv: Vec<f32>,
    wo: Vec<f32>,
    w1: Vec<f32>,
    w2: Vec<f32>,
    plans: [MatmulPlan; 6],
    bq: Vec<f32>,
    bk: Vec<f32>,
    bv: Vec<f32>,
    bo: Vec<f32>,
    b1: Vec<f32>,
    b2: Vec<f32>,
    ln1_g: Vec<f32>,
    ln1_b: Vec<f32>,
    ln2_g: Vec<f32>,
    ln2_b: Vec<f32>,
}

/// Forward-pass intermediates needed by the backward pass.
pub struct BertLayerTape {
    x: Vec<f32>,
    q: Vec<f32>,
    k: Vec<f32>,
    v: Vec<f32>,
    probs: Vec<f32>,
    ctx: Vec<f32>,
    attn_res: Vec<f32>,
    h1: Vec<f32>, // post-LN1
    inter_pre: Vec<f32>,
    inter: Vec<f32>,
    ffn_res: Vec<f32>,
    ln1_mean: Vec<f32>,
    ln1_rstd: Vec<f32>,
    ln2_mean: Vec<f32>,
    ln2_rstd: Vec<f32>,
    tokens: usize,
}

/// Parameter gradients of one layer.
#[derive(Debug, Clone)]
pub struct BertLayerGrads {
    /// d/d(wq, wk, wv, wo, w1, w2) flattened in that order.
    pub weights: Vec<Vec<f32>>,
    /// d/d(bq, bk, bv, bo, b1, b2).
    pub biases: Vec<Vec<f32>>,
}

impl BertLayer {
    /// Random initialization.
    pub fn new(cfg: BertConfig, rng: &mut Xorshift) -> Self {
        let h = cfg.hidden;
        let i = cfg.intermediate;
        let mut mk = |rows: usize, cols: usize| -> Vec<f32> {
            let std = (2.0 / (rows + cols) as f32).sqrt();
            let mut v = vec![0.0f32; rows * cols];
            pl_tensor::fill_normal(&mut v, rng, 0.0, std);
            v
        };
        let (wq, wk, wv, wo, w1, w2) = (mk(h, h), mk(h, h), mk(h, h), mk(h, h), mk(i, h), mk(h, i));
        BertLayer {
            plans: Self::build_plans(cfg, [&wq, &wk, &wv, &wo, &w1, &w2]),
            cfg,
            wq,
            wk,
            wv,
            wo,
            w1,
            w2,
            bq: vec![0.0; h],
            bk: vec![0.0; h],
            bv: vec![0.0; h],
            bo: vec![0.0; h],
            b1: vec![0.0; i],
            b2: vec![0.0; h],
            ln1_g: vec![1.0; h],
            ln1_b: vec![0.0; h],
            ln2_g: vec![1.0; h],
            ln2_b: vec![0.0; h],
        }
    }

    /// The config.
    pub fn config(&self) -> &BertConfig {
        &self.cfg
    }

    /// Builds the six forward plans from flat weights (`wq..w2` order).
    fn build_plans(cfg: BertConfig, ws: [&[f32]; 6]) -> [MatmulPlan; 6] {
        let (h, i) = (cfg.hidden, cfg.intermediate);
        let dims = [(h, h), (h, h), (h, h), (h, h), (i, h), (h, i)];
        std::array::from_fn(|j| MatmulPlan::new(ws[j], Trans::No, dims[j].0, dims[j].1))
    }

    /// Re-packs the forward plans from the (updated) flat weights — the
    /// once-per-update layout cost.
    fn rebuild_plans(&mut self) {
        self.plans = Self::build_plans(
            self.cfg,
            [&self.wq, &self.wk, &self.wv, &self.wo, &self.w1, &self.w2],
        );
    }

    fn linear(
        &self,
        plan: &MatmulPlan,
        b: &[f32],
        x: &[f32],
        out_f: usize,
        tokens: usize,
        pool: &ThreadPool,
    ) -> Vec<f32> {
        let mut y = plan.execute(x, tokens, pool);
        pl_tpp::binary::bias_add(out_f, tokens, b, &mut y, out_f);
        y
    }

    /// Forward over `x` (`hidden x tokens`, column-major). Returns the
    /// output and the tape for backward.
    pub fn forward(
        &self,
        x: &[f32],
        tokens: usize,
        pool: &ThreadPool,
    ) -> (Vec<f32>, BertLayerTape) {
        let h = self.cfg.hidden;
        let nh = self.cfg.heads;
        let dh = h / nh;
        let i = self.cfg.intermediate;
        debug_assert_eq!(x.len(), h * tokens);

        // Self-attention projections (fused bias adds): the three plans
        // consume a single packed copy of `x` (pack-once per layer
        // boundary), with one reused blocked-output scratch.
        let (q, k, v) = {
            let mut xbuf = ActivationBuf::new();
            let mut cbuf = ActivationBuf::new();
            let xp = self.plans[0].pack_activations(x, tokens, &mut xbuf);
            let mut proj = |j: usize, bias: &[f32]| {
                let mut y = self.plans[j].execute_packed(xp, &mut cbuf, pool);
                pl_tpp::binary::bias_add(h, tokens, bias, &mut y, h);
                y
            };
            (proj(0, &self.bq), proj(1, &self.bk), proj(2, &self.bv))
        };

        // Per-head attention: scores = (K_h^T Q_h) / sqrt(dh), softmax over
        // keys (rows of scores in our col-major view), ctx = V_h probs.
        let scale = 1.0 / (dh as f32).sqrt();
        let mut probs = vec![0.0f32; nh * tokens * tokens];
        let mut ctx = vec![0.0f32; h * tokens];
        for hd in 0..nh {
            let qh = slice_head(&q, h, dh, hd, tokens);
            let kh = slice_head(&k, h, dh, hd, tokens);
            let vh = slice_head(&v, h, dh, hd, tokens);
            // scores (keys x queries), col-major: S = K_h^T Q_h.
            let mut s = matmul(&kh, Trans::Yes, &qh, Trans::No, tokens, tokens, dh, pool);
            for val in s.iter_mut() {
                *val *= scale;
            }
            let ph = &mut probs[hd * tokens * tokens..(hd + 1) * tokens * tokens];
            softmax::softmax_cols(tokens, tokens, &s, tokens, ph, tokens);
            // ctx_h = V_h P (dh x tokens).
            let ch = matmul(&vh, Trans::No, ph, Trans::No, dh, tokens, tokens, pool);
            write_head(&mut ctx, &ch, h, dh, hd, tokens);
        }

        // Bert-SelfOutput (Listing 6): Wo ctx + bias, residual, layernorm.
        let mut attn_res = self.linear(&self.plans[3], &self.bo, &ctx, h, tokens, pool);
        pl_tpp::binary::add(h, tokens, &attn_res.clone(), h, x, h, &mut attn_res, h);
        let mut h1 = vec![0.0f32; h * tokens];
        let mut ln1_mean = vec![0.0f32; tokens];
        let mut ln1_rstd = vec![0.0f32; tokens];
        norm::layernorm(
            h,
            tokens,
            &attn_res,
            h,
            &self.ln1_g,
            &self.ln1_b,
            1e-5,
            &mut h1,
            h,
            &mut ln1_mean,
            &mut ln1_rstd,
        );

        // Bert-Intermediate: W1 h1 + b1, GELU.
        let inter_pre = self.linear(&self.plans[4], &self.b1, &h1, i, tokens, pool);
        let mut inter = vec![0.0f32; i * tokens];
        unary::gelu(i, tokens, &inter_pre, i, &mut inter, i);

        // Bert-Output: W2 inter + b2, residual (h1), layernorm.
        let mut ffn_res = self.linear(&self.plans[5], &self.b2, &inter, h, tokens, pool);
        pl_tpp::binary::add(h, tokens, &ffn_res.clone(), h, &h1, h, &mut ffn_res, h);
        let mut out = vec![0.0f32; h * tokens];
        let mut ln2_mean = vec![0.0f32; tokens];
        let mut ln2_rstd = vec![0.0f32; tokens];
        norm::layernorm(
            h,
            tokens,
            &ffn_res,
            h,
            &self.ln2_g,
            &self.ln2_b,
            1e-5,
            &mut out,
            h,
            &mut ln2_mean,
            &mut ln2_rstd,
        );

        let tape = BertLayerTape {
            x: x.to_vec(),
            q,
            k,
            v,
            probs,
            ctx,
            attn_res,
            h1,
            inter_pre,
            inter,
            ffn_res,
            ln1_mean,
            ln1_rstd,
            ln2_mean,
            ln2_rstd,
            tokens,
        };
        (out, tape)
    }

    /// Backward: upstream `dy` -> input gradient + parameter gradients.
    pub fn backward(
        &self,
        dy: &[f32],
        tape: &BertLayerTape,
        pool: &ThreadPool,
    ) -> (Vec<f32>, BertLayerGrads) {
        let h = self.cfg.hidden;
        let nh = self.cfg.heads;
        let dh = h / nh;
        let i = self.cfg.intermediate;
        let t = tape.tokens;

        // LN2 backward.
        let mut d_ffn_res = vec![0.0f32; h * t];
        let mut d_ln2_g = vec![0.0f32; h];
        let mut d_ln2_b = vec![0.0f32; h];
        norm::layernorm_backward(
            h,
            t,
            &tape.ffn_res,
            h,
            dy,
            h,
            &self.ln2_g,
            &tape.ln2_mean,
            &tape.ln2_rstd,
            &mut d_ffn_res,
            h,
            &mut d_ln2_g,
            &mut d_ln2_b,
        );
        // Residual split: d_h1 += d_ffn_res; W2 branch gets d_ffn_res.
        // W2 backward: y2 = W2 inter + b2.
        let d_w2 = matmul(
            &d_ffn_res,
            Trans::No,
            &transpose_cm(&tape.inter, i, t),
            Trans::No,
            h,
            i,
            t,
            pool,
        );
        let d_b2 = row_sum(&d_ffn_res, h, t);
        let mut d_inter = matmul(&self.w2, Trans::Yes, &d_ffn_res, Trans::No, i, t, h, pool);
        // GELU backward.
        let d_inter_c = d_inter.clone();
        unary::gelu_backward(i, t, &tape.inter_pre, i, &d_inter_c, i, &mut d_inter, i);
        // W1 backward.
        let d_w1 =
            matmul(&d_inter, Trans::No, &transpose_cm(&tape.h1, h, t), Trans::No, i, h, t, pool);
        let d_b1 = row_sum(&d_inter, i, t);
        let mut d_h1 = matmul(&self.w1, Trans::Yes, &d_inter, Trans::No, h, t, i, pool);
        // Residual from LN2 input.
        for (a, b) in d_h1.iter_mut().zip(&d_ffn_res) {
            *a += *b;
        }

        // LN1 backward.
        let mut d_attn_res = vec![0.0f32; h * t];
        let mut d_ln1_g = vec![0.0f32; h];
        let mut d_ln1_b = vec![0.0f32; h];
        norm::layernorm_backward(
            h,
            t,
            &tape.attn_res,
            h,
            &d_h1,
            h,
            &self.ln1_g,
            &tape.ln1_mean,
            &tape.ln1_rstd,
            &mut d_attn_res,
            h,
            &mut d_ln1_g,
            &mut d_ln1_b,
        );
        // Residual: dx accumulates d_attn_res directly.
        let mut dx = d_attn_res.clone();
        // Wo backward.
        let d_wo = matmul(
            &d_attn_res,
            Trans::No,
            &transpose_cm(&tape.ctx, h, t),
            Trans::No,
            h,
            h,
            t,
            pool,
        );
        let d_bo = row_sum(&d_attn_res, h, t);
        let d_ctx = matmul(&self.wo, Trans::Yes, &d_attn_res, Trans::No, h, t, h, pool);

        // Attention backward per head.
        let scale = 1.0 / (dh as f32).sqrt();
        let mut dq = vec![0.0f32; h * t];
        let mut dk = vec![0.0f32; h * t];
        let mut dv = vec![0.0f32; h * t];
        for hd in 0..nh {
            let ph = &tape.probs[hd * t * t..(hd + 1) * t * t];
            let d_ch = slice_head(&d_ctx, h, dh, hd, t);
            let vh = slice_head(&tape.v, h, dh, hd, t);
            let qh = slice_head(&tape.q, h, dh, hd, t);
            let kh = slice_head(&tape.k, h, dh, hd, t);
            // ctx = V P: dV = d_ctx P^T, dP = V^T d_ctx.
            let d_vh = matmul(&d_ch, Trans::No, &transpose_cm(ph, t, t), Trans::No, dh, t, t, pool);
            let d_p = matmul(&vh, Trans::Yes, &d_ch, Trans::No, t, t, dh, pool);
            // softmax backward per column.
            let mut d_s = vec![0.0f32; t * t];
            softmax::softmax_cols_backward(t, t, ph, t, &d_p, t, &mut d_s, t);
            for val in d_s.iter_mut() {
                *val *= scale;
            }
            // S = K^T Q: dK = Q dS^T, dQ = K dS.
            let d_kh = matmul(&qh, Trans::No, &transpose_cm(&d_s, t, t), Trans::No, dh, t, t, pool);
            let d_qh = matmul(&kh, Trans::No, &d_s, Trans::No, dh, t, t, pool);
            write_head(&mut dv, &d_vh, h, dh, hd, t);
            write_head(&mut dk, &d_kh, h, dh, hd, t);
            write_head(&mut dq, &d_qh, h, dh, hd, t);
        }

        // Projection backwards; all three consume x.
        let xt = transpose_cm(&tape.x, h, t);
        let d_wq = matmul(&dq, Trans::No, &xt, Trans::No, h, h, t, pool);
        let d_wk = matmul(&dk, Trans::No, &xt, Trans::No, h, h, t, pool);
        let d_wv = matmul(&dv, Trans::No, &xt, Trans::No, h, h, t, pool);
        let d_bq = row_sum(&dq, h, t);
        let d_bk = row_sum(&dk, h, t);
        let d_bv = row_sum(&dv, h, t);
        for (w, g) in [(&self.wq, &dq), (&self.wk, &dk), (&self.wv, &dv)] {
            let dxp = matmul(w, Trans::Yes, g, Trans::No, h, t, h, pool);
            for (a, b) in dx.iter_mut().zip(&dxp) {
                *a += *b;
            }
        }

        let grads = BertLayerGrads {
            weights: vec![d_wq, d_wk, d_wv, d_wo, d_w1, d_w2],
            biases: vec![d_bq, d_bk, d_bv, d_bo, d_b1, d_b2],
        };
        let _ = (d_ln1_g, d_ln1_b, d_ln2_g, d_ln2_b); // LN params trained too; folded into biases bucket in the SGD demo
        (dx, grads)
    }

    /// SGD update from gradients. Re-packs the forward plans afterwards —
    /// the prepared-op layout cost is paid once per parameter update, not
    /// once per forward contraction.
    pub fn sgd_step(&mut self, grads: &BertLayerGrads, lr: f32) {
        let weights: [&mut Vec<f32>; 6] =
            [&mut self.wq, &mut self.wk, &mut self.wv, &mut self.wo, &mut self.w1, &mut self.w2];
        for (w, g) in weights.into_iter().zip(&grads.weights) {
            for (a, b) in w.iter_mut().zip(g) {
                *a -= lr * b;
            }
        }
        let biases: [&mut Vec<f32>; 6] =
            [&mut self.bq, &mut self.bk, &mut self.bv, &mut self.bo, &mut self.b1, &mut self.b2];
        for (b, g) in biases.into_iter().zip(&grads.biases) {
            for (a, d) in b.iter_mut().zip(g) {
                *a -= lr * d;
            }
        }
        self.rebuild_plans();
    }
}

/// Borrowed view of a dense layer's parameters (consumed by the
/// block-sparse construction in [`crate::sparse_bert`]).
pub struct DenseWeights<'a> {
    /// Config.
    pub cfg: &'a BertConfig,
    /// wq, wk, wv, wo, w1, w2 (column-major).
    pub weights: [&'a [f32]; 6],
    /// bq, bk, bv, bo, b1, b2.
    pub biases: [&'a [f32]; 6],
    /// LN1 gamma.
    pub ln1_g: &'a [f32],
    /// LN1 beta.
    pub ln1_b: &'a [f32],
    /// LN2 gamma.
    pub ln2_g: &'a [f32],
    /// LN2 beta.
    pub ln2_b: &'a [f32],
}

impl BertLayer {
    /// Borrow all parameters for pruning/export.
    pub fn as_weight_view(&self) -> DenseWeights<'_> {
        DenseWeights {
            cfg: &self.cfg,
            weights: [&self.wq, &self.wk, &self.wv, &self.wo, &self.w1, &self.w2],
            biases: [&self.bq, &self.bk, &self.bv, &self.bo, &self.b1, &self.b2],
            ln1_g: &self.ln1_g,
            ln1_b: &self.ln1_b,
            ln2_g: &self.ln2_g,
            ln2_b: &self.ln2_b,
        }
    }
}

/// A whole encoder (stack of layers).
pub struct BertEncoder {
    /// The layers.
    pub layers: Vec<BertLayer>,
    cfg: BertConfig,
}

impl BertEncoder {
    /// Random-initialized encoder.
    pub fn new(cfg: BertConfig, seed: u64) -> Self {
        let mut rng = Xorshift::new(seed);
        BertEncoder {
            layers: (0..cfg.layers).map(|_| BertLayer::new(cfg, &mut rng)).collect(),
            cfg,
        }
    }

    /// Config accessor.
    pub fn config(&self) -> &BertConfig {
        &self.cfg
    }

    /// Full forward; returns output + tapes.
    pub fn forward(
        &self,
        x: &[f32],
        tokens: usize,
        pool: &ThreadPool,
    ) -> (Vec<f32>, Vec<BertLayerTape>) {
        let mut cur = x.to_vec();
        let mut tapes = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let (out, tape) = layer.forward(&cur, tokens, pool);
            cur = out;
            tapes.push(tape);
        }
        (cur, tapes)
    }

    /// One fine-tuning step against a target (MSE loss); returns the loss.
    pub fn train_step(
        &mut self,
        x: &[f32],
        target: &[f32],
        tokens: usize,
        lr: f32,
        pool: &ThreadPool,
    ) -> f32 {
        let (out, tapes) = self.forward(x, tokens, pool);
        let n = out.len() as f32;
        let mut dy: Vec<f32> = out.iter().zip(target).map(|(o, t)| 2.0 * (o - t) / n).collect();
        let loss = out.iter().zip(target).map(|(o, t)| (o - t) * (o - t)).sum::<f32>() / n;
        for (layer, tape) in self.layers.iter_mut().zip(tapes.iter()).rev() {
            let (dx, grads) = layer.backward(&dy, tape, pool);
            layer.sgd_step(&grads, lr);
            dy = dx;
        }
        loss
    }
}

fn slice_head(x: &[f32], h: usize, dh: usize, head: usize, tokens: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; dh * tokens];
    for t in 0..tokens {
        out[t * dh..(t + 1) * dh].copy_from_slice(&x[t * h + head * dh..t * h + (head + 1) * dh]);
    }
    out
}

fn write_head(x: &mut [f32], hslice: &[f32], h: usize, dh: usize, head: usize, tokens: usize) {
    for t in 0..tokens {
        x[t * h + head * dh..t * h + (head + 1) * dh]
            .copy_from_slice(&hslice[t * dh..(t + 1) * dh]);
    }
}

fn row_sum(x: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; rows];
    pl_tpp::reduce::row_sum(rows, cols, x, rows, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_tensor::fill_uniform;

    #[test]
    fn forward_shapes_and_normalization() {
        let pool = ThreadPool::new(2);
        let cfg = BertConfig::tiny();
        let enc = BertEncoder::new(cfg, 1);
        let tokens = cfg.seq;
        let mut rng = Xorshift::new(2);
        let mut x = vec![0.0f32; cfg.hidden * tokens];
        fill_uniform(&mut x, &mut rng, -1.0, 1.0);
        let (y, tapes) = enc.forward(&x, tokens, &pool);
        assert_eq!(y.len(), cfg.hidden * tokens);
        assert_eq!(tapes.len(), cfg.layers);
        // Output is layernormed: per-token mean ~0, var ~1.
        for t in 0..tokens {
            let col = &y[t * cfg.hidden..(t + 1) * cfg.hidden];
            let mu: f32 = col.iter().sum::<f32>() / cfg.hidden as f32;
            assert!(mu.abs() < 1e-4, "token {t} mean {mu}");
        }
    }

    #[test]
    fn attention_probs_are_distributions() {
        let pool = ThreadPool::new(2);
        let cfg = BertConfig::tiny();
        let layer = BertLayer::new(cfg, &mut Xorshift::new(3));
        let tokens = 8;
        let mut x = vec![0.0f32; cfg.hidden * tokens];
        fill_uniform(&mut x, &mut Xorshift::new(4), -1.0, 1.0);
        let (_, tape) = layer.forward(&x, tokens, &pool);
        for hd in 0..cfg.heads {
            for col in 0..tokens {
                let p = &tape.probs[hd * tokens * tokens + col * tokens..][..tokens];
                let s: f32 = p.iter().sum();
                assert!((s - 1.0).abs() < 1e-5, "head {hd} col {col}: {s}");
                assert!(p.iter().all(|&v| v >= 0.0));
            }
        }
    }

    #[test]
    fn backward_input_gradient_matches_finite_difference() {
        let pool = ThreadPool::new(2);
        let cfg = BertConfig { hidden: 8, heads: 2, intermediate: 16, layers: 1, seq: 4 };
        let layer = BertLayer::new(cfg, &mut Xorshift::new(5));
        let tokens = 4;
        let mut x = vec![0.0f32; cfg.hidden * tokens];
        fill_uniform(&mut x, &mut Xorshift::new(6), -0.5, 0.5);
        let mut dy = vec![0.0f32; cfg.hidden * tokens];
        fill_uniform(&mut dy, &mut Xorshift::new(7), -0.5, 0.5);

        let (_, tape) = layer.forward(&x, tokens, &pool);
        let (dx, _) = layer.backward(&dy, &tape, &pool);

        let loss = |xv: &[f32]| -> f32 {
            let (y, _) = layer.forward(xv, tokens, &pool);
            y.iter().zip(&dy).map(|(a, b)| a * b).sum()
        };
        let h = 2e-2;
        for &idx in &[0usize, 5, 13, 31] {
            let mut xp = x.clone();
            xp[idx] += h;
            let mut xm = x.clone();
            xm[idx] -= h;
            let fd = (loss(&xp) - loss(&xm)) / (2.0 * h);
            assert!(
                (dx[idx] - fd).abs() < 0.05 * (1.0 + fd.abs()),
                "idx {idx}: {} vs {}",
                dx[idx],
                fd
            );
        }
    }

    #[test]
    fn training_reduces_loss() {
        let pool = ThreadPool::new(2);
        let cfg = BertConfig { hidden: 16, heads: 2, intermediate: 32, layers: 2, seq: 8 };
        let mut enc = BertEncoder::new(cfg, 11);
        let tokens = 8;
        let mut rng = Xorshift::new(12);
        let mut x = vec![0.0f32; cfg.hidden * tokens];
        let mut target = vec![0.0f32; cfg.hidden * tokens];
        fill_uniform(&mut x, &mut rng, -0.5, 0.5);
        fill_uniform(&mut target, &mut rng, -0.5, 0.5);
        let first = enc.train_step(&x, &target, tokens, 0.05, &pool);
        let mut last = first;
        for _ in 0..10 {
            last = enc.train_step(&x, &target, tokens, 0.05, &pool);
        }
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn sgd_step_refreshes_forward_plans() {
        // The forward path runs through prepared plans; an SGD update must
        // re-pack them, or inference after fine-tuning would use stale
        // weights.
        let pool = ThreadPool::new(2);
        let cfg = BertConfig { hidden: 16, heads: 2, intermediate: 32, layers: 1, seq: 8 };
        let mut layer = BertLayer::new(cfg, &mut Xorshift::new(77));
        let tokens = 4;
        let mut x = vec![0.0f32; cfg.hidden * tokens];
        fill_uniform(&mut x, &mut Xorshift::new(78), -0.5, 0.5);
        let (y0, tape) = layer.forward(&x, tokens, &pool);
        let mut dy = vec![0.0f32; cfg.hidden * tokens];
        fill_uniform(&mut dy, &mut Xorshift::new(79), -0.5, 0.5);
        let (_, grads) = layer.backward(&dy, &tape, &pool);
        layer.sgd_step(&grads, 0.5);
        let (y1, _) = layer.forward(&x, tokens, &pool);
        assert_ne!(y0, y1, "forward must see the updated weights");
    }

    #[test]
    fn flops_accounting_scales() {
        let cfg = BertConfig::large();
        let f384 = cfg.model_flops(384);
        let f128 = cfg.model_flops(128);
        assert!(f384 > 2.9 * f128); // superlinear due to attention term
        assert!(cfg.layer_weight_bytes(2) < cfg.layer_weight_bytes(4));
    }
}
