//! ResNet-50 components (paper §IV-C, Fig. 7, Table II): the exact
//! convolution shape table of Fig. 7, batch normalization (fwd/bwd),
//! pooling, and the dense classifier head ([`FcHead`]) — the layers that,
//! together with `pl_kernels::conv`, make up the training pipeline. The
//! classifier is the network's one dense weight contraction and runs as a
//! prepared plan ([`crate::prepared::MatmulPlan`]): the `classes x
//! features` weight is packed into its blocked kernel layout once at
//! construction, so per-minibatch forwards only pack the pooled
//! activations.

use crate::matmul::Trans;
use crate::prepared::MatmulPlan;
use parlooper::{LoopSpecs, ThreadedLoop};
use pl_runtime::ThreadPool;
use pl_tensor::{ActTensor, ConvShape, Element, Xorshift};

/// One row of the Fig. 7 shape table.
#[derive(Debug, Clone, Copy)]
pub struct ConvLayerSpec {
    /// Layer ID as in Fig. 7 (1..=20).
    pub id: usize,
    /// The convolution shape (minibatch filled in by the caller).
    pub shape: ConvShape,
    /// How many times this shape occurs in ResNet-50.
    pub count: usize,
}

/// The 20 unique ResNet-50 convolution shapes of Fig. 7 with their
/// occurrence counts, for minibatch `n` and feature blockings `bc`/`bk`
/// (clamped to the layer's channel counts).
pub fn resnet50_conv_shapes(n: usize, bc: usize, bk: usize) -> Vec<ConvLayerSpec> {
    // (id, stride, S, R, W, H, K, C, pad, count)
    type Row = (usize, usize, usize, usize, usize, usize, usize, usize, usize, usize);
    let rows: [Row; 20] = [
        (1, 2, 7, 7, 224, 224, 64, 3, 3, 1),
        (2, 1, 1, 1, 56, 56, 256, 64, 0, 4),
        (3, 1, 1, 1, 56, 56, 64, 64, 0, 1),
        (4, 1, 3, 3, 56, 56, 64, 64, 1, 3),
        (5, 1, 1, 1, 56, 56, 64, 256, 0, 2),
        (6, 2, 1, 1, 56, 56, 512, 256, 0, 1),
        (7, 2, 1, 1, 56, 56, 128, 256, 0, 1),
        (8, 1, 3, 3, 28, 28, 128, 128, 1, 4),
        (9, 1, 1, 1, 28, 28, 512, 128, 0, 4),
        (10, 1, 1, 1, 28, 28, 128, 512, 0, 3),
        (11, 2, 1, 1, 28, 28, 1024, 512, 0, 1),
        (12, 2, 1, 1, 28, 28, 256, 512, 0, 1),
        (13, 1, 3, 3, 14, 14, 256, 256, 1, 6),
        (14, 1, 1, 1, 14, 14, 1024, 256, 0, 6),
        (15, 1, 1, 1, 14, 14, 256, 1024, 0, 5),
        (16, 2, 1, 1, 14, 14, 2048, 1024, 0, 1),
        (17, 2, 1, 1, 14, 14, 512, 1024, 0, 1),
        (18, 1, 3, 3, 7, 7, 512, 512, 1, 3),
        (19, 1, 1, 1, 7, 7, 2048, 512, 0, 3),
        (20, 1, 1, 1, 7, 7, 512, 2048, 0, 2),
    ];
    rows.iter()
        .map(|&(id, stride, s, r, w, h, k, c, pad, count)| {
            let pick = |channels: usize, pref: usize| {
                let mut b = pref.min(channels);
                while !channels.is_multiple_of(b) {
                    b -= 1;
                }
                b.max(1)
            };
            ConvLayerSpec {
                id,
                shape: ConvShape {
                    n,
                    c,
                    k,
                    h,
                    w,
                    r,
                    s,
                    stride,
                    pad,
                    bc: pick(c, bc),
                    bk: pick(k, bk),
                },
                count,
            }
        })
        .collect()
}

/// Batch-normalization statistics + affine parameters for `c` channels.
#[derive(Debug, Clone)]
pub struct BatchNorm {
    /// Scale.
    pub gamma: Vec<f32>,
    /// Shift.
    pub beta: Vec<f32>,
    /// Numerical floor.
    pub eps: f32,
}

/// Saved forward statistics for the backward pass.
pub struct BnTape {
    mean: Vec<f32>,
    rstd: Vec<f32>,
}

impl BatchNorm {
    /// Identity-initialized BN over `c` channels.
    pub fn new(c: usize) -> Self {
        BatchNorm { gamma: vec![1.0; c], beta: vec![0.0; c], eps: 1e-5 }
    }

    /// Forward: per-channel normalization over (N, H, W), parallelized
    /// over channel blocks with PARLOOPER.
    pub fn forward<T: Element>(
        &self,
        x: &ActTensor<T>,
        y: &mut ActTensor<T>,
        pool: &ThreadPool,
    ) -> BnTape {
        let (n, c, h, w, bc) = (x.n(), x.c(), x.h(), x.w(), x.bc());
        let count = (n * h * w) as f32;
        let mut mean = vec![0.0f32; c];
        let mut rstd = vec![0.0f32; c];
        // Stats pass (sequential over channels; cheap relative to convs).
        for ch in 0..c {
            let mut s = 0.0f64;
            let mut s2 = 0.0f64;
            for ni in 0..n {
                for yy in 0..h {
                    for xx in 0..w {
                        let v = x.get(ni, ch, yy, xx).to_f32() as f64;
                        s += v;
                        s2 += v * v;
                    }
                }
            }
            let mu = (s / count as f64) as f32;
            let var = ((s2 / count as f64) as f32 - mu * mu).max(0.0);
            mean[ch] = mu;
            rstd[ch] = 1.0 / (var + self.eps).sqrt();
        }
        // Normalize pass, parallel over (n, cb).
        let cb = c / bc;
        let specs = vec![LoopSpecs::new(0, n, 1), LoopSpecs::new(0, cb, 1)];
        let tl = ThreadedLoop::new(&specs, "AB").expect("bn spec");
        let y_shared = pl_kernels::SharedSlice::new(y.data_mut());
        let plane = y_plane_len(x);
        tl.try_run_on(pool, |ind| {
            let (ni, icb) = (ind[0], ind[1]);
            // SAFETY: disjoint (n, cb) planes.
            let dst = unsafe { y_shared.slice_mut((ni * cb + icb) * plane, plane) };
            // Recompute offsets via logical loops (padding-aware).
            let mut idx = 0usize;
            let hp = x.hp();
            let wp = x.wp();
            let pad = x.pad();
            for yy in 0..hp {
                for xx in 0..wp {
                    for ci in 0..bc {
                        let ch = icb * bc + ci;
                        let v = if yy >= pad && yy < hp - pad && xx >= pad && xx < wp - pad {
                            let raw = x.get(ni, ch, yy - pad, xx - pad).to_f32();
                            self.gamma[ch] * (raw - mean[ch]) * rstd[ch] + self.beta[ch]
                        } else {
                            0.0
                        };
                        dst[idx] = T::from_f32(v);
                        idx += 1;
                    }
                }
            }
        })
        .expect("bn run");
        BnTape { mean, rstd }
    }

    /// Backward: `dx`, accumulating `dgamma`/`dbeta`.
    #[allow(clippy::too_many_arguments)]
    pub fn backward<T: Element>(
        &self,
        x: &ActTensor<T>,
        dy: &ActTensor<T>,
        tape: &BnTape,
        dx: &mut ActTensor<T>,
        dgamma: &mut [f32],
        dbeta: &mut [f32],
    ) {
        let (n, c, h, w) = (x.n(), x.c(), x.h(), x.w());
        let count = (n * h * w) as f32;
        for ch in 0..c {
            let mu = tape.mean[ch];
            let rs = tape.rstd[ch];
            let mut sum_g = 0.0f32;
            let mut sum_gx = 0.0f32;
            for ni in 0..n {
                for yy in 0..h {
                    for xx in 0..w {
                        let g = dy.get(ni, ch, yy, xx).to_f32();
                        let xhat = (x.get(ni, ch, yy, xx).to_f32() - mu) * rs;
                        sum_g += g;
                        sum_gx += g * xhat;
                    }
                }
            }
            dgamma[ch] += sum_gx;
            dbeta[ch] += sum_g;
            let gam = self.gamma[ch];
            for ni in 0..n {
                for yy in 0..h {
                    for xx in 0..w {
                        let g = dy.get(ni, ch, yy, xx).to_f32();
                        let xhat = (x.get(ni, ch, yy, xx).to_f32() - mu) * rs;
                        let v = gam * rs * (g - (sum_g + xhat * sum_gx) / count);
                        dx.set(ni, ch, yy, xx, T::from_f32(v));
                    }
                }
            }
        }
    }
}

fn y_plane_len<T: Element>(x: &ActTensor<T>) -> usize {
    x.hp() * x.wp() * x.bc()
}

/// Max pooling (kernel `k`, stride `s`) — ResNet-50's 3x3/s2 stem pool.
pub fn maxpool<T: Element>(x: &ActTensor<T>, k: usize, s: usize) -> ActTensor<T> {
    let (n, c, h, w, bc) = (x.n(), x.c(), x.h(), x.w(), x.bc());
    let (ph, pw) = ((h - k) / s + 1, (w - k) / s + 1);
    let mut y = ActTensor::<T>::new(n, c, ph, pw, bc, 0).expect("pool out");
    for ni in 0..n {
        for ch in 0..c {
            for oy in 0..ph {
                for ox in 0..pw {
                    let mut m = f32::NEG_INFINITY;
                    for dy in 0..k {
                        for dx in 0..k {
                            m = m.max(x.get(ni, ch, oy * s + dy, ox * s + dx).to_f32());
                        }
                    }
                    y.set(ni, ch, oy, ox, T::from_f32(m));
                }
            }
        }
    }
    y
}

/// Global average pooling to a `(n, c)` matrix (column-major `c x n`).
pub fn global_avgpool<T: Element>(x: &ActTensor<T>) -> Vec<f32> {
    let (n, c, h, w) = (x.n(), x.c(), x.h(), x.w());
    let mut out = vec![0.0f32; c * n];
    let inv = 1.0 / (h * w) as f32;
    for ni in 0..n {
        for ch in 0..c {
            let mut s = 0.0f32;
            for yy in 0..h {
                for xx in 0..w {
                    s += x.get(ni, ch, yy, xx).to_f32();
                }
            }
            out[ni * c + ch] = s * inv;
        }
    }
    out
}

/// The dense classifier head: [`global_avgpool`] features (`features x n`
/// column-major) → class logits (`classes x n`), through a pack-once
/// prepared plan.
pub struct FcHead {
    features: usize,
    classes: usize,
    plan: MatmulPlan,
    bias: Vec<f32>,
}

impl FcHead {
    /// Random-initialized head (ResNet-50: `features = 2048`,
    /// `classes = 1000`).
    pub fn new(features: usize, classes: usize, seed: u64) -> Self {
        let mut rng = Xorshift::new(seed);
        let std = (1.0 / features as f32).sqrt();
        let mut w = vec![0.0f32; classes * features];
        pl_tensor::fill_normal(&mut w, &mut rng, 0.0, std);
        let bias = vec![0.0f32; classes];
        Self::from_weights(&w, &bias, features, classes)
    }

    /// Builds from explicit weights (`classes x features`, column-major)
    /// and bias — the weight is packed here, exactly once.
    pub fn from_weights(w: &[f32], bias: &[f32], features: usize, classes: usize) -> Self {
        assert_eq!(bias.len(), classes, "bias size mismatch");
        FcHead {
            features,
            classes,
            plan: MatmulPlan::new(w, Trans::No, classes, features),
            bias: bias.to_vec(),
        }
    }

    /// Class count.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Input feature count.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Logits (`classes x n`, column-major) for a `features x n` pooled
    /// activation matrix (the [`global_avgpool`] output layout).
    pub fn forward(&self, feats: &[f32], n: usize, pool: &ThreadPool) -> Vec<f32> {
        assert_eq!(feats.len(), self.features * n, "pooled feature size mismatch");
        let mut y = self.plan.execute(feats, n, pool);
        pl_tpp::binary::bias_add(self.classes, n, &self.bias, &mut y, self.classes);
        y
    }
}

/// Total forward flops of ResNet-50's convolutions at minibatch `n`.
pub fn resnet50_conv_flops(n: usize) -> f64 {
    resnet50_conv_shapes(n, 64, 64).iter().map(|l| l.shape.flops() as f64 * l.count as f64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_table_matches_fig7() {
        let shapes = resnet50_conv_shapes(56, 64, 64);
        assert_eq!(shapes.len(), 20);
        // ID1: 7x7 stride 2 pad 3 on 224x224 -> 112x112.
        assert_eq!(shapes[0].shape.p(), 112);
        // ID4: 3x3 s1 p1 keeps 56x56.
        assert_eq!(shapes[3].shape.p(), 56);
        // ID6: stride-2 1x1 halves 56 -> 28.
        assert_eq!(shapes[5].shape.p(), 28);
        // 53 conv layers total in ResNet-50 (incl. downsample branches).
        let total: usize = shapes.iter().map(|l| l.count).sum();
        assert_eq!(total, 53);
        // All blockings divide.
        for l in &shapes {
            assert_eq!(l.shape.c % l.shape.bc, 0, "id {}", l.id);
            assert_eq!(l.shape.k % l.shape.bk, 0, "id {}", l.id);
        }
    }

    #[test]
    fn resnet_flops_scale_with_minibatch() {
        let f1 = resnet50_conv_flops(1);
        let f8 = resnet50_conv_flops(8);
        assert!((f8 / f1 - 8.0).abs() < 1e-9);
        // ~4.1 GFLOP-ish per image x2 (multiply-add counted as 2 flops,
        // convs only): accept the 6-9 GF band.
        assert!(f1 > 6e9 && f1 < 9e9, "per-image conv flops {f1}");
    }

    #[test]
    fn batchnorm_normalizes() {
        let pool = ThreadPool::new(2);
        let mut rng = pl_tensor::Xorshift::new(3);
        let x =
            ActTensor::<f32>::from_fn(2, 8, 6, 6, 4, 0, |_, _, _, _| rng.next_f32() * 3.0 + 1.0)
                .unwrap();
        let bn = BatchNorm::new(8);
        let mut y = ActTensor::<f32>::new(2, 8, 6, 6, 4, 0).unwrap();
        let _tape = bn.forward(&x, &mut y, &pool);
        for ch in 0..8 {
            let mut s = 0.0f32;
            let mut s2 = 0.0f32;
            for ni in 0..2 {
                for yy in 0..6 {
                    for xx in 0..6 {
                        let v = y.get(ni, ch, yy, xx);
                        s += v;
                        s2 += v * v;
                    }
                }
            }
            let count = 72.0;
            let mu = s / count;
            let var = s2 / count - mu * mu;
            assert!(mu.abs() < 1e-4, "ch {ch} mean {mu}");
            assert!((var - 1.0).abs() < 1e-2, "ch {ch} var {var}");
        }
    }

    #[test]
    fn batchnorm_backward_finite_difference() {
        let pool = ThreadPool::new(1);
        let mut rng = pl_tensor::Xorshift::new(5);
        let x =
            ActTensor::<f32>::from_fn(1, 4, 3, 3, 4, 0, |_, _, _, _| rng.next_f32() - 0.5).unwrap();
        let g =
            ActTensor::<f32>::from_fn(1, 4, 3, 3, 4, 0, |_, _, _, _| rng.next_f32() - 0.5).unwrap();
        let bn = BatchNorm::new(4);
        let mut y = ActTensor::<f32>::new(1, 4, 3, 3, 4, 0).unwrap();
        let tape = bn.forward(&x, &mut y, &pool);
        let mut dx = ActTensor::<f32>::new(1, 4, 3, 3, 4, 0).unwrap();
        let mut dgamma = vec![0.0f32; 4];
        let mut dbeta = vec![0.0f32; 4];
        bn.backward(&x, &g, &tape, &mut dx, &mut dgamma, &mut dbeta);

        let loss = |xv: &ActTensor<f32>| -> f32 {
            let mut yv = ActTensor::<f32>::new(1, 4, 3, 3, 4, 0).unwrap();
            bn.forward(xv, &mut yv, &pool);
            let mut s = 0.0;
            for ch in 0..4 {
                for yy in 0..3 {
                    for xx in 0..3 {
                        s += yv.get(0, ch, yy, xx) * g.get(0, ch, yy, xx);
                    }
                }
            }
            s
        };
        let h = 1e-2;
        for &(ch, yy, xx) in &[(0usize, 0usize, 0usize), (2, 1, 2), (3, 2, 1)] {
            let mut xp = x.clone();
            xp.set(0, ch, yy, xx, x.get(0, ch, yy, xx) + h);
            let mut xm = x.clone();
            xm.set(0, ch, yy, xx, x.get(0, ch, yy, xx) - h);
            let fd = (loss(&xp) - loss(&xm)) / (2.0 * h);
            let got = dx.get(0, ch, yy, xx);
            assert!((got - fd).abs() < 2e-2, "({ch},{yy},{xx}): {got} vs {fd}");
        }
    }

    #[test]
    fn fc_head_matches_reference_and_packs_once() {
        let pool = ThreadPool::new(2);
        let (features, classes, n) = (32, 10, 4);
        let mut rng = pl_tensor::Xorshift::new(12);
        let mut w = vec![0.0f32; classes * features];
        let mut bias = vec![0.0f32; classes];
        let mut feats = vec![0.0f32; features * n];
        pl_tensor::fill_uniform(&mut w, &mut rng, -0.5, 0.5);
        pl_tensor::fill_uniform(&mut bias, &mut rng, -0.5, 0.5);
        pl_tensor::fill_uniform(&mut feats, &mut rng, -0.5, 0.5);
        let head = FcHead::from_weights(&w, &bias, features, classes);
        assert_eq!((head.features(), head.classes()), (features, classes));
        let got = head.forward(&feats, n, &pool);
        assert_eq!(got, head.forward(&feats, n, &pool), "cached-kernel forward is stable");
        let mut want = pl_kernels::gemm::reference_gemm(&w, &feats, classes, n, features);
        for col in 0..n {
            for r in 0..classes {
                want[col * classes + r] += bias[r];
            }
        }
        for i in 0..want.len() {
            assert!((got[i] - want[i]).abs() < 1e-3, "idx {i}");
        }
    }

    #[test]
    fn maxpool_and_avgpool() {
        let x = ActTensor::<f32>::from_fn(1, 4, 4, 4, 4, 0, |_, c, y, xx| {
            (c * 100 + y * 10 + xx) as f32
        })
        .unwrap();
        let y = maxpool(&x, 2, 2);
        assert_eq!(y.h(), 2);
        assert_eq!(y.get(0, 0, 0, 0), 11.0); // max of {0,1,10,11}
        assert_eq!(y.get(0, 0, 1, 1), 33.0);
        let avg = global_avgpool(&x);
        // Channel 0 mean over 0..33 grid = 16.5.
        assert!((avg[0] - 16.5).abs() < 1e-4);
    }
}
