//! Flat-matrix matmul bridge — the **pack-per-call compatibility wrapper**
//! over the prepared-op API.
//!
//! The layers keep activations as flat column-major `features x tokens`
//! f32 matrices. Historically every weight contraction went through
//! [`matmul`], which re-packs both operands into PARLOOPER blocked layouts
//! and re-constructs the tuned GEMM kernel per call. That per-call layout
//! cost is exactly what the paper amortizes at layer boundaries, and what
//! [`crate::prepared::MatmulPlan`] now front-loads: **new code should hold
//! plans, not call this function** — `matmul` remains only for one-shot
//! contractions whose operands change every call (gradients, attention
//! score/context products) and as the reference the plan equivalence tests
//! compare against. Consider it deprecated for weight operands.
//!
//! [`matmul`] is implemented as a throwaway [`crate::prepared::MatmulPlan`]
//! built per call, so both paths execute the identical kernel: same
//! blockings ([`pl_kernels::GemmShape::default_block`]), same tuning
//! resolution through [`crate::tuning`], same per-element reduction order —
//! plan outputs are **bit-identical** to `matmul` outputs. No-transpose
//! operands are borrowed, never copied; `Trans::Yes` operands pay one
//! transpose.

use crate::prepared::MatmulPlan;
use pl_runtime::ThreadPool;

/// Operand orientation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trans {
    /// Use as stored.
    No,
    /// Use the transpose.
    Yes,
}

/// `C (m x n) = op_a(A) x op_b(B)` over flat column-major f32 buffers.
///
/// `a` is `(m x k)` after `ta`, `b` is `(k x n)` after `tb`. Packs both
/// operands on every call — hold a [`crate::prepared::MatmulPlan`] instead
/// when `a` is a weight that outlives the call.
#[allow(clippy::too_many_arguments)] // flat GEMM bridge: op_a/op_b + 3 dims + pool
pub fn matmul(
    a: &[f32],
    ta: Trans,
    b: &[f32],
    tb: Trans,
    m: usize,
    n: usize,
    k: usize,
    pool: &ThreadPool,
) -> Vec<f32> {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    let plan = MatmulPlan::new(a, ta, m, k);
    match tb {
        Trans::No => plan.execute(b, n, pool),
        Trans::Yes => plan.execute(&transpose_cm(b, n, k), n, pool),
    }
}

/// Transpose of a flat column-major `rows x cols` matrix.
pub fn transpose_cm(x: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    let mut t = vec![0.0f32; rows * cols];
    pl_tpp::transform::transpose(rows, cols, x, rows, &mut t, cols);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_kernels::gemm::reference_gemm;
    use pl_tensor::{fill_uniform, Xorshift};

    #[test]
    fn matches_reference_all_orientations() {
        let pool = ThreadPool::new(2);
        let (m, n, k) = (24, 20, 28);
        let mut rng = Xorshift::new(4);
        let mut a = vec![0.0f32; m * k];
        let mut b = vec![0.0f32; k * n];
        fill_uniform(&mut a, &mut rng, -0.5, 0.5);
        fill_uniform(&mut b, &mut rng, -0.5, 0.5);
        let want = reference_gemm(&a, &b, m, n, k);

        let c1 = matmul(&a, Trans::No, &b, Trans::No, m, n, k, &pool);
        let at = transpose_cm(&a, m, k); // (k x m) storing A^T
        let c2 = matmul(&at, Trans::Yes, &b, Trans::No, m, n, k, &pool);
        let bt = transpose_cm(&b, k, n);
        let c3 = matmul(&a, Trans::No, &bt, Trans::Yes, m, n, k, &pool);
        let c4 = matmul(&at, Trans::Yes, &bt, Trans::Yes, m, n, k, &pool);
        for (ci, c) in [c1, c2, c3, c4].iter().enumerate() {
            for i in 0..m * n {
                assert!((c[i] - want[i]).abs() < 1e-3, "case {ci} idx {i}");
            }
        }
    }
}
