//! Flat-matrix matmul helper used by the DL layers.
//!
//! The layers keep activations as flat column-major `features x tokens`
//! f32 matrices; this helper packs operands into PARLOOPER blocked layouts,
//! runs the tuned GEMM kernel, and unpacks. Packing is `O(n^2)` against the
//! GEMM's `O(n^3)` — the same layout-transformation cost the paper's
//! blocked tensors pay once per layer boundary.
//!
//! Kernel selection goes through [`crate::tuning`]: when a warmed
//! [`pl_autotuner::TuningDb`] snapshot is installed (e.g. by a serving
//! runtime at startup), every call resolves its `loop_spec_string` from
//! the database entry for this exact `(m, n, k)`; otherwise the built-in
//! `GemmTuning::default_parallel` spec is used. Either way the numeric
//! result is identical — specs only reorder *which thread* produces each
//! output block, never the per-element reduction order.

use pl_kernels::{Gemm, GemmShape, GemmTuning};
use pl_runtime::ThreadPool;
use pl_tensor::BlockedMatrix;

/// Operand orientation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trans {
    /// Use as stored.
    No,
    /// Use the transpose.
    Yes,
}

/// `C (m x n) = op_a(A) x op_b(B)` over flat column-major f32 buffers.
///
/// `a` is `(m x k)` after `ta`, `b` is `(k x n)` after `tb`.
#[allow(clippy::too_many_arguments)] // flat GEMM bridge: op_a/op_b + 3 dims + pool
pub fn matmul(
    a: &[f32],
    ta: Trans,
    b: &[f32],
    tb: Trans,
    m: usize,
    n: usize,
    k: usize,
    pool: &ThreadPool,
) -> Vec<f32> {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    let a_cm: Vec<f32> = match ta {
        Trans::No => a.to_vec(),
        Trans::Yes => transpose_cm(a, k, m),
    };
    let b_cm: Vec<f32> = match tb {
        Trans::No => b.to_vec(),
        Trans::Yes => transpose_cm(b, n, k),
    };
    let shape = GemmShape::with_default_blocks(m, n, k);
    // A registry entry whose spec the loop layer rejects (e.g. a corrupted
    // persisted DB) must degrade to the built-in spec, not panic the
    // caller — the lookup-or-fallback contract of `crate::tuning`.
    let kernel = Gemm::<f32, f32, f32>::new(shape, crate::tuning::gemm_tuning_for(&shape))
        .or_else(|_| Gemm::<f32, f32, f32>::new(shape, GemmTuning::default_parallel(shape.kb())))
        .expect("matmul shape");
    let mut am = BlockedMatrix::<f32>::a_layout(m, k, shape.bm, shape.bk).unwrap();
    am.pack_from_colmajor(&a_cm);
    let mut bm = BlockedMatrix::<f32>::b_layout(k, n, shape.bk, shape.bn).unwrap();
    bm.pack_from_colmajor(&b_cm);
    let mut cm = BlockedMatrix::<f32>::c_layout(m, n, shape.bm, shape.bn).unwrap();
    kernel.execute(&am, &bm, &mut cm, pool).expect("matmul execute");
    cm.unpack_to_colmajor()
}

/// Transpose of a flat column-major `rows x cols` matrix.
pub fn transpose_cm(x: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    let mut t = vec![0.0f32; rows * cols];
    pl_tpp::transform::transpose(rows, cols, x, rows, &mut t, cols);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_kernels::gemm::reference_gemm;
    use pl_tensor::{fill_uniform, Xorshift};

    #[test]
    fn matches_reference_all_orientations() {
        let pool = ThreadPool::new(2);
        let (m, n, k) = (24, 20, 28);
        let mut rng = Xorshift::new(4);
        let mut a = vec![0.0f32; m * k];
        let mut b = vec![0.0f32; k * n];
        fill_uniform(&mut a, &mut rng, -0.5, 0.5);
        fill_uniform(&mut b, &mut rng, -0.5, 0.5);
        let want = reference_gemm(&a, &b, m, n, k);

        let c1 = matmul(&a, Trans::No, &b, Trans::No, m, n, k, &pool);
        let at = transpose_cm(&a, m, k); // (k x m) storing A^T
        let c2 = matmul(&at, Trans::Yes, &b, Trans::No, m, n, k, &pool);
        let bt = transpose_cm(&b, k, n);
        let c3 = matmul(&a, Trans::No, &bt, Trans::Yes, m, n, k, &pool);
        for (ci, c) in [c1, c2, c3].iter().enumerate() {
            for i in 0..m * n {
                assert!((c[i] - want[i]).abs() < 1e-3, "case {ci} idx {i}");
            }
        }
    }
}
