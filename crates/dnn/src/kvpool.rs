//! Paged KV storage: fixed-size pages behind a shared block allocator.
//!
//! The contiguous-per-session KV buffer (`hidden x kv_capacity` per layer,
//! pinned for the session's whole life) is replaced by fixed-size
//! [`KvPage`]s handed out by a [`KvPagePool`]: a session's per-layer cache
//! becomes a [`KvSeq`] — a page list plus a token cursor — and grows one
//! page at a time. This is what unlocks the serving tier's scale story:
//!
//! * **bounded residency** — a pool can cap resident pages
//!   ([`KvPagePool::bounded`]), and freed pages recycle through a free
//!   list instead of returning to the OS;
//! * **prefix sharing** — pages are `Arc`-ref-counted, so identical prompt
//!   prefixes hash-cons to the *same* physical pages
//!   ([`PrefixCache`]); a writer hitting a shared page gets a private
//!   copy first ([`KvPagePool::page_mut`], copy-on-write), so divergence
//!   after the shared prefix is isolated;
//! * **mobility** — a sequence serializes to a dense [`KvSnapshot`]
//!   (spill to bytes, restore later, or re-admit on another shard's
//!   pool), because a page list + cursor is data, not an address.
//!
//! Bit-identity discipline: a page is the *same* token-major layout the
//! contiguous cache used (`token t`'s K slice at `(t % page_tokens) *
//! hidden`), and attention reads tokens through [`KvSeq::k_tok`] /
//! [`KvSeq::v_tok`] without changing per-element arithmetic order — so
//! paged decode is bit-identical to the contiguous baseline at every page
//! size (asserted in `llm.rs` tests across serial, fused and int8 paths).

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, Weak};

/// Default page granularity (tokens per page) when callers don't choose
/// one: small enough that short sessions don't strand capacity, large
/// enough that the page list stays short at serving context lengths.
pub const DEFAULT_PAGE_TOKENS: usize = 16;

/// The pool has no free page and is at its residency bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvPoolExhausted {
    /// The pool's resident-page bound.
    pub max_pages: usize,
}

impl std::fmt::Display for KvPoolExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "KV page pool exhausted ({} resident pages)", self.max_pages)
    }
}

impl std::error::Error for KvPoolExhausted {}

/// One fixed-size KV page: `hidden x page_tokens` keys and values,
/// token-major (token slot `i`'s K values at `i * hidden`). Pages are
/// held as `Arc<KvPage>`; a strong count above one means the page is
/// shared (prefix cache and/or other sessions) and must be COW-split
/// before writing ([`KvPagePool::page_mut`]). Dropping the last reference
/// recycles the buffers into the owning pool's free list.
pub struct KvPage {
    pub(crate) k: Vec<f32>,
    pub(crate) v: Vec<f32>,
    pool: Weak<KvPagePool>,
}

impl KvPage {
    /// The page's key buffer (`hidden x page_tokens`, token-major).
    pub fn k(&self) -> &[f32] {
        &self.k
    }

    /// The page's value buffer (same layout as [`KvPage::k`]).
    pub fn v(&self) -> &[f32] {
        &self.v
    }
}

impl std::fmt::Debug for KvPage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvPage").field("elems", &self.k.len()).finish()
    }
}

impl Drop for KvPage {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.upgrade() {
            pool.recycle(std::mem::take(&mut self.k), std::mem::take(&mut self.v));
        }
    }
}

struct PoolInner {
    /// Recycled `(k, v)` buffers awaiting reuse.
    free: Vec<(Vec<f32>, Vec<f32>)>,
    /// Pages currently handed out (live `Arc<KvPage>`s).
    allocated: usize,
    /// High-water mark of `allocated`.
    peak: usize,
    /// Copy-on-write splits performed ([`KvPagePool::page_mut`] on a
    /// shared page).
    cow_splits: u64,
}

/// A block allocator for [`KvPage`]s: every page it hands out has the
/// same `hidden x page_tokens` geometry, freed pages recycle through a
/// free list, and (optionally) total residency is bounded. One pool per
/// serving shard; sessions on the shard draw from and share within it.
pub struct KvPagePool {
    hidden: usize,
    page_tokens: usize,
    max_pages: usize,
    inner: Mutex<PoolInner>,
}

impl KvPagePool {
    /// An unbounded pool at the given geometry.
    pub fn new(hidden: usize, page_tokens: usize) -> Arc<Self> {
        Self::bounded(hidden, page_tokens, usize::MAX)
    }

    /// A pool that refuses to hold more than `max_pages` resident pages
    /// (live + free-listed) — the serving tier's KV-memory bound.
    pub fn bounded(hidden: usize, page_tokens: usize, max_pages: usize) -> Arc<Self> {
        assert!(hidden > 0 && page_tokens > 0, "pool geometry must be non-zero");
        Arc::new(KvPagePool {
            hidden,
            page_tokens,
            max_pages,
            inner: Mutex::new(PoolInner { free: Vec::new(), allocated: 0, peak: 0, cow_splits: 0 }),
        })
    }

    /// Hidden width each page stores per token.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Tokens per page.
    pub fn page_tokens(&self) -> usize {
        self.page_tokens
    }

    /// The residency bound (`usize::MAX` when unbounded).
    pub fn max_pages(&self) -> usize {
        self.max_pages
    }

    /// Bytes of one page's K+V storage.
    pub fn page_bytes(&self) -> usize {
        2 * self.hidden * self.page_tokens * std::mem::size_of::<f32>()
    }

    /// Live pages (allocated and not yet dropped).
    pub fn allocated_pages(&self) -> usize {
        self.inner.lock().unwrap().allocated
    }

    /// Recycled pages awaiting reuse.
    pub fn free_pages(&self) -> usize {
        self.inner.lock().unwrap().free.len()
    }

    /// Live + free-listed pages — the pool's physical footprint, the
    /// quantity [`KvPagePool::bounded`] bounds.
    pub fn resident_pages(&self) -> usize {
        let inner = self.inner.lock().unwrap();
        inner.allocated + inner.free.len()
    }

    /// High-water mark of live pages.
    pub fn peak_pages(&self) -> usize {
        self.inner.lock().unwrap().peak
    }

    /// Copy-on-write splits performed so far.
    pub fn cow_splits(&self) -> u64 {
        self.inner.lock().unwrap().cow_splits
    }

    /// Allocates one zeroed page, reusing a free-listed buffer when one
    /// exists, minting a new one while under the residency bound.
    pub fn alloc(self: &Arc<Self>) -> Result<Arc<KvPage>, KvPoolExhausted> {
        let elems = self.hidden * self.page_tokens;
        let (k, v) = {
            let mut inner = self.inner.lock().unwrap();
            let bufs = match inner.free.pop() {
                Some(bufs) => bufs,
                None => {
                    if inner.allocated >= self.max_pages {
                        return Err(KvPoolExhausted { max_pages: self.max_pages });
                    }
                    (vec![0.0; elems], vec![0.0; elems])
                }
            };
            inner.allocated += 1;
            inner.peak = inner.peak.max(inner.allocated);
            bufs
        };
        Ok(Arc::new(KvPage { k, v, pool: Arc::downgrade(self) }))
    }

    /// Allocates a page holding a copy of `src`'s contents (the write
    /// half of copy-on-write).
    fn alloc_copy(self: &Arc<Self>, src: &KvPage) -> Result<Arc<KvPage>, KvPoolExhausted> {
        let mut page = self.alloc()?;
        {
            let p = Arc::get_mut(&mut page).expect("fresh page is exclusively owned");
            p.k.copy_from_slice(&src.k);
            p.v.copy_from_slice(&src.v);
        }
        self.inner.lock().unwrap().cow_splits += 1;
        Ok(page)
    }

    /// Writable access to `page`: if the page is shared (strong count
    /// above one), it is first replaced by a private copy — the
    /// copy-on-write split that isolates a writer from every other
    /// holder of the original page.
    pub fn page_mut<'a>(
        self: &Arc<Self>,
        page: &'a mut Arc<KvPage>,
    ) -> Result<&'a mut KvPage, KvPoolExhausted> {
        if Arc::get_mut(page).is_none() {
            let copy = self.alloc_copy(page)?;
            *page = copy;
        }
        Ok(Arc::get_mut(page).expect("exclusive after COW split"))
    }

    fn recycle(&self, k: Vec<f32>, v: Vec<f32>) {
        let mut inner = self.inner.lock().unwrap();
        inner.allocated -= 1;
        // Dropped mid-teardown pages may have been taken; only buffers of
        // full geometry are worth keeping.
        if k.len() == self.hidden * self.page_tokens && v.len() == k.len() {
            let (mut k, mut v) = (k, v);
            k.iter_mut().for_each(|x| *x = 0.0);
            v.iter_mut().for_each(|x| *x = 0.0);
            inner.free.push((k, v));
        }
    }
}

/// One layer's KV sequence: an ordered page list plus a token cursor.
/// Token `t` lives in page `t / page_tokens` at slot `t % page_tokens` —
/// the same token-major layout the contiguous cache used, chunked.
pub struct KvSeq {
    pages: Vec<Arc<KvPage>>,
    len: usize,
    hidden: usize,
    page_tokens: usize,
}

impl KvSeq {
    /// An empty sequence drawing from `pool`'s geometry.
    pub fn new(pool: &KvPagePool) -> Self {
        KvSeq { pages: Vec::new(), len: 0, hidden: pool.hidden(), page_tokens: pool.page_tokens() }
    }

    /// Cached tokens.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the sequence holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pages currently held.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// The page list (shared handles; ref counts are visible through it).
    pub fn pages(&self) -> &[Arc<KvPage>] {
        &self.pages
    }

    /// Pages this sequence shares with at least one other holder.
    pub fn shared_pages(&self) -> usize {
        self.pages.iter().filter(|p| Arc::strong_count(p) > 1).count()
    }

    /// Token `t`'s key slice (`hidden` values).
    #[inline]
    pub fn k_tok(&self, t: usize) -> &[f32] {
        debug_assert!(t < self.len);
        let off = (t % self.page_tokens) * self.hidden;
        &self.pages[t / self.page_tokens].k[off..off + self.hidden]
    }

    /// Token `t`'s value slice (`hidden` values).
    #[inline]
    pub fn v_tok(&self, t: usize) -> &[f32] {
        debug_assert!(t < self.len);
        let off = (t % self.page_tokens) * self.hidden;
        &self.pages[t / self.page_tokens].v[off..off + self.hidden]
    }

    /// Appends one token's K/V slices, growing the page list at page
    /// boundaries and COW-splitting a shared tail page before writing.
    pub fn append(
        &mut self,
        pool: &Arc<KvPagePool>,
        k: &[f32],
        v: &[f32],
    ) -> Result<(), KvPoolExhausted> {
        debug_assert_eq!(k.len(), self.hidden);
        debug_assert_eq!(v.len(), self.hidden);
        let slot = self.len / self.page_tokens;
        if slot == self.pages.len() {
            self.pages.push(pool.alloc()?);
        }
        let page = pool.page_mut(&mut self.pages[slot])?;
        let off = (self.len % self.page_tokens) * self.hidden;
        page.k[off..off + self.hidden].copy_from_slice(k);
        page.v[off..off + self.hidden].copy_from_slice(v);
        self.len += 1;
        Ok(())
    }

    /// Drops every page (recycling each last reference into the pool)
    /// and resets the cursor.
    pub fn clear(&mut self) {
        self.pages.clear();
        self.len = 0;
    }

    /// Replaces the leading pages with `shared` handles (same contents,
    /// shared physical pages) — the prefix-dedup step. The caller
    /// guarantees the replaced pages hold identical data.
    pub(crate) fn adopt_prefix(&mut self, shared: &[Arc<KvPage>]) {
        debug_assert!(shared.len() <= self.pages.len());
        for (slot, page) in self.pages.iter_mut().zip(shared) {
            *slot = Arc::clone(page);
        }
    }
}

/// A dense, poolless serialization of a multi-layer KV state: the spill
/// and migration wire format. Only valid tokens are stored (not
/// capacity), so an idle 10-token session spills to 10 tokens of bytes
/// regardless of its admission capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct KvSnapshot {
    hidden: usize,
    len: usize,
    capacity: usize,
    /// Per-layer `(k, v)` buffers, each `hidden x len` token-major.
    layers: Vec<(Vec<f32>, Vec<f32>)>,
}

impl KvSnapshot {
    /// Densifies `seqs` (one per layer, equal lengths — the quiesced
    /// invariant) into a snapshot carrying admission capacity `capacity`.
    pub fn from_seqs(seqs: &[KvSeq], capacity: usize) -> Self {
        assert!(!seqs.is_empty(), "snapshot needs at least one layer");
        let len = seqs[0].len();
        let hidden = seqs[0].hidden;
        let layers = seqs
            .iter()
            .map(|seq| {
                assert_eq!(seq.len(), len, "layers must be quiesced at equal lengths");
                let mut k = Vec::with_capacity(hidden * len);
                let mut v = Vec::with_capacity(hidden * len);
                for t in 0..len {
                    k.extend_from_slice(seq.k_tok(t));
                    v.extend_from_slice(seq.v_tok(t));
                }
                (k, v)
            })
            .collect();
        KvSnapshot { hidden, len, capacity, layers }
    }

    /// Cached tokens.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the snapshot holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The admission capacity the session was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Hidden width per token.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Layers captured.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Bytes of KV payload held (keys + values, all layers).
    pub fn kv_bytes(&self) -> usize {
        self.layers.iter().map(|(k, v)| (k.len() + v.len()) * 4).sum()
    }

    /// Rehydrates into per-layer sequences drawing pages from `pool`
    /// (possibly a different shard's pool than the one spilled from).
    pub fn restore(&self, pool: &Arc<KvPagePool>) -> Result<Vec<KvSeq>, KvPoolExhausted> {
        assert_eq!(pool.hidden(), self.hidden, "pool geometry mismatch");
        let h = self.hidden;
        let mut seqs = Vec::with_capacity(self.layers.len());
        for (k, v) in &self.layers {
            let mut seq = KvSeq::new(pool);
            for t in 0..self.len {
                seq.append(pool, &k[t * h..(t + 1) * h], &v[t * h..(t + 1) * h])?;
            }
            seqs.push(seq);
        }
        Ok(seqs)
    }

    /// Serializes to a byte buffer (little-endian; `PLKV` magic + u32
    /// header + raw f32 payload) — the cross-shard wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + self.kv_bytes());
        out.extend_from_slice(b"PLKV");
        for field in
            [self.hidden as u32, self.len as u32, self.capacity as u32, self.layers.len() as u32]
        {
            out.extend_from_slice(&field.to_le_bytes());
        }
        for (k, v) in &self.layers {
            for x in k.iter().chain(v) {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        out
    }

    /// Deserializes [`KvSnapshot::to_bytes`] output; `None` on any
    /// malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let (magic, rest) = bytes.split_at_checked(4)?;
        if magic != b"PLKV" {
            return None;
        }
        let mut fields = [0usize; 4];
        let mut rest = rest;
        for f in &mut fields {
            let (word, tail) = rest.split_at_checked(4)?;
            *f = u32::from_le_bytes(word.try_into().ok()?) as usize;
            rest = tail;
        }
        let [hidden, len, capacity, layer_count] = fields;
        let per_buf = hidden.checked_mul(len)?;
        let want = layer_count.checked_mul(per_buf.checked_mul(8)?)?;
        if rest.len() != want {
            return None;
        }
        let read_buf = |rest: &mut &[u8]| -> Option<Vec<f32>> {
            let (raw, tail) = rest.split_at_checked(per_buf * 4)?;
            *rest = tail;
            Some(raw.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect())
        };
        let mut layers = Vec::with_capacity(layer_count);
        for _ in 0..layer_count {
            let k = read_buf(&mut rest)?;
            let v = read_buf(&mut rest)?;
            layers.push((k, v));
        }
        Some(KvSnapshot { hidden, len, capacity, layers })
    }
}

struct PrefixEntry {
    /// Tokens this entry covers.
    tokens: usize,
    /// The exact prompt inputs the entry was keyed on (`hidden x tokens`)
    /// — compared on lookup, so hash collisions can never alias two
    /// different prompts onto one KV prefix.
    input: Vec<f32>,
    /// Per-layer shared page handles covering those tokens.
    pages: Vec<Vec<Arc<KvPage>>>,
}

struct PrefixInner {
    entries: HashMap<u64, PrefixEntry>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<u64>,
}

/// Hash-consing of prompt prefixes onto shared KV pages: after a prefill
/// completes, its prompt is hashed at every page boundary (and at its
/// exact length); a hit replaces the session's freshly written pages
/// with the cached *shared* pages — the duplicates recycle back to the
/// pool — and a miss registers the session's pages for the next tenant
/// with the same system prompt. Lookup verifies the full prompt bytes,
/// so a hash collision degrades to a miss, never to aliasing.
pub struct PrefixCache {
    max_entries: usize,
    inner: Mutex<PrefixInner>,
}

fn hash_prefix(input: &[f32]) -> u64 {
    // FNV-1a over the raw f32 bits plus the length.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |byte: u8| {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for x in input {
        for b in x.to_bits().to_le_bytes() {
            eat(b);
        }
    }
    for b in (input.len() as u64).to_le_bytes() {
        eat(b);
    }
    h
}

impl PrefixCache {
    /// A cache retaining up to `max_entries` prefix spans (FIFO-evicted;
    /// sessions already sharing an evicted span keep their pages — only
    /// *future* dedup against it is lost).
    pub fn new(max_entries: usize) -> Self {
        PrefixCache {
            max_entries: max_entries.max(1),
            inner: Mutex::new(PrefixInner { entries: HashMap::new(), order: VecDeque::new() }),
        }
    }

    /// Registered prefix spans.
    pub fn entries(&self) -> usize {
        self.inner.lock().unwrap().entries.len()
    }

    /// Distinct physical pages the cache holds that at least one session
    /// currently shares (strong count above the cache's own references).
    pub fn shared_pages(&self) -> usize {
        let inner = self.inner.lock().unwrap();
        let mut refs: HashMap<*const KvPage, (usize, usize)> = HashMap::new();
        for e in inner.entries.values() {
            for page in e.pages.iter().flatten() {
                let slot = refs.entry(Arc::as_ptr(page)).or_insert((0, Arc::strong_count(page)));
                slot.0 += 1;
                slot.1 = Arc::strong_count(page);
            }
        }
        refs.values().filter(|(cache_refs, strong)| strong > cache_refs).count()
    }

    /// Drops every entry (shared pages survive wherever sessions still
    /// hold them; unshared ones recycle to the pool).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.entries.clear();
        inner.order.clear();
    }

    /// The candidate spans (token counts) a `tokens`-token prompt can be
    /// deduped at: every full-page boundary, plus the exact length (whose
    /// final page may be partial — shareable because the adopter's next
    /// append COW-splits it). Descending, so longest-match wins.
    fn spans(tokens: usize, page_tokens: usize) -> Vec<usize> {
        let mut spans: Vec<usize> = (1..=tokens / page_tokens).map(|i| i * page_tokens).collect();
        if !tokens.is_multiple_of(page_tokens) {
            spans.push(tokens);
        }
        spans.sort_unstable_by(|a, b| b.cmp(a));
        spans
    }

    /// Dedups the freshly prefilled `seqs` (one per layer, every length
    /// exactly `tokens`) against the cache, adopting the longest cached
    /// span whose prompt bytes match and registering every unseen span.
    /// Returns the number of page handles newly pointed at shared
    /// physical pages (0 = no match).
    pub(crate) fn share_seqs(&self, seqs: &mut [KvSeq], prompt: &[f32], tokens: usize) -> usize {
        if seqs.is_empty() || tokens == 0 {
            return 0;
        }
        let h = seqs[0].hidden;
        let pt = seqs[0].page_tokens;
        if prompt.len() != h * tokens || seqs.iter().any(|s| s.len() != tokens) {
            return 0;
        }
        let spans = Self::spans(tokens, pt);
        let mut inner = self.inner.lock().unwrap();
        let mut adopted = 0usize;
        for &span in &spans {
            let key = hash_prefix(&prompt[..span * h]);
            let Some(entry) = inner.entries.get(&key) else { continue };
            if entry.tokens != span || entry.input != prompt[..span * h] {
                continue; // hash collision: miss, never alias
            }
            let npages = span.div_ceil(pt);
            for (seq, shared) in seqs.iter_mut().zip(&entry.pages) {
                debug_assert_eq!(shared.len(), npages);
                seq.adopt_prefix(shared);
            }
            adopted = npages * seqs.len();
            break;
        }
        // Register unseen spans so the *next* identical prompt shares
        // (the just-adopted prefix chains: its pages are now the shared
        // ones, so longer spans registered here extend the shared run).
        for &span in &spans {
            let key = hash_prefix(&prompt[..span * h]);
            if inner.entries.contains_key(&key) {
                continue;
            }
            let npages = span.div_ceil(pt);
            let pages = seqs.iter().map(|s| s.pages[..npages].to_vec()).collect();
            inner.entries.insert(
                key,
                PrefixEntry { tokens: span, input: prompt[..span * h].to_vec(), pages },
            );
            inner.order.push_back(key);
            while inner.order.len() > self.max_entries {
                if let Some(old) = inner.order.pop_front() {
                    inner.entries.remove(&old);
                }
            }
        }
        adopted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(seq: &mut KvSeq, pool: &Arc<KvPagePool>, tokens: usize, seed: f32) {
        let h = pool.hidden();
        for t in 0..tokens {
            let k: Vec<f32> = (0..h).map(|i| seed + (t * h + i) as f32).collect();
            let v: Vec<f32> = k.iter().map(|x| -x).collect();
            seq.append(pool, &k, &v).unwrap();
        }
    }

    #[test]
    fn alloc_free_recycles_buffers() {
        let pool = KvPagePool::new(4, 2);
        let a = pool.alloc().unwrap();
        let b = pool.alloc().unwrap();
        assert_eq!(pool.allocated_pages(), 2);
        assert_eq!(pool.free_pages(), 0);
        drop(a);
        assert_eq!(pool.allocated_pages(), 1);
        assert_eq!(pool.free_pages(), 1);
        // The next alloc reuses the recycled buffer — zeroed.
        let c = pool.alloc().unwrap();
        assert!(c.k().iter().chain(c.v()).all(|&x| x == 0.0));
        assert_eq!(pool.free_pages(), 0);
        assert_eq!(pool.peak_pages(), 2);
        drop((b, c));
        assert_eq!(pool.allocated_pages(), 0);
        assert_eq!(pool.resident_pages(), 2);
    }

    #[test]
    fn bounded_pool_refuses_past_the_cap() {
        let pool = KvPagePool::bounded(4, 2, 2);
        let a = pool.alloc().unwrap();
        let _b = pool.alloc().unwrap();
        assert_eq!(pool.alloc().unwrap_err(), KvPoolExhausted { max_pages: 2 });
        drop(a);
        assert!(pool.alloc().is_ok(), "freed capacity is reusable");
    }

    #[test]
    fn seq_layout_matches_contiguous_token_major() {
        let pool = KvPagePool::new(3, 2);
        let mut seq = KvSeq::new(&pool);
        fill(&mut seq, &pool, 5, 100.0);
        assert_eq!(seq.len(), 5);
        assert_eq!(seq.page_count(), 3);
        for t in 0..5 {
            let want: Vec<f32> = (0..3).map(|i| 100.0 + (t * 3 + i) as f32).collect();
            assert_eq!(seq.k_tok(t), &want[..]);
            assert_eq!(seq.v_tok(t), want.iter().map(|x| -x).collect::<Vec<_>>());
        }
        seq.clear();
        assert_eq!(pool.allocated_pages(), 0);
        assert_eq!(pool.free_pages(), 3);
    }

    #[test]
    fn cow_split_isolates_writers() {
        let pool = KvPagePool::new(2, 4);
        let mut a = KvSeq::new(&pool);
        fill(&mut a, &pool, 2, 0.0);
        // b shares a's (partial) page.
        let mut b = KvSeq::new(&pool);
        b.pages = a.pages.clone();
        b.len = a.len;
        assert_eq!(a.shared_pages(), 1);
        assert_eq!(pool.allocated_pages(), 1);
        // b appends: COW split — a is untouched, b owns a private copy.
        b.append(&pool, &[7.0, 8.0], &[9.0, 10.0]).unwrap();
        assert_eq!(pool.cow_splits(), 1);
        assert_eq!(pool.allocated_pages(), 2);
        assert_eq!(a.shared_pages(), 0);
        assert_eq!(a.len(), 2);
        assert_eq!(b.k_tok(0), a.k_tok(0), "shared prefix preserved across the split");
        assert_eq!(b.k_tok(2), &[7.0, 8.0]);
    }

    #[test]
    fn snapshot_roundtrip_bitwise() {
        let pool = KvPagePool::new(3, 2);
        let mut seqs: Vec<KvSeq> = (0..2).map(|_| KvSeq::new(&pool)).collect();
        for (l, seq) in seqs.iter_mut().enumerate() {
            fill(seq, &pool, 5, l as f32 * 10.0);
        }
        let snap = KvSnapshot::from_seqs(&seqs, 8);
        assert_eq!(snap.len(), 5);
        assert_eq!(snap.capacity(), 8);
        assert_eq!(snap.kv_bytes(), 2 * 2 * 3 * 5 * 4);
        let bytes = snap.to_bytes();
        let back = KvSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
        // Restore into a pool of *different* page size: values identical.
        let other = KvPagePool::new(3, 4);
        let restored = back.restore(&other).unwrap();
        for (orig, rest) in seqs.iter().zip(&restored) {
            for t in 0..5 {
                assert_eq!(orig.k_tok(t), rest.k_tok(t));
                assert_eq!(orig.v_tok(t), rest.v_tok(t));
            }
        }
        assert!(KvSnapshot::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        assert!(KvSnapshot::from_bytes(b"nope").is_none());
    }

    #[test]
    fn prefix_cache_dedups_and_verifies_bytes() {
        let pool = KvPagePool::new(2, 2);
        let cache = PrefixCache::new(8);
        let tokens = 4;
        let prompt: Vec<f32> = (0..2 * tokens).map(|i| i as f32).collect();
        let mut first: Vec<KvSeq> = (0..2).map(|_| KvSeq::new(&pool)).collect();
        for seq in &mut first {
            fill(seq, &pool, tokens, 5.0);
        }
        assert_eq!(cache.share_seqs(&mut first, &prompt, tokens), 0, "first sight: no match");
        assert!(cache.entries() > 0);
        let before = pool.allocated_pages();
        // Second identical prompt: adopts the cached pages; its own
        // duplicates recycle.
        let mut second: Vec<KvSeq> = (0..2).map(|_| KvSeq::new(&pool)).collect();
        for seq in &mut second {
            fill(seq, &pool, tokens, 5.0);
        }
        let adopted = cache.share_seqs(&mut second, &prompt, tokens);
        assert_eq!(adopted, 2 * 2, "all pages of both layers shared");
        assert_eq!(pool.allocated_pages(), before, "duplicate pages recycled");
        assert!(cache.shared_pages() > 0);
        for (a, b) in first.iter().zip(&second) {
            for t in 0..tokens {
                assert!(std::ptr::eq(a.k_tok(t).as_ptr(), b.k_tok(t).as_ptr()));
            }
        }
        // A different prompt with the same length never aliases.
        let mut other_prompt = prompt.clone();
        other_prompt[0] += 1.0;
        let mut third: Vec<KvSeq> = (0..2).map(|_| KvSeq::new(&pool)).collect();
        for seq in &mut third {
            fill(seq, &pool, tokens, 6.0);
        }
        assert_eq!(cache.share_seqs(&mut third, &other_prompt, tokens), 0);
    }

    #[test]
    fn prefix_cache_evicts_fifo() {
        let pool = KvPagePool::new(1, 1);
        let cache = PrefixCache::new(2);
        for i in 0..4 {
            let prompt = vec![i as f32];
            let mut seqs = vec![KvSeq::new(&pool)];
            fill(&mut seqs[0], &pool, 1, i as f32);
            cache.share_seqs(&mut seqs, &prompt, 1);
        }
        assert_eq!(cache.entries(), 2, "FIFO bound holds");
        cache.clear();
        assert_eq!(cache.entries(), 0);
    }
}
