//! Unstructured block-sparse BERT inference (paper §IV-B, Fig. 10).
//!
//! A dense layer's weights are magnitude-pruned at `block x block`
//! granularity (the paper prunes to 80 % with 8x8 blocks via knowledge
//! distillation; our synthetic stand-in keeps the largest-norm blocks, which
//! produces the same *structure* the kernels see). The six weight
//! contractions then run through the Block-SpMM PARLOOPER kernel instead of
//! dense BRGEMM.

use crate::bert::{BertConfig, BertLayer, DenseWeights};
use crate::prepared::{build_spmm_kernel, SpmmPlan};
use pl_autotuner::GemmProblem;
use pl_runtime::ThreadPool;
use pl_tensor::{BcscMatrix, VnniMatrix, Xorshift};
use pl_tpp::{softmax, unary};

/// Magnitude-based block pruning: keeps the `(1 - sparsity)` fraction of
/// `block x block` blocks with the largest Frobenius norms.
pub fn prune_to_block_sparse(
    w: &[f32],
    rows: usize,
    cols: usize,
    block: usize,
    sparsity: f64,
) -> BcscMatrix<f32> {
    assert_eq!(rows % block, 0);
    assert_eq!(cols % block, 0);
    let (mb, kb) = (rows / block, cols / block);
    let mut norms: Vec<(f64, usize)> = Vec::with_capacity(mb * kb);
    for bi in 0..mb * kb {
        let (im, ik) = (bi / kb, bi % kb);
        let mut n = 0.0f64;
        for c in 0..block {
            for r in 0..block {
                let v = w[(ik * block + c) * rows + im * block + r] as f64;
                n += v * v;
            }
        }
        norms.push((n, bi));
    }
    norms.sort_by(|a, b| b.0.total_cmp(&a.0));
    let keep = (((1.0 - sparsity) * (mb * kb) as f64).round() as usize).min(mb * kb);
    let mut dense = vec![0.0f32; rows * cols];
    for &(_, bi) in norms.iter().take(keep) {
        let (im, ik) = (bi / kb, bi % kb);
        for c in 0..block {
            for r in 0..block {
                let idx = (ik * block + c) * rows + im * block + r;
                dense[idx] = w[idx];
            }
        }
    }
    BcscMatrix::from_dense_colmajor(&dense, rows, cols, block, block).expect("bcsc")
}

/// One sparse contraction: `y (m x t) = A_sparse (m x k) * x (k x t)` —
/// the **pack-per-call** compatibility bridge: it re-resolves tuning and
/// re-constructs the kernel every call. Layers that own their sparse
/// weight should hold a [`SpmmPlan`] instead (what [`SparseBertLayer`]
/// does); this wrapper remains for one-shot contractions.
///
/// The `loop_spec_string` resolves through [`crate::tuning`]: an installed
/// tuning-DB snapshot with an `spmm/…/{m}x{t}x{k}` entry wins, otherwise
/// `SpmmTuning::default_parallel` applies (degrade-don't-panic on
/// rejected registry specs).
pub fn spmm_matmul(a: &BcscMatrix<f32>, x: &[f32], tokens: usize, pool: &ThreadPool) -> Vec<f32> {
    let (m, k) = (a.rows(), a.cols());
    let (bn, kernel) = build_spmm_kernel(m, k, a.bm(), a.bk(), tokens);
    let mut b = VnniMatrix::<f32>::new(k, tokens, bn, 1).expect("b vnni");
    b.pack_from_colmajor(x);
    let mut c = VnniMatrix::<f32>::new(m, tokens, bn, 1).expect("c vnni");
    kernel.execute(a, &b, &mut c, pool).expect("spmm exec");
    c.unpack_to_colmajor()
}

/// Block-sparse weights of one encoder layer, held as prepared
/// [`SpmmPlan`]s: the BCSC compression happens once at pruning time and
/// the constructed kernels are cached per token width, so forwards pay
/// neither weight re-compression nor kernel re-construction.
pub struct SparseBertLayer {
    cfg: BertConfig,
    sw: Vec<SpmmPlan>, // wq, wk, wv, wo, w1, w2
    biases: Vec<Vec<f32>>,
    ln1_g: Vec<f32>,
    ln1_b: Vec<f32>,
    ln2_g: Vec<f32>,
    ln2_b: Vec<f32>,
}

impl SparseBertLayer {
    /// Prunes a dense layer's weights to the target block sparsity.
    pub fn from_dense(dense: &DenseWeights<'_>, block: usize, sparsity: f64) -> Self {
        let cfg = *dense.cfg;
        let (h, i) = (cfg.hidden, cfg.intermediate);
        let dims = [(h, h), (h, h), (h, h), (h, h), (i, h), (h, i)];
        let sw = dense
            .weights
            .iter()
            .zip(dims)
            .map(|(w, (r, c))| SpmmPlan::new(prune_to_block_sparse(w, r, c, block, sparsity)))
            .collect();
        SparseBertLayer {
            cfg,
            sw,
            biases: dense.biases.iter().map(|b| b.to_vec()).collect(),
            ln1_g: dense.ln1_g.to_vec(),
            ln1_b: dense.ln1_b.to_vec(),
            ln2_g: dense.ln2_g.to_vec(),
            ln2_b: dense.ln2_b.to_vec(),
        }
    }

    /// Effective sparsity actually achieved across the six weights.
    pub fn sparsity(&self) -> f64 {
        self.sw.iter().map(|m| m.weight().sparsity()).sum::<f64>() / self.sw.len() as f64
    }

    /// Compressed weight footprint in bytes.
    pub fn compressed_bytes(&self) -> usize {
        self.sw.iter().map(|m| m.weight().compressed_bytes()).sum()
    }

    /// Appends (deduped by `(m, n, k)`) the exact SpMM problems this
    /// layer's plans execute at `tokens` columns — the `spmm/...` shapes a
    /// tuning warmer must cover for [`crate::tuning::lookup_spmm`] to hit.
    pub fn plan_problems(&self, tokens: usize, out: &mut Vec<GemmProblem>) {
        for plan in &self.sw {
            let p = plan.problem(tokens);
            if !out.iter().any(|q| (q.m, q.n, q.k) == (p.m, p.n, p.k)) {
                out.push(p);
            }
        }
    }

    /// Pre-constructs every plan's kernel at `tokens` columns (e.g. right
    /// after a tuning snapshot install).
    pub fn warm_plans(&self, tokens: usize) {
        for plan in &self.sw {
            plan.warm(tokens);
        }
    }

    /// Forward (inference only; mirrors `BertLayer::forward` with sparse
    /// contractions).
    pub fn forward(&self, x: &[f32], tokens: usize, pool: &ThreadPool) -> Vec<f32> {
        let h = self.cfg.hidden;
        let nh = self.cfg.heads;
        let dh = h / nh;
        let i = self.cfg.intermediate;
        let lin = |w: &SpmmPlan, b: &[f32], x: &[f32], out_f: usize| -> Vec<f32> {
            let mut y = w.execute(x, tokens, pool);
            pl_tpp::binary::bias_add(out_f, tokens, b, &mut y, out_f);
            y
        };
        let q = lin(&self.sw[0], &self.biases[0], x, h);
        let k = lin(&self.sw[1], &self.biases[1], x, h);
        let v = lin(&self.sw[2], &self.biases[2], x, h);
        let scale = 1.0 / (dh as f32).sqrt();
        let mut ctx = vec![0.0f32; h * tokens];
        for hd in 0..nh {
            let qh = head(&q, h, dh, hd, tokens);
            let kh = head(&k, h, dh, hd, tokens);
            let vh = head(&v, h, dh, hd, tokens);
            let mut s = crate::matmul::matmul(
                &kh,
                crate::matmul::Trans::Yes,
                &qh,
                crate::matmul::Trans::No,
                tokens,
                tokens,
                dh,
                pool,
            );
            s.iter_mut().for_each(|v| *v *= scale);
            let mut p = vec![0.0f32; tokens * tokens];
            softmax::softmax_cols(tokens, tokens, &s, tokens, &mut p, tokens);
            let ch = crate::matmul::matmul(
                &vh,
                crate::matmul::Trans::No,
                &p,
                crate::matmul::Trans::No,
                dh,
                tokens,
                tokens,
                pool,
            );
            for t in 0..tokens {
                ctx[t * h + hd * dh..t * h + (hd + 1) * dh]
                    .copy_from_slice(&ch[t * dh..(t + 1) * dh]);
            }
        }
        let mut attn = lin(&self.sw[3], &self.biases[3], &ctx, h);
        pl_tpp::binary::add(h, tokens, &attn.clone(), h, x, h, &mut attn, h);
        let mut h1 = vec![0.0f32; h * tokens];
        let (mut mean, mut rstd) = (vec![0.0; tokens], vec![0.0; tokens]);
        pl_tpp::norm::layernorm(
            h,
            tokens,
            &attn,
            h,
            &self.ln1_g,
            &self.ln1_b,
            1e-5,
            &mut h1,
            h,
            &mut mean,
            &mut rstd,
        );
        let pre = lin(&self.sw[4], &self.biases[4], &h1, i);
        let mut act = vec![0.0f32; i * tokens];
        unary::gelu(i, tokens, &pre, i, &mut act, i);
        let mut out = lin(&self.sw[5], &self.biases[5], &act, h);
        pl_tpp::binary::add(h, tokens, &out.clone(), h, &h1, h, &mut out, h);
        let mut y = vec![0.0f32; h * tokens];
        pl_tpp::norm::layernorm(
            h,
            tokens,
            &out,
            h,
            &self.ln2_g,
            &self.ln2_b,
            1e-5,
            &mut y,
            h,
            &mut mean,
            &mut rstd,
        );
        y
    }
}

/// Builds a sparse layer directly from random weights (test/bench helper).
pub fn random_sparse_layer(
    cfg: BertConfig,
    block: usize,
    sparsity: f64,
    seed: u64,
) -> (BertLayer, SparseBertLayer) {
    let dense = BertLayer::new(cfg, &mut Xorshift::new(seed));
    let sparse = SparseBertLayer::from_dense(&dense.as_weight_view(), block, sparsity);
    (dense, sparse)
}

fn head(x: &[f32], h: usize, dh: usize, hd: usize, tokens: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; dh * tokens];
    for t in 0..tokens {
        out[t * dh..(t + 1) * dh].copy_from_slice(&x[t * h + hd * dh..t * h + (hd + 1) * dh]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_sparsity_matches_dense_layer() {
        let pool = ThreadPool::new(2);
        let cfg = BertConfig { hidden: 16, heads: 2, intermediate: 32, layers: 1, seq: 8 };
        let (dense, sparse) = random_sparse_layer(cfg, 8, 0.0, 21);
        let tokens = 8;
        let mut x = vec![0.0f32; cfg.hidden * tokens];
        pl_tensor::fill_uniform(&mut x, &mut Xorshift::new(22), -0.5, 0.5);
        let (yd, _) = dense.forward(&x, tokens, &pool);
        let ys = sparse.forward(&x, tokens, &pool);
        for i in 0..yd.len() {
            assert!((yd[i] - ys[i]).abs() < 1e-3, "i={i}: {} vs {}", yd[i], ys[i]);
        }
    }

    #[test]
    fn pruning_hits_target_and_shrinks_footprint() {
        let cfg = BertConfig { hidden: 32, heads: 4, intermediate: 64, layers: 1, seq: 8 };
        let (_, sparse80) = random_sparse_layer(cfg, 8, 0.8, 5);
        let (_, sparse0) = random_sparse_layer(cfg, 8, 0.0, 5);
        assert!((sparse80.sparsity() - 0.8).abs() < 0.05, "{}", sparse80.sparsity());
        assert!(sparse80.compressed_bytes() < sparse0.compressed_bytes() / 3);
    }

    #[test]
    fn pruning_keeps_largest_blocks() {
        // A matrix with one dominant block: pruning to 75% must keep it.
        let (rows, cols, block) = (16, 16, 8);
        let mut w = vec![0.01f32; rows * cols];
        for c in 0..block {
            for r in 0..block {
                w[c * rows + r] = 10.0; // block (0, 0) dominant
            }
        }
        let s = prune_to_block_sparse(&w, rows, cols, block, 0.75);
        let dense = s.to_dense_colmajor();
        assert_eq!(dense[0], 10.0);
        assert_eq!(s.nnz_blocks(), 1);
    }

    #[test]
    fn sparse_forward_runs_at_high_sparsity() {
        let pool = ThreadPool::new(2);
        let cfg = BertConfig { hidden: 16, heads: 2, intermediate: 32, layers: 1, seq: 8 };
        let (_, sparse) = random_sparse_layer(cfg, 8, 0.9, 31);
        let x = vec![0.1f32; cfg.hidden * 8];
        let y = sparse.forward(&x, 8, &pool);
        assert!(y.iter().all(|v| v.is_finite()));
    }
}
