//! Decoder-only LLM inference with a KV cache (paper §IV-A / Fig. 11:
//! GPT-J-6B and Llama2-13B, first-token vs next-token latency).
//!
//! The full-size models (24-52 GB of weights) cannot be materialized here;
//! we provide (a) architecture-faithful *scaled* decoders that execute with
//! the real kernels (prompt pass + cached autoregressive steps), and (b)
//! exact flop/byte accounting of the *full* configurations which the
//! Fig. 11 harness feeds through the platform roofline (see DESIGN.md,
//! substitution table). First-token latency is compute-bound, next-token
//! latency is weight-bandwidth-bound — the regimes the paper measures.
//!
//! ## Model / state split
//!
//! Weights ([`DecoderModel`]) are immutable and shareable (`Arc`) across
//! any number of concurrent sessions; each session owns only its KV cache
//! ([`DecoderState`]). This is what a serving runtime needs: one copy of
//! the weights, N independent decode streams, and a batch-capable step
//! ([`DecoderModel::step_batch`]) that coalesces many sessions' next-token
//! computations into a single parallel region. [`Decoder`] remains the
//! convenience single-stream wrapper over the pair.
//!
//! ## Serial vs fused batched decode
//!
//! [`DecoderModel::step_batch`] runs each session's step *serially* inside
//! the region — bit-identical to unbatched decode, but every layer
//! executes B rank-deficient `hidden x 1` GEMVs (the memory-bound shape
//! the paper's Fig. 11 next-token row measures).
//! [`DecoderModel::step_batch_fused`] instead gathers the B token vectors
//! into one `hidden x B` activation matrix and runs each layer's
//! QKV/output/FFN projections as single `hidden x B` GEMMs — every weight
//! element loaded once serves B tokens, turning decode arithmetic
//! intensity from O(1) to O(B). Attention stays per-session against each
//! session's own KV cache (ragged context lengths are fine), batched over
//! sessions inside one parallel region. Fused outputs agree with serial
//! ones to floating-point reassociation tolerance, not bitwise.
//!
//! ## Prepared execution
//!
//! Every weight is a [`MatmulPlan`]: packed into its blocked kernel layout
//! once at [`DecoderModel::new`], with per-width kernels cached on first
//! use (or pre-built by [`DecoderModel::warm_plans`], fed by the shapes
//! [`DecoderModel::plan_problems`] reports). Decode steps therefore pack
//! **zero weight bytes** — only activations are gathered and blocked, with
//! scratch reused across a forward's layers and a layer's QKV projections
//! consuming a single packed copy of their shared input. The plan path
//! runs the exact kernels the old pack-per-call bridge constructed, so
//! serial decode stays bit-identical to the previous behavior.

use crate::kvpool::{KvPagePool, KvPoolExhausted, KvSeq, KvSnapshot, PrefixCache};
use crate::matmul::Trans;
use crate::prepared::{ActivationBuf, MatmulPlan, Precision};
use pl_autotuner::GemmProblem;
use pl_runtime::ThreadPool;
use pl_tensor::Xorshift;
use pl_tpp::{norm, softmax, unary};
use std::sync::{Arc, Mutex};

/// Decoder architecture description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecoderConfig {
    /// Transformer blocks.
    pub layers: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// FFN inner width.
    pub ffn: usize,
    /// Vocabulary size (LM head).
    pub vocab: usize,
    /// FFN weight matrices per block (2 for GELU MLPs like GPT-J, 3 for
    /// SwiGLU like Llama2). Only affects the full-size accounting; the
    /// runnable scaled decoder always executes the 2-matrix GELU form.
    pub ffn_mats: usize,
}

impl DecoderConfig {
    /// GPT-J-6B: 28 layers, 4096 hidden, 16 heads, 16384 FFN.
    pub fn gptj_6b() -> Self {
        DecoderConfig { layers: 28, hidden: 4096, heads: 16, ffn: 16384, vocab: 50400, ffn_mats: 2 }
    }

    /// Llama2-13B: 40 layers, 5120 hidden, 40 heads, 13824 FFN.
    pub fn llama2_13b() -> Self {
        DecoderConfig { layers: 40, hidden: 5120, heads: 40, ffn: 13824, vocab: 32000, ffn_mats: 3 }
    }

    /// Scaled-down config preserving the architecture (host execution).
    pub fn scaled_for_tests() -> Self {
        DecoderConfig { layers: 2, hidden: 32, heads: 4, ffn: 64, vocab: 128, ffn_mats: 2 }
    }

    /// Parameter count (weights only, attention + FFN + LM head).
    pub fn params(&self) -> f64 {
        let per_layer = 4.0 * (self.hidden as f64).powi(2)
            + self.ffn_mats as f64 * self.hidden as f64 * self.ffn as f64;
        self.layers as f64 * per_layer + self.hidden as f64 * self.vocab as f64
    }

    /// Weight bytes at the element size.
    pub fn weight_bytes(&self, elem: usize) -> f64 {
        self.params() * elem as f64
    }

    /// Flops to process a `prompt`-token prefill (first token).
    pub fn first_token_flops(&self, prompt: usize) -> f64 {
        let h = self.hidden as f64;
        let f = self.ffn as f64;
        let t = prompt as f64;
        let per_layer = 4.0 * 2.0 * h * h * t  // qkv + out projections
            + self.ffn_mats as f64 * 2.0 * h * f * t // ffn
            + 2.0 * 2.0 * h * t * t; // attention scores + context
        self.layers as f64 * per_layer + 2.0 * h * self.vocab as f64
    }

    /// Flops of one autoregressive step with `past` cached tokens.
    pub fn next_token_flops(&self, past: usize) -> f64 {
        let h = self.hidden as f64;
        let f = self.ffn as f64;
        let per_layer =
            4.0 * 2.0 * h * h + self.ffn_mats as f64 * 2.0 * h * f + 2.0 * 2.0 * h * past as f64;
        self.layers as f64 * per_layer + 2.0 * h * self.vocab as f64
    }

    /// KV-cache bytes for `tokens` cached positions.
    pub fn kv_cache_bytes(&self, tokens: usize, elem: usize) -> f64 {
        (2 * self.layers * self.hidden * tokens * elem) as f64
    }
}

/// One decoder block's weights, held as **prepared plans**: each weight is
/// packed into its blocked kernel layout exactly once at construction
/// ([`MatmulPlan::new`]); decode steps only pack activations.
struct Block {
    wq: MatmulPlan,
    wk: MatmulPlan,
    wv: MatmulPlan,
    wo: MatmulPlan,
    w1: MatmulPlan,
    w2: MatmulPlan,
    ln1_g: Vec<f32>,
    ln1_b: Vec<f32>,
    ln2_g: Vec<f32>,
    ln2_b: Vec<f32>,
}

impl Block {
    fn plans(&self) -> [&MatmulPlan; 6] {
        [&self.wq, &self.wk, &self.wv, &self.wo, &self.w1, &self.w2]
    }
}

/// Blocked-operand scratch reused across a forward's layers: one slot per
/// distinct activation layout (`k = hidden` and `k = ffn` inputs) and one
/// per output layout, so every projection after the first reuses an
/// existing allocation and the shared-input projections (QKV) pack once.
#[derive(Default)]
struct ForwardScratch {
    /// `B` operand with `k = hidden` rows (QKV / output / FFN-up inputs).
    b_hidden: ActivationBuf,
    /// `B` operand with `k = ffn` rows (FFN-down input).
    b_ffn: ActivationBuf,
    /// `C` output with `m = hidden` rows.
    c_hidden: ActivationBuf,
    /// `C` output with `m = ffn` rows.
    c_ffn: ActivationBuf,
}

// The per-layer KV storage lives in `crate::kvpool`: fixed-size
// [`KvPage`](crate::kvpool::KvPage)s behind a shared [`KvPagePool`],
// one [`KvSeq`] (page list + cursor) per layer.

/// Immutable decoder weights, shareable across sessions.
pub struct DecoderModel {
    cfg: DecoderConfig,
    precision: Precision,
    blocks: Vec<Block>,
}

/// A claimed-once hand-off cell for one batched forward item (see
/// [`DecoderModel::forward_batch`]): `(state, x, tokens)`.
type BatchSlot<'s, 'x> = Mutex<Option<(&'s mut DecoderState, &'x [f32], usize)>>;

/// Splits a `tokens`-token prefill into bounded chunk widths under the
/// `chunk` cap, **power-of-two-ladder-aligned**: the cap is normalized to
/// the next power of two, every non-final chunk is exactly that width (an
/// exact hit on the warmed prefill ladder — see
/// `pl_autotuner::batch_ladder`), and only the final chunk carries the
/// remainder (whose tuning lookup rounds up to the nearest warmed rung).
/// A prompt that fits in one chunk is returned whole — the single-chunk
/// path must stay bit-identical to an unchunked forward, so it is never
/// subdivided.
pub fn prefill_chunk_widths(tokens: usize, chunk: usize) -> Vec<usize> {
    let cap = chunk.max(1).next_power_of_two();
    let mut widths = Vec::with_capacity(tokens.div_ceil(cap));
    let mut remaining = tokens;
    while remaining > 0 {
        let w = cap.min(remaining);
        widths.push(w);
        remaining -= w;
    }
    widths
}

/// Where a state's KV lives: resident pages, or a dense spilled snapshot
/// (restored transparently by the next forward).
enum KvStore {
    Paged(Vec<KvSeq>),
    Spilled(KvSnapshot),
}

/// One decode stream's mutable state: per-layer KV **page tables** (page
/// list + cursor, [`KvSeq`]) over a shared [`KvPagePool`]. The paged
/// layout is token-major inside each page — the contiguous cache's
/// layout, chunked — and attention reads through the page indirection
/// with unchanged per-element arithmetic order, so decode outputs are
/// bit-identical at every page size. Because the state is now a page
/// list plus a cursor, it is *data*: it can spill to a dense
/// [`KvSnapshot`] ([`DecoderState::spill`]) and restore later, possibly
/// into a different pool ([`DecoderState::from_snapshot`] — the
/// cross-shard migration primitive).
pub struct DecoderState {
    pool: Arc<KvPagePool>,
    capacity: usize,
    store: KvStore,
}

impl DecoderState {
    fn new_in(pool: &Arc<KvPagePool>, layers: usize, max_tokens: usize) -> Self {
        assert!(layers > 0, "decoder states need at least one layer");
        let seqs = (0..layers).map(|_| KvSeq::new(pool)).collect();
        DecoderState { pool: Arc::clone(pool), capacity: max_tokens, store: KvStore::Paged(seqs) }
    }

    /// Cached tokens so far.
    pub fn cached_tokens(&self) -> usize {
        match &self.store {
            KvStore::Paged(seqs) => seqs[0].len(),
            KvStore::Spilled(snap) => snap.len(),
        }
    }

    /// KV capacity in tokens (the admission bound; pages are only
    /// allocated as tokens actually arrive).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Clears the KV cache (the stream restarts from an empty context);
    /// every page the state held recycles into the pool.
    pub fn reset(&mut self) {
        let layers = self.layer_count();
        self.store = KvStore::Paged((0..layers).map(|_| KvSeq::new(&self.pool)).collect());
    }

    /// The pool this state draws pages from.
    pub fn pool(&self) -> &Arc<KvPagePool> {
        &self.pool
    }

    fn layer_count(&self) -> usize {
        match &self.store {
            KvStore::Paged(seqs) => seqs.len(),
            KvStore::Spilled(snap) => snap.layer_count(),
        }
    }

    /// Pages currently held across all layers (0 while spilled).
    pub fn kv_pages(&self) -> usize {
        match &self.store {
            KvStore::Paged(seqs) => seqs.iter().map(|s| s.page_count()).sum(),
            KvStore::Spilled(_) => 0,
        }
    }

    /// Held pages shared with at least one other holder (prefix cache or
    /// sibling session).
    pub fn shared_kv_pages(&self) -> usize {
        match &self.store {
            KvStore::Paged(seqs) => seqs.iter().map(|s| s.shared_pages()).sum(),
            KvStore::Spilled(_) => 0,
        }
    }

    /// Whether the KV currently lives as a spilled snapshot.
    pub fn is_spilled(&self) -> bool {
        matches!(self.store, KvStore::Spilled(_))
    }

    /// Densifies the pages into a snapshot and releases them to the pool
    /// (idle-session residency bound). Returns `false` if already
    /// spilled. The next forward restores transparently; note a restored
    /// state owns all its pages again (prefix sharing, if any, is lost).
    pub fn spill(&mut self) -> bool {
        match &self.store {
            KvStore::Paged(seqs) => {
                self.store = KvStore::Spilled(KvSnapshot::from_seqs(seqs, self.capacity));
                true
            }
            KvStore::Spilled(_) => false,
        }
    }

    /// Re-materializes spilled KV into pool pages; no-op when resident.
    pub fn restore(&mut self) -> Result<(), KvPoolExhausted> {
        if let KvStore::Spilled(snap) = &self.store {
            self.store = KvStore::Paged(snap.restore(&self.pool)?);
        }
        Ok(())
    }

    /// A dense copy of the KV contents (works spilled or resident) — the
    /// migration wire format ([`KvSnapshot::to_bytes`]).
    pub fn snapshot(&self) -> KvSnapshot {
        match &self.store {
            KvStore::Paged(seqs) => KvSnapshot::from_seqs(seqs, self.capacity),
            KvStore::Spilled(snap) => snap.clone(),
        }
    }

    /// Rebuilds a state from a snapshot, drawing pages from `pool`
    /// (possibly a different shard's pool than the snapshot came from).
    /// Continuation is bit-identical: the dense copy preserves every KV
    /// value and the paged read path preserves arithmetic order.
    pub fn from_snapshot(
        pool: &Arc<KvPagePool>,
        snap: &KvSnapshot,
    ) -> Result<Self, KvPoolExhausted> {
        let seqs = snap.restore(pool)?;
        Ok(DecoderState {
            pool: Arc::clone(pool),
            capacity: snap.capacity(),
            store: KvStore::Paged(seqs),
        })
    }

    /// Dedups this state's freshly prefilled prompt prefix against
    /// `cache` (see [`PrefixCache`]): on a hit the state's leading pages
    /// are replaced by the cached shared pages (the duplicates recycle to
    /// the pool); on a miss the prefix is registered for future tenants.
    /// `prompt` is the full `hidden x tokens` prefill input and `tokens`
    /// must equal the state's cached length (i.e. call right after the
    /// prefill that started from an empty state). Returns the number of
    /// page handles now pointing at shared pages.
    pub fn share_prefix(&mut self, cache: &PrefixCache, prompt: &[f32], tokens: usize) -> usize {
        match &mut self.store {
            KvStore::Paged(seqs) => cache.share_seqs(seqs, prompt, tokens),
            KvStore::Spilled(_) => 0,
        }
    }

    /// The resident page tables, restoring from a spill first if needed.
    fn seqs(&mut self) -> &mut [KvSeq] {
        self.restore().expect("KV page pool exhausted restoring a spilled session");
        match &mut self.store {
            KvStore::Paged(seqs) => seqs,
            KvStore::Spilled(_) => unreachable!("restored above"),
        }
    }

    /// The resident page tables; panics while spilled (read-only paths
    /// never auto-restore — forwards do, via [`DecoderState::seqs`]).
    fn paged(&self) -> &[KvSeq] {
        match &self.store {
            KvStore::Paged(seqs) => seqs,
            KvStore::Spilled(_) => unreachable!("forward restores before reading"),
        }
    }
}

impl DecoderModel {
    /// Random-initialized weights for `cfg`. This is where every weight is
    /// packed into its blocked kernel layout — the only weight-pack events
    /// the model ever generates (see [`crate::prepared::pack_events`]).
    pub fn new(cfg: DecoderConfig, seed: u64) -> Self {
        Self::new_with_precision(cfg, seed, Precision::F32)
    }

    /// [`DecoderModel::new`] at an explicit precision. The same `seed`
    /// draws the same f32 weights at every precision, so an
    /// [`Precision::Int8`] model is the *quantization* of the f32 model
    /// with that seed — the property the int8-vs-f32 equivalence tests
    /// rely on. Quantization happens once here (per plan build); decode
    /// steps touch no weight bytes at either precision.
    pub fn new_with_precision(cfg: DecoderConfig, seed: u64, precision: Precision) -> Self {
        let mut rng = Xorshift::new(seed);
        let h = cfg.hidden;
        let f = cfg.ffn;
        let mut mk = |rows: usize, cols: usize| {
            let std = (1.0 / rows as f32).sqrt();
            let mut v = vec![0.0f32; rows * cols];
            pl_tensor::fill_normal(&mut v, &mut rng, 0.0, std);
            MatmulPlan::with_precision(&v, Trans::No, rows, cols, precision)
        };
        let blocks = (0..cfg.layers)
            .map(|_| Block {
                wq: mk(h, h),
                wk: mk(h, h),
                wv: mk(h, h),
                wo: mk(h, h),
                w1: mk(f, h),
                w2: mk(h, f),
                ln1_g: vec![1.0; h],
                ln1_b: vec![0.0; h],
                ln2_g: vec![1.0; h],
                ln2_b: vec![0.0; h],
            })
            .collect();
        DecoderModel { cfg, precision, blocks }
    }

    /// Config accessor.
    pub fn config(&self) -> &DecoderConfig {
        &self.cfg
    }

    /// The precision every weight plan was built at.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Bytes of packed weight operands streamed through memory by one
    /// decode step (every plan executes exactly once per step, at any
    /// batch width). Decode is weight-bandwidth-bound, so this is the
    /// denominator of the int8 speedup story: the int8 figure is ~4x
    /// smaller than the f32 one for the same config.
    pub fn weight_stream_bytes_per_step(&self) -> usize {
        self.blocks.iter().flat_map(|b| b.plans()).map(|p| p.weight_stream_bytes()).sum()
    }

    /// Appends (deduped by `(m, n, k)`) the exact GEMM problems this
    /// model's prepared plans execute at activation width `n` — what a
    /// tuning warmer must cover so steady-state traffic runs search
    /// winners. The shapes come *from the plans themselves*, so they are
    /// blocked identically to the kernels that will run.
    pub fn plan_problems(&self, n: usize, out: &mut Vec<GemmProblem>) {
        for blk in &self.blocks {
            for plan in blk.plans() {
                let p = plan.problem(n);
                if !out.iter().any(|q| (q.m, q.n, q.k) == (p.m, p.n, p.k)) {
                    out.push(p);
                }
            }
        }
    }

    /// Pre-constructs every plan's kernel at each width in `widths`
    /// (zero-width entries are skipped), so the first real step at any of
    /// those widths builds nothing. Call after installing a tuning
    /// snapshot: the kernels then resolve against it immediately.
    pub fn warm_plans(&self, widths: &[usize]) {
        for blk in &self.blocks {
            for plan in blk.plans() {
                for &n in widths {
                    if n > 0 {
                        plan.warm(n);
                    }
                }
            }
        }
    }

    /// Fresh empty KV state with capacity `max_tokens`, drawing pages
    /// from a private unbounded pool at the default page size. Serving
    /// tiers that want sharing and bounded residency pass their shard
    /// pool via [`DecoderModel::new_state_in`] instead.
    pub fn new_state(&self, max_tokens: usize) -> DecoderState {
        let pool = KvPagePool::new(self.cfg.hidden, crate::kvpool::DEFAULT_PAGE_TOKENS);
        self.new_state_in(&pool, max_tokens)
    }

    /// Fresh empty KV state with capacity `max_tokens` over a shared
    /// page pool (one pool per serving shard: sessions share prefix
    /// pages and compete for the same residency bound).
    pub fn new_state_in(&self, pool: &Arc<KvPagePool>, max_tokens: usize) -> DecoderState {
        assert_eq!(pool.hidden(), self.cfg.hidden, "pool geometry must match the model");
        DecoderState::new_in(pool, self.cfg.layers, max_tokens)
    }

    /// Rebuilds a session state from a [`KvSnapshot`] into `pool` — the
    /// import half of cross-shard migration. Continuation from the
    /// restored state is bit-identical to continuing the original.
    pub fn state_from_snapshot(
        &self,
        pool: &Arc<KvPagePool>,
        snap: &KvSnapshot,
    ) -> Result<DecoderState, KvPoolExhausted> {
        assert_eq!(pool.hidden(), self.cfg.hidden, "pool geometry must match the model");
        assert_eq!(snap.layer_count(), self.cfg.layers, "snapshot layer count mismatch");
        DecoderState::from_snapshot(pool, snap)
    }

    /// Forward over `tokens` new positions (`hidden x tokens` hidden
    /// states, column-major); appends to `state`'s caches and returns the
    /// transformed states. Causal masking applies. `tokens == 1` is one
    /// autoregressive step; a whole prompt is a prefill.
    pub fn forward(
        &self,
        state: &mut DecoderState,
        x: &[f32],
        tokens: usize,
        pool: &ThreadPool,
    ) -> Vec<f32> {
        let mut cur = x.to_vec();
        let mut scratch = ForwardScratch::default();
        for l in 0..self.blocks.len() {
            cur = self.block_forward(l, state, &cur, tokens, &mut scratch, pool);
        }
        cur
    }

    /// One decode step for each of `batch` independent sessions, executed
    /// inside a **single** parallel region (the serving fast path): the
    /// team drains the session list via a dynamic schedule, and each
    /// session's step runs with the exact same per-element operation order
    /// as an unbatched [`DecoderModel::forward`] — outputs are therefore
    /// bit-identical to running the sessions one at a time.
    ///
    /// Entries are `(state, x)` with `x` one token's `hidden` values;
    /// returns the per-session outputs in input order. This is
    /// [`DecoderModel::forward_batch`] with every item one token wide.
    pub fn step_batch(
        &self,
        batch: Vec<(&mut DecoderState, &[f32])>,
        pool: &ThreadPool,
    ) -> Vec<Vec<f32>> {
        self.forward_batch(batch.into_iter().map(|(s, x)| (s, x, 1)).collect(), pool)
    }

    /// A batched forward over independent sessions with **per-item token
    /// widths** — the mixed decode + prefill-chunk region a continuously
    /// batching server executes: entries are `(state, x, tokens)` where
    /// `x` holds `hidden x tokens` column-major hidden states appended to
    /// that session's KV cache. One parallel region covers the whole
    /// batch; each item's forward runs serially on its claiming thread
    /// (nested pool calls serialize), so every output is **bit-identical**
    /// to running that item's [`DecoderModel::forward`] alone — batch
    /// composition never changes per-item arithmetic. A singleton batch
    /// skips the region and runs the forward directly, keeping the full
    /// team on its GEMMs (per-element operation order is independent of
    /// team size, so this is bit-identical too).
    pub fn forward_batch(
        &self,
        batch: Vec<(&mut DecoderState, &[f32], usize)>,
        pool: &ThreadPool,
    ) -> Vec<Vec<f32>> {
        let n = batch.len();
        if n == 1 {
            let (state, x, tokens) = batch.into_iter().next().expect("len checked");
            return vec![self.forward(state, x, tokens, pool)];
        }
        // Hand each slot to exactly one claiming thread. The per-item
        // mutexes are uncontended (the dynamic schedule assigns every index
        // once); they only launder the &mut across the team.
        let slots: Vec<BatchSlot<'_, '_>> =
            batch.into_iter().map(|item| Mutex::new(Some(item))).collect();
        let outs: Vec<Mutex<Vec<f32>>> = (0..n).map(|_| Mutex::new(Vec::new())).collect();
        pool.parallel_tasks(n, |i| {
            let (state, x, tokens) = slots[i].lock().unwrap().take().expect("slot claimed once");
            // One span per batch lane: on a trace timeline these tile the
            // region and show how the items load-balanced over the team.
            let _item_span = pl_trace::span("batch.item", [i as u64, tokens as u64, 0]);
            // Nested pool calls inside the region serialize, so the
            // per-session compute is deterministic and identical to the
            // unbatched path (see `Gemm` per-block determinism).
            let y = self.forward(state, x, tokens, pool);
            *outs[i].lock().unwrap() = y;
        });
        outs.into_iter().map(|m| m.into_inner().unwrap()).collect()
    }

    /// Forward over `tokens` new positions in bounded chunks
    /// ([`prefill_chunk_widths`] under the `chunk` cap): each chunk is one
    /// [`DecoderModel::forward`] call appending to `state`'s KV cache —
    /// the resumable form a serving runtime admits through its batcher one
    /// chunk at a time. Returns the concatenated per-chunk outputs
    /// (`hidden x tokens`, the same shape a whole-prompt forward
    /// produces). A single-chunk prompt is bit-identical to the unchunked
    /// forward; a multi-chunk one agrees to floating-point tolerance (the
    /// projection GEMMs run at chunk width instead of prompt width, which
    /// reassociates their reductions).
    pub fn forward_chunked(
        &self,
        state: &mut DecoderState,
        x: &[f32],
        tokens: usize,
        chunk: usize,
        pool: &ThreadPool,
    ) -> Vec<f32> {
        let h = self.cfg.hidden;
        let mut out = Vec::with_capacity(h * tokens);
        let mut done = 0usize;
        for w in prefill_chunk_widths(tokens, chunk) {
            out.extend(self.forward(state, &x[done * h..(done + w) * h], w, pool));
            done += w;
        }
        out
    }

    /// One decode step for each of `batch` independent sessions with the
    /// per-layer projections **fused across sessions**: the B token
    /// vectors are gathered into one `hidden x B` activation matrix and
    /// every layer's QKV, output and FFN projections run as single
    /// `hidden x B` GEMMs (weight reuse of B instead of 1 — the
    /// arithmetic-intensity lever batched serving exists for). Attention
    /// runs per-session against each session's own KV cache — ragged
    /// context lengths across the batch are fine — batched over sessions
    /// inside one parallel region.
    ///
    /// Entries are `(state, x)` exactly as in [`DecoderModel::step_batch`];
    /// returns the per-session outputs in input order. Outputs agree with
    /// the serial path to floating-point reassociation tolerance (the
    /// per-element reduction shapes change), **not** bitwise — callers
    /// that need bit-identity with unbatched decode must use
    /// [`DecoderModel::step_batch`].
    pub fn step_batch_fused(
        &self,
        batch: Vec<(&mut DecoderState, &[f32])>,
        pool: &ThreadPool,
    ) -> Vec<Vec<f32>> {
        let b = batch.len();
        if b == 0 {
            return Vec::new();
        }
        let h = self.cfg.hidden;
        // Gather: column s of the activation matrix is session s's token.
        let mut x = vec![0.0f32; h * b];
        let mut states: Vec<Mutex<&mut DecoderState>> = Vec::with_capacity(b);
        for (s, (state, xs)) in batch.into_iter().enumerate() {
            assert_eq!(xs.len(), h, "session {s}: input must be `hidden` values");
            x[s * h..(s + 1) * h].copy_from_slice(xs);
            states.push(Mutex::new(state));
        }
        let mut scratch = ForwardScratch::default();
        for l in 0..self.blocks.len() {
            x = self.block_forward_fused(l, &states, &x, &mut scratch, pool);
        }
        // Scatter the final activation columns back out per session.
        (0..b).map(|s| x[s * h..(s + 1) * h].to_vec()).collect()
    }

    /// One transformer block of the fused batched step: shared-weight
    /// projections over all B columns at once, per-session KV append +
    /// attention inside a single parallel region. The layer's QKV
    /// projections share **one** pre-blocked copy of their input (packed
    /// once into `scratch`, consumed by three plans), and every other
    /// projection reuses the same scratch allocations — no weight bytes
    /// are packed anywhere on this path.
    fn block_forward_fused(
        &self,
        l: usize,
        states: &[Mutex<&mut DecoderState>],
        x: &[f32],
        scratch: &mut ForwardScratch,
        pool: &ThreadPool,
    ) -> Vec<f32> {
        let b = states.len();
        let h = self.cfg.hidden;
        let nh = self.cfg.heads;
        let dh = h / nh;
        let blk = &self.blocks[l];

        // Pre-LN over the whole `hidden x B` matrix (per-column, so
        // per-session, exactly as the serial path normalizes).
        let ln_span = pl_trace::span("decode.ln", [l as u64, b as u64, 1]);
        let mut xn = vec![0.0f32; h * b];
        let (mut mean, mut rstd) = (vec![0.0; b], vec![0.0; b]);
        norm::layernorm(h, b, x, h, &blk.ln1_g, &blk.ln1_b, 1e-5, &mut xn, h, &mut mean, &mut rstd);
        drop(ln_span);

        // The fused projections: one `hidden x B` GEMM each where the
        // serial path runs B `hidden x 1` GEMVs. The blocked input is
        // packed once and feeds all three plans.
        let qkv_span = pl_trace::span("decode.qkv", [l as u64, b as u64, 1]);
        let (q, knew, vnew) = {
            let xb = blk.wq.pack_activations(&xn, b, &mut scratch.b_hidden);
            (
                blk.wq.execute_packed(xb, &mut scratch.c_hidden, pool),
                blk.wk.execute_packed(xb, &mut scratch.c_hidden, pool),
                blk.wv.execute_packed(xb, &mut scratch.c_hidden, pool),
            )
        };
        drop(qkv_span);

        // Per-session attention against each session's own cache, all
        // sessions load-balanced inside one region. The per-session
        // mutexes are uncontended (the dynamic schedule hands each index
        // to exactly one thread); they only launder the &mut across the
        // team.
        let attn_span = pl_trace::span("decode.attn", [l as u64, b as u64, 1]);
        let ctx_cols: Vec<Mutex<Vec<f32>>> = (0..b).map(|_| Mutex::new(Vec::new())).collect();
        let scale = 1.0 / (dh as f32).sqrt();
        pool.parallel_tasks(b, |s| {
            let mut guard = states[s].lock().unwrap();
            let state: &mut DecoderState = &mut guard;
            let capacity = state.capacity;
            let kvpool = Arc::clone(&state.pool);
            let seqs = state.seqs();
            let past = seqs[l].len();
            assert!(past < capacity, "KV cache overflow (session {s})");
            seqs[l]
                .append(&kvpool, &knew[s * h..(s + 1) * h], &vnew[s * h..(s + 1) * h])
                .expect("KV page pool exhausted");
            let total = past + 1;
            // Token slices resolved once through the page indirection;
            // the attention arithmetic below is element-for-element the
            // contiguous path's (same order, same values → bit-identical).
            let seq = &seqs[l];
            let ktoks: Vec<&[f32]> = (0..total).map(|t| seq.k_tok(t)).collect();
            let vtoks: Vec<&[f32]> = (0..total).map(|t| seq.v_tok(t)).collect();
            let qs = &q[s * h..(s + 1) * h];
            let mut col = vec![0.0f32; h];
            for hd in 0..nh {
                let mut sc = vec![0.0f32; total];
                for (tk, score) in sc.iter_mut().enumerate() {
                    let mut dot = 0.0f32;
                    for d in 0..dh {
                        dot += qs[hd * dh + d] * ktoks[tk][hd * dh + d];
                    }
                    *score = dot * scale;
                }
                let mut p = vec![0.0f32; total];
                softmax::softmax_cols(total, 1, &sc, total, &mut p, total);
                for d in 0..dh {
                    let mut acc = 0.0f32;
                    for (tk, pv) in p.iter().enumerate() {
                        acc += pv * vtoks[tk][hd * dh + d];
                    }
                    col[hd * dh + d] = acc;
                }
            }
            *ctx_cols[s].lock().unwrap() = col;
        });
        let mut ctx = vec![0.0f32; h * b];
        for (s, col) in ctx_cols.iter().enumerate() {
            ctx[s * h..(s + 1) * h].copy_from_slice(&col.lock().unwrap());
        }

        let attn = {
            let cb = blk.wo.pack_activations(&ctx, b, &mut scratch.b_hidden);
            blk.wo.execute_packed(cb, &mut scratch.c_hidden, pool)
        };
        drop(attn_span);
        let mut resid: Vec<f32> = x.iter().zip(&attn).map(|(a, b)| a + b).collect();

        // FFN with pre-LN, again over all B columns at once; the blocked
        // scratch (same `k = hidden` layout as QKV) is reused.
        let _ffn_span = pl_trace::span("decode.ffn", [l as u64, b as u64, 1]);
        let mut rn = vec![0.0f32; h * b];
        norm::layernorm(
            h, b, &resid, h, &blk.ln2_g, &blk.ln2_b, 1e-5, &mut rn, h, &mut mean, &mut rstd,
        );
        let pre = {
            let rb = blk.w1.pack_activations(&rn, b, &mut scratch.b_hidden);
            blk.w1.execute_packed(rb, &mut scratch.c_ffn, pool)
        };
        let mut act = vec![0.0f32; self.cfg.ffn * b];
        unary::gelu(self.cfg.ffn, b, &pre, self.cfg.ffn, &mut act, self.cfg.ffn);
        let ffn = {
            let ab = blk.w2.pack_activations(&act, b, &mut scratch.b_ffn);
            blk.w2.execute_packed(ab, &mut scratch.c_hidden, pool)
        };
        for (r, f) in resid.iter_mut().zip(&ffn) {
            *r += *f;
        }
        resid
    }

    fn block_forward(
        &self,
        l: usize,
        state: &mut DecoderState,
        x: &[f32],
        tokens: usize,
        scratch: &mut ForwardScratch,
        pool: &ThreadPool,
    ) -> Vec<f32> {
        let h = self.cfg.hidden;
        let nh = self.cfg.heads;
        let dh = h / nh;
        let blk = &self.blocks[l];
        let kvpool = Arc::clone(&state.pool);
        let past = state.seqs()[l].len();
        assert!(past + tokens <= state.capacity, "KV cache overflow");

        // Pre-LN. Phase spans carry [layer, width, serial=0] so a trace
        // lines the serial path up against the fused one (args[2] = 1).
        let ln_span = pl_trace::span("decode.ln", [l as u64, tokens as u64, 0]);
        let mut xn = vec![0.0f32; h * tokens];
        let (mut mean, mut rstd) = (vec![0.0; tokens], vec![0.0; tokens]);
        norm::layernorm(
            h, tokens, x, h, &blk.ln1_g, &blk.ln1_b, 1e-5, &mut xn, h, &mut mean, &mut rstd,
        );
        drop(ln_span);

        // QKV through the prepared plans, sharing one packed input.
        let qkv_span = pl_trace::span("decode.qkv", [l as u64, tokens as u64, 0]);
        let (q, knew, vnew) = {
            let xb = blk.wq.pack_activations(&xn, tokens, &mut scratch.b_hidden);
            (
                blk.wq.execute_packed(xb, &mut scratch.c_hidden, pool),
                blk.wk.execute_packed(xb, &mut scratch.c_hidden, pool),
                blk.wv.execute_packed(xb, &mut scratch.c_hidden, pool),
            )
        };
        drop(qkv_span);
        // Append to the layer's page table (growing pages on demand,
        // COW-splitting a shared tail page before the first write).
        {
            let seq = &mut state.seqs()[l];
            for t in 0..tokens {
                seq.append(&kvpool, &knew[t * h..(t + 1) * h], &vnew[t * h..(t + 1) * h])
                    .expect("KV page pool exhausted");
            }
        }
        let total = past + tokens;
        let seq = &state.paged()[l];
        // Token slices resolved once through the page indirection; the
        // loops below run the contiguous path's arithmetic in the same
        // per-element order, so paging never changes the outputs.
        let ktoks: Vec<&[f32]> = (0..total).map(|t| seq.k_tok(t)).collect();
        let vtoks: Vec<&[f32]> = (0..total).map(|t| seq.v_tok(t)).collect();

        let attn_span = pl_trace::span("decode.attn", [l as u64, tokens as u64, 0]);
        let scale = 1.0 / (dh as f32).sqrt();
        let mut ctx = vec![0.0f32; h * tokens];
        for hd in 0..nh {
            // Per-head slices over cache (keys/values) and new queries.
            let mut s = vec![f32::NEG_INFINITY; total * tokens];
            for tq in 0..tokens {
                let qoff = tq * h + hd * dh;
                let visible = past + tq + 1; // causal mask
                for tk in 0..visible {
                    let mut dot = 0.0f32;
                    for d in 0..dh {
                        dot += q[qoff + d] * ktoks[tk][hd * dh + d];
                    }
                    s[tq * total + tk] = dot * scale;
                }
            }
            let mut p = vec![0.0f32; total * tokens];
            softmax::softmax_cols(total, tokens, &s, total, &mut p, total);
            for tq in 0..tokens {
                let visible = past + tq + 1;
                for d in 0..dh {
                    let mut acc = 0.0f32;
                    for tk in 0..visible {
                        acc += p[tq * total + tk] * vtoks[tk][hd * dh + d];
                    }
                    ctx[tq * h + hd * dh + d] = acc;
                }
            }
        }
        let attn = {
            let cb = blk.wo.pack_activations(&ctx, tokens, &mut scratch.b_hidden);
            blk.wo.execute_packed(cb, &mut scratch.c_hidden, pool)
        };
        drop(attn_span);
        let mut resid: Vec<f32> = x.iter().zip(&attn).map(|(a, b)| a + b).collect();

        // FFN with pre-LN.
        let _ffn_span = pl_trace::span("decode.ffn", [l as u64, tokens as u64, 0]);
        let mut rn = vec![0.0f32; h * tokens];
        norm::layernorm(
            h, tokens, &resid, h, &blk.ln2_g, &blk.ln2_b, 1e-5, &mut rn, h, &mut mean, &mut rstd,
        );
        let pre = {
            let rb = blk.w1.pack_activations(&rn, tokens, &mut scratch.b_hidden);
            blk.w1.execute_packed(rb, &mut scratch.c_ffn, pool)
        };
        let mut act = vec![0.0f32; self.cfg.ffn * tokens];
        unary::gelu(self.cfg.ffn, tokens, &pre, self.cfg.ffn, &mut act, self.cfg.ffn);
        let ffn = {
            let ab = blk.w2.pack_activations(&act, tokens, &mut scratch.b_ffn);
            blk.w2.execute_packed(ab, &mut scratch.c_hidden, pool)
        };
        for (r, f) in resid.iter_mut().zip(&ffn) {
            *r += *f;
        }
        resid
    }
}

/// A runnable (scaled) single-stream decoder: shared weights + one state.
pub struct Decoder {
    model: Arc<DecoderModel>,
    state: DecoderState,
}

impl Decoder {
    /// Random-initialized decoder with KV capacity `max_tokens`.
    pub fn new(cfg: DecoderConfig, max_tokens: usize, seed: u64) -> Self {
        let model = Arc::new(DecoderModel::new(cfg, seed));
        let state = model.new_state(max_tokens);
        Decoder { model, state }
    }

    /// A decoder sharing `model`'s weights, with a fresh KV state.
    pub fn from_model(model: Arc<DecoderModel>, max_tokens: usize) -> Self {
        let state = model.new_state(max_tokens);
        Decoder { model, state }
    }

    /// The shared weights.
    pub fn model(&self) -> &Arc<DecoderModel> {
        &self.model
    }

    /// Config accessor.
    pub fn config(&self) -> &DecoderConfig {
        self.model.config()
    }

    /// Cached tokens so far.
    pub fn cached_tokens(&self) -> usize {
        self.state.cached_tokens()
    }

    /// Clears the KV cache.
    pub fn reset(&mut self) {
        self.state.reset();
    }

    /// Prefill over a whole prompt (`hidden x tokens` hidden states);
    /// fills the cache and returns the transformed states ("first token"
    /// compute). Causal masking applies.
    pub fn prefill(&mut self, x: &[f32], tokens: usize, pool: &ThreadPool) -> Vec<f32> {
        self.model.forward(&mut self.state, x, tokens, pool)
    }

    /// One autoregressive step for a single token's hidden state
    /// (`hidden` values); appends to the cache ("next token" compute).
    pub fn step(&mut self, x: &[f32], pool: &ThreadPool) -> Vec<f32> {
        self.prefill(x, 1, pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_tensor::fill_uniform;

    #[test]
    fn incremental_decoding_matches_full_prefill() {
        let pool = ThreadPool::new(2);
        let cfg = DecoderConfig::scaled_for_tests();
        let tokens = 6;
        let mut x = vec![0.0f32; cfg.hidden * tokens];
        fill_uniform(&mut x, &mut Xorshift::new(8), -0.5, 0.5);

        // Full prefill.
        let mut full = Decoder::new(cfg, 16, 99);
        let y_full = full.prefill(&x, tokens, &pool);

        // Token-by-token with KV cache.
        let mut inc = Decoder::new(cfg, 16, 99);
        let mut last = Vec::new();
        for t in 0..tokens {
            last = inc.step(&x[t * cfg.hidden..(t + 1) * cfg.hidden], &pool);
        }
        // The final token's output must agree.
        let y_last = &y_full[(tokens - 1) * cfg.hidden..tokens * cfg.hidden];
        for (a, b) in y_last.iter().zip(&last) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
        assert_eq!(inc.cached_tokens(), tokens);
    }

    #[test]
    fn causal_mask_blocks_future() {
        // Changing a later token must not affect an earlier token's output.
        let pool = ThreadPool::new(2);
        let cfg = DecoderConfig::scaled_for_tests();
        let tokens = 4;
        let mut x = vec![0.0f32; cfg.hidden * tokens];
        fill_uniform(&mut x, &mut Xorshift::new(9), -0.5, 0.5);
        let mut d1 = Decoder::new(cfg, 8, 7);
        let y1 = d1.prefill(&x, tokens, &pool);
        let mut x2 = x.clone();
        for v in &mut x2[(tokens - 1) * cfg.hidden..] {
            *v += 1.0;
        }
        let mut d2 = Decoder::new(cfg, 8, 7);
        let y2 = d2.prefill(&x2, tokens, &pool);
        for i in 0..cfg.hidden {
            assert!((y1[i] - y2[i]).abs() < 1e-5, "token 0 leaked future info");
        }
    }

    #[test]
    fn full_config_accounting() {
        let g = DecoderConfig::gptj_6b();
        // ~6B parameters.
        assert!((g.params() / 1e9 - 6.0).abs() < 1.0, "{}", g.params() / 1e9);
        let l = DecoderConfig::llama2_13b();
        assert!((l.params() / 1e9 - 13.0).abs() < 2.0, "{}", l.params() / 1e9);
        // First token over 1024 tokens is compute heavy; next token is not.
        assert!(g.first_token_flops(1024) > 500.0 * g.next_token_flops(1024));
        // Weights in bf16 are half of f32.
        assert!((g.weight_bytes(2) * 2.0 - g.weight_bytes(4)).abs() < 1.0);
    }

    #[test]
    fn cache_overflow_is_caught() {
        let pool = ThreadPool::new(1);
        let cfg = DecoderConfig::scaled_for_tests();
        let mut d = Decoder::new(cfg, 2, 1);
        let x = vec![0.1f32; cfg.hidden * 2];
        let _ = d.prefill(&x, 2, &pool);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = d.step(&x[..cfg.hidden], &pool);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn step_is_deterministic_across_team_sizes() {
        // The serving batcher relies on this: per-session compute does not
        // depend on how many threads participate (each C block of every
        // GEMM is produced by exactly one thread with a fixed reduction
        // order), so batched (nested-serial) and unbatched (parallel)
        // execution are bit-identical.
        let cfg = DecoderConfig::scaled_for_tests();
        let mut x = vec![0.0f32; cfg.hidden];
        fill_uniform(&mut x, &mut Xorshift::new(3), -0.5, 0.5);
        let mut outs = Vec::new();
        for threads in [1, 2, 4] {
            let pool = ThreadPool::new(threads);
            let mut d = Decoder::new(cfg, 8, 42);
            outs.push(d.step(&x, &pool));
        }
        assert_eq!(outs[0], outs[1]);
        assert_eq!(outs[0], outs[2]);
    }

    #[test]
    fn step_batch_matches_unbatched_bitwise() {
        let pool = ThreadPool::new(4);
        let cfg = DecoderConfig::scaled_for_tests();
        let model = Arc::new(DecoderModel::new(cfg, 1234));
        let n = 5;
        // Distinct per-session inputs and a shared prompt history.
        let mut inputs = Vec::new();
        for s in 0..n {
            let mut x = vec![0.0f32; cfg.hidden];
            fill_uniform(&mut x, &mut Xorshift::new(100 + s as u64), -0.5, 0.5);
            inputs.push(x);
        }

        // Unbatched baseline: one session at a time.
        let mut want = Vec::new();
        for x in &inputs {
            let mut st = model.new_state(8);
            want.push(model.forward(&mut st, x, 1, &pool));
        }

        // Batched: all sessions in one region.
        let mut states: Vec<DecoderState> = (0..n).map(|_| model.new_state(8)).collect();
        let batch: Vec<(&mut DecoderState, &[f32])> =
            states.iter_mut().zip(inputs.iter().map(|x| x.as_slice())).collect();
        let got = model.step_batch(batch, &pool);

        for (s, (w, g)) in want.iter().zip(&got).enumerate() {
            assert_eq!(w, g, "session {s} diverged");
        }
        assert!(states.iter().all(|s| s.cached_tokens() == 1));
    }

    #[test]
    fn prefill_chunk_widths_are_ladder_aligned() {
        assert_eq!(prefill_chunk_widths(0, 16), Vec::<usize>::new());
        // A prompt that fits in one chunk is never subdivided.
        assert_eq!(prefill_chunk_widths(3, 16), vec![3]);
        assert_eq!(prefill_chunk_widths(16, 16), vec![16]);
        // Non-final chunks are exactly the pow2-normalized cap.
        assert_eq!(prefill_chunk_widths(41, 16), vec![16, 16, 9]);
        assert_eq!(prefill_chunk_widths(32, 4), vec![4; 8]);
        // A ragged cap rounds up to the next power of two (ladder rung).
        assert_eq!(prefill_chunk_widths(20, 6), vec![8, 8, 4]);
        // Degenerate cap: token-at-a-time decoding.
        assert_eq!(prefill_chunk_widths(3, 0), vec![1, 1, 1]);
        for (tokens, chunk) in [(1, 1), (7, 2), (100, 16), (33, 32)] {
            let widths = prefill_chunk_widths(tokens, chunk);
            assert_eq!(widths.iter().sum::<usize>(), tokens);
            assert!(widths[..widths.len() - 1].iter().all(|w| w.is_power_of_two()));
        }
    }

    #[test]
    fn forward_chunked_matches_whole_prompt_within_tolerance() {
        let pool = ThreadPool::new(2);
        let cfg = DecoderConfig::scaled_for_tests();
        let model = DecoderModel::new(cfg, 77);
        let tokens = 11;
        let mut x = vec![0.0f32; cfg.hidden * tokens];
        fill_uniform(&mut x, &mut Xorshift::new(21), -0.5, 0.5);
        let mut whole_state = model.new_state(16);
        let whole = model.forward(&mut whole_state, &x, tokens, &pool);
        // Single chunk: the exact same call — bit-identical.
        let mut one_state = model.new_state(16);
        assert_eq!(model.forward_chunked(&mut one_state, &x, tokens, 16, &pool), whole);
        // Multi-chunk: GEMM widths change, so tolerance, not bit-identity.
        let mut chunked_state = model.new_state(16);
        let chunked = model.forward_chunked(&mut chunked_state, &x, tokens, 4, &pool);
        assert_eq!(chunked.len(), whole.len());
        let err = max_rel_err(&chunked, &whole);
        assert!(err <= 1e-5, "rel err {err}");
        assert_eq!(chunked_state.cached_tokens(), tokens);
    }

    #[test]
    fn forward_batch_mixed_widths_is_bitwise_per_item() {
        // A mixed region — two decode steps next to a 5-token prefill
        // chunk — must produce, per item, exactly what a standalone
        // forward produces: batch composition never changes arithmetic.
        let pool = ThreadPool::new(4);
        let cfg = DecoderConfig::scaled_for_tests();
        let model = Arc::new(DecoderModel::new(cfg, 404));
        let widths = [1usize, 5, 1];
        let inputs: Vec<Vec<f32>> = widths
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                let mut x = vec![0.0f32; cfg.hidden * w];
                fill_uniform(&mut x, &mut Xorshift::new(600 + i as u64), -0.5, 0.5);
                x
            })
            .collect();
        let want: Vec<Vec<f32>> = inputs
            .iter()
            .zip(widths)
            .map(|(x, w)| model.forward(&mut model.new_state(8), x, w, &pool))
            .collect();
        let mut states: Vec<DecoderState> = (0..3).map(|_| model.new_state(8)).collect();
        let batch: Vec<(&mut DecoderState, &[f32], usize)> = states
            .iter_mut()
            .zip(inputs.iter().map(|x| x.as_slice()))
            .zip(widths)
            .map(|((s, x), w)| (s, x, w))
            .collect();
        let got = model.forward_batch(batch, &pool);
        assert_eq!(got, want);
        for (s, &w) in states.iter().zip(&widths) {
            assert_eq!(s.cached_tokens(), w);
        }
    }

    use pl_tensor::max_rel_err;

    #[test]
    fn step_batch_fused_matches_serial_within_tolerance() {
        // Ragged batch (B = 5, not a power of two) with ragged context
        // lengths (each session prefills a different prompt length), then
        // several fused steps — every output must agree with the serial
        // step_batch path to 1e-5 relative error and leave identical KV
        // bookkeeping behind.
        let pool = ThreadPool::new(4);
        let cfg = DecoderConfig::scaled_for_tests();
        let model = Arc::new(DecoderModel::new(cfg, 2024));
        let n = 5;
        let steps = 3;

        let mut fused_states: Vec<DecoderState> = (0..n).map(|_| model.new_state(16)).collect();
        let mut serial_states: Vec<DecoderState> = (0..n).map(|_| model.new_state(16)).collect();
        let mut inputs = Vec::new();
        for s in 0..n {
            // Prompt lengths 1..=5: every session enters decode at a
            // different KV length.
            let prompt = s + 1;
            let mut px = vec![0.0f32; cfg.hidden * prompt];
            fill_uniform(&mut px, &mut Xorshift::new(300 + s as u64), -0.5, 0.5);
            let yf = model.forward(&mut fused_states[s], &px, prompt, &pool);
            let ys = model.forward(&mut serial_states[s], &px, prompt, &pool);
            assert_eq!(yf, ys);
            inputs.push(yf[(prompt - 1) * cfg.hidden..prompt * cfg.hidden].to_vec());
        }

        for step in 0..steps {
            let fused_batch: Vec<(&mut DecoderState, &[f32])> =
                fused_states.iter_mut().zip(inputs.iter().map(|x| x.as_slice())).collect();
            let fused = model.step_batch_fused(fused_batch, &pool);
            let serial_batch: Vec<(&mut DecoderState, &[f32])> =
                serial_states.iter_mut().zip(inputs.iter().map(|x| x.as_slice())).collect();
            let serial = model.step_batch(serial_batch, &pool);
            for s in 0..n {
                let err = max_rel_err(&fused[s], &serial[s]);
                assert!(err <= 1e-5, "session {s} step {step}: rel err {err}");
            }
            // Closed loop: feed the fused outputs back so KV raggedness
            // compounds across steps.
            inputs = fused.clone();
        }
        for s in 0..n {
            assert_eq!(fused_states[s].cached_tokens(), s + 1 + steps);
            assert_eq!(serial_states[s].cached_tokens(), s + 1 + steps);
        }
    }

    #[test]
    fn step_batch_fused_handles_empty_and_singleton_batches() {
        let pool = ThreadPool::new(2);
        let cfg = DecoderConfig::scaled_for_tests();
        let model = Arc::new(DecoderModel::new(cfg, 9));
        assert!(model.step_batch_fused(Vec::new(), &pool).is_empty());

        // B = 1: the fused path degenerates to a plain forward.
        let mut x = vec![0.0f32; cfg.hidden];
        fill_uniform(&mut x, &mut Xorshift::new(17), -0.5, 0.5);
        let mut st_fused = model.new_state(8);
        let got = model.step_batch_fused(vec![(&mut st_fused, x.as_slice())], &pool);
        let mut st_plain = model.new_state(8);
        let want = model.forward(&mut st_plain, &x, 1, &pool);
        assert_eq!(got.len(), 1);
        let err = max_rel_err(&got[0], &want);
        assert!(err <= 1e-5, "rel err {err}");
        assert_eq!(st_fused.cached_tokens(), 1);
    }

    #[test]
    fn plan_problems_and_warm_cover_layer_shapes() {
        let cfg = DecoderConfig::scaled_for_tests();
        let model = DecoderModel::new(cfg, 5);
        let mut out = Vec::new();
        model.plan_problems(4, &mut out);
        let shapes: Vec<(usize, usize, usize)> = out.iter().map(|p| (p.m, p.n, p.k)).collect();
        // Deduped across layers: QKV/WO share one shape, plus the two FFN
        // shapes.
        assert_eq!(
            shapes,
            vec![(cfg.hidden, 4, cfg.hidden), (cfg.ffn, 4, cfg.hidden), (cfg.hidden, 4, cfg.ffn)]
        );
        // Warming is side-effect-only (zero widths skipped).
        model.warm_plans(&[1, 4, 0]);
    }

    #[test]
    fn int8_model_tracks_f32_model_over_decode() {
        // Same seed => the int8 model is the quantization of the f32 one.
        // Prefill + several decode steps, serial and fused: outputs must
        // stay within the quantization error budget (see the serve README
        // "Precision" section for the bound's derivation) and stream ~4x
        // fewer weight bytes per step.
        let pool = ThreadPool::new(2);
        let cfg = DecoderConfig::scaled_for_tests();
        let f32_model = Arc::new(DecoderModel::new(cfg, 314));
        let i8_model = Arc::new(DecoderModel::new_with_precision(cfg, 314, Precision::Int8));
        assert_eq!(f32_model.precision(), Precision::F32);
        assert_eq!(i8_model.precision(), Precision::Int8);
        let fb = f32_model.weight_stream_bytes_per_step();
        let ib = i8_model.weight_stream_bytes_per_step();
        let ratio = fb as f64 / ib as f64;
        assert!(ratio > 3.5 && ratio <= 4.0, "weight-traffic ratio {ratio} (f32 {fb} / i8 {ib})");

        let n = 3;
        let steps = 4;
        let mut f_states: Vec<DecoderState> = (0..n).map(|_| f32_model.new_state(16)).collect();
        let mut q_states: Vec<DecoderState> = (0..n).map(|_| i8_model.new_state(16)).collect();
        let mut qf_states: Vec<DecoderState> = (0..n).map(|_| i8_model.new_state(16)).collect();
        let mut f_in = Vec::new();
        let mut q_in = Vec::new();
        for s in 0..n {
            let prompt = s + 1; // ragged contexts
            let mut px = vec![0.0f32; cfg.hidden * prompt];
            fill_uniform(&mut px, &mut Xorshift::new(700 + s as u64), -0.5, 0.5);
            let yf = f32_model.forward(&mut f_states[s], &px, prompt, &pool);
            let yq = i8_model.forward(&mut q_states[s], &px, prompt, &pool);
            let _ = i8_model.forward(&mut qf_states[s], &px, prompt, &pool);
            f_in.push(yf[(prompt - 1) * cfg.hidden..prompt * cfg.hidden].to_vec());
            q_in.push(yq[(prompt - 1) * cfg.hidden..prompt * cfg.hidden].to_vec());
        }
        let mut qf_in = q_in.clone();
        for step in 0..steps {
            let fb: Vec<(&mut DecoderState, &[f32])> =
                f_states.iter_mut().zip(f_in.iter().map(|x| x.as_slice())).collect();
            let f_out = f32_model.step_batch(fb, &pool);
            let qb: Vec<(&mut DecoderState, &[f32])> =
                q_states.iter_mut().zip(q_in.iter().map(|x| x.as_slice())).collect();
            let q_out = i8_model.step_batch(qb, &pool);
            let qfb: Vec<(&mut DecoderState, &[f32])> =
                qf_states.iter_mut().zip(qf_in.iter().map(|x| x.as_slice())).collect();
            let qf_out = i8_model.step_batch_fused(qfb, &pool);
            for s in 0..n {
                // Int8 (serial) vs f32. Bound derivation: symmetric int8
                // rounding bounds each operand element's error by half a
                // quantization step (max|.|/254); for roughly Gaussian
                // operands (peaks near 3 sigma) one GEMM's output error is
                // ~1% RMS of the output magnitude, independent of k (error
                // and signal both grow as sqrt(k) — random signs cancel).
                // Per-element outliers run a few x RMS and errors compound
                // over 6 GEMMs/layer x 2 layers x closed-loop steps
                // (observed max ~0.1 at this scale), so 0.25 against a
                // 1.0-floored denominator is a safe envelope.
                for (i, (a, b)) in q_out[s].iter().zip(&f_out[s]).enumerate() {
                    let rel = (a - b).abs() / b.abs().max(1.0);
                    assert!(rel < 0.25, "step {step} session {s} idx {i}: i8 {a} vs f32 {b}");
                }
                // Int8 fused vs int8 serial: same quantized weights, only
                // GEMM shapes change — plain reassociation-level agreement.
                let err = max_rel_err(&qf_out[s], &q_out[s]);
                assert!(err <= 1e-4, "step {step} session {s}: fused-vs-serial rel err {err}");
            }
            f_in = f_out;
            q_in = q_out;
            qf_in = qf_out;
        }
    }

    #[test]
    fn shared_model_states_are_independent() {
        let pool = ThreadPool::new(2);
        let cfg = DecoderConfig::scaled_for_tests();
        let model = Arc::new(DecoderModel::new(cfg, 7));
        let mut a = Decoder::from_model(Arc::clone(&model), 8);
        let mut b = Decoder::from_model(Arc::clone(&model), 8);
        let mut x = vec![0.0f32; cfg.hidden];
        fill_uniform(&mut x, &mut Xorshift::new(11), -0.5, 0.5);
        let ya1 = a.step(&x, &pool);
        // b's state is untouched by a's step and vice versa.
        assert_eq!(a.cached_tokens(), 1);
        assert_eq!(b.cached_tokens(), 0);
        let yb1 = b.step(&x, &pool);
        assert_eq!(ya1, yb1, "same weights + same context => same output");
    }

    /// Drives prefill + decode at one page size; returns the full output
    /// stream (prefill output then each step's output).
    fn paged_stream(
        model: &DecoderModel,
        page_tokens: usize,
        capacity: usize,
        pool: &ThreadPool,
    ) -> Vec<Vec<f32>> {
        let cfg = model.config();
        let kvpool = crate::kvpool::KvPagePool::new(cfg.hidden, page_tokens);
        let mut st = model.new_state_in(&kvpool, capacity);
        let prompt = 5;
        let mut px = vec![0.0f32; cfg.hidden * prompt];
        fill_uniform(&mut px, &mut Xorshift::new(4040), -0.5, 0.5);
        let y = model.forward(&mut st, &px, prompt, pool);
        let mut outs = vec![y.clone()];
        let mut x = y[(prompt - 1) * cfg.hidden..].to_vec();
        for _ in 0..4 {
            x = model.forward(&mut st, &x, 1, pool);
            outs.push(x.clone());
        }
        outs
    }

    #[test]
    fn paged_decode_bitwise_invariant_across_page_sizes() {
        // A pool whose page holds the whole capacity IS the contiguous
        // layout (one page = one flat buffer); smaller page sizes only
        // change where token slices live, never the arithmetic — so every
        // page size must produce bit-identical streams, at f32 and int8.
        let pool = ThreadPool::new(2);
        let cfg = DecoderConfig::scaled_for_tests();
        let capacity = 16;
        for precision in [Precision::F32, Precision::Int8] {
            let model = DecoderModel::new_with_precision(cfg, 606, precision);
            let contiguous = paged_stream(&model, capacity, capacity, &pool);
            for page_tokens in [1, 3, crate::kvpool::DEFAULT_PAGE_TOKENS] {
                let paged = paged_stream(&model, page_tokens, capacity, &pool);
                assert_eq!(
                    paged, contiguous,
                    "page size {page_tokens} diverged from contiguous ({precision:?})"
                );
            }
        }
    }

    #[test]
    fn fused_decode_bitwise_invariant_across_page_sizes() {
        // The fused path reads KV through the same indirection inside its
        // per-session attention tasks; fixing the batch composition, page
        // size must be invisible bit-for-bit.
        let pool = ThreadPool::new(4);
        let cfg = DecoderConfig::scaled_for_tests();
        let model = Arc::new(DecoderModel::new(cfg, 808));
        let n = 3;
        let run = |page_tokens: usize| -> Vec<Vec<Vec<f32>>> {
            let kvpool = crate::kvpool::KvPagePool::new(cfg.hidden, page_tokens);
            let mut states: Vec<DecoderState> =
                (0..n).map(|_| model.new_state_in(&kvpool, 16)).collect();
            let mut inputs = Vec::new();
            for (s, st) in states.iter_mut().enumerate() {
                let prompt = s + 1;
                let mut px = vec![0.0f32; cfg.hidden * prompt];
                fill_uniform(&mut px, &mut Xorshift::new(500 + s as u64), -0.5, 0.5);
                let y = model.forward(st, &px, prompt, &pool);
                inputs.push(y[(prompt - 1) * cfg.hidden..].to_vec());
            }
            let mut steps = Vec::new();
            for _ in 0..3 {
                let batch: Vec<(&mut DecoderState, &[f32])> =
                    states.iter_mut().zip(inputs.iter().map(|x| x.as_slice())).collect();
                let out = model.step_batch_fused(batch, &pool);
                inputs = out.clone();
                steps.push(out);
            }
            steps
        };
        let contiguous = run(16);
        for page_tokens in [2, 5] {
            assert_eq!(run(page_tokens), contiguous, "fused page size {page_tokens} diverged");
        }
    }

    #[test]
    fn spill_restore_and_snapshot_migration_are_bitwise() {
        let pool = ThreadPool::new(2);
        let cfg = DecoderConfig::scaled_for_tests();
        let model = DecoderModel::new(cfg, 909);
        let mut x = vec![0.0f32; cfg.hidden];
        fill_uniform(&mut x, &mut Xorshift::new(23), -0.5, 0.5);
        // Baseline: uninterrupted decode.
        let mut base_st = model.new_state(16);
        let mut base = Vec::new();
        let mut bx = x.clone();
        for _ in 0..6 {
            bx = model.forward(&mut base_st, &bx, 1, &pool);
            base.push(bx.clone());
        }
        // Spilled mid-stream: densify + release pages, then keep going —
        // the next forward restores transparently.
        let mut st = model.new_state(16);
        let mut sx = x.clone();
        let mut got = Vec::new();
        for t in 0..6 {
            if t == 3 {
                assert!(st.spill());
                assert!(st.is_spilled());
                assert_eq!(st.kv_pages(), 0, "spill releases every page");
                assert_eq!(st.cached_tokens(), 3, "accounting survives the spill");
                assert!(!st.spill(), "double spill is a no-op");
            }
            sx = model.forward(&mut st, &sx, 1, &pool);
            got.push(sx.clone());
        }
        assert_eq!(got, base, "spill/restore changed the stream");
        // Migration: serialize to bytes, rebuild into a *different* pool
        // (different page size — another shard's geometry), continue.
        let bytes = st.snapshot().to_bytes();
        let snap = crate::kvpool::KvSnapshot::from_bytes(&bytes).expect("wire roundtrip");
        let other_pool = crate::kvpool::KvPagePool::new(cfg.hidden, 4);
        let mut moved = model.state_from_snapshot(&other_pool, &snap).expect("restore");
        assert_eq!(moved.capacity(), 16, "admission capacity rides the snapshot");
        let y_orig = model.forward(&mut st, &sx.clone(), 1, &pool);
        let y_moved = model.forward(&mut moved, &sx, 1, &pool);
        assert_eq!(y_moved, y_orig, "migrated continuation diverged");
    }

    #[test]
    fn prefix_sharing_dedups_pages_and_cow_isolates_divergence() {
        let pool = ThreadPool::new(2);
        let cfg = DecoderConfig::scaled_for_tests();
        let model = DecoderModel::new(cfg, 1111);
        let kvpool = crate::kvpool::KvPagePool::new(cfg.hidden, 4);
        let cache = crate::kvpool::PrefixCache::new(16);
        let prompt_tokens = 9; // 2 full pages + 1 partial per layer
        let mut prompt = vec![0.0f32; cfg.hidden * prompt_tokens];
        fill_uniform(&mut prompt, &mut Xorshift::new(31), -0.5, 0.5);

        let mut a = model.new_state_in(&kvpool, 16);
        let ya = model.forward(&mut a, &prompt, prompt_tokens, &pool);
        assert_eq!(a.share_prefix(&cache, &prompt, prompt_tokens), 0, "first tenant registers");
        let pages_after_a = kvpool.allocated_pages();

        // Second tenant, identical prompt: all its pages dedup onto a's.
        let mut b = model.new_state_in(&kvpool, 16);
        let yb = model.forward(&mut b, &prompt, prompt_tokens, &pool);
        assert_eq!(ya, yb, "same weights + same prompt => same prefill");
        let adopted = b.share_prefix(&cache, &prompt, prompt_tokens);
        assert_eq!(adopted, b.kv_pages(), "every page handle now shared");
        assert_eq!(
            kvpool.allocated_pages(),
            pages_after_a,
            "the second session's duplicate pages recycled — zero marginal pages"
        );
        assert_eq!(b.shared_kv_pages(), b.kv_pages());
        assert!(a.shared_kv_pages() > 0, "the first session's pages are the shared ones");

        // Divergence: different next tokens. The partial tail page is
        // shared, so the first append COW-splits it — and both streams
        // must match independent (never-shared) baselines bitwise.
        let xa = ya[(prompt_tokens - 1) * cfg.hidden..].to_vec();
        let xb: Vec<f32> = xa.iter().map(|v| v + 0.25).collect();
        let cow_before = kvpool.cow_splits();
        let ya2 = model.forward(&mut a, &xa, 1, &pool);
        let yb2 = model.forward(&mut b, &xb, 1, &pool);
        assert!(kvpool.cow_splits() > cow_before, "divergence forced a COW split");
        let mut ind_a = model.new_state(16);
        model.forward(&mut ind_a, &prompt, prompt_tokens, &pool);
        assert_eq!(model.forward(&mut ind_a, &xa, 1, &pool), ya2, "writer A corrupted");
        let mut ind_b = model.new_state(16);
        model.forward(&mut ind_b, &prompt, prompt_tokens, &pool);
        assert_eq!(model.forward(&mut ind_b, &xb, 1, &pool), yb2, "writer B corrupted");
    }
}
