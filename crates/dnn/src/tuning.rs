//! Consumption of the offline [`TuningDb`] by the kernel-selection layer
//! (closing the loop of paper Fig. 1: box B3's database feeds box B1's
//! execution).
//!
//! A process-wide **registry** holds one immutable snapshot of a warmed
//! tuning database plus the platform it was tuned for. [`crate::matmul`]
//! and the Block-SpMM bridge consult it on every kernel build: a hit
//! yields the search winner's `loop_spec_string` (with the per-loop
//! blocking ladders re-derived exactly as the search derived them), a
//! miss falls back to the built-in `default_parallel` spec. Installing a
//! registry is therefore purely a performance decision — *values are
//! unchanged*, because every legal spec produces each output block on
//! exactly one thread with the same ascending-K reduction order (the
//! determinism contract `pl-serve` relies on).
//!
//! The registry is global (not threaded through every layer's signature)
//! for the same reason BLAS thread counts are: kernel selection is a
//! process-level deployment decision, while the DL layer APIs stay
//! shape-only. A serving runtime installs its warmed DB at startup
//! (`pl_serve::Server::warm_tuning`); everything that runs afterwards —
//! batched or not — picks the tuned specs up automatically.

use pl_autotuner::{blocks_for_spec, GemmProblem, TuningDb};
use pl_kernels::{GemmShape, GemmTuning, SpmmTuning};
use pl_tensor::DType;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

struct Registry {
    platform: String,
    db: TuningDb,
}

static REGISTRY: RwLock<Option<Registry>> = RwLock::new(None);

/// Monotonic registry generation, bumped by every [`install`]/[`clear`].
/// Prepared plans ([`crate::prepared`]) tag cached kernels with the epoch
/// they resolved their spec under and re-resolve when it moves — so a plan
/// built *before* a snapshot install executes the tuned specs right after
/// it (numeric results are unchanged either way; see the module docs).
static EPOCH: AtomicU64 = AtomicU64::new(0);

/// Current registry generation (see [`EPOCH`]'s invariants above).
pub fn epoch() -> u64 {
    EPOCH.load(Ordering::Acquire)
}

/// Installs `db` (a snapshot) as the process-wide tuning source for
/// `platform`. Replaces any previously installed registry and advances the
/// registry [`epoch`] so prepared plans re-resolve their cached kernels.
pub fn install(platform: &str, db: TuningDb) {
    *REGISTRY.write().unwrap() = Some(Registry { platform: platform.to_string(), db });
    EPOCH.fetch_add(1, Ordering::AcqRel);
}

/// Removes the installed registry; kernel selection reverts to the
/// built-in `default_parallel` specs (and the [`epoch`] advances).
pub fn clear() {
    *REGISTRY.write().unwrap() = None;
    EPOCH.fetch_add(1, Ordering::AcqRel);
}

/// Whether a registry is installed.
pub fn is_installed() -> bool {
    REGISTRY.read().unwrap().is_some()
}

/// The tuning the GEMM bridge should use for `shape` at `dtype`: the DB
/// winner when the installed registry has the shape, else
/// [`GemmTuning::default_parallel`]. Keys are dtype-scoped
/// ([`TuningDb::gemm_key`]), so an f32 winner never leaks onto the int8
/// kernel (whose cost profile differs) and vice versa.
pub fn gemm_tuning_for(shape: &GemmShape, dtype: DType) -> GemmTuning {
    lookup_gemm(shape, dtype).unwrap_or_else(|| GemmTuning::default_parallel(shape.kb()))
}

/// DB lookup only (no fallback): `Some(tuning)` when the installed
/// registry has a feasible entry for `shape`.
///
/// An exact `(m, n, k)` miss retries with `n` rounded up to the next
/// power of two: warmers cover N widths on a power-of-two ladder (prompt
/// lengths are arbitrary), and a spec is a *structural* choice — the
/// blocking ladders are re-derived below for the actual shape, and an
/// entry infeasible at this width degrades to `None` (then to the
/// caller's `default_parallel` fallback).
pub fn lookup_gemm(shape: &GemmShape, dtype: DType) -> Option<GemmTuning> {
    let guard = REGISTRY.read().unwrap();
    let reg = guard.as_ref()?;
    let dtype_key = dtype.to_string();
    let entry = [shape.n, shape.n.next_power_of_two()].iter().find_map(|&n| {
        reg.db.get(&TuningDb::gemm_key(&reg.platform, shape.m, n, shape.k, &dtype_key))
    });
    let spec = entry?.spec.clone();
    // Re-derive the blocking ladders the searcher paired with this spec.
    let problem = GemmProblem {
        m: shape.m,
        n: shape.n,
        k: shape.k,
        bm: shape.bm,
        bn: shape.bn,
        bk: shape.bk,
        dtype,
    };
    let [a_blocks, b_blocks, c_blocks] = blocks_for_spec(&problem, &spec)?;
    Some(GemmTuning { spec, k_step: 1, a_blocks, b_blocks, c_blocks })
}

/// The tuning the Block-SpMM bridge should use, with the same
/// lookup-or-`default_parallel` contract as [`gemm_tuning_for`].
pub fn spmm_tuning_for(shape: &GemmShape) -> SpmmTuning {
    lookup_spmm(shape).unwrap_or_else(|| SpmmTuning::default_parallel(shape.kb()))
}

/// DB lookup only (no fallback) for a Block-SpMM problem. The kernel's K
/// loop supports no extra blocking, so specs with more than one `a`
/// occurrence are infeasible and fall through to `None`.
pub fn lookup_spmm(shape: &GemmShape) -> Option<SpmmTuning> {
    let guard = REGISTRY.read().unwrap();
    let reg = guard.as_ref()?;
    let key = TuningDb::spmm_key(&reg.platform, shape.m, shape.n, shape.k, &DType::F32.to_string());
    let spec = reg.db.get(&key)?.spec.clone();
    if spec.chars().filter(|c| c.eq_ignore_ascii_case(&'a')).count() != 1 {
        return None;
    }
    let problem = GemmProblem {
        m: shape.m,
        n: shape.n,
        k: shape.k,
        bm: shape.bm,
        bn: shape.bn,
        bk: shape.bk,
        dtype: DType::F32,
    };
    let [_, b_blocks, c_blocks] = blocks_for_spec(&problem, &spec)?;
    Some(SpmmTuning { spec, k_step: 1, b_blocks, c_blocks })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_autotuner::DbEntry;

    // One test exercises the whole install -> lookup -> clear lifecycle so
    // registry mutation never races a concurrently running sibling test.
    #[test]
    fn registry_lifecycle_and_lookups() {
        clear();
        let epoch0 = epoch();
        let shape = GemmShape::with_default_blocks(64, 8, 64);
        assert!(lookup_gemm(&shape, DType::F32).is_none(), "no registry -> no hit");
        assert_eq!(gemm_tuning_for(&shape, DType::F32), GemmTuning::default_parallel(shape.kb()));

        let mut db = TuningDb::new();
        db.put(
            &TuningDb::gemm_key("TestPlat", 64, 8, 64, "f32"),
            DbEntry { spec: "aBC".into(), score: 10.0 },
        );
        db.put(
            &TuningDb::spmm_key("TestPlat", 64, 8, 64, "f32"),
            DbEntry { spec: "Bca".into(), score: 5.0 },
        );
        // Infeasible spmm spec: K loop blocked twice.
        db.put(
            &TuningDb::spmm_key("TestPlat", 32, 8, 32, "f32"),
            DbEntry { spec: "aaBc".into(), score: 5.0 },
        );
        // Corrupted spec (stray letter): passes the occurrence check but
        // the loop layer rejects it — matmul must degrade, not panic.
        db.put(
            &TuningDb::gemm_key("TestPlat", 48, 8, 48, "f32"),
            DbEntry { spec: "azbc".into(), score: 1.0 },
        );
        install("TestPlat", db);
        assert!(is_installed());
        assert!(epoch() > epoch0, "install advances the registry epoch");

        let t = lookup_gemm(&shape, DType::F32).expect("warmed shape resolves");
        assert_eq!(t.spec, "aBC");
        assert_eq!(t.k_step, 1);
        assert_eq!(gemm_tuning_for(&shape, DType::F32).spec, "aBC");
        // Same shape at i8 has no entry: precision-scoped keys miss.
        assert!(lookup_gemm(&shape, DType::I8).is_none(), "f32 winner must not leak to i8");
        // Unknown shape still falls back.
        let other = GemmShape::with_default_blocks(96, 8, 96);
        assert_eq!(gemm_tuning_for(&other, DType::F32), GemmTuning::default_parallel(other.kb()));
        // A ragged width (n = 6) rounds up to the warmed power of two
        // (n = 8) and reuses its spec, with blocks re-derived for n = 6.
        let ragged = GemmShape::with_default_blocks(64, 6, 64);
        assert_eq!(lookup_gemm(&ragged, DType::F32).expect("rounds up to n=8").spec, "aBC");
        // But only one rung up: n = 9 probes 16, which is not warmed.
        let wide = GemmShape::with_default_blocks(64, 9, 64);
        assert!(lookup_gemm(&wide, DType::F32).is_none());
        // The corrupted 48x8x48 entry resolves at lookup time (occurrence
        // counts are fine) but must not panic the matmul bridge — it
        // degrades to the built-in spec and still computes correctly.
        {
            let pool = pl_runtime::ThreadPool::new(2);
            let a = vec![0.25f32; 48 * 48];
            let b = vec![0.5f32; 48 * 8];
            let got = crate::matmul::matmul(
                &a,
                crate::matmul::Trans::No,
                &b,
                crate::matmul::Trans::No,
                48,
                8,
                48,
                &pool,
            );
            let want = pl_kernels::gemm::reference_gemm(&a, &b, 48, 8, 48);
            for i in 0..got.len() {
                assert!((got[i] - want[i]).abs() < 1e-3, "idx {i}");
            }
        }

        // The matmul bridge actually executes through the tuned spec — and
        // produces the same values as the reference (specs never change
        // the per-element reduction order).
        {
            let pool = pl_runtime::ThreadPool::new(2);
            let mut rng = pl_tensor::Xorshift::new(5);
            let mut a = vec![0.0f32; 64 * 64];
            let mut b = vec![0.0f32; 64 * 8];
            pl_tensor::fill_uniform(&mut a, &mut rng, -0.5, 0.5);
            pl_tensor::fill_uniform(&mut b, &mut rng, -0.5, 0.5);
            let got = crate::matmul::matmul(
                &a,
                crate::matmul::Trans::No,
                &b,
                crate::matmul::Trans::No,
                64,
                8,
                64,
                &pool,
            );
            let want = pl_kernels::gemm::reference_gemm(&a, &b, 64, 8, 64);
            for i in 0..got.len() {
                assert!((got[i] - want[i]).abs() < 1e-3, "idx {i}");
            }
        }

        let s = lookup_spmm(&shape).expect("warmed spmm shape resolves");
        assert_eq!(s.spec, "Bca");
        let small = GemmShape::with_default_blocks(32, 8, 32);
        assert!(lookup_spmm(&small).is_none(), "multi-`a` spec is infeasible for SpmmTuning");
        assert_eq!(spmm_tuning_for(&small), SpmmTuning::default_parallel(small.kb()));

        clear();
        assert!(!is_installed());
        assert!(lookup_gemm(&shape, DType::F32).is_none());
    }
}
