//! # pl-dnn — end-to-end DL workloads on PARLOOPER/TPP
//!
//! The paper's §IV workloads, rebuilt on the kernel layer:
//!
//! * [`bert`] — BERT encoder with the four fused modules (Self-Attention,
//!   SelfOutput/Output per Listing 6, Intermediate), forward *and* backward
//!   (Fig. 9 fine-tuning).
//! * [`sparse_bert`] — magnitude block-pruned BERT inference on the
//!   Block-SpMM kernel (Fig. 10).
//! * [`llm`] — decoder-only LLM (GPT-J / Llama2 architectures) with KV
//!   cache: prefill (first token) and autoregressive steps (next tokens)
//!   (Fig. 11), plus exact flop/byte accounting of the full-size models.
//! * [`resnet`] — the Fig. 7 convolution shape table, batchnorm (fwd/bwd)
//!   and pooling for ResNet-50 training (Table II).
//! * [`matmul`] — the flat-matrix bridge onto the PARLOOPER GEMM kernel.
//! * [`tuning`] — process-wide consumption of the offline tuning DB: the
//!   matmul/SpMM bridges resolve their `loop_spec_string` through an
//!   installed [`pl_autotuner::TuningDb`] snapshot, falling back to the
//!   built-in `default_parallel` specs.

pub mod bert;
pub mod llm;
pub mod matmul;
pub mod resnet;
pub mod sparse_bert;
pub mod tuning;

pub use bert::{BertConfig, BertEncoder, BertLayer};
pub use llm::{Decoder, DecoderConfig, DecoderModel, DecoderState};
pub use resnet::{resnet50_conv_flops, resnet50_conv_shapes, BatchNorm, ConvLayerSpec};
pub use sparse_bert::{prune_to_block_sparse, SparseBertLayer};
