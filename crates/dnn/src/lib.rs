//! # pl-dnn — end-to-end DL workloads on PARLOOPER/TPP
//!
//! The paper's §IV workloads, rebuilt on the kernel layer:
//!
//! * [`bert`] — BERT encoder with the four fused modules (Self-Attention,
//!   SelfOutput/Output per Listing 6, Intermediate), forward *and* backward
//!   (Fig. 9 fine-tuning).
//! * [`sparse_bert`] — magnitude block-pruned BERT inference on the
//!   Block-SpMM kernel (Fig. 10).
//! * [`llm`] — decoder-only LLM (GPT-J / Llama2 architectures) with KV
//!   cache: prefill (first token) and autoregressive steps (next tokens)
//!   (Fig. 11), plus exact flop/byte accounting of the full-size models.
//! * [`kvpool`] — paged KV storage behind the decoder: fixed-size pages
//!   from a shared block allocator ([`KvPagePool`]), ref-counted
//!   copy-on-write prefix sharing ([`PrefixCache`]) and dense
//!   spill/migration snapshots ([`KvSnapshot`]).
//! * [`resnet`] — the Fig. 7 convolution shape table, batchnorm (fwd/bwd)
//!   and pooling for ResNet-50 training (Table II).
//! * [`prepared`] — the **prepared-op execution API**: pack-once compiled
//!   plans ([`prepared::MatmulPlan`], [`prepared::SpmmPlan`]) that own
//!   their blocked weight, cached per-width kernels and reusable scratch.
//!   The model types above hold plans, so steady-state inference packs
//!   **zero** weight bytes per step (observable via
//!   [`prepared::pack_events`]).
//! * [`matmul`] — the flat-matrix pack-per-call bridge, kept as a thin
//!   compatibility wrapper (a throwaway plan per call) for one-shot
//!   contractions; prefer plans for weights.
//! * [`tuning`] — process-wide consumption of the offline tuning DB: plans
//!   and the flat bridges resolve their `loop_spec_string` through an
//!   installed [`pl_autotuner::TuningDb`] snapshot, falling back to the
//!   built-in `default_parallel` specs. Installs advance a registry
//!   [`tuning::epoch`] that makes existing plans re-resolve their cached
//!   kernels.
//!
//! ## The prepared-op lifecycle
//!
//! 1. **build** — constructing a model packs every weight into its blocked
//!    kernel layout exactly once (`MatmulPlan::new`);
//! 2. **warm** — a serving runtime asks the model for the exact GEMM
//!    shapes its plans will execute ([`DecoderModel::plan_problems`]),
//!    tunes/install a DB snapshot, then pre-constructs the kernels
//!    ([`DecoderModel::warm_plans`]);
//! 3. **execute** — decode/forward paths only gather and pack
//!    *activations*; weights are never touched again.

pub mod bert;
pub mod kvpool;
pub mod llm;
pub mod matmul;
pub mod prepared;
pub mod resnet;
pub mod sparse_bert;
pub mod tuning;

pub use bert::{BertConfig, BertEncoder, BertLayer};
pub use kvpool::{
    KvPage, KvPagePool, KvPoolExhausted, KvSeq, KvSnapshot, PrefixCache, DEFAULT_PAGE_TOKENS,
};
pub use llm::{prefill_chunk_widths, Decoder, DecoderConfig, DecoderModel, DecoderState};
pub use prepared::{ActivationBuf, MatmulPlan, Precision, SpmmPlan};
pub use resnet::{resnet50_conv_flops, resnet50_conv_shapes, BatchNorm, ConvLayerSpec, FcHead};
pub use sparse_bert::{prune_to_block_sparse, SparseBertLayer};
