//! Explicit multi-dimensional thread decompositions (paper PAR-MODE 2).
//!
//! With `loop_spec_string = bC{R:16}aB{C:4}cb` the 64 team threads form a
//! logical 16 x 4 grid; loop `c0` is parallelized 16-ways by grid *row* and
//! loop `b1` 4-ways by grid *column*, each in a block fashion. [`GridDecomp`]
//! maps a flat thread id to its grid coordinates and partitions loop
//! iterations per axis.

use crate::sched::block_partition;
use std::ops::Range;

/// Axis of a logical thread grid, in PARLOOPER spelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GridAxis {
    /// `R` — rows, the slowest-varying coordinate.
    Row,
    /// `C` — columns.
    Col,
    /// `L` — layers, the fastest-varying coordinate (3-D decompositions).
    Layer,
}

/// A logical `R x C x L` thread grid (missing axes default to extent 1).
///
/// Thread ids map row-major: `tid = (row * C + col) * L + layer`, matching
/// the paper's `row_id = tid / col_teams; col_id = tid % col_teams` for 2-D.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridDecomp {
    rows: usize,
    cols: usize,
    layers: usize,
}

impl GridDecomp {
    /// 1-D grid of `r` rows.
    pub fn d1(r: usize) -> Self {
        GridDecomp { rows: r.max(1), cols: 1, layers: 1 }
    }

    /// 2-D grid `r x c`.
    pub fn d2(r: usize, c: usize) -> Self {
        GridDecomp { rows: r.max(1), cols: c.max(1), layers: 1 }
    }

    /// 3-D grid `r x c x l`.
    pub fn d3(r: usize, c: usize, l: usize) -> Self {
        GridDecomp { rows: r.max(1), cols: c.max(1), layers: l.max(1) }
    }

    /// Builds a grid from per-axis ways; `None` axes get extent 1.
    pub fn from_ways(r: Option<usize>, c: Option<usize>, l: Option<usize>) -> Self {
        GridDecomp {
            rows: r.unwrap_or(1).max(1),
            cols: c.unwrap_or(1).max(1),
            layers: l.unwrap_or(1).max(1),
        }
    }

    /// Total number of grid positions.
    pub fn size(&self) -> usize {
        self.rows * self.cols * self.layers
    }

    /// Extent along an axis.
    pub fn extent(&self, axis: GridAxis) -> usize {
        match axis {
            GridAxis::Row => self.rows,
            GridAxis::Col => self.cols,
            GridAxis::Layer => self.layers,
        }
    }

    /// Grid coordinate of `tid` along `axis`.
    #[inline]
    pub fn coord(&self, tid: usize, axis: GridAxis) -> usize {
        debug_assert!(tid < self.size(), "tid {tid} outside grid {self:?}");
        match axis {
            GridAxis::Row => tid / (self.cols * self.layers),
            GridAxis::Col => (tid / self.layers) % self.cols,
            GridAxis::Layer => tid % self.layers,
        }
    }

    /// Block-partitions `0..total` along `axis` for thread `tid`
    /// (the paper: "each loop that is parallelized is done so in a block
    /// fashion using the requested number of ways").
    #[inline]
    pub fn partition(&self, tid: usize, axis: GridAxis, total: usize) -> Range<usize> {
        block_partition(total, self.extent(axis), self.coord(tid, axis))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_d_coords_match_paper_listing3() {
        // Listing 3: row_teams=16, col_teams=4, row_id=tid/col_teams,
        // col_id=tid%col_teams.
        let g = GridDecomp::d2(16, 4);
        assert_eq!(g.size(), 64);
        for tid in 0..64 {
            assert_eq!(g.coord(tid, GridAxis::Row), tid / 4);
            assert_eq!(g.coord(tid, GridAxis::Col), tid % 4);
        }
    }

    #[test]
    fn three_d_coords_are_row_major() {
        let g = GridDecomp::d3(2, 3, 4);
        assert_eq!(g.size(), 24);
        let tid = (3 + 2) * 4 + 3; // row 1, col 2, layer 3 (row-major: (r*3 + c)*4 + l)
        assert_eq!(g.coord(tid, GridAxis::Row), 1);
        assert_eq!(g.coord(tid, GridAxis::Col), 2);
        assert_eq!(g.coord(tid, GridAxis::Layer), 3);
    }

    #[test]
    fn partitions_tile_the_space_per_axis() {
        let g = GridDecomp::d2(3, 2);
        // Along rows: threads sharing a row coordinate get the same range;
        // distinct rows tile 0..10.
        let mut seen = [0u8; 10];
        for row in 0..3 {
            let tid = row * 2; // col 0 representative
            for i in g.partition(tid, GridAxis::Row, 10) {
                seen[i] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
        // Threads in the same row agree.
        assert_eq!(g.partition(2, GridAxis::Row, 10), g.partition(3, GridAxis::Row, 10));
    }

    #[test]
    fn degenerate_axes_default_to_one() {
        let g = GridDecomp::from_ways(Some(4), None, None);
        assert_eq!(g.size(), 4);
        assert_eq!(g.partition(2, GridAxis::Col, 8), 0..8);
    }
}
