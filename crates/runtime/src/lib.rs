//! # pl-runtime — an OpenMP-like parallel runtime
//!
//! The paper's PARLOOPER POC relies on the OpenMP runtime for concurrency
//! (`#pragma omp parallel`, `#pragma omp for collapse(n) nowait`,
//! `schedule(dynamic)`, barriers, and explicit logical thread grids for
//! PAR-MODE 2). This crate reimplements exactly that subset on a persistent
//! thread pool:
//!
//! * [`ThreadPool::parallel`] — a parallel *region*: the closure runs once on
//!   every thread with a [`WorkerCtx`] (thread id, team size, team barrier).
//! * [`sched`] — work distribution inside a region: static block, static
//!   chunked (round-robin), and dynamic (atomic work-stealing counter)
//!   schedules over a linearized (possibly collapsed) iteration space.
//! * [`grid`] — explicit R x C (x L) thread-grid decompositions with block
//!   partitioning, used by PARLOOPER's `{R:16}` / `{C:4}` syntax.
//!
//! Nested `parallel` calls execute serially on the calling thread with a
//! single-thread context (OpenMP's default behaviour with nesting disabled).
//! Worker panics are captured and re-raised on the calling thread.

pub mod grid;
pub mod pool;
pub mod sched;

pub use grid::GridDecomp;
pub use pool::{default_threads, global_pool, ThreadPool, WorkerCtx};
pub use sched::{block_partition, DynamicQueue, StaticChunks};
