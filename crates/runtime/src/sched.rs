//! Work distribution inside a parallel region.
//!
//! These mirror the OpenMP loop schedules PARLOOPER relies on:
//!
//! * [`block_partition`] — `schedule(static)` without a chunk: one
//!   contiguous range per thread (also used for PAR-MODE 2 block grids).
//! * [`StaticChunks`] — `schedule(static, chunk)`: round-robin chunks.
//! * [`DynamicQueue`] — `schedule(dynamic, chunk)`: an atomic counter that
//!   threads pull chunks from, for load balancing on heterogeneous cores
//!   (the paper's ADL P/E-core experiments, §V-A4).
//!
//! All schedules operate on a *linearized* iteration space; loop collapsing
//! (`collapse(n)`) is performed by the PARLOOPER executor before it asks for
//! a schedule.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Splits `0..total` into `ways` contiguous blocks and returns block `idx`.
///
/// Blocks differ in size by at most one; the first `total % ways` blocks get
/// the extra element — OpenMP's static schedule.
#[inline]
pub fn block_partition(total: usize, ways: usize, idx: usize) -> Range<usize> {
    debug_assert!(idx < ways, "partition index {idx} out of {ways}");
    let base = total / ways;
    let rem = total % ways;
    let lo = idx * base + idx.min(rem);
    let hi = lo + base + usize::from(idx < rem);
    lo..hi
}

/// Round-robin chunked static schedule: thread `tid` of `nthreads` receives
/// chunks `tid, tid + nthreads, tid + 2*nthreads, ...` of size `chunk`.
#[derive(Debug, Clone)]
pub struct StaticChunks {
    total: usize,
    chunk: usize,
    next: usize,
    stride: usize,
}

impl StaticChunks {
    /// Schedule for one thread. `chunk == 0` is treated as 1.
    pub fn new(total: usize, chunk: usize, tid: usize, nthreads: usize) -> Self {
        let chunk = chunk.max(1);
        StaticChunks { total, chunk, next: tid * chunk, stride: nthreads * chunk }
    }
}

impl Iterator for StaticChunks {
    type Item = Range<usize>;

    #[inline]
    fn next(&mut self) -> Option<Range<usize>> {
        if self.next >= self.total {
            return None;
        }
        let lo = self.next;
        let hi = (lo + self.chunk).min(self.total);
        self.next += self.stride;
        Some(lo..hi)
    }
}

/// Dynamic (work-stealing counter) schedule shared by a team.
///
/// Create it once before entering the region, then each thread repeatedly
/// calls [`DynamicQueue::next`] until it returns `None`.
#[derive(Debug)]
pub struct DynamicQueue {
    cursor: AtomicUsize,
    total: usize,
    chunk: usize,
}

impl DynamicQueue {
    /// A queue over `0..total` handing out chunks of `chunk` (min 1).
    pub fn new(total: usize, chunk: usize) -> Self {
        DynamicQueue { cursor: AtomicUsize::new(0), total, chunk: chunk.max(1) }
    }

    /// Claims the next chunk, or `None` when the space is exhausted.
    #[inline]
    pub fn next(&self) -> Option<Range<usize>> {
        // Relaxed is sufficient: the counter itself is the only shared
        // state, and chunk *contents* are made visible by the region's
        // completion countdown (AcqRel) before anyone reads results.
        let lo = self.cursor.fetch_add(self.chunk, Ordering::Relaxed);
        if lo >= self.total {
            return None;
        }
        Some(lo..(lo + self.chunk).min(self.total))
    }

    /// Resets the queue for reuse (only call outside a region).
    pub fn reset(&self) {
        self.cursor.store(0, Ordering::Relaxed);
    }

    /// Total iteration count.
    pub fn total(&self) -> usize {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ThreadPool;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn block_partition_covers_space_disjointly() {
        for total in [0usize, 1, 7, 16, 100, 101] {
            for ways in [1usize, 2, 3, 7, 16] {
                let mut seen = vec![0u8; total];
                for idx in 0..ways {
                    for i in block_partition(total, ways, idx) {
                        seen[i] += 1;
                    }
                }
                assert!(seen.iter().all(|&c| c == 1), "total={total} ways={ways}");
            }
        }
    }

    #[test]
    fn block_partition_is_balanced() {
        for total in [10usize, 11, 12, 13] {
            let sizes: Vec<usize> = (0..4).map(|i| block_partition(total, 4, i).len()).collect();
            let max = *sizes.iter().max().unwrap();
            let min = *sizes.iter().min().unwrap();
            assert!(max - min <= 1, "sizes {sizes:?}");
        }
    }

    #[test]
    fn static_chunks_cover_space() {
        for (total, chunk, nthreads) in [(100, 7, 3), (64, 64, 2), (5, 1, 8), (0, 4, 4)] {
            let mut seen = vec![0u8; total];
            for tid in 0..nthreads {
                for r in StaticChunks::new(total, chunk, tid, nthreads) {
                    for i in r {
                        seen[i] += 1;
                    }
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "{total}/{chunk}/{nthreads}");
        }
    }

    #[test]
    fn static_chunks_round_robin_order() {
        // total 10, chunk 2, 2 threads: t0 gets [0,2) [4,6) [8,10); t1 [2,4) [6,8).
        let t0: Vec<_> = StaticChunks::new(10, 2, 0, 2).collect();
        let t1: Vec<_> = StaticChunks::new(10, 2, 1, 2).collect();
        assert_eq!(t0, vec![0..2, 4..6, 8..10]);
        assert_eq!(t1, vec![2..4, 6..8]);
    }

    #[test]
    fn dynamic_queue_single_thread_exhausts() {
        let q = DynamicQueue::new(10, 3);
        let chunks: Vec<_> = std::iter::from_fn(|| q.next()).collect();
        assert_eq!(chunks, vec![0..3, 3..6, 6..9, 9..10]);
        assert!(q.next().is_none());
        q.reset();
        assert_eq!(q.next(), Some(0..3));
    }

    #[test]
    fn dynamic_queue_parallel_exactly_once() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicU32> = (0..1000).map(|_| AtomicU32::new(0)).collect();
        let q = DynamicQueue::new(1000, 7);
        pool.parallel(|_| {
            while let Some(r) = q.next() {
                for i in r {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_chunk_is_clamped() {
        let q = DynamicQueue::new(3, 0);
        assert_eq!(q.next(), Some(0..1));
        let s: Vec<_> = StaticChunks::new(3, 0, 0, 1).collect();
        assert_eq!(s, vec![0..1, 1..2, 2..3]);
    }
}
