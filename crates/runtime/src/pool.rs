//! The persistent thread pool and parallel regions.
//!
//! Design notes (following "Rust Atomics and Locks" idioms): each worker
//! owns a lock-free channel endpoint; a parallel region broadcasts one
//! `Arc<Job>` to every worker plus the caller (which participates as thread
//! 0, so an `n`-thread pool spawns `n - 1` OS threads). Completion is a
//! simple atomic countdown with thread parking; panics inside workers are
//! captured with `catch_unwind` and resumed on the caller.

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, OnceLock};
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;

type Job = dyn Fn(&WorkerCtx) + Send + Sync;

/// Per-region shared state: the job, completion countdown, team barrier and
/// the first captured panic.
struct Region {
    job: Arc<Job>,
    barrier: Arc<Barrier>,
    remaining: Arc<AtomicUsize>,
    caller: std::thread::Thread,
    panic: Arc<Mutex<Option<Box<dyn Any + Send>>>>,
    nthreads: usize,
}

enum Message {
    Run(Region),
    Shutdown,
}

/// Execution context handed to the region closure on each team thread.
pub struct WorkerCtx {
    tid: usize,
    nthreads: usize,
    barrier: Arc<Barrier>,
}

impl WorkerCtx {
    /// This thread's id within the team (`0..nthreads`).
    #[inline(always)]
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Team size of the current region.
    #[inline(always)]
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// Team-wide barrier (all `nthreads` threads must call it).
    pub fn barrier(&self) {
        self.barrier.wait();
    }
}

thread_local! {
    /// Set while a thread executes inside a parallel region, to serialize
    /// nested regions (OpenMP default: nesting disabled).
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
}

/// A persistent team of worker threads executing parallel regions.
pub struct ThreadPool {
    senders: Vec<Sender<Message>>,
    handles: Vec<JoinHandle<()>>,
    nthreads: usize,
    /// Serializes concurrent regions dispatched from different user threads;
    /// interleaved broadcasts would cross-wire the per-region barriers.
    dispatch: Mutex<()>,
}

impl ThreadPool {
    /// Creates a pool with `nthreads` total team members (the calling thread
    /// participates, so `nthreads - 1` OS threads are spawned).
    ///
    /// # Panics
    /// Panics if `nthreads == 0`.
    pub fn new(nthreads: usize) -> Self {
        assert!(nthreads > 0, "thread pool needs at least one thread");
        let mut senders = Vec::with_capacity(nthreads.saturating_sub(1));
        let mut handles = Vec::with_capacity(nthreads.saturating_sub(1));
        for tid in 1..nthreads {
            let (tx, rx) = unbounded::<Message>();
            senders.push(tx);
            let handle = std::thread::Builder::new()
                .name(format!("pl-worker-{tid}"))
                .spawn(move || {
                    while let Ok(msg) = rx.recv() {
                        match msg {
                            Message::Shutdown => break,
                            Message::Run(region) => run_region_member(region, tid),
                        }
                    }
                })
                .expect("failed to spawn pool worker");
            handles.push(handle);
        }
        ThreadPool { senders, handles, nthreads, dispatch: Mutex::new(()) }
    }

    /// Team size.
    #[inline(always)]
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// Executes `f` once on every team thread (a parallel region) and waits
    /// for all of them. Panics raised inside any team thread are re-raised
    /// here after the region completes.
    ///
    /// Called from inside another region, this runs `f` serially with a
    /// single-thread context instead (nesting disabled).
    pub fn parallel<F>(&self, f: F)
    where
        F: Fn(&WorkerCtx) + Send + Sync,
    {
        if IN_PARALLEL.with(|c| c.get()) {
            let ctx = WorkerCtx { tid: 0, nthreads: 1, barrier: Arc::new(Barrier::new(1)) };
            f(&ctx);
            return;
        }

        // Covers dispatch-lock wait + broadcast + the whole team's work;
        // nested (serialized) calls above are inside the caller's spans
        // already and record nothing extra.
        let _region_span = pl_trace::span("pool.region", [self.nthreads as u64, 0, 0]);
        let _guard = self.dispatch.lock();

        let barrier = Arc::new(Barrier::new(self.nthreads));
        let remaining = Arc::new(AtomicUsize::new(self.nthreads));
        let panic_slot: Arc<Mutex<Option<Box<dyn Any + Send>>>> = Arc::new(Mutex::new(None));

        // Lifetime erasure by promise-of-join (the classic scoped-pool
        // trick, same as rayon's `Scope`): every team member drops its clone
        // of the job Arc *before* decrementing `remaining`, and the caller
        // only returns once `remaining == 0`. Therefore no reference to `f`
        // (nor the closure value embedding it) outlives this call frame.
        let f_ref: &(dyn Fn(&WorkerCtx) + Send + Sync) = &f;
        // SAFETY: see the join argument above.
        let f_static: &'static (dyn Fn(&WorkerCtx) + Send + Sync) =
            unsafe { std::mem::transmute(f_ref) };
        let job: Arc<Job> = Arc::new(move |ctx: &WorkerCtx| f_static(ctx));

        for (i, tx) in self.senders.iter().enumerate() {
            let region = Region {
                job: Arc::clone(&job),
                barrier: Arc::clone(&barrier),
                remaining: Arc::clone(&remaining),
                caller: std::thread::current(),
                panic: Arc::clone(&panic_slot),
                nthreads: self.nthreads,
            };
            tx.send(Message::Run(region)).unwrap_or_else(|_| panic!("pool worker {} died", i + 1));
        }

        // The caller is team member 0.
        let region0 = Region {
            job,
            barrier,
            remaining: Arc::clone(&remaining),
            caller: std::thread::current(),
            panic: Arc::clone(&panic_slot),
            nthreads: self.nthreads,
        };
        run_region_member(region0, 0);

        // Wait for the rest of the team.
        while remaining.load(Ordering::Acquire) != 0 {
            std::thread::park();
        }

        let captured = panic_slot.lock().take();
        if let Some(p) = captured {
            resume_unwind(p);
        }
    }

    /// Convenience: statically distributes `0..total` over the team and
    /// calls `f(i)` for every index.
    pub fn parallel_for<F>(&self, total: usize, f: F)
    where
        F: Fn(usize) + Send + Sync,
    {
        self.parallel(|ctx| {
            let r = crate::sched::block_partition(total, ctx.nthreads(), ctx.tid());
            for i in r {
                f(i);
            }
        });
    }

    /// Drains `queue` inside a *single* parallel region: every team thread
    /// repeatedly claims a chunk and calls `f(i)` for each index in it.
    ///
    /// This is the region-reuse hook for coarse work items (e.g. a batch of
    /// decode steps): instead of paying one region broadcast per item, the
    /// whole batch amortizes a single broadcast and the items load-balance
    /// over the team via the dynamic schedule — the same `schedule(dynamic)`
    /// PAR-MODE the paper uses for heterogeneous work (§V-A4). The queue is
    /// *not* reset here; pass a fresh or explicitly [`DynamicQueue::reset`]
    /// queue.
    pub fn parallel_drain<F>(&self, queue: &crate::sched::DynamicQueue, f: F)
    where
        F: Fn(usize) + Send + Sync,
    {
        self.parallel(|_ctx| {
            while let Some(r) = queue.next() {
                for i in r {
                    f(i);
                }
            }
        });
    }

    /// Dynamically distributes the task indices `0..tasks` over the team
    /// inside a *single* parallel region: [`ThreadPool::parallel_drain`]
    /// over a queue with chunk 1, without the caller having to build the
    /// [`DynamicQueue`] itself. This is the right shape for a small number
    /// of coarse, heterogeneous work items (a batch of decode sessions, the
    /// per-session attention stage of a fused step): one region broadcast
    /// for the whole batch, tasks load-balancing over the team.
    pub fn parallel_tasks<F>(&self, tasks: usize, f: F)
    where
        F: Fn(usize) + Send + Sync,
    {
        if tasks == 0 {
            return;
        }
        let queue = crate::sched::DynamicQueue::new(tasks, 1);
        self.parallel_drain(&queue, f);
    }

    /// Whether the calling thread is currently inside a parallel region of
    /// *any* pool (nested regions serialize; see [`ThreadPool::parallel`]).
    /// Schedulers layered above the pool (e.g. a serving batcher) use this
    /// to decide between dispatching a region and running work inline.
    pub fn in_parallel_region() -> bool {
        IN_PARALLEL.with(|c| c.get())
    }
}

fn run_region_member(region: Region, tid: usize) {
    let Region { job, barrier, remaining, caller, panic, nthreads } = region;
    let ctx = WorkerCtx { tid, nthreads, barrier };
    // One span per team member per region: the occupancy view — on a
    // trace timeline, gaps between a lane's `pool.worker` spans are
    // time that thread sat idle while the region's stragglers finished.
    let _member_span = pl_trace::span("pool.worker", [tid as u64, nthreads as u64, 0]);
    IN_PARALLEL.with(|c| c.set(true));
    let result = catch_unwind(AssertUnwindSafe(|| (job)(&ctx)));
    IN_PARALLEL.with(|c| c.set(false));
    // Drop this member's clone of the erased job *before* signaling: the
    // caller may deallocate the captured environment right after the last
    // decrement (see the safety argument in `parallel`).
    drop(job);
    if let Err(p) = result {
        let mut slot = panic.lock();
        if slot.is_none() {
            *slot = Some(p);
        }
    }
    // Release ordering publishes the job's effects to the caller.
    if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        caller.unpark();
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(Message::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Default team size: `PL_NUM_THREADS` env var, else available parallelism.
pub fn default_threads() -> usize {
    std::env::var("PL_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// Process-wide shared pool, sized by [`default_threads`].
pub fn global_pool() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| ThreadPool::new(default_threads()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn all_threads_run_once() {
        let pool = ThreadPool::new(4);
        let count = AtomicUsize::new(0);
        let seen = Mutex::new(Vec::new());
        pool.parallel(|ctx| {
            count.fetch_add(1, Ordering::Relaxed);
            seen.lock().push(ctx.tid());
            assert_eq!(ctx.nthreads(), 4);
        });
        assert_eq!(count.load(Ordering::Relaxed), 4);
        let mut tids = seen.into_inner();
        tids.sort_unstable();
        assert_eq!(tids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn region_can_borrow_stack_locals() {
        let pool = ThreadPool::new(3);
        let data = [1usize, 2, 3];
        let total = AtomicUsize::new(0);
        pool.parallel(|ctx| {
            total.fetch_add(data[ctx.tid()], Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn barrier_synchronizes_team() {
        let pool = ThreadPool::new(4);
        let phase1 = AtomicUsize::new(0);
        let violations = AtomicUsize::new(0);
        pool.parallel(|ctx| {
            phase1.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            // After the barrier every thread must observe all 4 increments.
            if phase1.load(Ordering::SeqCst) != 4 {
                violations.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(violations.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn nested_parallel_serializes() {
        let pool = ThreadPool::new(2);
        let inner_counts = Mutex::new(Vec::new());
        pool.parallel(|_outer| {
            pool.parallel(|inner| {
                inner_counts.lock().push((inner.tid(), inner.nthreads()));
            });
        });
        let counts = inner_counts.into_inner();
        // Each of the 2 outer threads ran the inner region serially.
        assert_eq!(counts.len(), 2);
        assert!(counts.iter().all(|&(tid, n)| tid == 0 && n == 1));
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let pool = ThreadPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.parallel(|ctx| {
                if ctx.tid() == 2 {
                    panic!("injected failure");
                }
            });
        }));
        assert!(result.is_err());
        // Pool survives the panic and is reusable.
        let count = AtomicUsize::new(0);
        pool.parallel(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn parallel_for_covers_all_indices_once() {
        let pool = ThreadPool::new(3);
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(100, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn single_thread_pool_works() {
        let pool = ThreadPool::new(1);
        let count = AtomicUsize::new(0);
        pool.parallel(|ctx| {
            assert_eq!(ctx.nthreads(), 1);
            ctx.barrier();
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn parallel_drain_covers_queue_exactly_once() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicUsize> = (0..500).map(|_| AtomicUsize::new(0)).collect();
        let q = crate::sched::DynamicQueue::new(500, 3);
        pool.parallel_drain(&q, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert!(q.next().is_none());
    }

    #[test]
    fn parallel_tasks_covers_indices_once() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicUsize> = (0..37).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_tasks(37, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        // Zero tasks is a no-op, not a broadcast.
        pool.parallel_tasks(0, |_| panic!("no tasks to run"));
    }

    #[test]
    fn in_parallel_region_flag_tracks_nesting() {
        let pool = ThreadPool::new(2);
        assert!(!ThreadPool::in_parallel_region());
        let seen = AtomicUsize::new(0);
        pool.parallel(|_| {
            if ThreadPool::in_parallel_region() {
                seen.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(seen.load(Ordering::Relaxed), 2);
        assert!(!ThreadPool::in_parallel_region());
    }

    #[test]
    fn many_sequential_regions_are_stable() {
        let pool = ThreadPool::new(4);
        for round in 0..200 {
            let count = AtomicUsize::new(0);
            pool.parallel(|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(count.load(Ordering::Relaxed), 4, "round {round}");
        }
    }
}
