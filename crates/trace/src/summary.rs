//! `TraceSummary` — the aggregated exporter: per-key duration
//! histograms folded from a raw event snapshot.
//!
//! The key is `(name, args)`, so a span like `gemm.execute` with
//! `args = [m, n, k]` aggregates **per shape** — this is the measured
//! per-shape timing table the autotuning roadmap item consumes.
//! Summaries are mergeable (identity + commutativity, like
//! `StatsSnapshot::merge` in `pl_serve`): durations live in log2
//! nanosecond buckets, so merged quantiles recompute from summed
//! buckets instead of averaging per-summary quantiles.

use crate::ring::{Event, EventKind};
use std::collections::BTreeMap;

/// An open span frame on a lane's pairing stack: `(name, args, begin ts)`.
type OpenFrame<'a> = (&'a str, [u64; 3], u64);

/// Number of power-of-two duration buckets (bucket i covers
/// `[2^(i-1), 2^i)` nanoseconds; bucket 0 is `< 1 ns`; 2^47 ns ≈ 39 h).
pub const DURATION_BUCKETS: usize = 48;

/// Quantile estimate from raw log2 bucket counts: the upper edge of the
/// bucket containing rank `ceil(q * n)` — the shared fold in
/// [`pl_metrics::quantile_from_buckets`], over nanoseconds here.
pub fn quantile_from_buckets_ns(buckets: &[u64], q: f64) -> u64 {
    pl_metrics::quantile_from_buckets(buckets, q)
}

fn bucket_of_ns(ns: u64) -> usize {
    pl_metrics::bucket_of(ns, DURATION_BUCKETS)
}

/// Duration statistics for one `(name, args)` key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurationStat {
    /// Completed span count.
    pub count: u64,
    /// Sum of span durations (ns).
    pub total_ns: u64,
    /// Shortest span (ns); `u64::MAX` only in the empty stat.
    pub min_ns: u64,
    /// Longest span (ns).
    pub max_ns: u64,
    /// Log2 duration buckets (bucket i covers `[2^(i-1), 2^i)` ns).
    pub buckets: Vec<u64>,
}

impl Default for DurationStat {
    fn default() -> Self {
        DurationStat {
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            buckets: vec![0; DURATION_BUCKETS],
        }
    }
}

impl DurationStat {
    fn record(&mut self, dur_ns: u64) {
        self.count += 1;
        self.total_ns += dur_ns;
        self.min_ns = self.min_ns.min(dur_ns);
        self.max_ns = self.max_ns.max(dur_ns);
        self.buckets[bucket_of_ns(dur_ns)] += 1;
    }

    fn merge(&mut self, other: &DurationStat) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        pl_metrics::merge_buckets(&mut self.buckets, &other.buckets);
    }

    /// Mean duration in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.total_ns as f64 / self.count as f64
    }

    /// Upper-edge estimate of quantile `q` in nanoseconds.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        quantile_from_buckets_ns(&self.buckets, q)
    }
}

/// Aggregated per-key duration histograms from a trace snapshot.
///
/// Build with [`TraceSummary::from_events`], combine across snapshots
/// (or router shards) with [`TraceSummary::merge`], render with
/// [`TraceSummary::to_json`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// `(name, args) -> stats`, sorted by key.
    pub entries: BTreeMap<(String, [u64; 3]), DurationStat>,
    /// `End` events whose `Begin` was lost to ring wraparound (their
    /// duration is unknown, so they are counted here, not aggregated).
    pub unmatched: u64,
}

impl TraceSummary {
    /// The empty summary — the identity element of [`TraceSummary::merge`].
    pub fn empty() -> TraceSummary {
        TraceSummary::default()
    }

    /// Pairs `Begin`/`End` edges per lane (spans are strictly nested on
    /// their recording thread, so a per-lane stack matches them) and
    /// folds `Complete` events directly.
    pub fn from_events(events: &[Event]) -> TraceSummary {
        let mut s = TraceSummary::empty();
        // Per-lane stacks of open (name, args, ts) frames. Events within
        // a lane arrive oldest-first from the ring snapshot.
        let mut open: BTreeMap<u32, Vec<OpenFrame>> = BTreeMap::new();
        let mut by_lane: BTreeMap<u32, Vec<&Event>> = BTreeMap::new();
        for e in events {
            by_lane.entry(e.lane).or_default().push(e);
        }
        for (lane, evs) in by_lane {
            let stack = open.entry(lane).or_default();
            for e in evs {
                match e.kind {
                    EventKind::Begin => stack.push((e.name, e.args, e.ts_ns)),
                    EventKind::End => {
                        // Wraparound can eat a span's Begin; an End that
                        // matches nothing open is counted, not paired.
                        match stack.iter().rposition(|&(n, a, _)| n == e.name && a == e.args) {
                            Some(i) => {
                                let (name, args, t0) = stack.remove(i);
                                s.record(name, args, e.ts_ns.saturating_sub(t0));
                            }
                            None => s.unmatched += 1,
                        }
                    }
                    EventKind::Instant => s.record(e.name, e.args, 0),
                    EventKind::Complete => s.record(e.name, e.args, e.dur_ns),
                }
            }
        }
        s
    }

    fn record(&mut self, name: &str, args: [u64; 3], dur_ns: u64) {
        self.entries.entry((name.to_string(), args)).or_default().record(dur_ns);
    }

    /// Folds `other` into `self`: stats merge per key; quantiles stay
    /// derivable from the summed buckets.
    pub fn merge(&mut self, other: &TraceSummary) {
        for (k, stat) in &other.entries {
            self.entries.entry(k.clone()).or_default().merge(stat);
        }
        self.unmatched += other.unmatched;
    }

    /// Total duration (ns) across all keys whose name matches `name`,
    /// regardless of args — "how much wall time went to `gemm.execute`".
    pub fn total_ns_for(&self, name: &str) -> u64 {
        self.entries.iter().filter(|((n, _), _)| n == name).map(|(_, s)| s.total_ns).sum()
    }

    /// Completed span count across all keys whose name matches `name`.
    pub fn count_for(&self, name: &str) -> u64 {
        self.entries.iter().filter(|((n, _), _)| n == name).map(|(_, s)| s.count).sum()
    }

    /// Hand-rolled JSON rendering (no serialization crates in this
    /// environment), shaped like `StatsSnapshot::to_json`: one object per
    /// key with count/total/min/max/p50/p99 and the raw buckets so merged
    /// summaries stay reconstructible.
    pub fn to_json(&self) -> String {
        let entries: Vec<String> = self
            .entries
            .iter()
            .map(|((name, args), s)| {
                let buckets: Vec<String> = s.buckets.iter().map(u64::to_string).collect();
                format!(
                    concat!(
                        "{{\"name\":\"{}\",\"args\":[{},{},{}],\"count\":{},",
                        "\"total_ns\":{},\"min_ns\":{},\"max_ns\":{},\"mean_ns\":{:.1},",
                        "\"p50_ns\":{},\"p99_ns\":{},\"buckets\":[{}]}}"
                    ),
                    name,
                    args[0],
                    args[1],
                    args[2],
                    s.count,
                    s.total_ns,
                    if s.count == 0 { 0 } else { s.min_ns },
                    s.max_ns,
                    s.mean_ns(),
                    s.quantile_ns(0.50),
                    s.quantile_ns(0.99),
                    buckets.join(","),
                )
            })
            .collect();
        format!("{{\"unmatched\":{},\"entries\":[{}]}}", self.unmatched, entries.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(
        name: &'static str,
        kind: EventKind,
        lane: u32,
        ts: u64,
        dur: u64,
        args: [u64; 3],
    ) -> Event {
        Event { name, kind, lane, ts_ns: ts, dur_ns: dur, args }
    }

    #[test]
    fn pairs_nested_spans_per_lane() {
        let events = vec![
            ev("outer", EventKind::Begin, 0, 100, 0, [0; 3]),
            ev("inner", EventKind::Begin, 0, 200, 0, [7, 0, 0]),
            ev("inner", EventKind::End, 0, 260, 0, [7, 0, 0]),
            ev("outer", EventKind::End, 0, 400, 0, [0; 3]),
            // Same names on another lane must not cross-pair.
            ev("inner", EventKind::Begin, 1, 1000, 0, [7, 0, 0]),
            ev("inner", EventKind::End, 1, 1100, 0, [7, 0, 0]),
        ];
        let s = TraceSummary::from_events(&events);
        assert_eq!(s.unmatched, 0);
        let inner = &s.entries[&("inner".to_string(), [7, 0, 0])];
        assert_eq!(inner.count, 2);
        assert_eq!(inner.total_ns, 60 + 100);
        assert_eq!(inner.min_ns, 60);
        assert_eq!(inner.max_ns, 100);
        let outer = &s.entries[&("outer".to_string(), [0; 3])];
        assert_eq!(outer.count, 1);
        assert_eq!(outer.total_ns, 300);
    }

    #[test]
    fn args_split_keys_and_complete_events_fold_directly() {
        let events = vec![
            ev("gemm.execute", EventKind::Complete, 0, 0, 500, [256, 1, 256]),
            ev("gemm.execute", EventKind::Complete, 0, 600, 700, [256, 8, 256]),
            ev("gemm.execute", EventKind::Complete, 2, 900, 900, [256, 8, 256]),
        ];
        let s = TraceSummary::from_events(&events);
        assert_eq!(s.entries.len(), 2, "one entry per (m, n, k)");
        assert_eq!(s.entries[&("gemm.execute".to_string(), [256, 1, 256])].count, 1);
        let b8 = &s.entries[&("gemm.execute".to_string(), [256, 8, 256])];
        assert_eq!(b8.count, 2);
        assert_eq!(b8.total_ns, 1600);
        assert_eq!(s.total_ns_for("gemm.execute"), 2100);
        assert_eq!(s.count_for("gemm.execute"), 3);
    }

    #[test]
    fn orphan_end_counts_as_unmatched() {
        let events = vec![
            ev("lost", EventKind::End, 0, 50, 0, [0; 3]), // Begin wrapped away
            ev("ok", EventKind::Begin, 0, 60, 0, [0; 3]),
            ev("ok", EventKind::End, 0, 70, 0, [0; 3]),
        ];
        let s = TraceSummary::from_events(&events);
        assert_eq!(s.unmatched, 1);
        assert_eq!(s.entries[&("ok".to_string(), [0; 3])].count, 1);
    }

    #[test]
    fn merge_identity_and_commutativity() {
        // Mirrors the StatsSnapshot::merge tests: empty is the identity,
        // and a ⊕ b == b ⊕ a on every field.
        let a = TraceSummary::from_events(&[
            ev("x", EventKind::Complete, 0, 0, 100, [1, 0, 0]),
            ev("x", EventKind::Complete, 0, 0, 300, [1, 0, 0]),
            ev("y", EventKind::End, 0, 10, 0, [0; 3]), // unmatched
        ]);
        let b = TraceSummary::from_events(&[
            ev("x", EventKind::Complete, 1, 0, 900, [1, 0, 0]),
            ev("z", EventKind::Complete, 1, 0, 50, [0; 3]),
        ]);

        let mut left = TraceSummary::empty();
        left.merge(&a);
        assert_eq!(left, a, "empty ⊕ a == a");
        let mut right = a.clone();
        right.merge(&TraceSummary::empty());
        assert_eq!(right, a, "a ⊕ empty == a");

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must commute");
        let x = &ab.entries[&("x".to_string(), [1, 0, 0])];
        assert_eq!(x.count, 3);
        assert_eq!(x.total_ns, 1300);
        assert_eq!(x.min_ns, 100);
        assert_eq!(x.max_ns, 900);
        assert_eq!(ab.unmatched, 1);
        // Quantiles recompute from summed buckets: p100 sees b's 900 ns
        // observation even though a alone topped out at 300 ns.
        assert_eq!(x.quantile_ns(1.0), 1024);
    }

    #[test]
    fn summary_renders_json() {
        let s = TraceSummary::from_events(&[
            ev("gemm.execute", EventKind::Complete, 0, 0, 500, [256, 8, 256]),
            ev("batch.execute", EventKind::Begin, 0, 0, 0, [8, 0, 0]),
            ev("batch.execute", EventKind::End, 0, 2000, 0, [8, 0, 0]),
        ]);
        let json = s.to_json();
        for needle in [
            "\"unmatched\":0",
            "\"name\":\"gemm.execute\"",
            "\"args\":[256,8,256]",
            "\"total_ns\":500",
            "\"name\":\"batch.execute\"",
            "\"total_ns\":2000",
            "\"buckets\":[",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
