//! Chrome `trace_event` JSON exporter: renders an event snapshot into
//! the format `chrome://tracing` and Perfetto load directly.
//!
//! Mapping: each recorder lane becomes a `tid` row under `pid` 1;
//! `Begin`/`End` edges become `ph: "B"`/`"E"`, `Complete` becomes
//! `ph: "X"` with `dur`, `Instant` becomes `ph: "i"` (thread-scoped).
//! Timestamps convert from the recorder's nanosecond timebase to the
//! format's microseconds with three decimals, so nanosecond resolution
//! survives the unit change.

use crate::ring::{Event, EventKind};

fn ts_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn escape(name: &str) -> String {
    // Span names are static identifiers by convention, but the format
    // must stay valid JSON even if one sneaks in a quote or backslash.
    name.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render_one(e: &Event, out: &mut String) {
    let name = escape(e.name);
    let common =
        format!("\"name\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{}", name, e.lane, ts_us(e.ts_ns));
    let args =
        format!("\"args\":{{\"a0\":{},\"a1\":{},\"a2\":{}}}", e.args[0], e.args[1], e.args[2]);
    match e.kind {
        EventKind::Begin => {
            out.push_str(&format!("{{{common},\"ph\":\"B\",{args}}}"));
        }
        EventKind::End => {
            out.push_str(&format!("{{{common},\"ph\":\"E\"}}"));
        }
        EventKind::Instant => {
            out.push_str(&format!("{{{common},\"ph\":\"i\",\"s\":\"t\",{args}}}"));
        }
        EventKind::Complete => {
            out.push_str(&format!("{{{common},\"ph\":\"X\",\"dur\":{},{args}}}", ts_us(e.dur_ns)));
        }
    }
}

/// Renders `events` as a Chrome `trace_event` JSON document
/// (`{"traceEvents": [...]}`). Pair with [`crate::snapshot`]:
///
/// ```
/// pl_trace::enable();
/// {
///     let _span = pl_trace::span("work", [0; 3]);
/// }
/// let json = pl_trace::chrome_trace_json(&pl_trace::snapshot());
/// assert!(json.contains("\"ph\":\"B\""));
/// ```
pub fn chrome_trace_json(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        render_one(e, &mut out);
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(
        name: &'static str,
        kind: EventKind,
        lane: u32,
        ts: u64,
        dur: u64,
        args: [u64; 3],
    ) -> Event {
        Event { name, kind, lane, ts_ns: ts, dur_ns: dur, args }
    }

    #[test]
    fn renders_all_phases() {
        let events = vec![
            ev("region", EventKind::Begin, 0, 1500, 0, [4, 0, 0]),
            ev("region", EventKind::End, 0, 2500, 0, [4, 0, 0]),
            ev("queue_wait", EventKind::Complete, 1, 100, 1400, [3, 0, 0]),
            ev("mark", EventKind::Instant, 2, 42, 0, [0; 3]),
        ];
        let json = chrome_trace_json(&events);
        assert!(json.starts_with("{\"displayTimeUnit\""));
        for needle in [
            "\"traceEvents\":[",
            "\"name\":\"region\",\"pid\":1,\"tid\":0,\"ts\":1.500,\"ph\":\"B\"",
            "\"ts\":2.500,\"ph\":\"E\"",
            "\"ph\":\"X\",\"dur\":1.400",
            "\"ph\":\"i\",\"s\":\"t\"",
            "\"args\":{\"a0\":4,\"a1\":0,\"a2\":0}",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn escapes_hostile_names() {
        let json = chrome_trace_json(&[ev("a\"b\\c", EventKind::Instant, 0, 0, 0, [0; 3])]);
        assert!(json.contains("a\\\"b\\\\c"));
    }

    #[test]
    fn empty_snapshot_is_valid_document() {
        assert_eq!(chrome_trace_json(&[]), "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
    }
}
