//! The per-thread event ring: a fixed-capacity, single-writer,
//! multi-reader seqlock buffer.
//!
//! Each slot is a bank of plain `AtomicU64` words guarded by a per-slot
//! sequence number. The owning thread is the only writer; snapshots from
//! any other thread read the slots *while writes continue* and use the
//! sequence protocol to discard events that were mid-overwrite:
//!
//! * writer, for ring position `p` (slot `p & mask`): store
//!   `seq = 2p + 1` (odd: write in progress), fence, store the event
//!   words, store `seq = 2p + 2` (even: position `p` committed, Release),
//!   then publish `head = p + 1` (Release).
//! * reader, for position `p`: load `seq`; accept the slot only if it
//!   reads exactly `2p + 2` both before and after copying the words
//!   (an odd value or a different generation means the writer lapped us).
//!
//! Torn reads are therefore *detected and discarded*, never surfaced —
//! every word is an atomic, so the race is defined behavior. The ring
//! never blocks the writer: when full it overwrites the oldest position,
//! and the exact count of overwritten (dropped) events is
//! `head - capacity` by construction.

use std::sync::atomic::{fence, AtomicU64, Ordering};

/// What a recorded event marks. Encoded in one word in the slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Span opening edge (Chrome `ph: "B"`).
    Begin,
    /// Span closing edge (Chrome `ph: "E"`).
    End,
    /// A point event with no duration (Chrome `ph: "i"`).
    Instant,
    /// A complete span recorded after the fact with an explicit
    /// duration (Chrome `ph: "X"`) — used for latencies whose start
    /// happened on another thread (e.g. queue wait).
    Complete,
}

impl EventKind {
    fn encode(self) -> u64 {
        match self {
            EventKind::Begin => 0,
            EventKind::End => 1,
            EventKind::Instant => 2,
            EventKind::Complete => 3,
        }
    }

    fn decode(w: u64) -> Option<EventKind> {
        match w {
            0 => Some(EventKind::Begin),
            1 => Some(EventKind::End),
            2 => Some(EventKind::Instant),
            3 => Some(EventKind::Complete),
            _ => None,
        }
    }
}

/// One decoded trace event, as returned by snapshots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Static category name (`"gemm.execute"`, `"batch.execute"`, ...).
    pub name: &'static str,
    /// Edge/point kind.
    pub kind: EventKind,
    /// Recorder lane (stable per-thread id) the event was written on.
    pub lane: u32,
    /// Nanoseconds since the process trace epoch ([`crate::now_ns`]).
    pub ts_ns: u64,
    /// Duration for [`EventKind::Complete`]; 0 otherwise.
    pub dur_ns: u64,
    /// Up to three numeric arguments (e.g. a GEMM's `(m, n, k)`).
    pub args: [u64; 3],
}

/// Slot word layout: seq, name ptr, name len, kind, ts, dur, a0, a1, a2.
const WORDS: usize = 9;

struct Slot {
    words: [AtomicU64; WORDS],
}

impl Slot {
    fn new() -> Slot {
        Slot { words: std::array::from_fn(|_| AtomicU64::new(0)) }
    }
}

/// A single-writer event ring. One per recording thread; readers
/// snapshot concurrently via the seqlock protocol described in the
/// module docs.
pub struct Ring {
    slots: Box<[Slot]>,
    mask: u64,
    /// Next ring position to write; `min(head, capacity)` events are
    /// resident, `head - capacity` (if positive) were overwritten.
    head: AtomicU64,
    lane: u32,
}

impl Ring {
    /// `capacity` is rounded up to a power of two (minimum 2).
    pub fn with_capacity(capacity: usize, lane: u32) -> Ring {
        let cap = capacity.next_power_of_two().max(2);
        Ring {
            slots: (0..cap).map(|_| Slot::new()).collect(),
            mask: (cap - 1) as u64,
            head: AtomicU64::new(0),
            lane,
        }
    }

    /// Number of event slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The recorder lane this ring writes as.
    pub fn lane(&self) -> u32 {
        self.lane
    }

    /// Total events ever recorded into this ring.
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Exact count of events overwritten by wraparound (oldest first).
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.capacity() as u64)
    }

    /// Record one event. Must only be called by the ring's owning
    /// thread (single-writer invariant); never blocks, never allocates.
    pub fn record(
        &self,
        kind: EventKind,
        name: &'static str,
        ts_ns: u64,
        dur_ns: u64,
        args: [u64; 3],
    ) {
        let p = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(p & self.mask) as usize];
        // Odd seq: readers of this generation (and of the lapped one)
        // reject the slot while the words below are in flux.
        slot.words[0].store(2 * p + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        slot.words[1].store(name.as_ptr() as u64, Ordering::Relaxed);
        slot.words[2].store(name.len() as u64, Ordering::Relaxed);
        slot.words[3].store(kind.encode(), Ordering::Relaxed);
        slot.words[4].store(ts_ns, Ordering::Relaxed);
        slot.words[5].store(dur_ns, Ordering::Relaxed);
        slot.words[6].store(args[0], Ordering::Relaxed);
        slot.words[7].store(args[1], Ordering::Relaxed);
        slot.words[8].store(args[2], Ordering::Relaxed);
        // Even seq commits position p; Release orders the words above
        // before it for any Acquire reader.
        slot.words[0].store(2 * p + 2, Ordering::Release);
        self.head.store(p + 1, Ordering::Release);
    }

    /// Copy out the resident events, oldest first, skipping any slot the
    /// writer lapped or was rewriting mid-read. Safe to call from any
    /// thread while the owner keeps recording.
    pub fn snapshot(&self) -> Vec<Event> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.capacity() as u64;
        let first = head.saturating_sub(cap);
        let mut out = Vec::with_capacity((head - first) as usize);
        for p in first..head {
            let slot = &self.slots[(p & self.mask) as usize];
            let want = 2 * p + 2;
            if slot.words[0].load(Ordering::Acquire) != want {
                continue;
            }
            let w: [u64; WORDS] = std::array::from_fn(|i| slot.words[i].load(Ordering::Relaxed));
            fence(Ordering::Acquire);
            if slot.words[0].load(Ordering::Acquire) != want {
                continue; // overwritten while copying — discard
            }
            let Some(kind) = EventKind::decode(w[3]) else { continue };
            // The seq check proved the ptr/len pair is the consistent
            // snapshot of some `&'static str` stored by `record`, so the
            // reconstruction below reads bytes that live for the whole
            // program.
            let name: &'static str = unsafe {
                std::str::from_utf8_unchecked(std::slice::from_raw_parts(
                    w[1] as usize as *const u8,
                    w[2] as usize,
                ))
            };
            out.push(Event {
                name,
                kind,
                lane: self.lane,
                ts_ns: w[4],
                dur_ns: w[5],
                args: [w[6], w[7], w[8]],
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_snapshots_in_order() {
        let r = Ring::with_capacity(8, 3);
        for i in 0..5u64 {
            r.record(EventKind::Begin, "t", i * 10, 0, [i, 0, 0]);
        }
        let ev = r.snapshot();
        assert_eq!(ev.len(), 5);
        assert_eq!(r.dropped(), 0);
        for (i, e) in ev.iter().enumerate() {
            assert_eq!(e.name, "t");
            assert_eq!(e.lane, 3);
            assert_eq!(e.ts_ns, i as u64 * 10);
            assert_eq!(e.args[0], i as u64);
        }
    }

    #[test]
    fn wraparound_drops_oldest_with_exact_counter() {
        let r = Ring::with_capacity(8, 0);
        assert_eq!(r.capacity(), 8);
        for i in 0..13u64 {
            r.record(EventKind::Instant, "w", i, 0, [i, 0, 0]);
        }
        assert_eq!(r.recorded(), 13);
        assert_eq!(r.dropped(), 5, "13 recorded into 8 slots drops exactly 5");
        let ev = r.snapshot();
        assert_eq!(ev.len(), 8);
        // The survivors are the newest 8, oldest first.
        let args: Vec<u64> = ev.iter().map(|e| e.args[0]).collect();
        assert_eq!(args, (5..13).collect::<Vec<_>>());
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(Ring::with_capacity(5, 0).capacity(), 8);
        assert_eq!(Ring::with_capacity(0, 0).capacity(), 2);
        assert_eq!(Ring::with_capacity(16, 0).capacity(), 16);
    }

    #[test]
    fn snapshot_under_concurrent_writes_returns_only_consistent_events() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        let r = Arc::new(Ring::with_capacity(64, 1));
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let r = Arc::clone(&r);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // ts and args move in lockstep so a torn event that
                    // somehow slipped through would be detectable.
                    r.record(EventKind::Instant, "c", i, i.wrapping_mul(3), [i, 2 * i, 0]);
                    i += 1;
                }
                i
            })
        };
        let mut seen = 0usize;
        for _ in 0..200 {
            let ev = r.snapshot();
            seen += ev.len();
            let mut last = None;
            for e in &ev {
                assert_eq!(e.name, "c");
                assert_eq!(e.dur_ns, e.ts_ns.wrapping_mul(3), "torn event surfaced");
                assert_eq!(e.args, [e.ts_ns, 2 * e.ts_ns, 0]);
                if let Some(prev) = last {
                    assert!(e.ts_ns > prev, "snapshot order must be oldest-first");
                }
                last = Some(e.ts_ns);
            }
        }
        stop.store(true, Ordering::Relaxed);
        let written = writer.join().unwrap();
        assert!(written > 0);
        assert!(seen > 0, "snapshots under write must surface events");
        // Quiesced ring: everything resident is now readable.
        assert_eq!(r.snapshot().len(), r.capacity().min(written as usize));
    }
}
