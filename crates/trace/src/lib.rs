//! # pl-trace — flight-recorder tracing for the PARLOOPER/TPP stack
//!
//! Always-compiled, cheap-when-disabled tracing: every layer of the
//! stack (runtime thread pool, GEMM/SpMM plans, decode phases, serving
//! batch lifecycle) records fixed-size events into per-thread
//! lock-free ring buffers, and a process-wide recorder snapshots them
//! **without stopping traffic** — the flight-recorder model: recording
//! always overwrites the oldest events, never blocks the writer, and a
//! crash or a slow batch leaves the last N events per thread ready to
//! export.
//!
//! ## Event model
//!
//! An [`Event`] is nine words: a static category name (`&'static str`,
//! e.g. `"gemm.execute"`), an edge kind, the recorder lane (a stable
//! per-thread id), a monotonic timestamp in nanoseconds since the
//! process [`epoch`](now_ns), an optional duration, and up to three
//! `u64` arguments. The argument slots carry the *identity* of the
//! work — a GEMM span's `args` are its `(m, n, k)` shape, a batch
//! span's `args[0]` is the batch size — so aggregation can key on them.
//!
//! Four kinds ([`EventKind`]):
//!
//! * `Begin`/`End` — a span's edges, recorded by the RAII [`Span`]
//!   guard from [`span`]. Spans are strictly nested per thread (guard
//!   drop order), which is exactly what Chrome `B`/`E` events require.
//! * `Complete` — a span recorded after the fact with an explicit
//!   duration ([`complete`], [`complete_since`]); used when the start
//!   happened on another thread (queue wait: submit on a client
//!   thread, measured at collect on the batcher thread).
//! * `Instant` — a point marker ([`instant`]).
//!
//! ## Recording
//!
//! The global enable flag ([`enable`]/[`disable`]) gates everything:
//! with tracing off, [`span`] is **one relaxed atomic load and an
//! untaken branch** — no timestamp, no ring access, no allocation —
//! so instrumentation stays compiled into hot paths permanently. The
//! first event a thread records registers a [`ring::Ring`] for it with
//! the process recorder (lane ids are assigned in registration order);
//! rings outlive their threads, so late snapshots still see their
//! events. Ring capacity is [`DEFAULT_RING_EVENTS`] events per thread,
//! overridable *before* a thread's first event via
//! [`set_thread_capacity`] or `PL_TRACE_EVENTS`.
//!
//! ## Exporting
//!
//! [`snapshot`] copies every ring (seqlock-validated against
//! concurrent writes, see [`ring`]) into a time-sorted `Vec<Event>`.
//! Two exporters consume it:
//!
//! * [`chrome_trace_json`] — Chrome `trace_event` JSON, loadable in
//!   `chrome://tracing` or <https://ui.perfetto.dev>: one row per
//!   lane, spans nested as recorded.
//! * [`TraceSummary`] — per-`(name, args)` duration histograms (log2
//!   nanosecond buckets): the per-shape GEMM timing table. Summaries
//!   merge across snapshots and shards with correct quantiles, like
//!   `pl_serve`'s `StatsSnapshot`.
//!
//! ```
//! pl_trace::enable();
//! {
//!     let _g = pl_trace::span("gemm.execute", [256, 8, 256]);
//!     // ... kernel work ...
//! }
//! let events = pl_trace::snapshot();
//! let summary = pl_trace::TraceSummary::from_events(&events);
//! assert_eq!(summary.count_for("gemm.execute"), 1);
//! let _json = pl_trace::chrome_trace_json(&events);
//! ```

pub mod chrome;
pub mod ring;
pub mod summary;

pub use chrome::chrome_trace_json;
pub use ring::{Event, EventKind, Ring};
pub use summary::{quantile_from_buckets_ns, DurationStat, TraceSummary, DURATION_BUCKETS};

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default per-thread ring capacity in events (power of two). At ~72
/// bytes per slot this is ~4.7 MiB per *recording* thread — threads
/// that never trace allocate nothing.
pub const DEFAULT_RING_EVENTS: usize = 1 << 16;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Requested per-thread ring capacity; 0 means "unset, consult
/// `PL_TRACE_EVENTS` then [`DEFAULT_RING_EVENTS`]".
static THREAD_CAPACITY: AtomicUsize = AtomicUsize::new(0);

/// Registry of every thread's ring, in lane order. Locked only at
/// thread registration and snapshot — never on the record path.
static RECORDER: Mutex<Vec<Arc<Ring>>> = Mutex::new(Vec::new());

/// Lanes handed out so far (also the next lane id).
static NEXT_LANE: AtomicU64 = AtomicU64::new(0);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process trace epoch (first use of the
/// timebase). Monotonic; shared by every lane, so cross-thread event
/// order is meaningful.
#[inline]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Turns recording on. Cheap to leave on: the cost is one ring write
/// (~9 relaxed atomic stores) per event.
pub fn enable() {
    // Pin the epoch before the first event so early timestamps don't
    // race the OnceLock initialization from several threads.
    let _ = epoch();
    ENABLED.store(true, Ordering::Release);
}

/// Turns recording off. Spans already open still record their `End`
/// edge so traces stay balanced.
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Whether recording is on — the one branch instrumented hot paths pay
/// when tracing is disabled.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Sets the ring capacity (events, rounded up to a power of two) for
/// threads that register *after* this call. Threads that already
/// recorded keep their ring.
pub fn set_thread_capacity(events: usize) {
    THREAD_CAPACITY.store(events.max(2), Ordering::Relaxed);
}

fn ring_capacity() -> usize {
    let cap = THREAD_CAPACITY.load(Ordering::Relaxed);
    if cap != 0 {
        return cap;
    }
    std::env::var("PL_TRACE_EVENTS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&c| c >= 2)
        .unwrap_or(DEFAULT_RING_EVENTS)
}

thread_local! {
    static LOCAL_RING: std::cell::OnceCell<Arc<Ring>> = const { std::cell::OnceCell::new() };
}

fn register_thread() -> Arc<Ring> {
    let lane = NEXT_LANE.fetch_add(1, Ordering::Relaxed) as u32;
    let ring = Arc::new(Ring::with_capacity(ring_capacity(), lane));
    RECORDER.lock().expect("trace recorder poisoned").push(Arc::clone(&ring));
    ring
}

#[inline]
fn record(kind: EventKind, name: &'static str, ts_ns: u64, dur_ns: u64, args: [u64; 3]) {
    LOCAL_RING.with(|cell| {
        cell.get_or_init(register_thread).record(kind, name, ts_ns, dur_ns, args);
    });
}

/// RAII span guard: records `Begin` on creation (when tracing is
/// enabled) and the matching `End` on drop. Returned disarmed — a
/// no-op — when tracing is off.
#[must_use = "a span measures the scope it is bound to; dropping it immediately records nothing useful"]
pub struct Span {
    name: &'static str,
    args: [u64; 3],
    armed: bool,
}

impl Span {
    /// Whether this guard recorded a `Begin` (tracing was enabled).
    pub fn armed(&self) -> bool {
        self.armed
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.armed {
            record(EventKind::End, self.name, now_ns(), 0, self.args);
        }
    }
}

/// Opens a span: `Begin` now, `End` when the guard drops. With tracing
/// disabled this is one atomic load and an untaken branch.
#[inline]
pub fn span(name: &'static str, args: [u64; 3]) -> Span {
    if !enabled() {
        return Span { name, args, armed: false };
    }
    record(EventKind::Begin, name, now_ns(), 0, args);
    Span { name, args, armed: true }
}

/// Records a point event.
#[inline]
pub fn instant(name: &'static str, args: [u64; 3]) {
    if enabled() {
        record(EventKind::Instant, name, now_ns(), 0, args);
    }
}

/// Records a complete span `[ts_ns, ts_ns + dur_ns)` after the fact.
#[inline]
pub fn complete(name: &'static str, ts_ns: u64, dur_ns: u64, args: [u64; 3]) {
    if enabled() {
        record(EventKind::Complete, name, ts_ns, dur_ns, args);
    }
}

/// Records a complete span that started at `start` (an `Instant`
/// captured on any thread — e.g. a request's enqueue time) and ends
/// now. Translates the foreign `Instant` into the trace timebase.
#[inline]
pub fn complete_since(name: &'static str, start: Instant, args: [u64; 3]) {
    if enabled() {
        let dur_ns = start.elapsed().as_nanos() as u64;
        let end = now_ns();
        record(EventKind::Complete, name, end.saturating_sub(dur_ns), dur_ns, args);
    }
}

/// Copies every registered ring's resident events into one vector,
/// sorted by timestamp (stable, so per-lane order — and therefore
/// `Begin`/`End` nesting — survives ties). Runs concurrently with
/// recording; events mid-overwrite are skipped, never torn.
pub fn snapshot() -> Vec<Event> {
    let rings: Vec<Arc<Ring>> =
        RECORDER.lock().expect("trace recorder poisoned").iter().map(Arc::clone).collect();
    let mut events = Vec::new();
    for ring in rings {
        events.extend(ring.snapshot());
    }
    events.sort_by_key(|e| e.ts_ns);
    events
}

/// [`snapshot`] restricted to events at or after `ts_ns` — the cheap
/// way to scope a trace to "since I called [`now_ns`]" without
/// clearing rings under live writers.
pub fn snapshot_since(ts_ns: u64) -> Vec<Event> {
    let mut events = snapshot();
    events.retain(|e| e.ts_ns >= ts_ns);
    events
}

/// Registered recorder lanes (threads that have recorded ≥ 1 event).
pub fn lanes() -> usize {
    RECORDER.lock().expect("trace recorder poisoned").len()
}

/// Total events overwritten by ring wraparound, summed over lanes.
/// Exact: each ring's drop count is `recorded - capacity`.
pub fn total_dropped() -> u64 {
    RECORDER.lock().expect("trace recorder poisoned").iter().map(|r| r.dropped()).sum()
}

/// Total events ever recorded, summed over lanes.
pub fn total_recorded() -> u64 {
    RECORDER.lock().expect("trace recorder poisoned").iter().map(|r| r.recorded()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The enable flag and the recorder are process-global; tests that
    /// toggle or snapshot them serialize here (the test harness runs
    /// tests on concurrent threads).
    fn global_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = global_lock();
        disable();
        let before = total_recorded();
        {
            let s = span("lib.disabled", [1, 2, 3]);
            assert!(!s.armed());
        }
        instant("lib.disabled", [0; 3]);
        complete("lib.disabled", 0, 10, [0; 3]);
        complete_since("lib.disabled", Instant::now(), [0; 3]);
        assert_eq!(total_recorded(), before);
        assert!(snapshot().iter().all(|e| e.name != "lib.disabled"));
    }

    #[test]
    fn enabled_spans_round_trip_through_snapshot() {
        let _g = global_lock();
        enable();
        let t0 = now_ns();
        {
            let _outer = span("lib.outer", [9, 0, 0]);
            let _inner = span("lib.inner", [0; 3]);
        }
        instant("lib.mark", [5, 0, 0]);
        disable();
        let events = snapshot_since(t0);
        let mine: Vec<&Event> = events.iter().filter(|e| e.name.starts_with("lib.")).collect();
        assert_eq!(mine.len(), 5, "B/E x2 + instant: {mine:?}");
        // Same lane, nested order: outer-B, inner-B, inner-E, outer-E.
        let kinds: Vec<(&str, EventKind)> = mine.iter().map(|e| (e.name, e.kind)).collect();
        assert_eq!(
            kinds,
            vec![
                ("lib.outer", EventKind::Begin),
                ("lib.inner", EventKind::Begin),
                ("lib.inner", EventKind::End),
                ("lib.outer", EventKind::End),
                ("lib.mark", EventKind::Instant),
            ]
        );
        assert!(mine.iter().all(|e| e.lane == mine[0].lane));
        let summary = TraceSummary::from_events(&events);
        assert_eq!(summary.count_for("lib.outer"), 1);
        assert_eq!(summary.count_for("lib.inner"), 1);
    }

    #[test]
    fn complete_since_lands_in_the_trace_timebase() {
        let _g = global_lock();
        enable();
        let t0 = now_ns();
        let start = Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        complete_since("lib.wait", start, [0; 3]);
        disable();
        let events = snapshot_since(t0);
        let e = events.iter().find(|e| e.name == "lib.wait").expect("complete recorded");
        assert_eq!(e.kind, EventKind::Complete);
        assert!(e.dur_ns >= 2_000_000, "slept 2 ms, dur {}", e.dur_ns);
        // Start timestamp is on the shared timebase: at/after t0 and
        // consistent with ts + dur == "now-ish".
        assert!(e.ts_ns >= t0);
        assert!(e.ts_ns + e.dur_ns <= now_ns());
    }

    #[test]
    fn threads_get_distinct_lanes_and_snapshot_merges_them() {
        let _g = global_lock();
        enable();
        let t0 = now_ns();
        let handles: Vec<_> = (0..3)
            .map(|i| {
                std::thread::spawn(move || {
                    let _s = span("lib.worker", [i, 0, 0]);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        disable();
        let events = snapshot_since(t0);
        let lanes: std::collections::BTreeSet<u32> =
            events.iter().filter(|e| e.name == "lib.worker").map(|e| e.lane).collect();
        assert_eq!(lanes.len(), 3, "each thread records on its own lane");
        let summary = TraceSummary::from_events(&events);
        assert_eq!(summary.count_for("lib.worker"), 3);
        assert_eq!(summary.unmatched, 0);
    }
}
