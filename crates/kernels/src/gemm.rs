//! GEMM written with PARLOOPER and TPPs — a line-for-line reproduction of
//! paper Listing 1.
//!
//! Three logical loops (`a` = K-blocks, `b` = M-blocks, `c` = N-blocks)
//! iterate the blocked operands; the body zeroes the output block on the
//! first K-step (`zero_tpp`) and invokes the stride-based BRGEMM with
//! `brcount = k_step`, `stride_A = bm*bk`, `stride_B = bn*bk`.

use crate::shared::SharedSlice;
use crate::KernelError;
use parlooper::{LoopSpecs, SpecError, ThreadedLoop};
use pl_runtime::ThreadPool;
use pl_tensor::{BlockedMatrix, Element, InnerLayout};
use pl_tpp::brgemm::{Brgemm, BrgemmDesc, BrgemmI8, BrgemmI8Desc};
use std::sync::Arc;

pub use pl_tensor::blocked::InnerLayout as BInner;

/// Tuning knobs of the GEMM kernel: everything the auto-tuner may vary
/// (paper §II-D, decisions i-iv) with zero changes to the kernel code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GemmTuning {
    /// The `loop_spec_string`.
    pub spec: String,
    /// K-blocks reduced per BRGEMM invocation (loop `a` base step).
    pub k_step: usize,
    /// Blocking steps (in block units) for the K loop `a`.
    pub a_blocks: Vec<usize>,
    /// Blocking steps for the M loop `b`.
    pub b_blocks: Vec<usize>,
    /// Blocking steps for the N loop `c`.
    pub c_blocks: Vec<usize>,
}

impl GemmTuning {
    /// Plain spec with no extra blocking.
    pub fn simple(spec: &str) -> Self {
        GemmTuning {
            spec: spec.to_string(),
            k_step: 1,
            a_blocks: Vec::new(),
            b_blocks: Vec::new(),
            c_blocks: Vec::new(),
        }
    }

    /// The paper's default parallel instantiation: distribute the (M, N)
    /// block space, K innermost and fully folded into one BRGEMM call.
    pub fn default_parallel(kb: usize) -> Self {
        GemmTuning {
            spec: "BCa".to_string(),
            k_step: kb.max(1),
            a_blocks: Vec::new(),
            b_blocks: Vec::new(),
            c_blocks: Vec::new(),
        }
    }
}

/// Problem geometry: logical sizes and block sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmShape {
    /// Rows of `C` / `A`.
    pub m: usize,
    /// Columns of `C` / `B`.
    pub n: usize,
    /// Inner-product dimension.
    pub k: usize,
    /// M blocking.
    pub bm: usize,
    /// N blocking.
    pub bn: usize,
    /// K blocking.
    pub bk: usize,
}

impl GemmShape {
    /// Shape with square-ish default blocks of 32 (clamped to the dims).
    pub fn with_default_blocks(m: usize, n: usize, k: usize) -> Self {
        GemmShape {
            m,
            n,
            k,
            bm: Self::default_block(m),
            bn: Self::default_block(n),
            bk: Self::default_block(k),
        }
    }

    /// The block extent [`Self::with_default_blocks`] picks for one
    /// dimension: the largest of 64/48/32/16/8/4/2/1 dividing `d`. Public
    /// so pack-once planners can block a weight's M/K dims independently
    /// of the batch-dependent N dim and still land on the exact blocking
    /// the per-call bridge would have used.
    pub fn default_block(d: usize) -> usize {
        for cand in [64, 48, 32, 16, 8, 4, 2, 1] {
            if d.is_multiple_of(cand) {
                return cand;
            }
        }
        1
    }

    /// Number of M blocks.
    pub fn mb(&self) -> usize {
        self.m / self.bm
    }

    /// Number of N blocks.
    pub fn nb(&self) -> usize {
        self.n / self.bn
    }

    /// Number of K blocks.
    pub fn kb(&self) -> usize {
        self.k / self.bk
    }

    /// Floating-point operations of one GEMM.
    pub fn flops(&self) -> u64 {
        2 * self.m as u64 * self.n as u64 * self.k as u64
    }
}

/// The GEMM kernel handle (Listing 1 realized).
pub struct Gemm<TA: Element, TB: Element, TC: Element> {
    shape: GemmShape,
    tuning: GemmTuning,
    tl: ThreadedLoop,
    brgemm: Arc<Brgemm<TA, TB, TC>>,
    b_vnni: Option<usize>,
}

impl<TA: Element, TB: Element, TC: Element> Gemm<TA, TB, TC> {
    /// Builds the kernel for a flat (column-major-blocked) `B` operand.
    pub fn new(shape: GemmShape, tuning: GemmTuning) -> Result<Self, KernelError> {
        Self::build(shape, tuning, None)
    }

    /// Builds the kernel for a VNNI-packed `B` operand (low precision).
    pub fn new_vnni(shape: GemmShape, tuning: GemmTuning, v: usize) -> Result<Self, KernelError> {
        Self::build(shape, tuning, Some(v))
    }

    fn build(
        shape: GemmShape,
        tuning: GemmTuning,
        b_vnni: Option<usize>,
    ) -> Result<Self, KernelError> {
        for (dim, block, name) in
            [(shape.m, shape.bm, "M"), (shape.n, shape.bn, "N"), (shape.k, shape.bk, "K")]
        {
            if block == 0 || dim % block != 0 {
                return Err(KernelError::BadShape(format!(
                    "{name}={dim} not divisible by block {block}"
                )));
            }
        }
        let specs = vec![
            LoopSpecs::blocked(0, shape.kb(), tuning.k_step, tuning.a_blocks.clone()),
            LoopSpecs::blocked(0, shape.mb(), 1, tuning.b_blocks.clone()),
            LoopSpecs::blocked(0, shape.nb(), 1, tuning.c_blocks.clone()),
        ];
        let tl = ThreadedLoop::new(&specs, &tuning.spec).map_err(KernelError::Spec)?;
        let desc = match b_vnni {
            None => BrgemmDesc::blocked(shape.bm, shape.bn, shape.bk),
            Some(v) => BrgemmDesc::blocked_vnni(shape.bm, shape.bn, shape.bk, v),
        };
        let brgemm = Brgemm::new(desc);
        Ok(Gemm { shape, tuning, tl, brgemm, b_vnni })
    }

    /// Problem geometry.
    pub fn shape(&self) -> &GemmShape {
        &self.shape
    }

    /// Active tuning.
    pub fn tuning(&self) -> &GemmTuning {
        &self.tuning
    }

    /// The underlying loop nest (e.g. for schedule simulation).
    pub fn threaded_loop(&self) -> &ThreadedLoop {
        &self.tl
    }

    /// `C = A x B` on the given pool.
    pub fn execute(
        &self,
        a: &BlockedMatrix<TA>,
        b: &BlockedMatrix<TB>,
        c: &mut BlockedMatrix<TC>,
        pool: &ThreadPool,
    ) -> Result<(), KernelError> {
        self.check_operands(a, b, c)?;
        let sh = self.shape;
        let (bm, bn, bk) = (sh.bm, sh.bn, sh.bk);
        let (mb, kb) = (sh.mb(), sh.kb());
        let k_step = self.tuning.k_step;
        let stride_a = bm * bk;
        let stride_b = bn * bk;
        let block_c = bm * bn;
        let c_shared = SharedSlice::new(c.data_mut());
        let a_data = a.data();
        let b_data = b.data();
        let brgemm = &self.brgemm;

        self.tl
            .try_run_on(pool, |ind| {
                let (ik, im, i_n) = (ind[0], ind[1], ind[2]);
                let brcount = k_step.min(kb - ik);
                // C[Nb][Mb] grid: block (im, in) at (in*Mb + im).
                let c_off = (i_n * mb + im) * block_c;
                // SAFETY: for any legal spec (paper contract) concurrent
                // iterations differ in (im, in), hence write disjoint C
                // blocks; the sequential K loop serializes accumulation.
                let c_block = unsafe { c_shared.slice_mut(c_off, block_c) };
                if ik == 0 {
                    pl_tpp::unary::zero(bm, bn, c_block, bm);
                }
                // A[Mb][Kb] grid: block (im, ik) at (im*Kb + ik).
                let a_off = (im * kb + ik) * bm * bk;
                // B[Nb][Kb] grid: block (ik, in) at (in*Kb + ik).
                let b_off = (i_n * kb + ik) * bk * bn;
                brgemm.execute_stride(
                    &a_data[a_off..],
                    stride_a,
                    &b_data[b_off..],
                    stride_b,
                    c_block,
                    brcount,
                );
            })
            .map_err(KernelError::Spec)
    }

    fn check_operands(
        &self,
        a: &BlockedMatrix<TA>,
        b: &BlockedMatrix<TB>,
        c: &BlockedMatrix<TC>,
    ) -> Result<(), KernelError> {
        let sh = &self.shape;
        let ok = a.rows() == sh.m
            && a.cols() == sh.k
            && a.br() == sh.bm
            && a.bc() == sh.bk
            && b.rows() == sh.k
            && b.cols() == sh.n
            && b.br() == sh.bk
            && b.bc() == sh.bn
            && c.rows() == sh.m
            && c.cols() == sh.n
            && c.br() == sh.bm
            && c.bc() == sh.bn;
        if !ok {
            return Err(KernelError::BadShape("operand layout mismatch".into()));
        }
        let want = match self.b_vnni {
            None => InnerLayout::ColMajor,
            Some(v) => InnerLayout::Vnni(v),
        };
        if b.inner() != want {
            return Err(KernelError::BadShape(format!(
                "B inner layout {:?} does not match kernel {:?}",
                b.inner(),
                want
            )));
        }
        Ok(())
    }
}

/// The quantized GEMM kernel: same PARLOOPER loop nest as [`Gemm`], but the
/// body invokes the `i8 x i8 -> i32` BRGEMM with dequantize-on-store.
///
/// `A` is the pack-once quantized weight in the VNNI-cols layout
/// ([`BlockedMatrix::a_layout_vnni`]) with one scale per logical row
/// (output channel); `B` is the per-step quantized activation in the plain
/// blocked `B` layout with one scale per logical column (token). `C` stays
/// f32, so downstream consumers (bias, activation, attention) are untouched.
pub struct GemmInt8 {
    shape: GemmShape,
    tuning: GemmTuning,
    tl: ThreadedLoop,
    brgemm: Arc<BrgemmI8>,
    a_vnni: usize,
}

impl GemmInt8 {
    /// Builds the kernel; `v` is the VNNI factor of the `A` columns
    /// (`bk % v == 0`).
    pub fn new(shape: GemmShape, tuning: GemmTuning, v: usize) -> Result<Self, KernelError> {
        for (dim, block, name) in
            [(shape.m, shape.bm, "M"), (shape.n, shape.bn, "N"), (shape.k, shape.bk, "K")]
        {
            if block == 0 || dim % block != 0 {
                return Err(KernelError::BadShape(format!(
                    "{name}={dim} not divisible by block {block}"
                )));
            }
        }
        if v == 0 || !shape.bk.is_multiple_of(v) {
            return Err(KernelError::BadShape(format!(
                "bk={} not divisible by vnni factor {v}",
                shape.bk
            )));
        }
        let specs = vec![
            LoopSpecs::blocked(0, shape.kb(), tuning.k_step, tuning.a_blocks.clone()),
            LoopSpecs::blocked(0, shape.mb(), 1, tuning.b_blocks.clone()),
            LoopSpecs::blocked(0, shape.nb(), 1, tuning.c_blocks.clone()),
        ];
        let tl = ThreadedLoop::new(&specs, &tuning.spec).map_err(KernelError::Spec)?;
        let brgemm = BrgemmI8::new(BrgemmI8Desc::blocked(shape.bm, shape.bn, shape.bk, v));
        Ok(GemmInt8 { shape, tuning, tl, brgemm, a_vnni: v })
    }

    /// Problem geometry.
    pub fn shape(&self) -> &GemmShape {
        &self.shape
    }

    /// Active tuning.
    pub fn tuning(&self) -> &GemmTuning {
        &self.tuning
    }

    /// `C = dequant(qA x qB)` on the given pool. `row_scales` has one entry
    /// per logical `A` row, `col_scales` one per logical `B` column.
    pub fn execute(
        &self,
        a: &BlockedMatrix<i8>,
        row_scales: &[f32],
        b: &BlockedMatrix<i8>,
        col_scales: &[f32],
        c: &mut BlockedMatrix<f32>,
        pool: &ThreadPool,
    ) -> Result<(), KernelError> {
        self.check_operands(a, b, c)?;
        if row_scales.len() != self.shape.m || col_scales.len() != self.shape.n {
            return Err(KernelError::BadShape("scale length mismatch".into()));
        }
        let sh = self.shape;
        let (bm, bn, bk) = (sh.bm, sh.bn, sh.bk);
        let (mb, kb) = (sh.mb(), sh.kb());
        let k_step = self.tuning.k_step;
        let stride_a = bm * bk;
        let stride_b = bn * bk;
        let block_c = bm * bn;
        let c_shared = SharedSlice::new(c.data_mut());
        let a_data = a.data();
        let b_data = b.data();
        let brgemm = &self.brgemm;

        self.tl
            .try_run_on(pool, |ind| {
                let (ik, im, i_n) = (ind[0], ind[1], ind[2]);
                let brcount = k_step.min(kb - ik);
                let c_off = (i_n * mb + im) * block_c;
                // SAFETY: same disjointness argument as [`Gemm::execute`]:
                // concurrent iterations differ in (im, in) for any legal
                // spec, the sequential K loop serializes accumulation.
                let c_block = unsafe { c_shared.slice_mut(c_off, block_c) };
                if ik == 0 {
                    pl_tpp::unary::zero(bm, bn, c_block, bm);
                }
                let a_off = (im * kb + ik) * bm * bk;
                let b_off = (i_n * kb + ik) * bk * bn;
                brgemm.execute_stride(
                    &a_data[a_off..],
                    stride_a,
                    &b_data[b_off..],
                    stride_b,
                    c_block,
                    brcount,
                    &row_scales[im * bm..im * bm + bm],
                    &col_scales[i_n * bn..i_n * bn + bn],
                );
            })
            .map_err(KernelError::Spec)
    }

    fn check_operands(
        &self,
        a: &BlockedMatrix<i8>,
        b: &BlockedMatrix<i8>,
        c: &BlockedMatrix<f32>,
    ) -> Result<(), KernelError> {
        let sh = &self.shape;
        let ok = a.rows() == sh.m
            && a.cols() == sh.k
            && a.br() == sh.bm
            && a.bc() == sh.bk
            && b.rows() == sh.k
            && b.cols() == sh.n
            && b.br() == sh.bk
            && b.bc() == sh.bn
            && c.rows() == sh.m
            && c.cols() == sh.n
            && c.br() == sh.bm
            && c.bc() == sh.bn;
        if !ok {
            return Err(KernelError::BadShape("operand layout mismatch".into()));
        }
        if a.inner() != InnerLayout::VnniCols(self.a_vnni) {
            return Err(KernelError::BadShape(format!(
                "A inner layout {:?} does not match kernel VnniCols({})",
                a.inner(),
                self.a_vnni
            )));
        }
        if b.inner() != InnerLayout::ColMajor {
            return Err(KernelError::BadShape(format!(
                "B inner layout {:?} must be ColMajor for the int8 kernel",
                b.inner()
            )));
        }
        Ok(())
    }
}

/// Scalar reference GEMM on flat column-major data (f64 accumulate).
pub fn reference_gemm(a: &[f32], b: &[f32], m: usize, n: usize, k: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    for j in 0..n {
        for p in 0..k {
            let bv = b[j * k + p] as f64;
            if bv == 0.0 {
                continue;
            }
            for i in 0..m {
                c[j * m + i] = (c[j * m + i] as f64 + a[p * m + i] as f64 * bv) as f32;
            }
        }
    }
    c
}

/// Convenience error alias used by higher layers.
pub type GemmResult = Result<(), SpecError>;

#[cfg(test)]
mod tests {
    use super::*;
    use pl_tensor::{fill_uniform, Bf16, Xorshift};

    fn random_problem(
        sh: GemmShape,
        seed: u64,
    ) -> (BlockedMatrix<f32>, BlockedMatrix<f32>, Vec<f32>, Vec<f32>) {
        let mut rng = Xorshift::new(seed);
        let mut a_cm = vec![0.0f32; sh.m * sh.k];
        let mut b_cm = vec![0.0f32; sh.k * sh.n];
        fill_uniform(&mut a_cm, &mut rng, -0.5, 0.5);
        fill_uniform(&mut b_cm, &mut rng, -0.5, 0.5);
        let mut a = BlockedMatrix::a_layout(sh.m, sh.k, sh.bm, sh.bk).unwrap();
        a.pack_from_colmajor(&a_cm);
        let mut b = BlockedMatrix::b_layout(sh.k, sh.n, sh.bk, sh.bn).unwrap();
        b.pack_from_colmajor(&b_cm);
        (a, b, a_cm, b_cm)
    }

    #[test]
    fn matches_reference_for_many_specs() {
        // A spec without parallel letters replicates the nest on every team
        // thread (OpenMP semantics of code outside a worksharing
        // construct), so sequential specs run on a single-thread pool and
        // parallel specs on a 4-thread pool — the paper's legality contract.
        let pool1 = ThreadPool::new(1);
        let pool4 = ThreadPool::new(4);
        let sh = GemmShape { m: 32, n: 24, k: 48, bm: 8, bn: 6, bk: 8 };
        let (a, b, a_cm, b_cm) = random_problem(sh, 42);
        let c_ref = reference_gemm(&a_cm, &b_cm, sh.m, sh.n, sh.k);

        let mut cases: Vec<(GemmTuning, &ThreadPool)> = vec![
            (GemmTuning::simple("abc"), &pool1),
            (GemmTuning::simple("bca"), &pool1),
            (GemmTuning::simple("cab"), &pool1),
            (GemmTuning::simple("aBC"), &pool4),
            (GemmTuning::simple("BCa"), &pool4),
            (GemmTuning::default_parallel(sh.kb()), &pool4),
        ];
        cases.push((
            GemmTuning {
                spec: "bcaBCb".into(),
                k_step: 2,
                a_blocks: vec![],
                b_blocks: vec![4, 2],
                c_blocks: vec![2],
            },
            &pool4,
        ));
        cases.push((
            GemmTuning {
                spec: "caB @ schedule(dynamic,1)".into(),
                k_step: 3,
                a_blocks: vec![],
                b_blocks: vec![],
                c_blocks: vec![],
            },
            &pool4,
        ));

        for (t, pool) in cases {
            let spec_str = t.spec.clone();
            let gemm = Gemm::<f32, f32, f32>::new(sh, t).unwrap();
            let mut c = BlockedMatrix::c_layout(sh.m, sh.n, sh.bm, sh.bn).unwrap();
            gemm.execute(&a, &b, &mut c, pool).unwrap();
            let got = c.unpack_to_colmajor();
            for i in 0..got.len() {
                assert!(
                    (got[i] - c_ref[i]).abs() < 1e-3,
                    "spec {spec_str}: idx {i}: {} vs {}",
                    got[i],
                    c_ref[i]
                );
            }
        }
    }

    #[test]
    fn grid_mode_matches_reference() {
        let pool = ThreadPool::new(4);
        let sh = GemmShape { m: 32, n: 32, k: 16, bm: 8, bn: 8, bk: 8 };
        let (a, b, a_cm, b_cm) = random_problem(sh, 7);
        let c_ref = reference_gemm(&a_cm, &b_cm, sh.m, sh.n, sh.k);
        let t = GemmTuning {
            spec: "B{R:2}C{C:2}a".into(),
            k_step: 1,
            a_blocks: vec![],
            b_blocks: vec![],
            c_blocks: vec![],
        };
        let gemm = Gemm::<f32, f32, f32>::new(sh, t).unwrap();
        let mut c = BlockedMatrix::c_layout(sh.m, sh.n, sh.bm, sh.bn).unwrap();
        gemm.execute(&a, &b, &mut c, &pool).unwrap();
        let got = c.unpack_to_colmajor();
        for i in 0..got.len() {
            assert!((got[i] - c_ref[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn bf16_gemm_with_vnni_b() {
        let pool = ThreadPool::new(2);
        let sh = GemmShape { m: 16, n: 16, k: 32, bm: 8, bn: 8, bk: 8 };
        let mut rng = Xorshift::new(3);
        let mut a_cm = vec![0.0f32; sh.m * sh.k];
        let mut b_cm = vec![0.0f32; sh.k * sh.n];
        fill_uniform(&mut a_cm, &mut rng, -0.5, 0.5);
        fill_uniform(&mut b_cm, &mut rng, -0.5, 0.5);
        let mut a = BlockedMatrix::<Bf16>::a_layout(sh.m, sh.k, sh.bm, sh.bk).unwrap();
        a.pack_from_colmajor(&a_cm);
        let mut b = BlockedMatrix::<Bf16>::b_layout_vnni(sh.k, sh.n, sh.bk, sh.bn, 2).unwrap();
        b.pack_from_colmajor(&b_cm);

        // Reference over quantized values.
        let aq = a.unpack_to_colmajor();
        let bq = b.unpack_to_colmajor();
        let c_ref = reference_gemm(&aq, &bq, sh.m, sh.n, sh.k);

        let gemm = Gemm::<Bf16, Bf16, f32>::new_vnni(sh, GemmTuning::default_parallel(sh.kb()), 2)
            .unwrap();
        let mut c = BlockedMatrix::<f32>::c_layout(sh.m, sh.n, sh.bm, sh.bn).unwrap();
        gemm.execute(&a, &b, &mut c, &pool).unwrap();
        let got = c.unpack_to_colmajor();
        for i in 0..got.len() {
            assert!((got[i] - c_ref[i]).abs() < 1e-3, "{} vs {}", got[i], c_ref[i]);
        }
    }

    /// Exact integer reference for the quantized kernel: i64 inner product
    /// over the quantized operands, one f32 dequant multiply per element.
    fn reference_int8(
        qa: &BlockedMatrix<i8>,
        rs: &[f32],
        qb: &BlockedMatrix<i8>,
        cs: &[f32],
    ) -> Vec<f32> {
        let (m, n, k) = (qa.rows(), qb.cols(), qa.cols());
        let mut c = vec![0.0f32; m * n];
        for j in 0..n {
            for i in 0..m {
                let mut acc: i64 = 0;
                for p in 0..k {
                    acc += qa.get(i, p) as i64 * qb.get(p, j) as i64;
                }
                c[j * m + i] = rs[i] * cs[j] * acc as f32;
            }
        }
        c
    }

    fn int8_problem(
        sh: GemmShape,
        v: usize,
        seed: u64,
    ) -> (BlockedMatrix<i8>, Vec<f32>, BlockedMatrix<i8>, Vec<f32>) {
        let mut rng = Xorshift::new(seed);
        let mut w_cm = vec![0.0f32; sh.m * sh.k];
        let mut act_cm = vec![0.0f32; sh.k * sh.n];
        fill_uniform(&mut w_cm, &mut rng, -0.5, 0.5);
        fill_uniform(&mut act_cm, &mut rng, -2.0, 2.0);
        let (qa, rs) =
            pl_tensor::quantize_weight_a_vnni(&w_cm, sh.m, sh.k, sh.bm, sh.bk, v).unwrap();
        let mut act = BlockedMatrix::<f32>::b_layout(sh.k, sh.n, sh.bk, sh.bn).unwrap();
        act.pack_from_colmajor(&act_cm);
        let mut qb = BlockedMatrix::<i8>::b_layout(sh.k, sh.n, sh.bk, sh.bn).unwrap();
        let mut cs = vec![0.0f32; sh.n];
        pl_tensor::quantize_cols_blocked(&act, &mut qb, &mut cs);
        (qa, rs, qb, cs)
    }

    #[test]
    fn int8_single_call_matches_integer_reference_exactly() {
        // k_step = kb folds the whole reduction into one BRGEMM call, so
        // the kernel performs the same exact i32 sum as the reference.
        let pool = ThreadPool::new(2);
        let sh = GemmShape { m: 32, n: 8, k: 64, bm: 8, bn: 4, bk: 16 };
        let (qa, rs, qb, cs) = int8_problem(sh, 4, 5);
        let c_ref = reference_int8(&qa, &rs, &qb, &cs);
        let gemm = GemmInt8::new(sh, GemmTuning::default_parallel(sh.kb()), 4).unwrap();
        let mut c = BlockedMatrix::<f32>::c_layout(sh.m, sh.n, sh.bm, sh.bn).unwrap();
        gemm.execute(&qa, &rs, &qb, &cs, &mut c, &pool).unwrap();
        assert_eq!(c.unpack_to_colmajor(), c_ref);
    }

    #[test]
    fn int8_matches_reference_for_many_specs() {
        let pool1 = ThreadPool::new(1);
        let pool4 = ThreadPool::new(4);
        let sh = GemmShape { m: 32, n: 24, k: 48, bm: 8, bn: 6, bk: 8 };
        let (qa, rs, qb, cs) = int8_problem(sh, 2, 43);
        let c_ref = reference_int8(&qa, &rs, &qb, &cs);
        let cases: Vec<(GemmTuning, &ThreadPool)> = vec![
            (GemmTuning::simple("abc"), &pool1),
            (GemmTuning::simple("BCa"), &pool4),
            (GemmTuning::default_parallel(sh.kb()), &pool4),
            (
                GemmTuning {
                    spec: "bcaBCb".into(),
                    k_step: 2,
                    a_blocks: vec![],
                    b_blocks: vec![4, 2],
                    c_blocks: vec![2],
                },
                &pool4,
            ),
        ];
        for (t, pool) in cases {
            let spec_str = t.spec.clone();
            let gemm = GemmInt8::new(sh, t, 2).unwrap();
            let mut c = BlockedMatrix::<f32>::c_layout(sh.m, sh.n, sh.bm, sh.bn).unwrap();
            gemm.execute(&qa, &rs, &qb, &cs, &mut c, pool).unwrap();
            let got = c.unpack_to_colmajor();
            for i in 0..got.len() {
                // k_step < kb splits the reduction into f32 partial sums;
                // each partial is exact, so only the final adds can round.
                let tol = 1e-5 * c_ref[i].abs().max(1.0);
                assert!(
                    (got[i] - c_ref[i]).abs() <= tol,
                    "spec {spec_str}: idx {i}: {} vs {}",
                    got[i],
                    c_ref[i]
                );
            }
        }
    }

    #[test]
    fn int8_rejects_wrong_inner_layouts() {
        let sh = GemmShape { m: 16, n: 8, k: 16, bm: 8, bn: 4, bk: 8 };
        let gemm = GemmInt8::new(sh, GemmTuning::simple("abc"), 4).unwrap();
        // Plain (non-VNNI) A must be rejected.
        let a = BlockedMatrix::<i8>::a_layout(16, 16, 8, 8).unwrap();
        let b = BlockedMatrix::<i8>::b_layout(16, 8, 8, 4).unwrap();
        let mut c = BlockedMatrix::<f32>::c_layout(16, 8, 8, 4).unwrap();
        let pool = ThreadPool::new(1);
        let rs = vec![1.0f32; 16];
        let cs = vec![1.0f32; 8];
        assert!(matches!(
            gemm.execute(&a, &rs, &b, &cs, &mut c, &pool),
            Err(KernelError::BadShape(_))
        ));
        // Unaligned vnni factor at build time.
        assert!(matches!(
            GemmInt8::new(sh, GemmTuning::simple("abc"), 3),
            Err(KernelError::BadShape(_))
        ));
    }

    #[test]
    fn layout_mismatch_is_reported() {
        let sh = GemmShape { m: 16, n: 16, k: 16, bm: 8, bn: 8, bk: 8 };
        let gemm = Gemm::<f32, f32, f32>::new(sh, GemmTuning::simple("abc")).unwrap();
        let a = BlockedMatrix::<f32>::a_layout(16, 16, 8, 8).unwrap();
        let b = BlockedMatrix::<f32>::b_layout(16, 16, 8, 8).unwrap();
        // Wrong block size for C.
        let mut c = BlockedMatrix::<f32>::c_layout(16, 16, 4, 4).unwrap();
        let pool = ThreadPool::new(1);
        assert!(matches!(gemm.execute(&a, &b, &mut c, &pool), Err(KernelError::BadShape(_))));
    }

    #[test]
    fn bad_blocking_is_reported() {
        let sh = GemmShape { m: 10, n: 16, k: 16, bm: 8, bn: 8, bk: 8 };
        assert!(matches!(
            Gemm::<f32, f32, f32>::new(sh, GemmTuning::simple("abc")),
            Err(KernelError::BadShape(_))
        ));
    }

    #[test]
    fn default_blocks_divide() {
        for (m, n, k) in [(512, 512, 512), (768, 256, 3072), (100, 60, 36)] {
            let sh = GemmShape::with_default_blocks(m, n, k);
            assert_eq!(sh.m % sh.bm, 0);
            assert_eq!(sh.n % sh.bn, 0);
            assert_eq!(sh.k % sh.bk, 0);
        }
    }
}
