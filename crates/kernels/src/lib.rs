//! # pl-kernels — DL/HPC kernels via PARLOOPER + TPP
//!
//! The kernels of paper §III, each a direct transcription of the listing it
//! reproduces:
//!
//! * [`gemm`] — GEMM over blocked operands (Listing 1).
//! * [`mlp`] — fully-connected layers / MLP with fused bias + activation
//!   (§III-A1).
//! * [`conv`] — direct convolution forward (Listing 4) plus backward-data /
//!   backward-weights for training.
//! * [`spmm`] — block-sparse x dense matmul over BCSC (Listing 5).
//!
//! Every kernel is *declarative*: the loop order, blocking and
//! parallelization live in a `loop_spec_string` tuning knob, and changing
//! the knob changes zero lines of kernel code.

pub mod conv;
pub mod gemm;
pub mod mlp;
pub mod shared;
pub mod spmm;

pub use conv::{conv_backward_data, conv_backward_weights, ConvForward, ConvTuning};
pub use gemm::{Gemm, GemmInt8, GemmShape, GemmTuning};
pub use mlp::{Activation, FusedFcLayer, Mlp};
pub use shared::SharedSlice;
pub use spmm::{BlockSpmm, SpmmTuning};

/// Errors reported by kernel constructors and executors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// Dimension/blocking mismatch.
    BadShape(String),
    /// Invalid `loop_spec_string` for this kernel.
    Spec(parlooper::SpecError),
}

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelError::BadShape(s) => write!(f, "bad shape: {s}"),
            KernelError::Spec(e) => write!(f, "spec error: {e}"),
        }
    }
}

impl std::error::Error for KernelError {}
