//! Direct convolutions with PARLOOPER and TPPs — paper Listing 4.
//!
//! Seven logical loops (`a`=N, `b`=Cb, `c`=Kb, `d`=P, `e`=Q, `f`=R, `g`=S)
//! traverse the iteration space; the body performs one offset-based BRGEMM
//! with `brcount = c_step * r_step * s_step` per `(n, kb, p, q-tile)`. The
//! GEMM view: `A` = the `bk x bc` weight sub-matrices, `B` = input pixels
//! (`ldb = stride * bc`), `C` = one row-segment of the output
//! (`m = bk`, `n = w_step` output pixels, `k = bc`).
//!
//! Backward-data and backward-weights passes (needed for ResNet-50
//! training, §IV-C) are implemented as blocked PARLOOPER nests over the
//! same tensors.

use crate::shared::SharedSlice;
use crate::KernelError;
use parlooper::{LoopSpecs, ThreadedLoop};
use pl_runtime::ThreadPool;
use pl_tensor::{ActTensor, ConvShape, ConvWeights, Element};
use pl_tpp::brgemm::{Brgemm, BrgemmDesc};
use std::sync::Arc;

/// Maximum batch-reduce length of one conv BRGEMM call.
const MAX_BR: usize = 1024;

/// Tuning knobs of the forward convolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvTuning {
    /// The `loop_spec_string` over loops `a..g`.
    pub spec: String,
    /// Input-feature blocks folded per BRGEMM (loop `b` step).
    pub c_step: usize,
    /// Output pixels per BRGEMM call (loop `e` step).
    pub w_step: usize,
    /// Filter rows folded per BRGEMM (loop `f` step).
    pub r_step: usize,
    /// Filter cols folded per BRGEMM (loop `g` step).
    pub s_step: usize,
    /// Blocking steps for the P loop `d`.
    pub h_blocks: Vec<usize>,
    /// Blocking steps for the Kb loop `c`.
    pub k_blocks: Vec<usize>,
}

impl ConvTuning {
    /// Default: fold the whole reduction, one output row per call,
    /// parallelize over (N, Kb, P).
    pub fn default_for(shape: &ConvShape) -> Self {
        ConvTuning {
            spec: "ACDbefg".to_string(),
            c_step: shape.cb(),
            w_step: shape.q(),
            r_step: shape.r,
            s_step: shape.s,
            h_blocks: Vec::new(),
            k_blocks: Vec::new(),
        }
    }
}

/// Forward convolution kernel handle.
pub struct ConvForward<T: Element> {
    shape: ConvShape,
    tuning: ConvTuning,
    tl: ThreadedLoop,
    brgemm: Arc<Brgemm<T, T, T>>,
}

impl<T: Element> ConvForward<T> {
    /// Builds the kernel (Listing 4 lines 5-13).
    pub fn new(shape: ConvShape, tuning: ConvTuning) -> Result<Self, KernelError> {
        shape.validate().map_err(|e| KernelError::BadShape(e.to_string()))?;
        if !shape.q().is_multiple_of(tuning.w_step) {
            return Err(KernelError::BadShape(format!(
                "Q={} not divisible by w_step={}",
                shape.q(),
                tuning.w_step
            )));
        }
        let br = tuning.c_step * tuning.r_step * tuning.s_step;
        if br > MAX_BR {
            return Err(KernelError::BadShape(format!("brcount {br} exceeds {MAX_BR}")));
        }
        let specs = vec![
            LoopSpecs::new(0, shape.n, 1),                                 // a: N
            LoopSpecs::new(0, shape.cb(), tuning.c_step),                  // b: Cb
            LoopSpecs::blocked(0, shape.kb(), 1, tuning.k_blocks.clone()), // c: Kb
            LoopSpecs::blocked(0, shape.p(), 1, tuning.h_blocks.clone()),  // d: P
            LoopSpecs::new(0, shape.q(), tuning.w_step),                   // e: Q
            LoopSpecs::new(0, shape.r, tuning.r_step),                     // f: R
            LoopSpecs::new(0, shape.s, tuning.s_step),                     // g: S
        ];
        let tl = ThreadedLoop::new(&specs, &tuning.spec).map_err(KernelError::Spec)?;
        // GEMM view: m=bk output features, n=w_step pixels, k=bc.
        let desc = BrgemmDesc {
            m: shape.bk,
            n: tuning.w_step,
            k: shape.bc,
            lda: shape.bk,
            ldb: shape.bc * shape.stride,
            ldc: shape.bk,
            beta_one: true,
            b_vnni: None,
        };
        let brgemm = Brgemm::new(desc);
        Ok(ConvForward { shape, tuning, tl, brgemm })
    }

    /// Problem shape.
    pub fn shape(&self) -> &ConvShape {
        &self.shape
    }

    /// Active tuning.
    pub fn tuning(&self) -> &ConvTuning {
        &self.tuning
    }

    /// The loop nest (for schedule simulation).
    pub fn threaded_loop(&self) -> &ThreadedLoop {
        &self.tl
    }

    /// `output = conv(input, weights)`; `output` must be an un-padded
    /// activation tensor of shape `(N, K, P, Q)` blocked by `bk`.
    pub fn execute(
        &self,
        input: &ActTensor<T>,
        weights: &ConvWeights<T>,
        output: &mut ActTensor<T>,
        pool: &ThreadPool,
    ) -> Result<(), KernelError> {
        let sh = self.shape;
        if input.n() != sh.n
            || input.c() != sh.c
            || input.bc() != sh.bc
            || input.pad() != sh.pad
            || weights.c() != sh.c
            || weights.k() != sh.k
            || output.n() != sh.n
            || output.c() != sh.k
            || output.h() != sh.p()
            || output.w() != sh.q()
            || output.bc() != sh.bk
            || output.pad() != 0
        {
            return Err(KernelError::BadShape("conv operand mismatch".into()));
        }
        let (bc, bk) = (sh.bc, sh.bk);
        let (p, q, kb) = (sh.p(), sh.q(), sh.kb());
        let (c_step, w_step, r_step, s_step) =
            (self.tuning.c_step, self.tuning.w_step, self.tuning.r_step, self.tuning.s_step);
        let stride = sh.stride;
        let w_data = weights.data();
        let i_data = input.data();
        let i_hp = input.hp();
        let i_wp = input.wp();
        let cb_total = sh.cb();
        let out_shared = SharedSlice::new(output.data_mut());
        let brgemm = &self.brgemm;
        let wblock = bc * bk;

        self.tl
            .try_run_on(pool, |ind| {
                let (i_nb, ic, ik, ih, iw, ir, is) =
                    (ind[0], ind[1], ind[2], ind[3], ind[4], ind[5], ind[6]);
                let c_cnt = c_step.min(cb_total - ic);
                let r_cnt = r_step.min(sh.r - ir);
                let s_cnt = s_step.min(sh.s - is);
                let _brcount = c_cnt * r_cnt * s_cnt;
                // Output row segment (n, ik, ih, iw..iw+w_step).
                let o_off = (((i_nb * kb + ik) * p + ih) * q + iw) * bk;
                let o_len = w_step.min(q - iw) * bk;
                // SAFETY: concurrent iterations of any legal spec differ in
                // (n, kb, p, q-tile) and thus write disjoint output rows;
                // loops b/f/g must stay sequential (user contract §II-C).
                let o_block = unsafe { out_shared.slice_mut(o_off, o_len) };
                if ic == 0 && ir == 0 && is == 0 {
                    o_block.iter_mut().for_each(|v| *v = T::default());
                }
                let mut offs_a = [0usize; MAX_BR];
                let mut offs_b = [0usize; MAX_BR];
                let mut bi = 0usize;
                for cc in ic..ic + c_cnt {
                    for rr in ir..ir + r_cnt {
                        for ss in is..is + s_cnt {
                            // A: weight block (ik, cc, rr, ss).
                            offs_a[bi] = (((ik * cb_total + cc) * sh.r + rr) * sh.s + ss) * wblock;
                            // B: input pixel (n, cc, ih*stride+rr, iw*stride+ss)
                            // in padded coordinates.
                            let y = ih * stride + rr;
                            let x = iw * stride + ss;
                            offs_b[bi] = (((i_nb * cb_total + cc) * i_hp + y) * i_wp + x) * bc;
                            bi += 1;
                        }
                    }
                }
                let n_pixels = w_step.min(q - iw);
                if n_pixels == w_step {
                    brgemm.execute_offsets(w_data, &offs_a[..bi], i_data, &offs_b[..bi], o_block);
                } else {
                    // Edge tile in Q: a narrower BRGEMM via a fresh handle
                    // (cached by the kernel cache, so this is cheap).
                    let edge = Brgemm::<T, T, T>::new(BrgemmDesc { n: n_pixels, ..*brgemm.desc() });
                    edge.execute_offsets(w_data, &offs_a[..bi], i_data, &offs_b[..bi], o_block);
                }
            })
            .map_err(KernelError::Spec)
    }
}

/// Backward-data: `d_input = conv_transpose(d_output, weights)`.
///
/// Parallelized over (N, Cb); each task accumulates the full receptive
/// field of its input block, so no two tasks write the same `d_input`
/// element.
pub fn conv_backward_data<T: Element>(
    shape: &ConvShape,
    d_output: &ActTensor<T>,
    weights: &ConvWeights<T>,
    d_input: &mut ActTensor<T>,
    pool: &ThreadPool,
) -> Result<(), KernelError> {
    let (p, q) = (shape.p(), shape.q());
    let (bc, bk) = (shape.bc, shape.bk);
    let (cb, kb) = (shape.cb(), shape.kb());
    let stride = shape.stride;
    let pad = shape.pad;
    d_input.data_mut().iter_mut().for_each(|v| *v = T::default());
    let di_hp = d_input.hp();
    let di_wp = d_input.wp();
    let di_shared = SharedSlice::new(d_input.data_mut());
    let do_data = d_output.data();
    let w_data = weights.data();

    let specs = vec![LoopSpecs::new(0, shape.n, 1), LoopSpecs::new(0, cb, 1)];
    let tl = ThreadedLoop::new(&specs, "AB").map_err(KernelError::Spec)?;
    tl.try_run_on(pool, |ind| {
        let (ni, ic) = (ind[0], ind[1]);
        let plane = di_hp * di_wp * bc;
        // SAFETY: disjoint (n, cb) planes of d_input.
        let di_plane = unsafe { di_shared.slice_mut((ni * cb + ic) * plane, plane) };
        for ik in 0..kb {
            for ph in 0..p {
                for pw in 0..q {
                    let o_off = (((ni * kb + ik) * p + ph) * q + pw) * bk;
                    let dout = &do_data[o_off..o_off + bk];
                    for rr in 0..shape.r {
                        for ss in 0..shape.s {
                            let y = ph * stride + rr; // padded coords
                            let x = pw * stride + ss;
                            let w_off = (((ik * cb + ic) * shape.r + rr) * shape.s + ss) * bc * bk;
                            let wblk = &w_data[w_off..w_off + bc * bk];
                            let d_off = (y * di_wp + x) * bc;
                            let dslice = &mut di_plane[d_off..d_off + bc];
                            for (ci, d) in dslice.iter_mut().enumerate() {
                                let mut acc = d.to_f32();
                                let wcol = &wblk[ci * bk..(ci + 1) * bk];
                                for (g, w) in dout.iter().zip(wcol) {
                                    acc = g.to_f32().mul_add(w.to_f32(), acc);
                                }
                                *d = T::from_f32(acc);
                            }
                        }
                    }
                }
            }
        }
        let _ = pad;
    })
    .map_err(KernelError::Spec)?;
    // The halo of d_input accumulated gradients that fall outside the image;
    // they correspond to padding and are discarded.
    d_input.clear_padding();
    Ok(())
}

/// Backward-weights: `d_weights[c,k,r,s] = sum_{n,p,q} input * d_output`.
///
/// Parallelized over (Kb, Cb) weight blocks — each task owns its block.
pub fn conv_backward_weights<T: Element>(
    shape: &ConvShape,
    input: &ActTensor<T>,
    d_output: &ActTensor<T>,
    d_weights: &mut ConvWeights<T>,
    pool: &ThreadPool,
) -> Result<(), KernelError> {
    let (p, q) = (shape.p(), shape.q());
    let (bc, bk) = (shape.bc, shape.bk);
    let (cb, kb) = (shape.cb(), shape.kb());
    let stride = shape.stride;
    let i_hp = input.hp();
    let i_wp = input.wp();
    let dw_shared = SharedSlice::new(d_weights.data_mut());
    let i_data = input.data();
    let do_data = d_output.data();

    let specs = vec![LoopSpecs::new(0, kb, 1), LoopSpecs::new(0, cb, 1)];
    let tl = ThreadedLoop::new(&specs, "AB").map_err(KernelError::Spec)?;
    tl.try_run_on(pool, |ind| {
        let (ik, ic) = (ind[0], ind[1]);
        let rs_block = bc * bk;
        let base = (ik * cb + ic) * shape.r * shape.s * rs_block;
        // SAFETY: disjoint (kb, cb) weight slabs.
        let dw = unsafe { dw_shared.slice_mut(base, shape.r * shape.s * rs_block) };
        dw.iter_mut().for_each(|v| *v = T::default());
        let mut acc = vec![0.0f32; shape.r * shape.s * rs_block];
        for ni in 0..shape.n {
            for ph in 0..p {
                for pw in 0..q {
                    let o_off = (((ni * kb + ik) * p + ph) * q + pw) * bk;
                    let dout = &do_data[o_off..o_off + bk];
                    for rr in 0..shape.r {
                        let y = ph * stride + rr;
                        for ss in 0..shape.s {
                            let x = pw * stride + ss;
                            let i_off = (((ni * cb + ic) * i_hp + y) * i_wp + x) * bc;
                            let ivec = &i_data[i_off..i_off + bc];
                            let a = &mut acc[(rr * shape.s + ss) * rs_block
                                ..(rr * shape.s + ss + 1) * rs_block];
                            for (ci, iv) in ivec.iter().enumerate() {
                                let ivf = iv.to_f32();
                                if ivf == 0.0 {
                                    continue;
                                }
                                let arow = &mut a[ci * bk..(ci + 1) * bk];
                                for (slot, g) in arow.iter_mut().zip(dout) {
                                    *slot = ivf.mul_add(g.to_f32(), *slot);
                                }
                            }
                        }
                    }
                }
            }
        }
        for (d, s) in dw.iter_mut().zip(&acc) {
            *d = T::from_f32(*s);
        }
    })
    .map_err(KernelError::Spec)
}

/// Scalar reference convolution for tests (logical NCHW f32 views).
pub fn reference_conv(
    shape: &ConvShape,
    input: &ActTensor<f32>,
    weights: &ConvWeights<f32>,
) -> Vec<f32> {
    let (p, q) = (shape.p(), shape.q());
    let mut out = vec![0.0f32; shape.n * shape.k * p * q];
    for ni in 0..shape.n {
        for ko in 0..shape.k {
            for ph in 0..p {
                for pw in 0..q {
                    let mut acc = 0.0f64;
                    for ci in 0..shape.c {
                        for rr in 0..shape.r {
                            for ss in 0..shape.s {
                                let y = (ph * shape.stride + rr) as isize - shape.pad as isize;
                                let x = (pw * shape.stride + ss) as isize - shape.pad as isize;
                                if y < 0 || x < 0 || y >= shape.h as isize || x >= shape.w as isize
                                {
                                    continue;
                                }
                                acc += input.get(ni, ci, y as usize, x as usize) as f64
                                    * weights.get(ci, ko, rr, ss) as f64;
                            }
                        }
                    }
                    out[((ni * shape.k + ko) * p + ph) * q + pw] = acc as f32;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_tensor::Xorshift;

    fn small_shape() -> ConvShape {
        ConvShape { n: 2, c: 8, k: 8, h: 6, w: 6, r: 3, s: 3, stride: 1, pad: 1, bc: 4, bk: 4 }
    }

    fn random_inputs(shape: &ConvShape, seed: u64) -> (ActTensor<f32>, ConvWeights<f32>) {
        let mut rng = Xorshift::new(seed);
        let input = ActTensor::from_fn(
            shape.n,
            shape.c,
            shape.h,
            shape.w,
            shape.bc,
            shape.pad,
            |_, _, _, _| rng.next_f32() - 0.5,
        )
        .unwrap();
        let mut rng2 = Xorshift::new(seed + 1);
        let weights = ConvWeights::from_fn(
            shape.c,
            shape.k,
            shape.r,
            shape.s,
            shape.bc,
            shape.bk,
            |_, _, _, _| rng2.next_f32() - 0.5,
        )
        .unwrap();
        (input, weights)
    }

    fn run_forward(shape: &ConvShape, tuning: ConvTuning, seed: u64) {
        let pool = ThreadPool::new(2);
        let (input, weights) = random_inputs(shape, seed);
        let mut out =
            ActTensor::<f32>::new(shape.n, shape.k, shape.p(), shape.q(), shape.bk, 0).unwrap();
        let spec_str = tuning.spec.clone();
        let conv = ConvForward::new(*shape, tuning).unwrap();
        conv.execute(&input, &weights, &mut out, &pool).unwrap();
        let expect = reference_conv(shape, &input, &weights);
        let (p, q) = (shape.p(), shape.q());
        for ni in 0..shape.n {
            for ko in 0..shape.k {
                for ph in 0..p {
                    for pw in 0..q {
                        let got = out.get(ni, ko, ph, pw);
                        let want = expect[((ni * shape.k + ko) * p + ph) * q + pw];
                        assert!(
                            (got - want).abs() < 1e-3,
                            "spec {spec_str}: ({ni},{ko},{ph},{pw}): {got} vs {want}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn forward_matches_reference_padded_3x3() {
        let shape = small_shape();
        run_forward(&shape, ConvTuning::default_for(&shape), 42);
    }

    #[test]
    fn forward_various_specs_and_steps() {
        let shape = small_shape();
        // Split reduction: c_step=1 (2 feature blocks), r/s stepped singly.
        run_forward(
            &shape,
            ConvTuning {
                spec: "Abcdefg".into(),
                c_step: 1,
                w_step: 3,
                r_step: 1,
                s_step: 3,
                h_blocks: vec![],
                k_blocks: vec![],
            },
            7,
        );
        run_forward(
            &shape,
            ConvTuning {
                spec: "bfgACDe".into(),
                c_step: 2,
                w_step: 2,
                r_step: 3,
                s_step: 1,
                h_blocks: vec![],
                k_blocks: vec![],
            },
            8,
        );
    }

    #[test]
    fn forward_strided_conv() {
        let shape =
            ConvShape { n: 1, c: 4, k: 8, h: 8, w: 8, r: 3, s: 3, stride: 2, pad: 1, bc: 4, bk: 8 };
        run_forward(&shape, ConvTuning::default_for(&shape), 3);
    }

    #[test]
    fn forward_1x1_conv() {
        let shape = ConvShape {
            n: 2,
            c: 8,
            k: 16,
            h: 4,
            w: 4,
            r: 1,
            s: 1,
            stride: 1,
            pad: 0,
            bc: 8,
            bk: 8,
        };
        run_forward(&shape, ConvTuning::default_for(&shape), 9);
    }

    #[test]
    fn backward_data_matches_numeric() {
        // d_input of conv(x)  with upstream gradient g equals, elementwise,
        // d/dx <g, conv(x)>; verify a handful of positions numerically.
        let shape =
            ConvShape { n: 1, c: 4, k: 4, h: 4, w: 4, r: 3, s: 3, stride: 1, pad: 1, bc: 4, bk: 4 };
        let pool = ThreadPool::new(2);
        let (input, weights) = random_inputs(&shape, 5);
        let (p, q) = (shape.p(), shape.q());
        let mut g = ActTensor::<f32>::new(1, shape.k, p, q, shape.bk, 0).unwrap();
        let mut rng = Xorshift::new(17);
        for ko in 0..shape.k {
            for ph in 0..p {
                for pw in 0..q {
                    g.set(0, ko, ph, pw, rng.next_f32() - 0.5);
                }
            }
        }
        let mut din =
            ActTensor::<f32>::new(1, shape.c, shape.h, shape.w, shape.bc, shape.pad).unwrap();
        conv_backward_data(&shape, &g, &weights, &mut din, &pool).unwrap();

        let loss = |inp: &ActTensor<f32>| -> f32 {
            let r = reference_conv(&shape, inp, &weights);
            let mut s = 0.0f32;
            for ko in 0..shape.k {
                for ph in 0..p {
                    for pw in 0..q {
                        s += r[((ko) * p + ph) * q + pw] * g.get(0, ko, ph, pw);
                    }
                }
            }
            s
        };
        let h = 1e-2;
        for &(ci, y, x) in &[(0usize, 0usize, 0usize), (1, 2, 3), (3, 3, 1)] {
            let mut ip = input.clone();
            ip.set(0, ci, y, x, input.get(0, ci, y, x) + h);
            let mut im = input.clone();
            im.set(0, ci, y, x, input.get(0, ci, y, x) - h);
            let fd = (loss(&ip) - loss(&im)) / (2.0 * h);
            let got = din.get(0, ci, y, x);
            assert!((got - fd).abs() < 1e-2, "({ci},{y},{x}): {got} vs {fd}");
        }
    }

    #[test]
    fn backward_weights_matches_numeric() {
        let shape =
            ConvShape { n: 1, c: 4, k: 4, h: 4, w: 4, r: 3, s: 3, stride: 1, pad: 1, bc: 4, bk: 4 };
        let pool = ThreadPool::new(2);
        let (input, weights) = random_inputs(&shape, 6);
        let (p, q) = (shape.p(), shape.q());
        let mut g = ActTensor::<f32>::new(1, shape.k, p, q, shape.bk, 0).unwrap();
        let mut rng = Xorshift::new(19);
        for ko in 0..shape.k {
            for ph in 0..p {
                for pw in 0..q {
                    g.set(0, ko, ph, pw, rng.next_f32() - 0.5);
                }
            }
        }
        let mut dw =
            ConvWeights::<f32>::new(shape.c, shape.k, shape.r, shape.s, shape.bc, shape.bk)
                .unwrap();
        conv_backward_weights(&shape, &input, &g, &mut dw, &pool).unwrap();

        let loss = |w: &ConvWeights<f32>| -> f32 {
            let r = reference_conv(&shape, &input, w);
            let mut s = 0.0f32;
            for ko in 0..shape.k {
                for ph in 0..p {
                    for pw in 0..q {
                        s += r[((ko) * p + ph) * q + pw] * g.get(0, ko, ph, pw);
                    }
                }
            }
            s
        };
        let h = 1e-2;
        for &(ci, ko, rr, ss) in &[(0usize, 0usize, 1usize, 1usize), (2, 3, 0, 2), (3, 1, 2, 0)] {
            let mut wp = weights.clone();
            wp.set(ci, ko, rr, ss, weights.get(ci, ko, rr, ss) + h);
            let mut wm = weights.clone();
            wm.set(ci, ko, rr, ss, weights.get(ci, ko, rr, ss) - h);
            let fd = (loss(&wp) - loss(&wm)) / (2.0 * h);
            let got = dw.get(ci, ko, rr, ss);
            assert!((got - fd).abs() < 1e-2, "({ci},{ko},{rr},{ss}): {got} vs {fd}");
        }
    }
}
