//! Multi-Layer Perceptron built from the GEMM kernel with fused bias add
//! and ReLU (paper §III-A1).
//!
//! Each layer computes `O_l = act(W_l x I_l + bias_l)`; the activation TPP
//! fires inside the GEMM body on the just-computed `C` block when the last
//! K-step completes (`if (i_k == Kb - k_step) relu_tpp(...)` in the paper),
//! maximizing cache reuse of the output block. The cascading layers feed
//! `O_l` in as `B` of layer `l+1` — the tensors stay in blocked layout
//! throughout.

use crate::shared::SharedSlice;
use crate::KernelError;
use parlooper::{LoopSpecs, ThreadedLoop};
use pl_runtime::ThreadPool;
use pl_tensor::{BlockedMatrix, Element};
use pl_tpp::brgemm::{Brgemm, BrgemmDesc};
use std::sync::Arc;

/// Activation fused at the tail of each layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// No activation (plain fully-connected layer).
    None,
    /// Rectified linear unit.
    Relu,
    /// Gaussian error linear unit (tanh approximation).
    Gelu,
}

/// One MLP layer: a fully-connected kernel with fused bias + activation.
pub struct FusedFcLayer<T: Element> {
    /// Output features.
    pub out_features: usize,
    /// Input features.
    pub in_features: usize,
    /// Feature blockings.
    pub bk_out: usize,
    /// Input feature blocking.
    pub bk_in: usize,
    /// Minibatch blocking.
    pub bn: usize,
    tl: ThreadedLoop,
    brgemm: Arc<Brgemm<T, T, T>>,
    k_step: usize,
    activation: Activation,
}

impl<T: Element> FusedFcLayer<T> {
    /// Builds a layer kernel; `n` is the minibatch extent.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        out_features: usize,
        in_features: usize,
        n: usize,
        bk_out: usize,
        bk_in: usize,
        bn: usize,
        spec: &str,
        activation: Activation,
    ) -> Result<Self, KernelError> {
        for (d, b, name) in [
            (out_features, bk_out, "out_features"),
            (in_features, bk_in, "in_features"),
            (n, bn, "N"),
        ] {
            if b == 0 || d % b != 0 {
                return Err(KernelError::BadShape(format!("{name}={d} %% {b} != 0")));
            }
        }
        let kb = in_features / bk_in;
        let specs = vec![
            LoopSpecs::new(0, kb, kb), // K folded into one BRGEMM per block
            LoopSpecs::new(0, out_features / bk_out, 1),
            LoopSpecs::new(0, n / bn, 1),
        ];
        let tl = ThreadedLoop::new(&specs, spec).map_err(KernelError::Spec)?;
        let brgemm = Brgemm::new(BrgemmDesc::blocked(bk_out, bn, bk_in));
        Ok(FusedFcLayer {
            out_features,
            in_features,
            bk_out,
            bk_in,
            bn,
            tl,
            brgemm,
            k_step: kb,
            activation,
        })
    }

    /// `out = act(weights x input + bias)`.
    ///
    /// `weights` is `out_features x in_features` in `A` layout, `input` is
    /// `in_features x n` in `B` layout, `out` is `out_features x n` in `C`
    /// layout (which is the `B` layout of the next layer, as both are
    /// column-block-major with matching blocks — see the cascade test).
    pub fn forward(
        &self,
        weights: &BlockedMatrix<T>,
        bias: &[f32],
        input: &BlockedMatrix<T>,
        out: &mut BlockedMatrix<T>,
        pool: &ThreadPool,
    ) -> Result<(), KernelError> {
        if weights.rows() != self.out_features
            || weights.cols() != self.in_features
            || input.rows() != self.in_features
            || out.rows() != self.out_features
            || input.cols() != out.cols()
            || bias.len() < self.out_features
        {
            return Err(KernelError::BadShape("MLP layer operand mismatch".into()));
        }
        let (bm, bn, bk) = (self.bk_out, self.bn, self.bk_in);
        let kb = self.in_features / bk;
        let mb = self.out_features / bm;
        let k_step = self.k_step;
        let activation = self.activation;
        let c_shared = SharedSlice::new(out.data_mut());
        let w_data = weights.data();
        let i_data = input.data();
        let brgemm = &self.brgemm;

        self.tl
            .try_run_on(pool, |ind| {
                let (ik, im, i_n) = (ind[0], ind[1], ind[2]);
                let brcount = k_step.min(kb - ik);
                let c_off = (i_n * mb + im) * bm * bn;
                // SAFETY: disjoint (im, i_n) blocks per the spec contract.
                let c_block = unsafe { c_shared.slice_mut(c_off, bm * bn) };
                if ik == 0 {
                    pl_tpp::unary::zero(bm, bn, c_block, bm);
                }
                let a_off = (im * kb + ik) * bm * bk;
                let b_off = (i_n * kb + ik) * bk * bn;
                brgemm.execute_stride(
                    &w_data[a_off..],
                    bm * bk,
                    &i_data[b_off..],
                    bk * bn,
                    c_block,
                    brcount,
                );
                if ik + brcount >= kb {
                    // Last K-step for this block: fuse bias + activation.
                    let bias_slice = &bias[im * bm..(im + 1) * bm];
                    match activation {
                        Activation::None => {
                            pl_tpp::binary::bias_add(bm, bn, bias_slice, c_block, bm)
                        }
                        Activation::Relu => {
                            pl_tpp::binary::bias_add(bm, bn, bias_slice, c_block, bm);
                            let tmp: &mut [T] = c_block;
                            for col in 0..bn {
                                for r in 0..bm {
                                    let v = tmp[col * bm + r].to_f32().max(0.0);
                                    tmp[col * bm + r] = T::from_f32(v);
                                }
                            }
                        }
                        Activation::Gelu => {
                            pl_tpp::binary::bias_add(bm, bn, bias_slice, c_block, bm);
                            for col in 0..bn {
                                for r in 0..bm {
                                    let v =
                                        pl_tpp::unary::gelu_scalar(c_block[col * bm + r].to_f32());
                                    c_block[col * bm + r] = T::from_f32(v);
                                }
                            }
                        }
                    }
                }
            })
            .map_err(KernelError::Spec)
    }
}

/// A whole MLP: cascading fused FC layers of equal minibatch.
pub struct Mlp<T: Element> {
    layers: Vec<FusedFcLayer<T>>,
    /// Per-layer weights in `A` layout.
    pub weights: Vec<BlockedMatrix<T>>,
    /// Per-layer biases.
    pub biases: Vec<Vec<f32>>,
    n: usize,
    bn: usize,
}

impl<T: Element> Mlp<T> {
    /// Builds an MLP with `sizes = [in, h1, h2, ..., out]` feature extents,
    /// shared blockings and one spec for all layers.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        sizes: &[usize],
        n: usize,
        bk: usize,
        bn: usize,
        spec: &str,
        activation: Activation,
        seed: u64,
    ) -> Result<Self, KernelError> {
        if sizes.len() < 2 {
            return Err(KernelError::BadShape("MLP needs at least two sizes".into()));
        }
        let mut rng = pl_tensor::Xorshift::new(seed);
        let mut layers = Vec::new();
        let mut weights = Vec::new();
        let mut biases = Vec::new();
        for w in sizes.windows(2) {
            let (fin, fout) = (w[0], w[1]);
            layers.push(FusedFcLayer::new(fout, fin, n, bk, bk, bn, spec, activation)?);
            let std = (2.0 / fin as f32).sqrt();
            let mut wm = BlockedMatrix::<T>::a_layout(fout, fin, bk, bk)
                .map_err(|e| KernelError::BadShape(e.to_string()))?;
            let mut buf = vec![0.0f32; fout * fin];
            pl_tensor::fill_normal(&mut buf, &mut rng, 0.0, std);
            wm.pack_from_colmajor(&buf);
            weights.push(wm);
            biases.push(vec![0.01f32; fout]);
        }
        Ok(Mlp { layers, weights, biases, n, bn })
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total flops of one forward pass.
    pub fn flops(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| 2 * l.out_features as u64 * l.in_features as u64 * self.n as u64)
            .sum()
    }

    /// Runs the cascade; returns the final activation.
    pub fn forward(
        &self,
        input: &BlockedMatrix<T>,
        pool: &ThreadPool,
    ) -> Result<BlockedMatrix<T>, KernelError> {
        let mut cur = input.clone();
        for (l, layer) in self.layers.iter().enumerate() {
            let mut out =
                BlockedMatrix::<T>::c_layout(layer.out_features, self.n, layer.bk_out, self.bn)
                    .map_err(|e| KernelError::BadShape(e.to_string()))?;
            layer.forward(&self.weights[l], &self.biases[l], &cur, &mut out, pool)?;
            cur = out;
        }
        Ok(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::reference_gemm;
    use pl_tensor::{fill_uniform, Xorshift};

    #[test]
    fn fused_layer_matches_unfused_reference() {
        let pool = ThreadPool::new(2);
        let (fout, fin, n, bk, bn) = (16, 24, 8, 8, 4);
        let mut rng = Xorshift::new(11);
        let mut w_cm = vec![0.0f32; fout * fin];
        let mut x_cm = vec![0.0f32; fin * n];
        fill_uniform(&mut w_cm, &mut rng, -0.5, 0.5);
        fill_uniform(&mut x_cm, &mut rng, -0.5, 0.5);
        let bias: Vec<f32> = (0..fout).map(|i| i as f32 * 0.1 - 0.5).collect();

        let mut w = BlockedMatrix::<f32>::a_layout(fout, fin, bk, bk).unwrap();
        w.pack_from_colmajor(&w_cm);
        let mut x = BlockedMatrix::<f32>::b_layout(fin, n, bk, bn).unwrap();
        x.pack_from_colmajor(&x_cm);
        let mut out = BlockedMatrix::<f32>::c_layout(fout, n, bk, bn).unwrap();

        let layer = FusedFcLayer::new(fout, fin, n, bk, bk, bn, "aBC", Activation::Relu).unwrap();
        layer.forward(&w, &bias, &x, &mut out, &pool).unwrap();

        let mut expect = reference_gemm(&w_cm, &x_cm, fout, n, fin);
        for col in 0..n {
            for r in 0..fout {
                expect[col * fout + r] = (expect[col * fout + r] + bias[r]).max(0.0);
            }
        }
        let got = out.unpack_to_colmajor();
        for i in 0..got.len() {
            assert!((got[i] - expect[i]).abs() < 1e-4, "{} vs {}", got[i], expect[i]);
        }
    }

    #[test]
    fn relu_actually_clamps() {
        let pool = ThreadPool::new(1);
        let (fout, fin, n, bk, bn) = (8, 8, 4, 8, 4);
        let mut w = BlockedMatrix::<f32>::a_layout(fout, fin, bk, bk).unwrap();
        // Negative weights guarantee negative pre-activations.
        w.pack_from_colmajor(&vec![-1.0; fout * fin]);
        let mut x = BlockedMatrix::<f32>::b_layout(fin, n, bk, bn).unwrap();
        x.pack_from_colmajor(&vec![1.0; fin * n]);
        let mut out = BlockedMatrix::<f32>::c_layout(fout, n, bk, bn).unwrap();
        let layer = FusedFcLayer::new(fout, fin, n, bk, bk, bn, "aBC", Activation::Relu).unwrap();
        layer.forward(&w, &vec![0.0; fout], &x, &mut out, &pool).unwrap();
        assert!(out.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn cascade_dimensions_flow() {
        let pool = ThreadPool::new(2);
        let mlp = Mlp::<f32>::new(&[16, 32, 8], 8, 8, 4, "aBC", Activation::Relu, 5).unwrap();
        assert_eq!(mlp.num_layers(), 2);
        let mut x = BlockedMatrix::<f32>::b_layout(16, 8, 8, 4).unwrap();
        let mut rng = Xorshift::new(2);
        let mut x_cm = vec![0.0f32; 16 * 8];
        fill_uniform(&mut x_cm, &mut rng, 0.0, 1.0);
        x.pack_from_colmajor(&x_cm);
        let y = mlp.forward(&x, &pool).unwrap();
        assert_eq!(y.rows(), 8);
        assert_eq!(y.cols(), 8);
        // ReLU output is non-negative.
        assert!(y.data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn flops_accounting() {
        let mlp =
            Mlp::<f32>::new(&[512, 512, 512], 512, 64, 64, "aBC", Activation::Relu, 1).unwrap();
        assert_eq!(mlp.flops(), 2 * 2 * 512u64.pow(3));
    }
}
