//! Shared-mutable output views for PARLOOPER bodies.
//!
//! PARLOOPER bodies run concurrently on the team and write *disjoint*
//! output blocks; which blocks are disjoint is determined by the
//! `loop_spec_string`, and — exactly as in the paper (§II-C) — the
//! legality of a parallelization "is responsibility of the user entity",
//! equivalent to writing OpenMP code. [`SharedSlice`] is the narrow unsafe
//! escape hatch that encodes this contract.

/// A length-checked raw view over a mutable slice that can be shared with a
/// thread team.
pub struct SharedSlice<T> {
    ptr: *mut T,
    len: usize,
}

// SAFETY: the pointer refers to a caller-owned slice that outlives the
// parallel region (the region joins before `execute` returns); concurrent
// disjointness is the documented caller contract of `slice_mut`.
unsafe impl<T: Send> Send for SharedSlice<T> {}
unsafe impl<T: Send> Sync for SharedSlice<T> {}

impl<T> SharedSlice<T> {
    /// Wraps a mutable slice for the duration of a parallel kernel.
    pub fn new(slice: &mut [T]) -> Self {
        SharedSlice { ptr: slice.as_mut_ptr(), len: slice.len() }
    }

    /// Total length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reborrows the sub-range `off..off + len` mutably.
    ///
    /// # Safety
    /// Callers must guarantee that concurrently outstanding ranges are
    /// disjoint — i.e. the `loop_spec_string` parallelizes only loops whose
    /// iterations write different blocks (the paper's legality contract).
    ///
    /// # Panics
    /// Panics if the range exceeds the wrapped slice.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, off: usize, len: usize) -> &mut [T] {
        assert!(off + len <= self.len, "SharedSlice range out of bounds");
        // SAFETY: bounds checked above; disjointness is the caller contract.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(off), len) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_runtime::ThreadPool;

    #[test]
    fn disjoint_parallel_writes() {
        let mut data = vec![0usize; 64];
        let shared = SharedSlice::new(&mut data);
        let pool = ThreadPool::new(4);
        pool.parallel(|ctx| {
            let chunk = 64 / ctx.nthreads();
            // SAFETY: each thread touches its own chunk.
            let view = unsafe { shared.slice_mut(ctx.tid() * chunk, chunk) };
            for (i, v) in view.iter_mut().enumerate() {
                *v = ctx.tid() * 100 + i;
            }
        });
        for tid in 0..4 {
            for i in 0..16 {
                assert_eq!(data[tid * 16 + i], tid * 100 + i);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_is_caught() {
        let mut data = vec![0u8; 4];
        let shared = SharedSlice::new(&mut data);
        // SAFETY: intentionally out of bounds to exercise the check.
        let _ = unsafe { shared.slice_mut(2, 4) };
    }
}
