//! Block-SpMM written with PARLOOPER and TPPs — paper Listing 5.
//!
//! `C = A x B` with `A` block-sparse (BCSC), `B`/`C` dense VNNI-packed.
//! The loop declaration is identical to the dense GEMM (3 logical loops);
//! the body calls the `bcsc_spmm_tpp` for the `(im, in)` output block over
//! the K-block range of the current `a` iteration.

use crate::shared::SharedSlice;
use crate::KernelError;
use parlooper::{LoopSpecs, ThreadedLoop};
use pl_runtime::ThreadPool;
use pl_tensor::{BcscMatrix, Element, VnniMatrix};
use pl_tpp::spmm::BcscSpmm;

/// Tuning knobs of the Block-SpMM kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpmmTuning {
    /// The `loop_spec_string` (loops `a`=Kb, `b`=Mb, `c`=Nb).
    pub spec: String,
    /// K blocks folded per TPP invocation.
    pub k_step: usize,
    /// Blocking steps for the M loop.
    pub b_blocks: Vec<usize>,
    /// Blocking steps for the N loop.
    pub c_blocks: Vec<usize>,
}

impl SpmmTuning {
    /// Parallel (M, N) distribution, K fully folded.
    pub fn default_parallel(kb: usize) -> Self {
        SpmmTuning {
            spec: "BCa".into(),
            k_step: kb.max(1),
            b_blocks: Vec::new(),
            c_blocks: Vec::new(),
        }
    }
}

/// The Block-SpMM kernel handle.
pub struct BlockSpmm {
    m: usize,
    n: usize,
    k: usize,
    bm: usize,
    bk: usize,
    bn: usize,
    tuning: SpmmTuning,
    tl: ThreadedLoop,
    tpp: BcscSpmm,
}

impl BlockSpmm {
    /// Builds the kernel for `M x K (sparse) x K x N (dense)`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        m: usize,
        n: usize,
        k: usize,
        bm: usize,
        bk: usize,
        bn: usize,
        tuning: SpmmTuning,
    ) -> Result<Self, KernelError> {
        for (d, b, name) in [(m, bm, "M"), (n, bn, "N"), (k, bk, "K")] {
            if b == 0 || d % b != 0 {
                return Err(KernelError::BadShape(format!("{name}={d} %% {b} != 0")));
            }
        }
        let specs = vec![
            LoopSpecs::new(0, k / bk, tuning.k_step),
            LoopSpecs::blocked(0, m / bm, 1, tuning.b_blocks.clone()),
            LoopSpecs::blocked(0, n / bn, 1, tuning.c_blocks.clone()),
        ];
        let tl = ThreadedLoop::new(&specs, &tuning.spec).map_err(KernelError::Spec)?;
        let tpp = BcscSpmm::new(bm, bk, bn);
        Ok(BlockSpmm { m, n, k, bm, bk, bn, tuning, tl, tpp })
    }

    /// Effective (dense-equivalent) flops of the multiplication.
    pub fn dense_flops(&self) -> u64 {
        2 * self.m as u64 * self.n as u64 * self.k as u64
    }

    /// `C = A x B` (paper Listing 5 body).
    pub fn execute<TA: Element, TB: Element, TC: Element>(
        &self,
        a: &BcscMatrix<TA>,
        b: &VnniMatrix<TB>,
        c: &mut VnniMatrix<TC>,
        pool: &ThreadPool,
    ) -> Result<(), KernelError> {
        if a.rows() != self.m
            || a.cols() != self.k
            || a.bm() != self.bm
            || a.bk() != self.bk
            || b.rows() != self.k
            || b.cols() != self.n
            || b.bn() != self.bn
            || c.rows() != self.m
            || c.cols() != self.n
            || c.bn() != self.bn
        {
            return Err(KernelError::BadShape("spmm operand mismatch".into()));
        }
        let kb = self.k / self.bk;
        let k_step = self.tuning.k_step;
        let (c_rows, c_v) = (c.rows(), c.v());
        let c_shared = SharedSlice::new(c.data_mut());
        let c_len = c_rows * self.n;
        let tpp = &self.tpp;

        self.tl
            .try_run_on(pool, |ind| {
                let (ik, im, inb) = (ind[0], ind[1], ind[2]);
                let k_hi = (ik + k_step).min(kb);
                // SAFETY: whole-C view; the TPP writes only the (im, inb)
                // block, and concurrent iterations of a legal spec differ
                // in (im, inb). The sequential K loop serializes the
                // accumulation into each block.
                let c_view = unsafe { c_shared.slice_mut(0, c_len) };
                tpp.execute_into(a, im, ik..k_hi, b, inb, c_view, c_rows, c_v, ik == 0);
            })
            .map_err(KernelError::Spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_tensor::Xorshift;
    use pl_tpp::spmm::reference_spmm;

    fn run_case(sp: f64, tuning: SpmmTuning) {
        let (m, n, k, bm, bk, bn) = (32, 24, 32, 8, 8, 4);
        let mut rng = Xorshift::new(31 + (sp * 10.0) as u64);
        let a = BcscMatrix::<f32>::random(m, k, bm, bk, sp, &mut rng).unwrap();
        let b_cm: Vec<f32> = (0..k * n).map(|_| rng.next_f32() - 0.5).collect();
        let mut b = VnniMatrix::<f32>::new(k, n, bn, 1).unwrap();
        b.pack_from_colmajor(&b_cm);
        let mut c = VnniMatrix::<f32>::new(m, n, bn, 1).unwrap();
        let pool = ThreadPool::new(4);
        let spec_str = tuning.spec.clone();
        let kernel = BlockSpmm::new(m, n, k, bm, bk, bn, tuning).unwrap();
        kernel.execute(&a, &b, &mut c, &pool).unwrap();
        let want = reference_spmm(&a.to_dense_colmajor(), m, k, &b_cm, n);
        let got = c.unpack_to_colmajor();
        for i in 0..got.len() {
            assert!(
                (got[i] - want[i]).abs() < 1e-3,
                "sp={sp} spec={spec_str} i={i}: {} vs {}",
                got[i],
                want[i]
            );
        }
    }

    #[test]
    fn matches_reference_across_sparsity_and_specs() {
        for &sp in &[0.0, 0.5, 0.9] {
            run_case(sp, SpmmTuning::default_parallel(4));
            run_case(
                sp,
                SpmmTuning { spec: "aBC".into(), k_step: 1, b_blocks: vec![], c_blocks: vec![] },
            );
            run_case(
                sp,
                SpmmTuning {
                    spec: "bcaBCb".into(),
                    k_step: 2,
                    b_blocks: vec![4, 2],
                    c_blocks: vec![3],
                },
            );
        }
    }

    #[test]
    fn rejects_mismatched_operands() {
        let kernel = BlockSpmm::new(16, 16, 16, 8, 8, 4, SpmmTuning::default_parallel(2)).unwrap();
        let mut rng = Xorshift::new(1);
        let a = BcscMatrix::<f32>::random(16, 8, 8, 8, 0.5, &mut rng).unwrap(); // wrong K
        let b = VnniMatrix::<f32>::new(16, 16, 4, 1).unwrap();
        let mut c = VnniMatrix::<f32>::new(16, 16, 4, 1).unwrap();
        let pool = ThreadPool::new(1);
        assert!(kernel.execute(&a, &b, &mut c, &pool).is_err());
    }
}
