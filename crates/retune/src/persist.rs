//! Disk persistence for the **measured** tuning database, keyed by a
//! host/topology fingerprint: warm-up on a known host is a file load
//! instead of a search, and a file written on a different host (or by a
//! different format version) is rejected up front — measured numbers do
//! not transfer across machines the way modeled ones do.
//!
//! Format (text, diff-friendly like the raw `TuningDb` TSV it wraps):
//!
//! ```text
//! #pl-retune-db v1
//! #fingerprint <os>/<arch>/<platform>/<threads>t
//! gemm/zen4/32x8x32/f32\taBC\t123.4
//! ...
//! ```
//!
//! Every load failure degrades — corrupt files, wrong versions and
//! foreign fingerprints all fall back to a fresh modeled warm-up with a
//! logged warning, never a panic ([`warm_or_load`]).

use pl_autotuner::{DbEntry, TuningDb};
use pl_perfmodel::Platform;
use pl_serve::Server;
use std::io::Write;
use std::path::Path;

/// Current persisted-format version; bump on layout changes.
pub const PERSIST_VERSION: u32 = 1;

const MAGIC: &str = "#pl-retune-db";
const FP_PREFIX: &str = "#fingerprint ";

/// The identity a measured DB is valid for: OS, ISA, the perfmodel
/// platform it was measured as, and the thread count measurements ran
/// at. Same binary on a different core count re-measures.
pub fn host_fingerprint(platform_name: &str, threads: usize) -> String {
    format!("{}/{}/{}/{}t", std::env::consts::OS, std::env::consts::ARCH, platform_name, threads)
}

/// Why a persisted DB could not be used. Every variant is recoverable:
/// callers fall back to modeled warm-up.
#[derive(Debug)]
pub enum PersistError {
    /// The file could not be read (missing, unreadable).
    Io(std::io::Error),
    /// The file is not a pl-retune DB or its header is damaged.
    Malformed(String),
    /// The file's format version is not [`PERSIST_VERSION`].
    VersionMismatch {
        /// Version found in the file.
        found: String,
    },
    /// The file was measured on a different host/topology.
    FingerprintMismatch {
        /// Fingerprint recorded in the file.
        file: String,
        /// This host's fingerprint.
        host: String,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io: {e}"),
            PersistError::Malformed(why) => write!(f, "malformed: {why}"),
            PersistError::VersionMismatch { found } => {
                write!(f, "version mismatch: file has {found:?}, expected v{PERSIST_VERSION}")
            }
            PersistError::FingerprintMismatch { file, host } => {
                write!(f, "fingerprint mismatch: file measured on {file:?}, this host is {host:?}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

/// Saves `db` with the version + fingerprint header, atomically (tmp +
/// rename, so a crashed writer never leaves a torn file where the loader
/// looks). Entries come out key-sorted — reproducible diffs.
pub fn save_measured_db(path: &Path, fingerprint: &str, db: &TuningDb) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        writeln!(f, "{MAGIC} v{PERSIST_VERSION}")?;
        writeln!(f, "{FP_PREFIX}{fingerprint}")?;
        for (key, entry) in db.entries_sorted() {
            writeln!(f, "{key}\t{}\t{}", entry.spec, entry.score)?;
        }
    }
    std::fs::rename(&tmp, path)
}

/// Loads a persisted measured DB, validating the version and that it was
/// measured on *this* host (`expect_fingerprint`). Body lines that fail
/// to parse are skipped (same tolerance as `TuningDb::load`) — a
/// partially damaged body degrades to the entries that survive, while a
/// damaged *header* rejects the whole file.
pub fn load_measured_db(path: &Path, expect_fingerprint: &str) -> Result<TuningDb, PersistError> {
    let text = std::fs::read_to_string(path).map_err(PersistError::Io)?;
    let mut lines = text.lines();
    let head = lines.next().unwrap_or("");
    let Some(version) = head.strip_prefix(MAGIC).map(str::trim) else {
        return Err(PersistError::Malformed(format!("bad magic line {head:?}")));
    };
    if version != format!("v{PERSIST_VERSION}") {
        return Err(PersistError::VersionMismatch { found: version.to_string() });
    }
    let fp_line = lines.next().unwrap_or("");
    let Some(file_fp) = fp_line.strip_prefix(FP_PREFIX) else {
        return Err(PersistError::Malformed(format!("bad fingerprint line {fp_line:?}")));
    };
    if file_fp != expect_fingerprint {
        return Err(PersistError::FingerprintMismatch {
            file: file_fp.to_string(),
            host: expect_fingerprint.to_string(),
        });
    }
    let mut db = TuningDb::new();
    for line in lines {
        let mut parts = line.split('\t');
        let (Some(k), Some(spec), Some(score)) = (parts.next(), parts.next(), parts.next()) else {
            continue;
        };
        let Ok(score) = score.parse::<f64>() else { continue };
        db.put(k, DbEntry { spec: spec.to_string(), score });
    }
    Ok(db)
}

/// Where a server's warm tuning state came from.
#[derive(Debug, PartialEq, Eq)]
pub enum WarmSource {
    /// The persisted measured DB was valid for this host and adopted
    /// (entries loaded).
    Loaded(usize),
    /// No usable persisted DB — fresh modeled warm-up ran (entries
    /// added). The contained string says why the file was not used
    /// (empty when the file simply does not exist).
    Warmed(usize, String),
}

/// The warm-or-load startup path: adopt the persisted measured DB when
/// it exists and matches this host, otherwise run the modeled
/// [`Server::warm_tuning`] search. **Never panics on a bad file** — a
/// truncated, garbage, version-mismatched or foreign-host file logs a
/// warning to stderr and degrades to the fresh search.
pub fn warm_or_load(
    server: &Server,
    platform: &Platform,
    threads: usize,
    path: &Path,
) -> WarmSource {
    let fp = host_fingerprint(platform.name, threads);
    match load_measured_db(path, &fp) {
        Ok(db) => {
            let n = server.adopt_tuning(platform.name, &db);
            WarmSource::Loaded(n)
        }
        Err(PersistError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
            let added = server.warm_tuning(platform, threads);
            WarmSource::Warmed(added, String::new())
        }
        Err(e) => {
            eprintln!(
                "pl-retune: ignoring persisted tuning DB {}: {e}; falling back to modeled warm-up",
                path.display()
            );
            let added = server.warm_tuning(platform, threads);
            WarmSource::Warmed(added, e.to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("pl_retune_persist_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_db() -> TuningDb {
        let mut db = TuningDb::new();
        db.put("gemm/zen4/32x8x32/f32", DbEntry { spec: "aBC".into(), score: 12.5 });
        db.put("gemm/zen4/64x8x32/f32", DbEntry { spec: "BCa".into(), score: 20.0 });
        db
    }

    #[test]
    fn roundtrip_preserves_entries_under_matching_fingerprint() {
        let path = tmp("roundtrip.db");
        let fp = host_fingerprint("zen4", 4);
        save_measured_db(&path, &fp, &sample_db()).unwrap();
        let loaded = load_measured_db(&path, &fp).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.get("gemm/zen4/32x8x32/f32").unwrap().spec, "aBC");
        assert!((loaded.get("gemm/zen4/64x8x32/f32").unwrap().score - 20.0).abs() < 1e-12);
    }

    #[test]
    fn foreign_fingerprint_is_rejected() {
        let path = tmp("foreign.db");
        save_measured_db(&path, "otheros/otherarch/spr/56t", &sample_db()).unwrap();
        let err = load_measured_db(&path, &host_fingerprint("zen4", 4)).unwrap_err();
        assert!(matches!(err, PersistError::FingerprintMismatch { .. }), "{err}");
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let path = tmp("version.db");
        std::fs::write(&path, "#pl-retune-db v999\n#fingerprint x\n").unwrap();
        let err = load_measured_db(&path, "x").unwrap_err();
        assert!(matches!(err, PersistError::VersionMismatch { .. }), "{err}");
    }

    #[test]
    fn garbage_and_truncated_files_error_instead_of_panicking() {
        let garbage = tmp("garbage.db");
        std::fs::write(&garbage, "\x00\x01binary junk\nnot a header").unwrap();
        assert!(matches!(
            load_measured_db(&garbage, "fp").unwrap_err(),
            PersistError::Malformed(_)
        ));
        // Truncated mid-header: magic line only.
        let trunc = tmp("trunc.db");
        std::fs::write(&trunc, format!("{MAGIC} v{PERSIST_VERSION}\n")).unwrap();
        assert!(matches!(load_measured_db(&trunc, "fp").unwrap_err(), PersistError::Malformed(_)));
        // Missing file is Io.
        assert!(matches!(
            load_measured_db(&tmp("never-written.db"), "fp").unwrap_err(),
            PersistError::Io(_)
        ));
    }

    #[test]
    fn damaged_body_lines_degrade_to_surviving_entries() {
        let path = tmp("body.db");
        let fp = "fp";
        let text = format!(
            "{MAGIC} v{PERSIST_VERSION}\n{FP_PREFIX}{fp}\nk1\taBC\t1.5\ngarbage without tabs\nk2\tspec\tNaN-ish-not-a-number-x\n"
        );
        std::fs::write(&path, text).unwrap();
        let db = load_measured_db(&path, fp).unwrap();
        assert_eq!(db.len(), 1);
        assert_eq!(db.get("k1").unwrap().spec, "aBC");
    }

    #[test]
    fn fingerprint_distinguishes_platform_and_threads() {
        assert_ne!(host_fingerprint("zen4", 4), host_fingerprint("zen4", 8));
        assert_ne!(host_fingerprint("zen4", 4), host_fingerprint("spr", 4));
    }
}
