//! Micro-benchmarking one GEMM problem on **real packed buffers**: the
//! measured half of the retune loop. Operands are packed (and, for int8,
//! quantized) exactly once per problem — the same pack-once discipline as
//! `pl_dnn::prepared::MatmulPlan` — and every candidate `loop_spec_string`
//! then runs against them, so a measurement prices only what differs
//! between candidates: the loop order and parallelization.

use pl_autotuner::GemmProblem;
use pl_kernels::{Gemm, GemmInt8, GemmShape, GemmTuning};
use pl_runtime::ThreadPool;
use pl_tensor::{
    fill_uniform, quantize_cols_blocked, quantize_weight_a_vnni, reuse_blocked, BlockedMatrix,
    DType, GridOrder, InnerLayout, Xorshift,
};
use std::time::Instant;

/// The VNNI factor the int8 measurement uses — degraded by halving until
/// it divides the K blocking, mirroring the fit `MatmulPlan` applies when
/// it builds its kernels, so the measured kernel is the served kernel.
fn vnni_fit(v: usize, bk: usize) -> usize {
    let mut f = v.max(1);
    while f > 1 && !bk.is_multiple_of(f) {
        f /= 2;
    }
    f
}

enum Operands {
    F32 {
        weight: BlockedMatrix<f32>,
        act: BlockedMatrix<f32>,
    },
    Int8 {
        qweight: BlockedMatrix<i8>,
        wscales: Vec<f32>,
        qact: BlockedMatrix<i8>,
        ascales: Vec<f32>,
        v: usize,
    },
}

/// Pre-packed operands for one [`GemmProblem`], reusable across every
/// candidate spec measured for it.
pub struct GemmMeasurer {
    problem: GemmProblem,
    operands: Operands,
    out: Option<BlockedMatrix<f32>>,
}

impl GemmMeasurer {
    /// Packs (and for [`DType::I8`] quantizes) seeded pseudo-random
    /// operands at the problem's exact blockings. Returns `None` for
    /// dtypes the serving path has no kernel for, or when the blockings
    /// do not divide the problem (nothing to measure either way).
    pub fn new(problem: &GemmProblem) -> Option<Self> {
        let (m, n, k) = (problem.m, problem.n, problem.k);
        let (bm, bn, bk) = (problem.bm, problem.bn, problem.bk);
        if bm == 0 || bn == 0 || bk == 0 || m % bm != 0 || n % bn != 0 || k % bk != 0 {
            return None;
        }
        let mut rng = Xorshift::new(0x5eed ^ (m * 31 + n * 7 + k) as u64);
        let mut wflat = vec![0.0f32; m * k];
        fill_uniform(&mut wflat, &mut rng, -1.0, 1.0);
        let mut aflat = vec![0.0f32; k * n];
        fill_uniform(&mut aflat, &mut rng, -1.0, 1.0);
        let mut act_slot = None;
        let act = reuse_blocked::<f32>(
            &mut act_slot,
            k,
            n,
            bk,
            bn,
            GridOrder::ColBlockMajor,
            InnerLayout::ColMajor,
        )
        .ok()?;
        act.pack_from_colmajor(&aflat);
        let operands = match problem.dtype {
            DType::F32 => {
                let mut weight = BlockedMatrix::<f32>::a_layout(m, k, bm, bk).ok()?;
                weight.pack_from_colmajor(&wflat);
                Operands::F32 { weight, act: act_slot? }
            }
            DType::I8 => {
                let v = vnni_fit(DType::I8.vnni_factor(), bk);
                let (qweight, wscales) = quantize_weight_a_vnni(&wflat, m, k, bm, bk, v).ok()?;
                let mut qact_slot = None;
                let qact = reuse_blocked::<i8>(
                    &mut qact_slot,
                    k,
                    n,
                    bk,
                    bn,
                    GridOrder::ColBlockMajor,
                    InnerLayout::ColMajor,
                )
                .ok()?;
                let mut ascales = vec![0.0f32; n];
                quantize_cols_blocked(act, qact, &mut ascales);
                Operands::Int8 { qweight, wscales, qact: qact_slot?, ascales, v }
            }
            _ => return None,
        };
        Some(GemmMeasurer { problem: *problem, operands, out: None })
    }

    /// Measures one candidate: builds the kernel for `(spec, blocks)`,
    /// runs one untimed warm-up execution, then takes the best of `reps`
    /// timed executions on `pool`. Returns measured GFLOPS, or `None`
    /// when the kernel rejects the spec (infeasible nest — the candidate
    /// is simply not installable).
    pub fn measure(
        &mut self,
        spec: &str,
        blocks: &[Vec<usize>; 3],
        reps: usize,
        pool: &ThreadPool,
    ) -> Option<f64> {
        let p = &self.problem;
        let shape = GemmShape { m: p.m, n: p.n, k: p.k, bm: p.bm, bn: p.bn, bk: p.bk };
        let tuning = GemmTuning {
            spec: spec.to_string(),
            k_step: 1,
            a_blocks: blocks[0].clone(),
            b_blocks: blocks[1].clone(),
            c_blocks: blocks[2].clone(),
        };
        let c = reuse_blocked::<f32>(
            &mut self.out,
            p.m,
            p.n,
            p.bm,
            p.bn,
            GridOrder::ColBlockMajor,
            InnerLayout::ColMajor,
        )
        .ok()?;
        let mut best = f64::INFINITY;
        match &self.operands {
            Operands::F32 { weight, act } => {
                let g = Gemm::<f32, f32, f32>::new(shape, tuning).ok()?;
                g.execute(weight, act, c, pool).ok()?;
                for _ in 0..reps.max(1) {
                    let t0 = Instant::now();
                    g.execute(weight, act, c, pool).ok()?;
                    best = best.min(t0.elapsed().as_secs_f64());
                }
            }
            Operands::Int8 { qweight, wscales, qact, ascales, v } => {
                let g = GemmInt8::new(shape, tuning, *v).ok()?;
                g.execute(qweight, wscales, qact, ascales, c, pool).ok()?;
                for _ in 0..reps.max(1) {
                    let t0 = Instant::now();
                    g.execute(qweight, wscales, qact, ascales, c, pool).ok()?;
                    best = best.min(t0.elapsed().as_secs_f64());
                }
            }
        }
        let flops = 2.0 * p.m as f64 * p.n as f64 * p.k as f64;
        Some(flops / best.max(1e-12) / 1e9)
    }

    /// The problem being measured.
    pub fn problem(&self) -> &GemmProblem {
        &self.problem
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> ThreadPool {
        ThreadPool::new(2)
    }

    #[test]
    fn f32_measurement_scores_legal_specs_and_rejects_garbage() {
        let p = GemmProblem { m: 64, n: 8, k: 64, bm: 32, bn: 8, bk: 32, dtype: DType::F32 };
        let mut m = GemmMeasurer::new(&p).expect("packable problem");
        let pool = pool();
        let empty = [Vec::new(), Vec::new(), Vec::new()];
        let g = m.measure("aBC", &empty, 2, &pool).expect("legal spec measures");
        assert!(g > 0.0 && g.is_finite());
        assert!(m.measure("azq", &empty, 1, &pool).is_none(), "bad spec must not score");
    }

    #[test]
    fn i8_measurement_runs_the_quantized_kernel() {
        let p = GemmProblem { m: 32, n: 4, k: 32, bm: 32, bn: 4, bk: 32, dtype: DType::I8 };
        let mut m = GemmMeasurer::new(&p).expect("quantizable problem");
        let g = m.measure("abC", &[Vec::new(), Vec::new(), Vec::new()], 1, &pool());
        assert!(g.expect("i8 spec measures") > 0.0);
    }

    #[test]
    fn indivisible_blockings_and_unsupported_dtypes_are_unmeasurable() {
        let bad = GemmProblem { m: 60, n: 8, k: 64, bm: 32, bn: 8, bk: 32, dtype: DType::F32 };
        assert!(GemmMeasurer::new(&bad).is_none());
        let bf16 = GemmProblem { m: 64, n: 8, k: 64, bm: 32, bn: 8, bk: 32, dtype: DType::Bf16 };
        assert!(GemmMeasurer::new(&bf16).is_none());
    }
}
