//! The committed retune artifact (`TUNE_db.json`): machine-readable
//! before/after evidence that the retune loop ran — per-shape measured
//! winners next to the incumbent they replaced, the measured
//! fused-vs-serial decisions per batch width, and before/after-retune
//! serving throughput rows. Lives alongside `BENCH_serve.json`
//! (hand-rolled JSON, same idiom — no serialization crates here).

use crate::retuner::RetuneReport;
use pl_serve::BatchModeTable;

/// File name of the committed retune artifact (resolve with
/// `pl_bench::workspace_path`).
pub const TUNE_DB_ARTIFACT: &str = "TUNE_db.json";

/// One before/after serving-throughput row.
#[derive(Debug, Clone)]
pub struct ServeRow {
    /// `"pre-retune"` or `"post-retune"`.
    pub phase: String,
    /// Execution mode the row measured (`"serial"`, `"fused"`, or
    /// `"decided"` for the post-retune policy-driven run).
    pub mode: String,
    /// Batch width.
    pub batch: usize,
    /// Shard count.
    pub shards: usize,
    /// Measured decode throughput.
    pub steps_per_s: f64,
}

/// The artifact document.
#[derive(Debug, Clone, Default)]
pub struct TuneArtifact {
    /// Host fingerprint the measurements are valid for.
    pub fingerprint: String,
    /// Per-shape outcomes: `(key, old_spec, old_gflops, new_spec,
    /// new_gflops, weight, changed)`.
    pub shapes: Vec<(String, String, f64, String, f64, u64, bool)>,
    /// Mode decisions: `(batch, serial_steps_per_s, fused_steps_per_s,
    /// fused)`.
    pub decisions: Vec<(usize, f64, f64, bool)>,
    /// Before/after serving rows.
    pub serve: Vec<ServeRow>,
}

impl TuneArtifact {
    /// Folds a cycle's outcomes in (absent incumbents render as `"-"`
    /// with 0 GFLOPS).
    pub fn add_report(&mut self, report: &RetuneReport) {
        for o in &report.outcomes {
            self.shapes.push((
                o.key.clone(),
                o.old_spec.clone().unwrap_or_else(|| "-".into()),
                o.old_gflops.unwrap_or(0.0),
                o.new_spec.clone(),
                o.new_gflops,
                o.weight,
                o.changed,
            ));
        }
    }

    /// Folds a measured decision table in.
    pub fn add_decisions(&mut self, table: &BatchModeTable) {
        for &(batch, fused, serial_sps, fused_sps) in table.rows() {
            self.decisions.push((batch, serial_sps, fused_sps, fused));
        }
    }

    /// Renders the document. Row order is insertion order — callers add
    /// shapes hottest-first, so regeneration on an unchanged workload
    /// diffs cleanly.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"artifact\": \"tune_db\",\n");
        out.push_str(&format!("  \"fingerprint\": \"{}\",\n", self.fingerprint));
        out.push_str("  \"rows\": [\n");
        let mut rows: Vec<String> = Vec::new();
        for (key, old_spec, old_gflops, new_spec, new_gflops, weight, changed) in &self.shapes {
            rows.push(format!(
                "    {{\"kind\": \"shape\", \"key\": \"{key}\", \"old_spec\": \"{old_spec}\", \
                 \"old_gflops\": {old_gflops:.3}, \"new_spec\": \"{new_spec}\", \
                 \"new_gflops\": {new_gflops:.3}, \"weight\": {weight}, \"changed\": {changed}}}"
            ));
        }
        for (batch, serial, fused_sps, fused) in &self.decisions {
            rows.push(format!(
                "    {{\"kind\": \"decision\", \"batch\": {batch}, \
                 \"serial_steps_per_s\": {serial:.3}, \"fused_steps_per_s\": {fused_sps:.3}, \
                 \"fused\": {fused}}}"
            ));
        }
        for r in &self.serve {
            rows.push(format!(
                "    {{\"kind\": \"serve\", \"phase\": \"{}\", \"mode\": \"{}\", \
                 \"batch\": {}, \"shards\": {}, \"steps_per_s\": {:.3}}}",
                r.phase, r.mode, r.batch, r.shards, r.steps_per_s
            ));
        }
        out.push_str(&rows.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Minimal structural validation of a rendered artifact: header present,
/// braces/brackets balanced, and at least the row kinds counted. Returns
/// `(shape_rows, decision_rows, serve_rows)`, or `None` when the text is
/// not a tune_db document — what the demo and CI assert after writing.
pub fn parse_summary(json: &str) -> Option<(usize, usize, usize)> {
    if !json.contains("\"artifact\": \"tune_db\"") || !json.contains("\"fingerprint\"") {
        return None;
    }
    let balanced = |open: char, close: char| {
        let mut depth = 0i64;
        for c in json.chars() {
            if c == open {
                depth += 1;
            } else if c == close {
                depth -= 1;
                if depth < 0 {
                    return false;
                }
            }
        }
        depth == 0
    };
    if !balanced('{', '}') || !balanced('[', ']') {
        return None;
    }
    let count = |kind: &str| json.matches(&format!("\"kind\": \"{kind}\"")).count();
    Some((count("shape"), count("decision"), count("serve")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TuneArtifact {
        let mut a =
            TuneArtifact { fingerprint: "linux/x86_64/zen4/4t".into(), ..Default::default() };
        a.shapes.push((
            "gemm/zen4/32x8x32/f32".into(),
            "abc".into(),
            1.2,
            "aBC".into(),
            9.7,
            640,
            true,
        ));
        a.add_decisions(&BatchModeTable::from_measurements(&[(8, 10100.0, 7800.0)]));
        a.serve.push(ServeRow {
            phase: "pre-retune".into(),
            mode: "fused".into(),
            batch: 8,
            shards: 1,
            steps_per_s: 7800.0,
        });
        a.serve.push(ServeRow {
            phase: "post-retune".into(),
            mode: "decided".into(),
            batch: 8,
            shards: 1,
            steps_per_s: 10050.0,
        });
        a
    }

    #[test]
    fn renders_and_validates() {
        let json = sample().to_json();
        assert_eq!(parse_summary(&json), Some((1, 1, 2)));
        assert!(json.contains("\"old_spec\": \"abc\""));
        assert!(json.contains("\"new_spec\": \"aBC\""));
        assert!(json.contains("\"fused\": false"), "B=8 decision must be serial: {json}");
        assert!(json.contains("\"phase\": \"post-retune\""));
    }

    #[test]
    fn truncated_or_foreign_text_fails_validation() {
        let json = sample().to_json();
        assert!(parse_summary(&json[..json.len() / 2]).is_none(), "truncated must not parse");
        assert!(parse_summary("{\"bench\": \"serve_throughput\"}").is_none());
        assert!(parse_summary("").is_none());
    }

    #[test]
    fn empty_artifact_still_renders_balanced_json() {
        let json = TuneArtifact { fingerprint: "fp".into(), ..Default::default() }.to_json();
        assert_eq!(parse_summary(&json), Some((0, 0, 0)));
    }
}
