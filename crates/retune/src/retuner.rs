//! The retune cycle: harvest hot shapes from live serving statistics,
//! rank candidates with the analytical model, **measure** the survivors
//! on real packed buffers, and install winners through the registry
//! epoch — zero serving downtime (prepared plans re-resolve their
//! kernels on the next execution after an epoch advance; serial decode
//! values are unchanged by spec choice, so in-flight streams stay
//! bit-identical across the install).

use crate::measure::GemmMeasurer;
use pl_autotuner::{tune_gemm_ranked_measured, Constraints, DbEntry, GemmProblem, TuningDb};
use pl_perfmodel::Platform;
use pl_router::Router;
use pl_runtime::ThreadPool;
use pl_serve::{BatchModeTable, Server};
use std::time::{Duration, Instant};

/// Knobs bounding one retune cycle.
#[derive(Debug, Clone)]
pub struct RetuneConfig {
    /// Model-ranked candidates measured per shape (the incumbent spec is
    /// always measured on top of these).
    pub top_k: usize,
    /// Hottest shapes retuned per cycle; colder shapes wait for the next
    /// cycle.
    pub max_shapes: usize,
    /// Timed kernel executions per candidate (best-of — robust to a
    /// scheduling hiccup on a loaded host).
    pub reps: usize,
    /// Wall-clock budget for the measuring part of a cycle: once spent,
    /// remaining shapes are skipped (reported, not silently dropped).
    pub budget: Duration,
    /// Minimum relative measured gain over the incumbent required to
    /// replace it (hysteresis — don't churn the registry over noise).
    pub min_gain: f64,
    /// Candidate-space cap handed to the spec generator.
    pub max_candidates: usize,
}

impl Default for RetuneConfig {
    fn default() -> Self {
        RetuneConfig {
            top_k: 6,
            max_shapes: 8,
            reps: 3,
            budget: Duration::from_secs(5),
            min_gain: 0.02,
            max_candidates: 200,
        }
    }
}

/// What one retuned shape decided.
#[derive(Debug, Clone)]
pub struct ShapeOutcome {
    /// The tuning-DB key.
    pub key: String,
    /// The problem (exact plan blockings, precision included).
    pub problem: GemmProblem,
    /// Traffic weight from the harvest (execution count).
    pub weight: u64,
    /// Incumbent spec before the cycle (`None`: key was unwarmed).
    pub old_spec: Option<String>,
    /// The incumbent's **measured** GFLOPS (`None`: absent or
    /// unmeasurable — e.g. an infeasible planted spec).
    pub old_gflops: Option<f64>,
    /// The spec installed after the cycle (may equal `old_spec`).
    pub new_spec: String,
    /// Its measured GFLOPS.
    pub new_gflops: f64,
    /// Whether the installed spec differs from the incumbent.
    pub changed: bool,
    /// Candidates that returned a measurement.
    pub candidates_measured: usize,
}

/// One cycle's summary.
#[derive(Debug, Clone)]
pub struct RetuneReport {
    /// Per-shape outcomes, hottest first.
    pub outcomes: Vec<ShapeOutcome>,
    /// Hot shapes harvested (before the `max_shapes` cut).
    pub hot_shapes: usize,
    /// Shapes skipped: over `max_shapes`, over budget, or unmeasurable.
    pub shapes_skipped: usize,
    /// Outcomes whose installed spec changed.
    pub specs_changed: usize,
    /// Registry epoch before the cycle.
    pub epoch_before: u64,
    /// Registry epoch after — `epoch_before + 1` exactly when something
    /// changed (one install per cycle), unchanged otherwise.
    pub epoch_after: u64,
    /// Cycle wall time.
    pub cycle_seconds: f64,
}

impl RetuneReport {
    /// Whether the cycle installed any new spec.
    pub fn changed(&self) -> bool {
        self.specs_changed > 0
    }

    /// Folds this cycle into `metrics` (the serving registry the cycle
    /// ran against): cycles, epoch bumps, specs changed, shapes
    /// measured/skipped, and wall-clock budget spent. Counters only —
    /// retune activity is cumulative, and scrape-side `rate()` recovers
    /// per-cycle behavior. The router path publishes into shard 0's
    /// registry alone so a fleet-wide [`pl_serve::MetricsSnapshot`]
    /// merge counts each cycle once, not once per shard.
    pub fn publish(&self, metrics: &pl_serve::MetricsRegistry) {
        metrics.help("pl_retune_cycles_total", "Retune cycles run");
        metrics.help("pl_retune_epoch_bumps_total", "Registry epoch advances from retuning");
        metrics.help("pl_retune_specs_changed_total", "Kernel specs replaced by retuning");
        metrics.help("pl_retune_shapes_measured_total", "Hot shapes measured by retune cycles");
        metrics
            .help("pl_retune_shapes_skipped_total", "Hot shapes skipped (budget/cut/unmeasurable)");
        metrics.help("pl_retune_budget_spent_ms_total", "Wall-clock spent in retune cycles (ms)");
        metrics.counter("pl_retune_cycles_total", &[]).inc();
        metrics
            .counter("pl_retune_epoch_bumps_total", &[])
            .add(self.epoch_after.saturating_sub(self.epoch_before));
        metrics.counter("pl_retune_specs_changed_total", &[]).add(self.specs_changed as u64);
        metrics.counter("pl_retune_shapes_measured_total", &[]).add(self.outcomes.len() as u64);
        metrics.counter("pl_retune_shapes_skipped_total", &[]).add(self.shapes_skipped as u64);
        metrics
            .counter("pl_retune_budget_spent_ms_total", &[])
            .add((self.cycle_seconds * 1000.0) as u64);
    }
}

/// The retuning service: holds the platform identity measurements are
/// keyed under and the cycle bounds. Run cycles from a background (or
/// maintenance) thread with a **dedicated small pool** — measurements
/// must not execute on the serving threads.
pub struct Retuner {
    platform: Platform,
    threads: usize,
    cfg: RetuneConfig,
}

impl Retuner {
    /// A retuner measuring as `platform` at `threads` (the model-ranking
    /// thread count — use the serving pool's size so ranked candidates
    /// are ranked for the parallelism they will serve at).
    pub fn new(platform: Platform, threads: usize, cfg: RetuneConfig) -> Self {
        Retuner { platform, threads, cfg }
    }

    /// The platform measurements are keyed under.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// One retune cycle against a single [`Server`]: harvest its hot
    /// shapes, measure, and — when a winner beats an incumbent — install
    /// the updated snapshot via [`Server::adopt_tuning`] (exactly one
    /// registry-epoch bump per changing cycle). A cycle that changes
    /// nothing still refreshes the server's local DB with the measured
    /// scores, without bumping the epoch.
    pub fn run_cycle(&self, server: &Server, pool: &ThreadPool) -> RetuneReport {
        let t0 = Instant::now();
        let epoch_before = pl_dnn::tuning::epoch();
        let hot = server.hot_gemm_problems();
        let hot_shapes = hot.len();
        let mut db = server.tuning_db().clone();
        let (outcomes, skipped) = self.retune_into(&hot, &mut db, pool, t0);
        let specs_changed = outcomes.iter().filter(|o| o.changed).count();
        if specs_changed > 0 {
            server.adopt_tuning(self.platform.name, &db);
        } else {
            server.set_tuning_db(&db);
        }
        let report = RetuneReport {
            outcomes,
            hot_shapes,
            shapes_skipped: skipped,
            specs_changed,
            epoch_before,
            epoch_after: pl_dnn::tuning::epoch(),
            cycle_seconds: t0.elapsed().as_secs_f64(),
        };
        report.publish(server.metrics());
        report
    }

    /// Fleet-wide retune: harvest hot shapes from **every** shard
    /// (weights merged by shape), measure once, and adopt the winning
    /// snapshot everywhere via [`Router::adopt_tuning`] — measure on one
    /// host, one install, N shards updated.
    pub fn run_cycle_router(&self, router: &Router, pool: &ThreadPool) -> RetuneReport {
        let t0 = Instant::now();
        let epoch_before = pl_dnn::tuning::epoch();
        let mut hot: Vec<(GemmProblem, u64)> = Vec::new();
        for shard in router.shards() {
            for (p, w) in shard.server().hot_gemm_problems() {
                match hot
                    .iter_mut()
                    .find(|(q, _)| q.m == p.m && q.n == p.n && q.k == p.k && q.dtype == p.dtype)
                {
                    Some(entry) => entry.1 += w,
                    None => hot.push((p, w)),
                }
            }
        }
        hot.sort_by_key(|&(_, w)| std::cmp::Reverse(w));
        let hot_shapes = hot.len();
        let mut db = router.shard(0).server().tuning_db().clone();
        let (outcomes, skipped) = self.retune_into(&hot, &mut db, pool, t0);
        let specs_changed = outcomes.iter().filter(|o| o.changed).count();
        if specs_changed > 0 {
            router.adopt_tuning(self.platform.name, &db);
        } else {
            for shard in router.shards() {
                shard.server().set_tuning_db(&db);
            }
        }
        let report = RetuneReport {
            outcomes,
            hot_shapes,
            shapes_skipped: skipped,
            specs_changed,
            epoch_before,
            epoch_after: pl_dnn::tuning::epoch(),
            cycle_seconds: t0.elapsed().as_secs_f64(),
        };
        // Shard 0 only: a fleet-wide snapshot merge must count each
        // cycle once, not once per shard.
        report.publish(router.shard(0).server().metrics());
        report
    }

    /// The measuring core: for each hot problem (bounded by `max_shapes`
    /// and the wall-clock budget), rank candidates with the model,
    /// measure the top-k plus the incumbent on real packed buffers, and
    /// update `db` with the measured winner. Returns the outcomes and
    /// how many harvested shapes were skipped.
    fn retune_into(
        &self,
        hot: &[(GemmProblem, u64)],
        db: &mut TuningDb,
        pool: &ThreadPool,
        t0: Instant,
    ) -> (Vec<ShapeOutcome>, usize) {
        let constraints = Constraints::gemm(0, 1, 1, self.cfg.max_candidates);
        let mut outcomes = Vec::new();
        let mut skipped = hot.len().saturating_sub(self.cfg.max_shapes);
        for (problem, weight) in hot.iter().take(self.cfg.max_shapes) {
            if t0.elapsed() > self.cfg.budget {
                skipped += 1;
                continue;
            }
            let key = TuningDb::gemm_key(
                self.platform.name,
                problem.m,
                problem.n,
                problem.k,
                &problem.dtype.to_string(),
            );
            let Some(mut measurer) = GemmMeasurer::new(problem) else {
                skipped += 1;
                continue;
            };
            let incumbent = db.get(&key).cloned();
            let extra: Vec<String> = incumbent.iter().map(|e| e.spec.clone()).collect();
            let result = tune_gemm_ranked_measured(
                problem,
                &constraints,
                &self.platform,
                self.threads,
                self.cfg.top_k,
                &extra,
                |spec, blocks| measurer.measure(spec, blocks, self.cfg.reps, pool),
            );
            if result.evaluated.is_empty() {
                skipped += 1;
                continue;
            }
            let best = result.best.clone();
            let old_gflops = incumbent
                .as_ref()
                .and_then(|e| result.evaluated.iter().find(|c| c.spec == e.spec))
                .map(|c| c.score);
            // Replace when there is no (measurable) incumbent, or when the
            // challenger's measured advantage clears the hysteresis bar.
            let replace = match (&incumbent, old_gflops) {
                (None, _) | (Some(_), None) => true,
                (Some(e), Some(inc)) => {
                    best.spec != e.spec && best.score > inc * (1.0 + self.cfg.min_gain)
                }
            };
            let (new_spec, new_gflops) = if replace {
                db.put(&key, DbEntry { spec: best.spec.clone(), score: best.score });
                (best.spec.clone(), best.score)
            } else {
                // The incumbent stands; refresh its score to the measured
                // value so the persisted DB carries measured numbers.
                let spec = incumbent.as_ref().expect("incumbent exists").spec.clone();
                let score = old_gflops.expect("incumbent measured");
                db.put(&key, DbEntry { spec: spec.clone(), score });
                (spec, score)
            };
            let changed = incumbent.as_ref().map(|e| &e.spec) != Some(&new_spec);
            outcomes.push(ShapeOutcome {
                key,
                problem: *problem,
                weight: *weight,
                old_spec: incumbent.map(|e| e.spec),
                old_gflops,
                new_spec,
                new_gflops,
                changed,
                candidates_measured: result.evaluated.len(),
            });
        }
        (outcomes, skipped)
    }
}

/// Forces every batch width to one mode via a degenerate policy table —
/// the lever [`measure_mode_crossover`] uses to measure both sides on a
/// live server regardless of its `ServerConfig::fused` flag.
pub fn force_mode(server: &Server, fused: bool) {
    let (serial, fused_sps) = if fused { (0.0, 1.0) } else { (1.0, 0.0) };
    server.install_mode_policy(BatchModeTable::from_measurements(&[(1, serial, fused_sps)]));
}

/// Measures the serial-vs-fused crossover on a live (manually pumped)
/// server: for each batch width, drives `steps` closed-loop rounds of
/// `width` concurrent sessions through the real submit/pump path in each
/// mode and reports `(width, serial_steps_per_s, fused_steps_per_s)` —
/// the rows [`BatchModeTable::from_measurements`] wants. Sessions are
/// created and closed per measurement, so each needs `steps` tokens of
/// KV capacity. The previously installed mode policy is **not**
/// restored — install the measured table (or an empty one) after.
pub fn measure_mode_crossover(
    server: &Server,
    widths: &[usize],
    steps: usize,
) -> Vec<(usize, f64, f64)> {
    widths
        .iter()
        .map(|&w| {
            force_mode(server, false);
            let serial = drive_width(server, w, steps);
            force_mode(server, true);
            let fused = drive_width(server, w, steps);
            (w, serial, fused)
        })
        .collect()
}

/// Measures the decode-under-prefill tradeoff for each candidate
/// prefill chunk size on a live (manually pumped) server, and installs
/// the winner via [`Server::set_prefill_chunk`]. For each candidate:
/// `width` decode sessions run `steps` closed-loop rounds while one
/// `prompt_tokens`-long prefill is in flight, chunked at the candidate
/// size; the score is decode steps/s (the quantity chunking protects —
/// a too-large chunk blocks decode lanes, a too-small one pays per-chunk
/// overhead). Returns `(chunk, decode_steps_per_s)` rows plus the
/// installed winner. Sessions need `steps` (decode) and `prompt_tokens`
/// (prefill) tokens of KV capacity.
pub fn tune_prefill_chunk(
    server: &Server,
    chunks: &[usize],
    prompt_tokens: usize,
    width: usize,
    steps: usize,
) -> (Vec<(usize, f64)>, usize) {
    let hidden = server.model().config().hidden;
    let prompt = vec![0.1f32; hidden * prompt_tokens];
    let rows: Vec<(usize, f64)> = chunks
        .iter()
        .map(|&chunk| {
            server.set_prefill_chunk(chunk);
            let decode: Vec<_> =
                (0..width).map(|_| server.create_session(0).expect("decode session")).collect();
            let prefill_id = server.create_session(0).expect("prefill session");
            let token = vec![0.1f32; hidden];
            let t0 = Instant::now();
            let prx =
                server.submit_prefill(prefill_id, &prompt, prompt_tokens).expect("submit prefill");
            for _ in 0..steps {
                let rxs: Vec<_> = decode
                    .iter()
                    .map(|&id| server.submit_step(id, &token).expect("submit"))
                    .collect();
                while server.in_flight() > 0 {
                    server.pump();
                }
                for rx in rxs {
                    rx.recv().expect("reply").expect("step ok");
                }
            }
            while server.in_flight() > 0 {
                server.pump();
            }
            prx.recv().expect("prefill reply").expect("prefill ok");
            let secs = t0.elapsed().as_secs_f64().max(1e-9);
            for id in decode {
                server.close_session(id).expect("close decode session");
            }
            server.close_session(prefill_id).expect("close prefill session");
            (chunk, (width * steps) as f64 / secs)
        })
        .collect();
    let (best, _) =
        rows.iter().fold(
            (server.prefill_chunk(), 0.0),
            |acc, &(c, s)| {
                if s > acc.1 {
                    (c, s)
                } else {
                    acc
                }
            },
        );
    server.set_prefill_chunk(best);
    (rows, best)
}

/// Drives `steps` closed-loop rounds of `width` sessions and returns
/// steps/s. Panics on serving errors — measurement drivers run under
/// controlled conditions (fresh sessions, capacity sized by the caller).
fn drive_width(server: &Server, width: usize, steps: usize) -> f64 {
    let hidden = server.model().config().hidden;
    let sessions: Vec<_> =
        (0..width).map(|_| server.create_session(0).expect("measurement session")).collect();
    let token = vec![0.1f32; hidden];
    let t0 = Instant::now();
    for _ in 0..steps {
        let rxs: Vec<_> =
            sessions.iter().map(|&id| server.submit_step(id, &token).expect("submit")).collect();
        while server.in_flight() > 0 {
            server.pump();
        }
        for rx in rxs {
            rx.recv().expect("reply").expect("step ok");
        }
    }
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    for id in sessions {
        server.close_session(id).expect("close measurement session");
    }
    (width * steps) as f64 / secs
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_dnn::{DecoderConfig, DecoderModel};
    use pl_serve::ServerConfig;
    use std::sync::Arc;

    /// Registry-safe: `tune_prefill_chunk` only touches server-local
    /// state (the prefill-chunk knob), never the global tuning registry.
    #[test]
    fn prefill_chunk_tuner_measures_and_installs_the_winner() {
        let model = Arc::new(DecoderModel::new(DecoderConfig::scaled_for_tests(), 11));
        let pool = Arc::new(ThreadPool::new(1));
        let server = Server::new(
            model,
            pool,
            ServerConfig {
                max_batch: 4,
                kv_capacity: 32,
                coalesce_wait: Duration::ZERO,
                ..Default::default()
            },
        );
        let (rows, best) = tune_prefill_chunk(&server, &[4, 8], 8, 2, 4);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|&(_, sps)| sps > 0.0), "every candidate must measure: {rows:?}");
        assert!(rows.iter().any(|&(c, _)| c == best), "winner must come from the candidates");
        assert_eq!(server.prefill_chunk(), best, "the winner is installed on the live server");
    }
}
