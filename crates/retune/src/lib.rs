//! pl-retune: a background retuning service that closes the
//! tune-measure-install loop against **live serving statistics**.
//!
//! The modeled autotuner (`pl_autotuner` + `pl_perfmodel`) picks loop
//! specs without ever running a kernel — fast, but wrong exactly where
//! the model is wrong. This crate feeds the model's ranking back through
//! reality:
//!
//! 1. **Harvest** hot GEMM shapes from a running [`pl_serve::Server`]
//!    (or a whole [`pl_router::Router`] fleet) via the per-shape
//!    statistics the serving path already collects.
//! 2. **Rank** candidate loop specs per hot shape with the existing
//!    perfmodel scorer ([`pl_perfmodel::rank_gemm_candidates`]).
//! 3. **Measure** the top-k candidates (plus the incumbent) on real
//!    packed — and for int8, quantized — buffers ([`GemmMeasurer`]),
//!    off the serving threads, under a bounded time budget.
//! 4. **Install** winners through the `pl_dnn::tuning` registry epoch,
//!    so prepared plans re-resolve their kernels with zero downtime
//!    and bit-identical outputs ([`Retuner::run_cycle`]).
//! 5. **Persist** the measured DB keyed by a host/topology fingerprint
//!    ([`save_measured_db`] / [`warm_or_load`]), so the next process
//!    start on the same host skips straight to measured state.
//!
//! The same measured loop also learns *serve-level* knobs: the
//! fused-vs-serial crossover per batch width ([`measure_mode_crossover`]
//! → [`pl_serve::BatchModeTable`]) and the live prefill chunk size
//! (`Server::set_prefill_chunk`).

pub mod artifact;
pub mod measure;
pub mod persist;
pub mod retuner;

pub use artifact::{parse_summary, ServeRow, TuneArtifact, TUNE_DB_ARTIFACT};
pub use measure::GemmMeasurer;
pub use persist::{
    host_fingerprint, load_measured_db, save_measured_db, warm_or_load, PersistError, WarmSource,
    PERSIST_VERSION,
};
pub use retuner::{
    force_mode, measure_mode_crossover, tune_prefill_chunk, RetuneConfig, RetuneReport, Retuner,
    ShapeOutcome,
};
