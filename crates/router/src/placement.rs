//! Least-loaded placement of new sessions over shards.
//!
//! The same pull-based philosophy as the paper's PAR-MODE dynamic
//! schedule, one level further up: work (a session) goes wherever
//! capacity is, decided at admission time. After placement the session is
//! *affine*: its KV cache lives in the shard's memory, and moving it
//! costs more than any rebalancing could win at decode timescales, so
//! the hot path never migrates. Moves do exist — but only as explicit,
//! quiesced control-plane actions ([`crate::Router::migrate_session`],
//! `rebalance`, `recover_shard`) that serialize the KV snapshot between
//! shards off the decode path.
//!
//! Health feeds placement: a shard whose [`Health`] is not
//! [`Health::Healthy`] — degraded (SLO burn over threshold), draining
//! (operator intent) or stalled (watchdog) — is excluded from the
//! candidate list. Existing sessions keep stepping on their shard either
//! way; health only gates **new** placements. The degraded state itself
//! carries hysteresis (`pl_metrics::HealthTracker`), so a shard hovering
//! at the burn threshold does not flap in and out of this list.

use pl_metrics::Health;

/// One shard's load sample at placement time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardLoad {
    /// Shard index.
    pub shard: usize,
    /// Live sessions on the shard.
    pub live_sessions: usize,
    /// Decode steps queued but not yet executed.
    pub queue_depth: usize,
    /// Draining shards are never placement candidates. (Redundant with
    /// `health == Health::Draining` — kept as the explicit operator-intent
    /// bit the drain module owns.)
    pub draining: bool,
    /// Health state derived from the shard's SLO windows and watchdog;
    /// only [`Health::Healthy`] shards take new sessions.
    pub health: Health,
}

impl ShardLoad {
    /// The scalar placement key: sessions + queued steps. Both terms
    /// matter — sessions predict future load (each will keep stepping),
    /// queue depth measures present congestion.
    pub fn score(&self) -> usize {
        self.live_sessions + self.queue_depth
    }

    /// Whether this shard accepts new sessions.
    pub fn placeable(&self) -> bool {
        !self.draining && self.health.placeable()
    }
}

/// Placement-ordered candidate list: placeable (healthy, non-draining)
/// shards sorted by ascending [`ShardLoad::score`], ties broken by
/// lowest shard index (so placement is deterministic and the first
/// shards fill first at equal load). The router tries candidates in
/// order until one admits the session.
pub fn placement_order(loads: &[ShardLoad]) -> Vec<usize> {
    let mut candidates: Vec<&ShardLoad> = loads.iter().filter(|l| l.placeable()).collect();
    candidates.sort_by_key(|l| (l.score(), l.shard));
    candidates.into_iter().map(|l| l.shard).collect()
}

/// The least-loaded placeable shard, if any.
pub fn least_loaded(loads: &[ShardLoad]) -> Option<usize> {
    placement_order(loads).first().copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(shard: usize, live: usize, queued: usize, draining: bool) -> ShardLoad {
        ShardLoad {
            shard,
            live_sessions: live,
            queue_depth: queued,
            draining,
            health: if draining { Health::Draining } else { Health::Healthy },
        }
    }

    #[test]
    fn picks_smallest_combined_load() {
        let loads = [load(0, 3, 0, false), load(1, 1, 1, false), load(2, 1, 4, false)];
        assert_eq!(least_loaded(&loads), Some(1));
        // Queue depth counts: shard 0 has fewer sessions but a deep queue.
        let loads = [load(0, 1, 9, false), load(1, 3, 0, false)];
        assert_eq!(least_loaded(&loads), Some(1));
    }

    #[test]
    fn ties_break_to_lowest_index() {
        let loads = [load(2, 1, 0, false), load(0, 1, 0, false), load(1, 1, 0, false)];
        assert_eq!(least_loaded(&loads), Some(0));
        assert_eq!(placement_order(&loads), vec![0, 1, 2]);
    }

    #[test]
    fn draining_shards_are_excluded() {
        let loads = [load(0, 0, 0, true), load(1, 5, 2, false)];
        assert_eq!(least_loaded(&loads), Some(1), "idle but draining shard skipped");
        assert_eq!(placement_order(&loads), vec![1]);
        let all_draining = [load(0, 0, 0, true), load(1, 0, 0, true)];
        assert_eq!(least_loaded(&all_draining), None);
        assert_eq!(least_loaded(&[]), None);
    }

    #[test]
    fn unhealthy_shards_are_excluded() {
        for bad in [Health::Degraded, Health::Stalled] {
            let mut idle = load(0, 0, 0, false);
            idle.health = bad;
            let loads = [idle, load(1, 5, 2, false)];
            assert_eq!(least_loaded(&loads), Some(1), "idle-but-{bad} shard skipped");
            assert_eq!(placement_order(&loads), vec![1]);
        }
        // Every shard unhealthy: no candidates, admission must fail
        // loudly rather than place onto a degraded shard.
        let mut a = load(0, 0, 0, false);
        a.health = Health::Degraded;
        let mut b = load(1, 0, 0, false);
        b.health = Health::Stalled;
        assert_eq!(least_loaded(&[a, b]), None);
    }

    #[test]
    fn order_is_ascending_by_score() {
        let loads = [load(0, 4, 4, false), load(1, 0, 1, false), load(2, 2, 0, false)];
        assert_eq!(placement_order(&loads), vec![1, 2, 0]);
    }
}
