//! Least-loaded placement of new sessions over shards.
//!
//! The same pull-based philosophy as the paper's PAR-MODE dynamic
//! schedule, one level further up: work (a session) goes wherever
//! capacity is, decided at admission time. After placement the session is
//! *affine* — it never migrates, because its KV cache lives in the
//! shard's memory and moving it would cost more than any rebalancing
//! could win at decode timescales.

/// One shard's load sample at placement time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardLoad {
    /// Shard index.
    pub shard: usize,
    /// Live sessions on the shard.
    pub live_sessions: usize,
    /// Decode steps queued but not yet executed.
    pub queue_depth: usize,
    /// Draining shards are never placement candidates.
    pub draining: bool,
}

impl ShardLoad {
    /// The scalar placement key: sessions + queued steps. Both terms
    /// matter — sessions predict future load (each will keep stepping),
    /// queue depth measures present congestion.
    pub fn score(&self) -> usize {
        self.live_sessions + self.queue_depth
    }
}

/// Placement-ordered candidate list: non-draining shards sorted by
/// ascending [`ShardLoad::score`], ties broken by lowest shard index (so
/// placement is deterministic and the first shards fill first at equal
/// load). The router tries candidates in order until one admits the
/// session.
pub fn placement_order(loads: &[ShardLoad]) -> Vec<usize> {
    let mut candidates: Vec<&ShardLoad> = loads.iter().filter(|l| !l.draining).collect();
    candidates.sort_by_key(|l| (l.score(), l.shard));
    candidates.into_iter().map(|l| l.shard).collect()
}

/// The least-loaded non-draining shard, if any.
pub fn least_loaded(loads: &[ShardLoad]) -> Option<usize> {
    placement_order(loads).first().copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(shard: usize, live: usize, queued: usize, draining: bool) -> ShardLoad {
        ShardLoad { shard, live_sessions: live, queue_depth: queued, draining }
    }

    #[test]
    fn picks_smallest_combined_load() {
        let loads = [load(0, 3, 0, false), load(1, 1, 1, false), load(2, 1, 4, false)];
        assert_eq!(least_loaded(&loads), Some(1));
        // Queue depth counts: shard 0 has fewer sessions but a deep queue.
        let loads = [load(0, 1, 9, false), load(1, 3, 0, false)];
        assert_eq!(least_loaded(&loads), Some(1));
    }

    #[test]
    fn ties_break_to_lowest_index() {
        let loads = [load(2, 1, 0, false), load(0, 1, 0, false), load(1, 1, 0, false)];
        assert_eq!(least_loaded(&loads), Some(0));
        assert_eq!(placement_order(&loads), vec![0, 1, 2]);
    }

    #[test]
    fn draining_shards_are_excluded() {
        let loads = [load(0, 0, 0, true), load(1, 5, 2, false)];
        assert_eq!(least_loaded(&loads), Some(1), "idle but draining shard skipped");
        assert_eq!(placement_order(&loads), vec![1]);
        let all_draining = [load(0, 0, 0, true), load(1, 0, 0, true)];
        assert_eq!(least_loaded(&all_draining), None);
        assert_eq!(least_loaded(&[]), None);
    }

    #[test]
    fn order_is_ascending_by_score() {
        let loads = [load(0, 4, 4, false), load(1, 0, 1, false), load(2, 2, 0, false)];
        assert_eq!(placement_order(&loads), vec![1, 2, 0]);
    }
}
