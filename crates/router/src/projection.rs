//! The measured-vs-projected scaling story.
//!
//! The paper validates its cluster numbers against a strong-scaling model
//! (Table I); this module recalibrates that same model —
//! [`pl_perfmodel::ScalingModel`], compute term plus a log2-hop
//! communication term — from training nodes to serving shards, so the
//! router can print the projected multi-shard steps/s next to the
//! measured value and the demo/bench can *assert* the measurement lands
//! in the model's ballpark instead of eyeballing it.

use pl_perfmodel::ScalingModel;

/// A [`ScalingModel`] calibrated for a sharded serving tier.
///
/// Units are normalized: the "work" is one shard-interval of decode
/// (`work = 1`, `sockets_per_node = 1` — a shard is the scaling unit),
/// and `routing_overhead` is the fraction of that interval spent on
/// per-hop routing/aggregation (placement bookkeeping, stats merges,
/// cross-shard imbalance). The projected throughput speedup at `n`
/// shards is then [`ScalingModel::projected_speedup`]`(n) =
/// 1 / (1/n + routing_overhead * log2(n))` — near-linear for small
/// overheads, saturating exactly the way a real router does.
pub fn serving_scaling_model(routing_overhead: f64) -> ScalingModel {
    ScalingModel {
        work_socket_minutes: 1.0,
        sockets_per_node: 1,
        comm_minutes_per_hop: routing_overhead.max(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serving_model_projects_near_linear_small_overhead() {
        let m = serving_scaling_model(0.02);
        let s2 = m.projected_speedup(2);
        let s4 = m.projected_speedup(4);
        assert!((1.8..2.0).contains(&s2), "2-shard projection {s2}");
        assert!((3.3..4.0).contains(&s4), "4-shard projection {s4}");
        assert!(s4 > s2);
        // Closed form: 1 / (1/n + c*log2 n).
        let expect = 1.0 / (0.25 + 0.02 * 2.0);
        assert!((s4 - expect).abs() < 1e-12);
    }

    #[test]
    fn heavy_overhead_saturates() {
        let m = serving_scaling_model(0.5);
        assert!(m.projected_speedup(8) < 2.0, "routing-bound tier cannot scale");
        // Negative overhead clamps to the ideal-linear model.
        let ideal = serving_scaling_model(-1.0);
        assert!((ideal.projected_speedup(8) - 8.0).abs() < 1e-12);
    }
}
