//! # pl-router — sharded scale-out serving across core-partitioned shards
//!
//! `pl_serve::Server` scales a decoder across the threads of **one** pool;
//! this crate scales serving across **several** servers. A [`Router`] owns
//! N [`Shard`]s — each a `Server` backed by its *own* `ThreadPool` over a
//! disjoint slice of the machine's cores (e.g. 8 threads split 2×4, one
//! shard per NUMA domain in the deployment this models) — and fronts them
//! with:
//!
//! * **session affinity** ([`router`]): a session is placed on exactly one
//!   shard at creation and every subsequent prefill/step routes there, so
//!   its KV cache never moves and serial-mode decode stays bit-identical
//!   to a single-server run of the same stream;
//! * **least-loaded placement** ([`placement`]): new sessions go to the
//!   shard with the smallest live-session + queue-depth load, draining
//!   shards excluded;
//! * **graceful drains** ([`drain`]): closing a session lets queued work
//!   complete first, and whole shards can be drained (no new placements,
//!   pending work pumped dry) for rebalancing or shutdown;
//! * **session migration** ([`migrate`]): a quiesced export → import of a
//!   session's dense KV snapshot moves it between shards with a
//!   **bit-identical** continuation — what [`Router::rebalance`]
//!   (evacuating degraded shards, evening the spread) and
//!   [`Router::recover_shard`] (re-homing a drained shard's survivors)
//!   are built on;
//! * **aggregated observability** ([`stats_agg`]): per-shard
//!   `StatsSnapshot`s merge into one fleet view — counters add, latency
//!   quantiles recompute from summed histogram buckets;
//! * **a scaling projection** ([`projection`]): the paper's Table I
//!   strong-scaling model (`pl_perfmodel::ScalingModel`), recalibrated
//!   from training nodes to serving shards, projects the multi-shard
//!   steps/s win so the measured speedup can be validated against the
//!   model instead of eyeballed.
//!
//! The TPP thesis — a small set of composable primitives scaling from
//! single-core kernels to cluster workloads — is the design argument
//! here: the router composes unmodified `Server` instances exactly the
//! way `Server` composes unmodified kernels.

pub mod drain;
pub mod migrate;
pub mod placement;
pub mod projection;
pub mod router;
pub mod shard;
pub mod stats_agg;

pub use drain::DrainReport;
pub use migrate::MigrationRecord;
pub use placement::{least_loaded, placement_order, ShardLoad};
pub use projection::serving_scaling_model;
pub use router::{Router, RouterConfig, RouterSessionId};
pub use shard::{partition_threads, Shard};
pub use stats_agg::aggregate;

use pl_serve::ServeError;

/// Errors surfaced by the routing tier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouterError {
    /// The session id is not live on this router.
    UnknownSession(RouterSessionId),
    /// No shard could accept the new session (all draining or full).
    NoShardAvailable,
    /// The configuration is unusable (e.g. fewer threads than shards).
    BadConfig(String),
    /// An error from the owning shard's server.
    Serve(ServeError),
}

impl From<ServeError> for RouterError {
    fn from(e: ServeError) -> Self {
        RouterError::Serve(e)
    }
}

impl std::fmt::Display for RouterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouterError::UnknownSession(id) => write!(f, "unknown router session {id}"),
            RouterError::NoShardAvailable => write!(f, "no shard can accept a new session"),
            RouterError::BadConfig(why) => write!(f, "bad router config: {why}"),
            RouterError::Serve(e) => write!(f, "shard error: {e}"),
        }
    }
}

impl std::error::Error for RouterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RouterError::Serve(e) => Some(e),
            _ => None,
        }
    }
}
