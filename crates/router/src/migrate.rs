//! Session migration: moving a live session — KV cache and all —
//! between shards.
//!
//! Affinity is still the steady-state rule (the hot path never moves a
//! session), but it is now a *policy*, not a structural limit: the paged
//! KV layer serializes a session into a dense, page-layout-independent
//! snapshot ([`pl_serve::SessionExport`]), so the router can deliberately
//! re-home one when the fleet is unbalanced or a shard goes bad. The move
//! is **bit-identical**: the snapshot carries every KV row, the target
//! rehydrates them into its own page pool, and decoding continues as if
//! the session had never moved (asserted by the migration tests and
//! `examples/migrate_llm.rs`).
//!
//! Three entry points:
//!
//! * [`Router::migrate_session`] — one quiesced export → import move;
//! * [`Router::rebalance`] — evacuate unplaceable (degraded/stalled)
//!   shards, then even the session spread across the placeable ones;
//! * [`Router::recover_shard`] — re-home every session a
//!   [`DrainReport`] shows still living on a drained shard.

use crate::placement::placement_order;
use crate::router::{Placement, Router, RouterSessionId};
use crate::{DrainReport, RouterError};
use pl_serve::ServeError;
use std::sync::atomic::Ordering;
use std::time::Duration;

/// Retry bound on exporting a session whose shard keeps it momentarily
/// checked out — same discipline as `Router::close_session`: batches
/// re-insert their sessions before delivering replies, so each wait is
/// microseconds, and the bound only guards against a wedged shard.
const EXPORT_ATTEMPTS: usize = 256;

/// One completed session move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationRecord {
    /// The router session that moved.
    pub session: RouterSessionId,
    /// Source shard.
    pub from: usize,
    /// Destination shard.
    pub to: usize,
}

impl Router {
    /// Moves session `id` to shard `target`: quiesce the source shard
    /// (accepted work for the session completes first — the same
    /// interlock the graceful close uses), export the session's dense KV
    /// snapshot, re-admit it on the target, and rebind the router
    /// mapping. A same-shard "move" is a no-op. On an import failure
    /// (target full, snapshot larger than the target's page budget) the
    /// session is re-admitted on the **source** and the error returned —
    /// a failed migration never loses the session; only if that rollback
    /// also fails (the source shut down mid-move) is the session dropped
    /// from the routing table.
    pub fn migrate_session(&self, id: RouterSessionId, target: usize) -> Result<(), RouterError> {
        if target >= self.shards.len() {
            return Err(RouterError::BadConfig(format!(
                "migration target shard {target} out of range ({} shards)",
                self.shards.len()
            )));
        }
        let p = self.lookup(id)?;
        if p.shard == target {
            return Ok(());
        }
        // Quiesce: steps already accepted for this session (and everyone
        // else on the shard) execute before the KV snapshot is taken, so
        // the export captures the stream's true frontier.
        self.quiesce_shard(p.shard);
        let source = self.shards[p.shard].server();
        let started = self.started.load(Ordering::Acquire);
        let mut attempts = 0usize;
        let export = loop {
            match source.export_session(p.local) {
                Ok(e) => break e,
                Err(ServeError::SessionBusy { .. }) if attempts < EXPORT_ATTEMPTS => {
                    attempts += 1;
                    if started {
                        std::thread::sleep(Duration::from_micros(50));
                    } else {
                        source.pump();
                    }
                }
                Err(e) => return Err(RouterError::Serve(e)),
            }
        };
        match self.shards[target].server().import_session(&export) {
            Ok(local) => {
                self.sessions.lock().insert(id, Placement { shard: target, local });
                Ok(())
            }
            Err(e) => {
                match source.import_session(&export) {
                    Ok(local) => {
                        self.sessions.lock().insert(id, Placement { shard: p.shard, local });
                    }
                    Err(_) => {
                        self.sessions.lock().remove(&id);
                    }
                }
                Err(RouterError::Serve(e))
            }
        }
    }

    /// Rebalances live sessions across the fleet. Two passes, both built
    /// on [`Router::migrate_session`]:
    ///
    /// 1. **evacuate** — every session on a shard that is not placeable
    ///    for *health* reasons (degraded SLO burn, stalled watchdog;
    ///    draining is operator intent and handled by
    ///    [`Router::recover_shard`]) moves to the least-loaded placeable
    ///    shard, so a bad shard sheds its load instead of holding
    ///    sessions hostage while it recovers;
    /// 2. **spread** — while the most- and least-loaded placeable shards
    ///    differ by more than one session, one moves, so a fleet that
    ///    drained and refilled unevenly converges back to balance.
    ///
    /// Returns the moves performed. Every move is quiesced and
    /// bit-identical; a move that fails ends the pass with the moves made
    /// so far (the fleet is never left worse than before the call).
    pub fn rebalance(&self) -> Vec<MigrationRecord> {
        let mut moved = Vec::new();
        // Pass 1: evacuate unhealthy shards.
        loop {
            let loads = self.loads();
            let order = placement_order(&loads);
            let Some(bad) =
                loads.iter().find(|l| !l.placeable() && !l.draining && l.live_sessions > 0)
            else {
                break;
            };
            let Some(&target) = order.iter().find(|&&t| t != bad.shard) else { break };
            let Some(sess) = self.session_on(bad.shard) else { break };
            if self.migrate_session(sess, target).is_err() {
                break;
            }
            moved.push(MigrationRecord { session: sess, from: bad.shard, to: target });
        }
        // Pass 2: even the spread over placeable shards.
        loop {
            let loads = self.loads();
            let placeable: Vec<_> = loads.iter().filter(|l| l.placeable()).collect();
            if placeable.len() < 2 {
                break;
            }
            let max = placeable.iter().max_by_key(|l| (l.live_sessions, l.shard)).unwrap();
            let min = placeable.iter().min_by_key(|l| (l.live_sessions, l.shard)).unwrap();
            if max.live_sessions <= min.live_sessions + 1 {
                break;
            }
            let (from, to) = (max.shard, min.shard);
            let Some(sess) = self.session_on(from) else { break };
            if self.migrate_session(sess, to).is_err() {
                break;
            }
            moved.push(MigrationRecord { session: sess, from, to });
        }
        moved
    }

    /// Re-homes every session still placed on a drained shard: the
    /// dead-shard recovery path. Call with the [`DrainReport`] of
    /// [`Router::drain_shard`] — the drain already stopped placement and
    /// pumped the shard's queues dry, so each session's KV snapshot is at
    /// its true frontier; this moves the survivors to placeable peers so
    /// the shard can be torn down (or rebooted) without ending anyone's
    /// stream. Returns the moves performed; stops early if no placeable
    /// peer remains or a move fails.
    pub fn recover_shard(&self, report: &DrainReport) -> Vec<MigrationRecord> {
        let mut moved = Vec::new();
        while let Some(sess) = self.session_on(report.shard) {
            let loads = self.loads();
            let Some(&target) = placement_order(&loads).iter().find(|&&t| t != report.shard) else {
                break;
            };
            if self.migrate_session(sess, target).is_err() {
                break;
            }
            moved.push(MigrationRecord { session: sess, from: report.shard, to: target });
        }
        moved
    }

    /// The lowest-id session currently placed on `shard` (deterministic
    /// pick for the rebalance/recovery loops).
    fn session_on(&self, shard: usize) -> Option<RouterSessionId> {
        self.sessions.lock().iter().filter(|(_, p)| p.shard == shard).map(|(&id, _)| id).min()
    }
}

#[cfg(test)]
mod tests {
    use crate::router::{Router, RouterConfig};
    use crate::RouterError;
    use pl_dnn::{DecoderConfig, DecoderModel};
    use pl_metrics::Health;
    use pl_runtime::ThreadPool;
    use pl_serve::ServerConfig;
    use pl_tensor::{fill_uniform, Xorshift};
    use std::sync::Arc;
    use std::time::Duration;

    fn tiny_router(shards: usize, server: ServerConfig) -> Router {
        let model = Arc::new(DecoderModel::new(DecoderConfig::scaled_for_tests(), 4242));
        Router::new(
            model,
            RouterConfig { shards, total_threads: 4, routing_overhead: 0.02, server },
        )
        .unwrap()
    }

    fn no_wait() -> ServerConfig {
        ServerConfig { coalesce_wait: Duration::ZERO, ..Default::default() }
    }

    fn token(seed: u64, hidden: usize) -> Vec<f32> {
        let mut x = vec![0.0f32; hidden];
        fill_uniform(&mut x, &mut Xorshift::new(seed), -0.5, 0.5);
        x
    }

    /// Drives `steps` chained decode steps for `id` starting from
    /// `start` (each step feeds the previous output), returning outputs.
    fn drive(r: &Router, id: u64, start: Vec<f32>, steps: usize) -> Vec<Vec<f32>> {
        let mut outs = Vec::new();
        let mut x = start;
        for _ in 0..steps {
            let rx = r.submit_step(id, &x).unwrap();
            while r.pump_all() == 0 {}
            x = rx.recv().unwrap().unwrap();
            outs.push(x.clone());
        }
        outs
    }

    #[test]
    fn migrate_session_continues_bit_identically() {
        let r = tiny_router(2, no_wait());
        let model = Arc::clone(r.shard(0).server().model());
        let hidden = model.config().hidden;
        let id = r.create_session(0).unwrap();
        assert_eq!(r.placement_of(id), Some(0));
        let prompt = token(50, hidden * 4);
        r.prefill(id, &prompt, 4).unwrap();
        let mut outs = drive(&r, id, token(51, hidden), 3);
        // Mid-stream move, with a step still queued: the quiesce runs it
        // out before the snapshot is taken.
        let rx = r.submit_step(id, outs.last().unwrap()).unwrap();
        r.migrate_session(id, 1).unwrap();
        outs.push(rx.recv().unwrap().unwrap());
        assert_eq!(r.placement_of(id), Some(1));
        assert_eq!(r.shard(0).server().session_count(), 0);
        assert_eq!(r.shard(1).server().session_count(), 1);
        // Same shard: no-op. Bad target: loud error.
        r.migrate_session(id, 1).unwrap();
        assert!(matches!(r.migrate_session(id, 9), Err(RouterError::BadConfig(_))));
        // Continue on the new shard; the whole stream must equal an
        // unmoved replay bitwise.
        for _ in 0..3 {
            let rx = r.submit_step(id, outs.last().unwrap()).unwrap();
            while r.pump_all() == 0 {}
            outs.push(rx.recv().unwrap().unwrap());
        }
        let pool = ThreadPool::new(2);
        let mut st = model.new_state(32);
        let _ = model.forward(&mut st, &prompt, 4, &pool);
        let mut want = token(51, hidden);
        for (t, got) in outs.iter().enumerate() {
            want = model.forward(&mut st, &want, 1, &pool);
            assert_eq!(got, &want, "step {t} diverged across the migration");
        }
        // The generated count moved with the session.
        assert_eq!(r.close_session(id).unwrap(), outs.len() as u64);
        // The fleet counted the import.
        let snap = r.metrics_snapshot();
        assert_eq!(snap.counter_value("pl_migrations_total", &[("shard", "1")]), 1);
    }

    #[test]
    fn rebalance_moves_sessions_off_a_degraded_shard() {
        let r = tiny_router(2, no_wait());
        let s0 = r.create_session(0).unwrap();
        let s1 = r.create_session(0).unwrap();
        assert_eq!(r.placement_of(s0), Some(0));
        assert_eq!(r.placement_of(s1), Some(1));
        let hidden = r.shard(0).server().model().config().hidden;
        r.prefill(s0, &token(60, hidden * 2), 2).unwrap();
        // Latch shard 0 Degraded (every observation blows the SLO target).
        let slo = r.shard(0).server().slo();
        for _ in 0..200 {
            slo.record(9_999_999);
        }
        assert_eq!(r.shard_health()[0], Health::Degraded);
        let moves = r.rebalance();
        assert_eq!(moves.len(), 1);
        assert_eq!((moves[0].session, moves[0].from, moves[0].to), (s0, 0, 1));
        assert_eq!(r.placement_of(s0), Some(1), "session evacuated the degraded shard");
        assert_eq!(r.shard(0).server().session_count(), 0);
        assert_eq!(r.shard(1).server().session_count(), 2);
        // The evacuated session still decodes, from its prefilled context.
        let model = Arc::clone(r.shard(0).server().model());
        let outs = drive(&r, s0, token(61, hidden), 2);
        let pool = ThreadPool::new(2);
        let mut st = model.new_state(32);
        let _ = model.forward(&mut st, &token(60, hidden * 2), 2, &pool);
        let mut want = token(61, hidden);
        for (t, got) in outs.iter().enumerate() {
            want = model.forward(&mut st, &want, 1, &pool);
            assert_eq!(got, &want, "post-evacuation step {t} diverged");
        }
        // Nothing further to do: the degraded shard is empty and only
        // one placeable shard remains.
        assert!(r.rebalance().is_empty());
    }

    #[test]
    fn rebalance_evens_a_lopsided_spread() {
        let r = tiny_router(2, no_wait());
        // 4 sessions land 0,1,0,1; closing shard 1's pair leaves 2 vs 0.
        let ids: Vec<_> = (0..4).map(|_| r.create_session(0).unwrap()).collect();
        r.close_session(ids[1]).unwrap();
        r.close_session(ids[3]).unwrap();
        assert_eq!(r.shard(0).server().session_count(), 2);
        assert_eq!(r.shard(1).server().session_count(), 0);
        let moves = r.rebalance();
        assert_eq!(moves.len(), 1, "a 2-vs-0 spread takes exactly one move");
        assert_eq!(r.shard(0).server().session_count(), 1);
        assert_eq!(r.shard(1).server().session_count(), 1);
        assert!(r.rebalance().is_empty(), "balanced fleet stays put");
    }

    #[test]
    fn recover_shard_rehomes_every_session_from_the_drain_report() {
        let r = tiny_router(2, ServerConfig { max_sessions: 8, ..no_wait() });
        let model = Arc::clone(r.shard(0).server().model());
        let hidden = model.config().hidden;
        // Two sessions on shard 0 (and one bystander on shard 1).
        let a = r.create_session(0).unwrap();
        let _bystander = r.create_session(0).unwrap();
        let b = r.create_session(0).unwrap();
        assert_eq!(r.placement_of(a), Some(0));
        assert_eq!(r.placement_of(b), Some(0));
        let a_outs = drive(&r, a, token(70, hidden), 2);
        // Shard 0 is going away: drain it (queues dry, no new placements),
        // then re-home the survivors off the report.
        let report = r.drain_shard(0);
        assert!(report.is_quiesced());
        assert_eq!(report.live_sessions, 2);
        let moves = r.recover_shard(&report);
        assert_eq!(moves.len(), 2);
        assert!(moves.iter().all(|m| m.from == 0 && m.to == 1));
        assert_eq!(r.shard(0).server().session_count(), 0, "shard 0 fully evacuated");
        assert!(r.drain_shard(0).is_empty(), "evacuated shard is ready for teardown");
        // The moved streams continue bit-identically on shard 1.
        let mut outs = a_outs;
        let next = outs.last().unwrap().clone();
        outs.extend(drive(&r, a, next, 2));
        let pool = ThreadPool::new(2);
        let mut st = model.new_state(32);
        let mut want = token(70, hidden);
        for (t, got) in outs.iter().enumerate() {
            want = model.forward(&mut st, &want, 1, &pool);
            assert_eq!(got, &want, "recovered stream step {t} diverged");
        }
    }
}
