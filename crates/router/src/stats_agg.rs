//! Cross-shard stats aggregation.
//!
//! Each shard's `ServerStats` stays lock-free and shard-local; the router
//! aggregates at *read* time by folding per-shard [`StatsSnapshot`]s with
//! [`StatsSnapshot::merge`]. Counters add, `elapsed_s` takes the max
//! (shards run concurrently), and latency quantiles are recomputed from
//! the summed histogram buckets — a merged p99 reflects the worst shard's
//! tail, which averaging per-shard p99s would hide.

use pl_serve::StatsSnapshot;

/// Folds per-shard snapshots into one fleet-wide snapshot.
pub fn aggregate<'a>(snapshots: impl IntoIterator<Item = &'a StatsSnapshot>) -> StatsSnapshot {
    let mut total = StatsSnapshot::empty();
    for snap in snapshots {
        total.merge(snap);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_of_nothing_is_empty() {
        let agg = aggregate([]);
        assert_eq!(agg.completed, 0);
        assert_eq!(agg.p99_us, 0);
        assert_eq!(agg.tokens_per_s, 0.0);
    }

    #[test]
    fn aggregate_sums_shards_and_keeps_tails() {
        let mut fast = StatsSnapshot::empty();
        fast.elapsed_s = 1.0;
        fast.completed = 90;
        fast.batches = 45;
        fast.latency_buckets[4] = 90; // ≤ 16 µs
        let mut slow = StatsSnapshot::empty();
        slow.elapsed_s = 1.0;
        slow.completed = 10;
        slow.batches = 10;
        slow.latency_buckets[10] = 10; // ≤ 1024 µs
        let agg = aggregate([&fast, &slow]);
        assert_eq!(agg.completed, 100);
        assert_eq!(agg.batches, 55);
        // Concurrent shards: fleet throughput is the sum.
        assert!((agg.tokens_per_s - 100.0).abs() < 1e-9);
        // The slow shard's tail survives aggregation.
        assert_eq!(agg.p99_us, 1024);
        assert_eq!(agg.p50_us, 16);
    }
}
