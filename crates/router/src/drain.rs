//! Graceful drains: retiring work without dropping it.
//!
//! Two granularities:
//!
//! * **session** — [`Router::close_session`] quiesces the owning shard
//!   first ([`Router::quiesce_shard`]) so a step still sitting in the
//!   submission rings executes before the session's KV cache is freed;
//! * **shard** — [`Router::begin_drain`] removes a shard from placement
//!   (existing sessions keep their affinity and keep being served),
//!   [`Router::drain_shard`] additionally pumps its queues dry, and
//!   [`Router::drain_complete`] reports when the shard holds no work at
//!   all — the point where it could be torn down or rebalanced.

use crate::router::Router;
use std::sync::atomic::Ordering;
use std::time::Duration;

/// Upper bound on quiesce iterations — a safety valve so a shard under
/// sustained concurrent load (pending never observed at 0) cannot wedge a
/// close forever. One iteration is one pump (manual mode) or one short
/// wait (started mode).
const QUIESCE_LIMIT: usize = 4096;

/// Progress report of a shard drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// The shard being drained.
    pub shard: usize,
    /// Steps executed while draining (manual mode only).
    pub executed: usize,
    /// Steps still unfinished (ring-queued or executing in a batch) when
    /// the drain call returned.
    pub pending: usize,
    /// Sessions still live (clients own their lifecycle; a drain does not
    /// force-close them).
    pub live_sessions: usize,
}

impl DrainReport {
    /// Whether the shard holds no queued work.
    pub fn is_quiesced(&self) -> bool {
        self.pending == 0
    }

    /// Whether the shard is fully evacuated (no queue, no sessions) and
    /// could be removed from the fleet.
    pub fn is_empty(&self) -> bool {
        self.pending == 0 && self.live_sessions == 0
    }
}

impl Router {
    /// Removes `shard` from new-session placement. Sessions already
    /// placed there keep their affinity and keep being served — a drain
    /// stops *growth*, not service.
    pub fn begin_drain(&self, shard: usize) {
        self.shards[shard].set_draining(true);
    }

    /// Returns `shard` to the placement pool.
    pub fn cancel_drain(&self, shard: usize) {
        self.shards[shard].set_draining(false);
    }

    /// Whether `shard` is currently excluded from placement.
    pub fn is_draining(&self, shard: usize) -> bool {
        self.shards[shard].is_draining()
    }

    /// Lets `shard`'s accepted steps complete: pumps on the calling
    /// thread when the router is in manual-drive mode, otherwise briefly
    /// yields to the shard's background batcher, until the shard holds
    /// **no unfinished step** — neither ring-queued
    /// ([`pl_serve::Server::pending`]) nor executing inside a batch
    /// ([`pl_serve::Server::in_flight`], which covers the window where a
    /// batch has the sessions checked out of the table) — or the safety
    /// bound trips under sustained load from other sessions. Used by the
    /// graceful [`Router::close_session`] path: the quiesce is exact in
    /// manual mode and for clients that close after receiving their last
    /// reply; under continuous concurrent traffic it is best-effort
    /// (bounded).
    pub(crate) fn quiesce_shard(&self, shard: usize) -> usize {
        let server = self.shards[shard].server();
        let started = self.started.load(Ordering::Acquire);
        let mut executed = 0usize;
        let mut spins = 0usize;
        // `in_flight` counts every accepted-but-unreplied step, whether
        // still ring-queued or already executing — one signal suffices.
        while server.in_flight() > 0 && spins < QUIESCE_LIMIT {
            if started {
                std::thread::sleep(Duration::from_micros(50));
            } else {
                executed += server.pump();
            }
            spins += 1;
        }
        executed
    }

    /// Marks `shard` draining and quiesces it, reporting what remains.
    /// Idempotent; call repeatedly until [`DrainReport::is_empty`] once
    /// clients have closed their sessions.
    pub fn drain_shard(&self, shard: usize) -> DrainReport {
        self.begin_drain(shard);
        let executed = self.quiesce_shard(shard);
        let server = self.shards[shard].server();
        DrainReport {
            shard,
            executed,
            pending: server.in_flight(),
            live_sessions: server.session_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::router::{Router, RouterConfig};
    use pl_dnn::{DecoderConfig, DecoderModel};
    use pl_serve::ServerConfig;
    use pl_tensor::{fill_uniform, Xorshift};
    use std::sync::Arc;
    use std::time::Duration;

    fn router(shards: usize) -> Router {
        let model = Arc::new(DecoderModel::new(DecoderConfig::scaled_for_tests(), 99));
        Router::new(
            model,
            RouterConfig {
                shards,
                total_threads: 4,
                routing_overhead: 0.02,
                server: ServerConfig { coalesce_wait: Duration::ZERO, ..Default::default() },
            },
        )
        .unwrap()
    }

    fn token(seed: u64, hidden: usize) -> Vec<f32> {
        let mut x = vec![0.0f32; hidden];
        fill_uniform(&mut x, &mut Xorshift::new(seed), -0.5, 0.5);
        x
    }

    #[test]
    fn draining_shard_takes_no_new_sessions_but_serves_existing() {
        let r = router(2);
        let hidden = r.shard(0).server().model().config().hidden;
        let on_zero = r.create_session(0).unwrap();
        assert_eq!(r.placement_of(on_zero), Some(0));
        r.begin_drain(0);
        assert!(r.is_draining(0));
        // All new placements avoid the draining shard.
        for _ in 0..3 {
            let id = r.create_session(0).unwrap();
            assert_eq!(r.placement_of(id), Some(1));
        }
        // The resident session still decodes on its shard.
        let rx = r.submit_step(on_zero, &token(1, hidden)).unwrap();
        while r.pump_all() == 0 {}
        assert!(rx.recv().unwrap().is_ok());
        // Cancelling restores placement eligibility.
        r.cancel_drain(0);
        let back = r.create_session(0).unwrap();
        assert_eq!(r.placement_of(back), Some(0), "shard 0 is least-loaded again");
    }

    #[test]
    fn drain_during_chunked_prefill_observes_and_finishes_the_chunks() {
        // Satellite regression: prefill used to run inline, invisible to
        // `in_flight`, so a drain begun mid-prefill reported the shard
        // quiesced while a forward was still executing. Chunked prefill
        // counts every chunk in `in_flight`, so the drain both *sees* the
        // prefill and pumps it to completion.
        let model = Arc::new(DecoderModel::new(DecoderConfig::scaled_for_tests(), 99));
        let r = Router::new(
            model,
            crate::router::RouterConfig {
                shards: 2,
                total_threads: 4,
                routing_overhead: 0.02,
                server: ServerConfig {
                    prefill_chunk: 2,
                    kv_capacity: 32,
                    coalesce_wait: Duration::ZERO,
                    ..Default::default()
                },
            },
        )
        .unwrap();
        let hidden = r.shard(0).server().model().config().hidden;
        let id = r.create_session(0).unwrap();
        let shard = r.placement_of(id).unwrap();
        let tokens = 8; // 4 chunks of 2
        let rx = r.submit_prefill(id, &token(7, hidden * tokens), tokens).unwrap();
        assert_eq!(
            r.shard(shard).server().in_flight(),
            1,
            "prefill work is visible to the drain before any chunk ran"
        );
        let report = r.drain_shard(shard);
        assert!(report.is_quiesced(), "drain runs the prefill to completion");
        assert_eq!(report.executed, 4, "all four chunks executed by the drain");
        assert_eq!(report.live_sessions, 1);
        assert_eq!(rx.recv().unwrap().unwrap().len(), hidden * tokens);
        assert_eq!(r.shard(shard).server().stats().snapshot().prefill_chunks, 4);
        r.close_session(id).unwrap();
        assert!(r.drain_shard(shard).is_empty());
    }

    #[test]
    fn drain_shard_pumps_queues_dry_and_reports_emptiness() {
        let r = router(2);
        let hidden = r.shard(0).server().model().config().hidden;
        let id = r.create_session(0).unwrap();
        let shard = r.placement_of(id).unwrap();
        let rx = r.submit_step(id, &token(2, hidden)).unwrap();
        let report = r.drain_shard(shard);
        assert_eq!(report.shard, shard);
        assert!(report.is_quiesced(), "queued step executed by the drain");
        assert_eq!(report.executed, 1);
        assert_eq!(report.live_sessions, 1, "drain does not force-close sessions");
        assert!(!report.is_empty());
        assert!(rx.recv().unwrap().is_ok());
        // After the client closes, the shard is fully evacuated.
        r.close_session(id).unwrap();
        let report = r.drain_shard(shard);
        assert!(report.is_empty());
    }
}
