//! A shard: one `pl_serve::Server` on its own core-count partition.

use pl_dnn::DecoderModel;
use pl_runtime::ThreadPool;
use pl_serve::{Server, ServerConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Splits `total` threads over `shards` disjoint partitions, each at least
/// 1 thread, remainder to the lowest-indexed shards (8 over 2 → `[4, 4]`;
/// 7 over 2 → `[4, 3]`). The partitions are *counts*, not pinned core
/// masks — each shard builds its own [`ThreadPool`] of that size, and the
/// sum never exceeds `max(total, shards)`, so co-resident shards do not
/// oversubscribe the machine.
pub fn partition_threads(total: usize, shards: usize) -> Vec<usize> {
    let shards = shards.max(1);
    let total = total.max(shards);
    let base = total / shards;
    let extra = total % shards;
    (0..shards).map(|i| base + usize::from(i < extra)).collect()
}

/// One serving shard: a [`Server`] over its own disjoint [`ThreadPool`].
///
/// The model is shared (`Arc<DecoderModel>` — one weight copy per
/// process; in the multi-machine deployment this models, each shard would
/// hold its own replica), but *everything stateful* is per-shard: the
/// pool, the session table, the KV caches, the submission rings, the
/// stats. A session placed here never sees another shard's state — the
/// no-cross-shard-KV-leakage property is structural.
pub struct Shard {
    index: usize,
    threads: usize,
    server: Server,
    draining: AtomicBool,
}

impl Shard {
    /// Builds shard `index` with `threads` pool threads over `model`.
    pub fn new(index: usize, threads: usize, model: Arc<DecoderModel>, cfg: ServerConfig) -> Self {
        let pool = Arc::new(ThreadPool::new(threads.max(1)));
        Shard {
            index,
            threads: threads.max(1),
            server: Server::new(model, pool, cfg),
            draining: AtomicBool::new(false),
        }
    }

    /// Shard index within the router.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Pool threads this shard owns.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The underlying server.
    pub fn server(&self) -> &Server {
        &self.server
    }

    /// Mutable access (start/shutdown need it).
    pub(crate) fn server_mut(&mut self) -> &mut Server {
        &mut self.server
    }

    /// Whether this shard is excluded from new-session placement.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    pub(crate) fn set_draining(&self, draining: bool) {
        self.draining.store(draining, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_disjoint_exhaustive_and_balanced() {
        assert_eq!(partition_threads(8, 2), vec![4, 4]);
        assert_eq!(partition_threads(8, 4), vec![2, 2, 2, 2]);
        assert_eq!(partition_threads(7, 2), vec![4, 3]);
        assert_eq!(partition_threads(9, 4), vec![3, 2, 2, 2]);
        // Every shard gets at least one thread even when oversubscribed.
        assert_eq!(partition_threads(2, 3), vec![1, 1, 1]);
        assert_eq!(partition_threads(0, 2), vec![1, 1]);
        for (total, shards) in [(8, 2), (13, 5), (6, 6), (1, 1)] {
            let parts = partition_threads(total, shards);
            assert_eq!(parts.len(), shards);
            assert_eq!(parts.iter().sum::<usize>(), total.max(shards));
            assert!(parts.iter().all(|&p| p >= 1));
            // Balanced to within one thread.
            let (min, max) = (parts.iter().min().unwrap(), parts.iter().max().unwrap());
            assert!(max - min <= 1);
        }
    }
}
