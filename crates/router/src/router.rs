//! The front door: session-affine routing over N core-partitioned shards.

use crate::placement::{placement_order, ShardLoad};
use crate::projection::serving_scaling_model;
use crate::shard::{partition_threads, Shard};
use crate::{stats_agg, RouterError};
use parking_lot::Mutex;
use pl_autotuner::TuningDb;
use pl_dnn::DecoderModel;
use pl_perfmodel::Platform;
use pl_serve::{
    Health, MetricsSnapshot, ServeError, ServerConfig, SessionId, StatsSnapshot, StepResult,
    TenantId,
};
use pl_trace::TraceSummary;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};

/// Router-assigned session identifier — a distinct namespace from the
/// per-shard [`SessionId`]s (two shards can both hold a local session 1;
/// the router id disambiguates, so there is no cross-shard aliasing).
pub type RouterSessionId = u64;

/// Where a router session lives. Written at placement and thereafter
/// only by [`Router::migrate_session`] — the explicit, quiesced KV move;
/// the hot path treats affinity as invariant, so the KV cache never
/// moves as a side effect of routing.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Placement {
    pub(crate) shard: usize,
    pub(crate) local: SessionId,
}

/// Scale-out knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Number of `Server` shards to build.
    pub shards: usize,
    /// Total pool threads split disjointly over the shards
    /// ([`partition_threads`]; e.g. 8 threads over 2 shards → 2×4), so
    /// co-resident shards never oversubscribe the machine.
    pub total_threads: usize,
    /// Routing/aggregation overhead per log2 hop, as a fraction of one
    /// shard-interval of work — the communication term of the scaling
    /// projection ([`serving_scaling_model`]).
    pub routing_overhead: f64,
    /// Per-shard server configuration (every shard gets a copy).
    pub server: ServerConfig,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            shards: 2,
            total_threads: pl_runtime::default_threads(),
            routing_overhead: 0.02,
            server: ServerConfig::default(),
        }
    }
}

/// The sharded serving tier: N [`Shard`]s behind session-affine routing.
///
/// Lifecycle: [`Router::new`] → [`Router::warm_tuning`] (one shard
/// searches, the rest adopt) → either [`Router::start`] (every shard's
/// background batcher; clients call the blocking [`Router::step`]) or a
/// manual [`Router::pump_all`] drive loop → [`Router::shutdown`]. Drains
/// ([`Router::begin_drain`]) can retire shards from placement at any
/// point in between.
pub struct Router {
    pub(crate) shards: Vec<Shard>,
    pub(crate) cfg: RouterConfig,
    pub(crate) sessions: Mutex<HashMap<RouterSessionId, Placement>>,
    next_session: AtomicU64,
    pub(crate) started: AtomicBool,
}

impl Router {
    /// Builds the shard fleet over one shared `model`. Thread partitions
    /// come from [`partition_threads`]; every shard gets at least one
    /// thread.
    pub fn new(model: Arc<DecoderModel>, cfg: RouterConfig) -> Result<Self, RouterError> {
        if cfg.shards == 0 {
            return Err(RouterError::BadConfig("shards must be >= 1".into()));
        }
        let parts = partition_threads(cfg.total_threads, cfg.shards);
        let shards = parts
            .iter()
            .enumerate()
            .map(|(i, &t)| Shard::new(i, t, Arc::clone(&model), cfg.server.clone()))
            .collect();
        Ok(Router {
            shards,
            cfg,
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(1),
            started: AtomicBool::new(false),
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// One shard.
    pub fn shard(&self, index: usize) -> &Shard {
        &self.shards[index]
    }

    /// All shards.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// The configuration.
    pub fn config(&self) -> &RouterConfig {
        &self.cfg
    }

    /// Live sessions across the fleet.
    pub fn session_count(&self) -> usize {
        self.shards.iter().map(|s| s.server().session_count()).sum()
    }

    /// Warms the tuning database **once** and shares it fleet-wide: shard
    /// 0 runs the full offline search ([`pl_serve::Server::warm_tuning`] —
    /// decode widths, prefill ladder, GEMM + SpMM keys, registry install,
    /// plan warm-up), then every other shard copies the snapshot into its
    /// local slot ([`pl_serve::Server::set_tuning_db`]). The registry
    /// install and the plan warm-up are process-wide / shared-model
    /// effects shard 0 already performed, so the peers must not repeat
    /// them (each repeat would bump the registry epoch and rebuild the
    /// identical kernel set). N shards, one search, one warm. Returns the
    /// entries the search added.
    pub fn warm_tuning(&self, platform: &Platform) -> usize {
        let first = &self.shards[0];
        let added = first.server().warm_tuning(platform, first.threads());
        let snapshot: TuningDb = first.server().tuning_db().clone();
        for shard in &self.shards[1..] {
            shard.server().set_tuning_db(&snapshot);
        }
        added
    }

    /// Fleet-wide adoption of a retuned snapshot: shard 0 installs `db`
    /// into the process registry and re-warms the shared model's plans
    /// ([`pl_serve::Server::adopt_tuning`] — one epoch bump, one kernel
    /// rebuild), then the peers copy the snapshot into their local slots.
    /// This is the retune loop's install path: measure on one shard,
    /// adopt everywhere. Returns the number of entries adopted.
    pub fn adopt_tuning(&self, platform_name: &str, db: &TuningDb) -> usize {
        let adopted = self.shards[0].server().adopt_tuning(platform_name, db);
        for shard in &self.shards[1..] {
            shard.server().set_tuning_db(db);
        }
        adopted
    }

    /// Installs a measured fused-vs-serial decision table on **every**
    /// shard ([`pl_serve::Server::install_mode_policy`]): the table was
    /// measured on one shard but the fleet runs the same model on the
    /// same host, so the decision transfers.
    pub fn install_mode_policy(&self, table: &pl_serve::BatchModeTable) {
        for shard in &self.shards {
            shard.server().install_mode_policy(table.clone());
        }
    }

    /// Current placement loads (the inputs to [`placement_order`]),
    /// health included: each shard's server evaluates its own SLO burn
    /// and stall watchdog ([`pl_serve::Server::health`]); a draining
    /// shard reports [`Health::Draining`] regardless (administrative
    /// intent overrides the measured state for placement purposes).
    pub fn loads(&self) -> Vec<ShardLoad> {
        self.shards
            .iter()
            .map(|s| {
                let draining = s.is_draining();
                ShardLoad {
                    shard: s.index(),
                    live_sessions: s.server().session_count(),
                    queue_depth: s.server().pending(),
                    draining,
                    health: if draining { Health::Draining } else { s.server().health() },
                }
            })
            .collect()
    }

    /// The current health of every shard (index = shard), with the
    /// draining overlay applied — the fleet view `pl_shard_health`
    /// exports.
    pub fn shard_health(&self) -> Vec<Health> {
        self.loads().into_iter().map(|l| l.health).collect()
    }

    /// Fleet-wide metrics: every shard's snapshot stamped with its
    /// `shard` label, then merged (counters and histogram buckets sum;
    /// the `pl_shard_health` gauge stays per-shard thanks to the label,
    /// and carries the draining overlay). Render with
    /// [`pl_metrics::render_prometheus`].
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let healths = self.shard_health();
        let mut fleet = MetricsSnapshot::default();
        for (shard, health) in self.shards.iter().zip(healths) {
            let snap = shard.server().metrics_snapshot();
            let idx = shard.index().to_string();
            let mut snap = snap.with_label("shard", &idx);
            // Overlay draining onto the exported health gauge — the
            // server itself cannot know the router marked it.
            let key = ("pl_shard_health".to_string(), vec![("shard".to_string(), idx)]);
            snap.gauges.insert(key, health.as_f64());
            fleet.merge(&snap);
        }
        fleet
    }

    /// Admits a new session: least-loaded placeable shard first, then
    /// the next candidates if it is full ([`placement_order`]) — shards
    /// that are draining, degraded (SLO burn through the hysteresis
    /// band) or stalled (watchdog) take no new sessions, while their
    /// existing sessions keep stepping untouched. The session is
    /// *affine* to the chosen shard for its whole life.
    pub fn create_session(&self, tenant: TenantId) -> Result<RouterSessionId, RouterError> {
        if tenant >= self.cfg.server.tenants {
            return Err(RouterError::Serve(ServeError::UnknownTenant(tenant)));
        }
        let order = placement_order(&self.loads());
        if order.is_empty() {
            return Err(RouterError::NoShardAvailable);
        }
        for shard_idx in order {
            match self.shards[shard_idx].server().create_session(tenant) {
                Ok(local) => {
                    let id = self.next_session.fetch_add(1, Ordering::Relaxed);
                    self.sessions.lock().insert(id, Placement { shard: shard_idx, local });
                    return Ok(id);
                }
                // A full shard is not fatal — spill to the next candidate.
                Err(ServeError::TooManySessions { .. }) => continue,
                Err(e) => return Err(RouterError::Serve(e)),
            }
        }
        Err(RouterError::NoShardAvailable)
    }

    /// The shard a session lives on (None when unknown/closed).
    pub fn placement_of(&self, id: RouterSessionId) -> Option<usize> {
        self.sessions.lock().get(&id).map(|p| p.shard)
    }

    pub(crate) fn lookup(&self, id: RouterSessionId) -> Result<Placement, RouterError> {
        self.sessions.lock().get(&id).copied().ok_or(RouterError::UnknownSession(id))
    }

    /// Routes a blocking prefill to the session's shard. Under the hood
    /// this is the chunked path ([`Router::submit_prefill`]): the prompt
    /// is split into `prefill_chunk`-bounded chunks that interleave with
    /// the shard's decode batches, so a long prompt no longer monopolizes
    /// the shard's pool — and the work is visible to the shard's
    /// `in_flight`, so drains observe it.
    pub fn prefill(
        &self,
        id: RouterSessionId,
        x: &[f32],
        tokens: usize,
    ) -> Result<Vec<f32>, RouterError> {
        let p = self.lookup(id)?;
        Ok(self.shards[p.shard].server().prefill(p.local, x, tokens)?)
    }

    /// Routes a non-blocking chunked prefill to the session's shard
    /// (session affinity: the chunks — and the KV cache they fill — stay
    /// on the shard the session was placed on). The full `hidden x
    /// tokens` output arrives on the returned channel after the final
    /// chunk; every chunk counts toward the shard's
    /// [`pl_serve::Server::in_flight`], which is what
    /// [`Router::drain_shard`] and [`Router::close_session`] quiesce on.
    pub fn submit_prefill(
        &self,
        id: RouterSessionId,
        x: &[f32],
        tokens: usize,
    ) -> Result<mpsc::Receiver<StepResult>, RouterError> {
        let p = self.lookup(id)?;
        Ok(self.shards[p.shard].server().submit_prefill(p.local, x, tokens)?)
    }

    /// Routes a non-blocking decode step to the session's shard.
    pub fn submit_step(
        &self,
        id: RouterSessionId,
        x: &[f32],
    ) -> Result<mpsc::Receiver<StepResult>, RouterError> {
        let p = self.lookup(id)?;
        Ok(self.shards[p.shard].server().submit_step(p.local, x)?)
    }

    /// Blocking decode step. Requires [`Router::start`] (or a concurrent
    /// [`Router::pump_all`] driver on another thread).
    pub fn step(&self, id: RouterSessionId, x: &[f32]) -> Result<Vec<f32>, RouterError> {
        let rx = self.submit_step(id, x)?;
        match rx.recv() {
            Ok(res) => Ok(res?),
            Err(_) => Err(RouterError::Serve(ServeError::ShuttingDown)),
        }
    }

    /// Gracefully ends a session: the owning shard is first pumped/waited
    /// dry (so a step still sitting in its rings completes instead of
    /// erroring `UnknownSession` — see [`Router::quiesce_shard`], one
    /// bounded pass), then the session is closed and its KV cache freed.
    /// If the quiesce was cut short by sustained traffic from *other*
    /// sessions and this session is momentarily checked out by an
    /// executing batch (`UnknownSession` from the shard while the router
    /// mapping is live), the close retries over short waits — batches
    /// re-insert their sessions before delivering replies, so that window
    /// is microseconds wide and the retry loop does **not** re-pay the
    /// full quiesce bound. Returns tokens decoded.
    pub fn close_session(&self, id: RouterSessionId) -> Result<u64, RouterError> {
        let p = self.lookup(id)?;
        self.quiesce_shard(p.shard);
        let server = self.shards[p.shard].server();
        let started = self.started.load(Ordering::Acquire);
        let mut attempts = 0usize;
        let generated = loop {
            match server.close_session(p.local) {
                Ok(n) => break n,
                Err(ServeError::UnknownSession(_)) if attempts < 256 => {
                    attempts += 1;
                    if started {
                        std::thread::sleep(std::time::Duration::from_micros(50));
                    } else {
                        server.pump();
                    }
                }
                Err(e) => return Err(RouterError::Serve(e)),
            }
        };
        self.sessions.lock().remove(&id);
        Ok(generated)
    }

    /// Pumps every shard once on the calling thread; returns the total
    /// steps executed. The manual drive loop for tests and
    /// single-threaded embedders — the same code path each shard's
    /// background batcher runs.
    pub fn pump_all(&self) -> usize {
        self.shards.iter().map(|s| s.server().pump()).sum()
    }

    /// Starts every shard's background batcher thread. Idempotent.
    pub fn start(&mut self) {
        for shard in &mut self.shards {
            shard.server_mut().start();
        }
        self.started.store(true, Ordering::Release);
    }

    /// Stops admissions, drains every shard's queues, joins the batchers.
    pub fn shutdown(&mut self) {
        for shard in &mut self.shards {
            shard.server_mut().shutdown();
        }
        self.started.store(false, Ordering::Release);
    }

    /// Per-shard stats snapshots, indexed by shard.
    pub fn shard_stats(&self) -> Vec<StatsSnapshot> {
        self.shards.iter().map(|s| s.server().stats().snapshot()).collect()
    }

    /// The fleet-wide aggregated snapshot ([`stats_agg::aggregate`]).
    pub fn stats(&self) -> StatsSnapshot {
        let snaps = self.shard_stats();
        stats_agg::aggregate(snaps.iter())
    }

    /// The fleet-wide trace summary since trace time `since_ns`
    /// ([`pl_trace::now_ns`]): every shard's pump and pool threads record
    /// into the process recorder on their own lanes, and this folds one
    /// per-lane [`TraceSummary`] at a time through
    /// [`TraceSummary::merge`] — the same summed-buckets aggregation
    /// discipline as [`stats_agg::aggregate`], so fleet quantiles come
    /// from merged histograms, never from averaged per-lane quantiles.
    /// Returns an empty summary when tracing was off.
    pub fn trace_summary(&self, since_ns: u64) -> TraceSummary {
        let events = pl_trace::snapshot_since(since_ns);
        let mut by_lane: BTreeMap<u32, Vec<pl_trace::Event>> = BTreeMap::new();
        for e in events {
            by_lane.entry(e.lane).or_default().push(e);
        }
        let mut agg = TraceSummary::empty();
        for evs in by_lane.values() {
            agg.merge(&TraceSummary::from_events(evs));
        }
        agg
    }

    /// The [`ScalingModel`](pl_perfmodel::ScalingModel) projection of the
    /// throughput speedup at `shards` shards over one, under this
    /// router's configured `routing_overhead` — printed (and asserted)
    /// next to measured steps/s by the demo and bench.
    pub fn projected_speedup(&self, shards: usize) -> f64 {
        serving_scaling_model(self.cfg.routing_overhead).projected_speedup(shards)
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        if self.started.load(Ordering::Acquire) {
            self.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_dnn::DecoderConfig;
    use pl_runtime::ThreadPool;
    use pl_tensor::{fill_uniform, Xorshift};

    fn tiny_router(shards: usize, server: ServerConfig) -> Router {
        let model = Arc::new(DecoderModel::new(DecoderConfig::scaled_for_tests(), 4242));
        Router::new(
            model,
            RouterConfig { shards, total_threads: 4, routing_overhead: 0.02, server },
        )
        .unwrap()
    }

    fn no_wait() -> ServerConfig {
        ServerConfig { coalesce_wait: std::time::Duration::ZERO, ..Default::default() }
    }

    fn token(seed: u64, hidden: usize) -> Vec<f32> {
        let mut x = vec![0.0f32; hidden];
        fill_uniform(&mut x, &mut Xorshift::new(seed), -0.5, 0.5);
        x
    }

    #[test]
    fn config_validation_and_partitioning() {
        assert!(matches!(
            Router::new(
                Arc::new(DecoderModel::new(DecoderConfig::scaled_for_tests(), 1)),
                RouterConfig { shards: 0, ..Default::default() }
            ),
            Err(RouterError::BadConfig(_))
        ));
        let r = tiny_router(2, no_wait());
        assert_eq!(r.shard_count(), 2);
        assert_eq!(r.shard(0).threads(), 2);
        assert_eq!(r.shard(1).threads(), 2);
        assert_eq!(r.shard(0).threads() + r.shard(1).threads(), 4, "disjoint partition");
    }

    #[test]
    fn least_loaded_placement_balances_and_is_affine() {
        let r = tiny_router(2, no_wait());
        let ids: Vec<_> = (0..4).map(|_| r.create_session(0).unwrap()).collect();
        let placements: Vec<_> = ids.iter().map(|&id| r.placement_of(id).unwrap()).collect();
        // 4 sessions over 2 empty shards: 2 per shard, alternating.
        assert_eq!(placements, vec![0, 1, 0, 1]);
        assert_eq!(r.session_count(), 4);
        // Affinity: placements never change as traffic flows.
        let hidden = r.shard(0).server().model().config().hidden;
        for (i, &id) in ids.iter().enumerate() {
            let rx = r.submit_step(id, &token(10 + i as u64, hidden)).unwrap();
            while r.pump_all() == 0 {}
            rx.recv().unwrap().unwrap();
            assert_eq!(r.placement_of(id).unwrap(), placements[i], "session {i} migrated");
        }
        // Each shard executed exactly its own sessions' steps.
        let per_shard = r.shard_stats();
        assert_eq!(per_shard[0].completed, 2);
        assert_eq!(per_shard[1].completed, 2);
        assert_eq!(r.stats().completed, 4);
    }

    #[test]
    fn full_shard_spills_then_fleet_exhausts() {
        let r = tiny_router(2, ServerConfig { max_sessions: 1, ..no_wait() });
        let a = r.create_session(0).unwrap();
        let b = r.create_session(0).unwrap();
        assert_ne!(r.placement_of(a), r.placement_of(b), "second session spills");
        assert!(matches!(r.create_session(0), Err(RouterError::NoShardAvailable)));
        r.close_session(a).unwrap();
        let c = r.create_session(0).unwrap();
        assert!(r.placement_of(c).is_some(), "freed capacity is reusable");
        assert!(matches!(
            r.create_session(99),
            Err(RouterError::Serve(ServeError::UnknownTenant(99)))
        ));
    }

    #[test]
    fn routed_streams_match_single_server_bit_identical() {
        // The affinity + no-KV-leakage correctness story in miniature:
        // every session's routed stream must equal an unbatched forward
        // over the same shared weights, regardless of which shard ran it.
        let r = tiny_router(2, no_wait());
        let model = Arc::clone(r.shard(0).server().model());
        let hidden = model.config().hidden;
        let n = 4;
        let ids: Vec<_> = (0..n).map(|_| r.create_session(0).unwrap()).collect();
        let steps = 3usize;
        let mut streams: Vec<Vec<Vec<f32>>> = vec![Vec::new(); n];
        for t in 0..steps {
            let rxs: Vec<_> = ids
                .iter()
                .enumerate()
                .map(|(s, &id)| {
                    let x = if t == 0 {
                        token(800 + s as u64, hidden)
                    } else {
                        streams[s].last().unwrap().clone()
                    };
                    r.submit_step(id, &x).unwrap()
                })
                .collect();
            while r.pump_all() > 0 {}
            for (s, rx) in rxs.into_iter().enumerate() {
                streams[s].push(rx.recv().unwrap().unwrap());
            }
        }
        let pool = ThreadPool::new(2);
        for (s, stream) in streams.iter().enumerate() {
            let mut st = model.new_state(16);
            let mut x = token(800 + s as u64, hidden);
            for (t, got) in stream.iter().enumerate() {
                let want = model.forward(&mut st, &x, 1, &pool);
                assert_eq!(got, &want, "session {s} step {t} diverged");
                x = want;
            }
        }
    }

    #[test]
    fn trace_summary_aggregates_spans_across_shards() {
        // Both shards' batch execution records into the process recorder;
        // the router folds the per-lane summaries into one fleet view.
        let r = tiny_router(2, no_wait());
        let hidden = r.shard(0).server().model().config().hidden;
        let ids: Vec<_> = (0..4).map(|_| r.create_session(0).unwrap()).collect();
        let since = pl_trace::now_ns();
        pl_trace::enable();
        let rxs: Vec<_> = (0..4)
            .map(|s| r.submit_step(ids[s], &token(600 + s as u64, hidden)).unwrap())
            .collect();
        while r.pump_all() > 0 {}
        pl_trace::disable();
        for rx in rxs {
            rx.recv().unwrap().unwrap();
        }
        let summary = r.trace_summary(since);
        // Every shard executed ≥ 1 batch, so the fleet summary carries
        // batch spans, per-shape GEMM spans, and per-step queue waits.
        assert!(summary.count_for("batch.execute") >= 2, "{summary:?}");
        assert!(summary.count_for("gemm.execute") > 0);
        assert!(summary.count_for("step.queue_wait") >= 4);
        assert!(summary.total_ns_for("gemm.execute") > 0, "GEMM spans carry wall time");
        // Scoping by `since` excludes the pre-enable traffic of other
        // tests' routers on these lanes… and re-summarizing later traffic
        // only grows counts, never shrinks them (merge is additive).
        let again = r.trace_summary(since);
        assert!(again.count_for("gemm.execute") >= summary.count_for("gemm.execute"));
    }

    #[test]
    fn close_session_drains_queued_steps_first() {
        let r = tiny_router(2, no_wait());
        let hidden = r.shard(0).server().model().config().hidden;
        let id = r.create_session(0).unwrap();
        let rx = r.submit_step(id, &token(5, hidden)).unwrap();
        // Close with the step still queued: the graceful drain must let it
        // complete (not bounce it as UnknownSession).
        let generated = r.close_session(id).unwrap();
        assert_eq!(generated, 1);
        assert!(rx.recv().unwrap().is_ok(), "queued step completed before close");
        assert!(r.placement_of(id).is_none());
        assert!(matches!(r.close_session(id), Err(RouterError::UnknownSession(_))));
    }

    #[test]
    fn warm_once_adopt_everywhere() {
        let r = tiny_router(2, ServerConfig { kv_capacity: 8, ..no_wait() });
        let added = r.warm_tuning(&Platform::zen4());
        assert!(added > 0, "first warm runs the search");
        let len0 = r.shard(0).server().tuning_db().len();
        let len1 = r.shard(1).server().tuning_db().len();
        assert_eq!(len0, len1, "peers adopt the full snapshot");
        assert_eq!(len0, added);
        assert!(pl_dnn::tuning::is_installed());
        // Re-warming is a no-op search (everything already in the DB).
        assert_eq!(r.warm_tuning(&Platform::zen4()), 0);
    }

    #[test]
    fn int8_router_scopes_tuning_keys_and_trace_spans() {
        // A sharded int8 deployment: the fleet warms i8-scoped tuning keys
        // (never f32 ones — the dtype rides in every plan-reported
        // problem), serves decode traffic whose outputs track a same-seed
        // f32 model within the quantization budget, and records the
        // dtype-tagged `gemm.i8.execute` spans instead of `gemm.execute`.
        use pl_autotuner::TuningDb;
        let cfg = DecoderConfig::scaled_for_tests();
        let i8_model =
            Arc::new(DecoderModel::new_with_precision(cfg, 4242, pl_dnn::Precision::Int8));
        let r = Router::new(
            Arc::clone(&i8_model),
            RouterConfig {
                shards: 2,
                total_threads: 4,
                routing_overhead: 0.02,
                server: ServerConfig {
                    kv_capacity: 8,
                    precision: pl_dnn::Precision::Int8,
                    ..no_wait()
                },
            },
        )
        .unwrap();
        let platform = Platform::zen4();
        let added = r.warm_tuning(&platform);
        assert!(added > 0, "int8 warm-up runs the search");
        {
            let db = r.shard(0).server().tuning_db();
            let h = cfg.hidden;
            let i8_key = TuningDb::gemm_key(platform.name, h, 1, h, "i8");
            let f32_key = TuningDb::gemm_key(platform.name, h, 1, h, "f32");
            assert!(db.get(&i8_key).is_some(), "decode shape warmed under the i8 key");
            assert!(db.get(&f32_key).is_none(), "no f32 keys for an int8 deployment");
        }
        let hidden = cfg.hidden;
        let ids: Vec<_> = (0..4).map(|_| r.create_session(0).unwrap()).collect();
        let since = pl_trace::now_ns();
        pl_trace::enable();
        let rxs: Vec<_> = (0..4)
            .map(|s| r.submit_step(ids[s], &token(900 + s as u64, hidden)).unwrap())
            .collect();
        while r.pump_all() > 0 {}
        pl_trace::disable();
        let outs: Vec<Vec<f32>> = rxs.into_iter().map(|rx| rx.recv().unwrap().unwrap()).collect();
        let summary = r.trace_summary(since);
        assert!(summary.count_for("gemm.i8.execute") > 0, "i8 plans record i8 spans");
        assert_eq!(summary.count_for("gemm.execute"), 0, "no f32 spans on the int8 path");
        // Same seed => the f32 model these weights quantized from; routed
        // int8 outputs stay within the quantization budget of it (bound:
        // crates/serve/README.md, "Precision").
        let f32_model = DecoderModel::new(cfg, 4242);
        let pool = ThreadPool::new(2);
        for (s, got) in outs.iter().enumerate() {
            let mut st = f32_model.new_state(8);
            let want = f32_model.forward(&mut st, &token(900 + s as u64, hidden), 1, &pool);
            for (i, (a, b)) in got.iter().zip(&want).enumerate() {
                let rel = (a - b).abs() / b.abs().max(1.0);
                assert!(rel < 0.25, "session {s} idx {i}: i8 {a} vs f32 {b}");
            }
        }
    }

    #[test]
    fn blocking_steps_through_started_shards() {
        let mut r = tiny_router(2, ServerConfig::default());
        r.start();
        let hidden = r.shard(0).server().model().config().hidden;
        let ids: Vec<_> = (0..4).map(|_| r.create_session(0).unwrap()).collect();
        std::thread::scope(|scope| {
            for (s, &id) in ids.iter().enumerate() {
                let r = &r;
                scope.spawn(move || {
                    let mut x = token(300 + s as u64, hidden);
                    for _ in 0..3 {
                        x = r.step(id, &x).unwrap();
                    }
                    r.close_session(id).unwrap();
                });
            }
        });
        let agg = r.stats();
        r.shutdown();
        assert_eq!(agg.completed, 12);
        assert_eq!(r.session_count(), 0);
        assert!(matches!(
            r.create_session(0),
            Err(RouterError::Serve(ServeError::ShuttingDown)) | Err(RouterError::NoShardAvailable)
        ));
    }

    #[test]
    fn degraded_shard_excluded_until_burn_recovers() {
        let r = tiny_router(2, no_wait());
        let model = Arc::clone(r.shard(0).server().model());
        let hidden = model.config().hidden;
        let s0 = r.create_session(0).unwrap();
        let s1 = r.create_session(0).unwrap();
        assert_eq!(r.placement_of(s0), Some(0));
        assert_eq!(r.placement_of(s1), Some(1));
        // Inject SLO violations on shard 0: every observation blows the
        // target, so the burn rate saturates at 100x the error budget
        // and the health tracker latches Degraded.
        let slo = r.shard(0).server().slo();
        for _ in 0..200 {
            slo.record(9_999_999);
        }
        assert_eq!(r.shard_health(), vec![Health::Degraded, Health::Healthy]);
        // New sessions skip the degraded shard even though both shards
        // hold one session (and shard 1 only grows more loaded)...
        for i in 0..3 {
            let id = r.create_session(0).unwrap();
            assert_eq!(r.placement_of(id), Some(1), "new session {i} hit the degraded shard");
        }
        // ...while the existing shard-0 session keeps stepping,
        // bit-identical to unbatched decode over the same weights.
        let mut outs = Vec::new();
        let mut x = token(77, hidden);
        for _ in 0..3 {
            let rx = r.submit_step(s0, &x).unwrap();
            while r.pump_all() == 0 {}
            x = rx.recv().unwrap().unwrap();
            outs.push(x.clone());
        }
        let pool = ThreadPool::new(2);
        let mut st = model.new_state(16);
        let mut want = token(77, hidden);
        for (t, got) in outs.iter().enumerate() {
            want = model.forward(&mut st, &want, 1, &pool);
            assert_eq!(got, &want, "degraded-shard step {t} diverged");
        }
        // Hysteresis: dilute the violations with in-target traffic until
        // burn sits inside the (exit, enter) band — the shard must STAY
        // out of placement, not flap back at the first dip below enter.
        while slo.burn_rate() >= 1.0 {
            for _ in 0..500 {
                slo.record(10);
            }
        }
        let burn = slo.burn_rate();
        assert!((0.5..1.0).contains(&burn), "burn {burn} should sit inside the band");
        assert_eq!(r.shard_health()[0], Health::Degraded, "in-band burn keeps the latch");
        assert_eq!(r.placement_of(r.create_session(0).unwrap()), Some(1));
        // Recovery: only once burn falls through the exit threshold does
        // the shard rejoin the candidate list (and, holding 1 session to
        // shard 1's 5, it is immediately the least-loaded pick).
        while slo.burn_rate() > 0.5 {
            for _ in 0..2000 {
                slo.record(10);
            }
        }
        assert_eq!(r.shard_health(), vec![Health::Healthy, Health::Healthy]);
        assert_eq!(r.placement_of(r.create_session(0).unwrap()), Some(0));
    }

    #[test]
    fn projection_is_exposed_and_sane() {
        let r = tiny_router(2, no_wait());
        assert!((r.projected_speedup(1) - 1.0).abs() < 1e-12);
        let s2 = r.projected_speedup(2);
        assert!(s2 > 1.5 && s2 < 2.0, "2-shard projection {s2}");
    }
}
