//! # pl-autotuner — offline tuning of `loop_spec_string` knobs
//!
//! Reproduces the paper's auto-tuning infrastructure (§II-D, Fig. 1 boxes
//! B2/B3): exhaustive candidate generation under constraints ([`gen`]),
//! measured or model-based search ([`search`]) and a persistent tuning
//! database ([`db`]). The search space deliberately stops at the TPP
//! boundary — only cache blocking and parallelization are explored, which
//! is why tuning here is orders of magnitude faster than full tensor
//! compilers (paper §V-A2, reproduced by the `fig4_tvm` bench).

pub mod db;
pub mod gen;
pub mod search;

pub use db::{DbEntry, TuningDb};
pub use gen::{blocking_ladder, generate, prime_factors, Constraints};
pub use search::{
    batch_ladder, blocks_for_spec, tune_gemm_measured, tune_gemm_modeled,
    tune_gemm_ranked_measured, tune_spmm_modeled, warm_gemm_db, warm_spmm_db, Candidate,
    GemmProblem, TuneResult,
};
