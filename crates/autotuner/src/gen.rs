//! Constraint-driven exhaustive generation of `loop_spec_string`
//! candidates (paper §II-D).
//!
//! The tunable decisions are mapped 1:1 onto spec strings:
//! (i) how many times to block each loop, (ii) the blocking sizes — prefix
//! products of the trip count's prime factors (the paper's example
//! strategy), (iii) which loops to parallelize, and (iv) the loop order —
//! all permutations subject to (i)-(iii).

use std::collections::BTreeSet;

/// Per-problem generation constraints.
#[derive(Debug, Clone)]
pub struct Constraints {
    /// Max blocking count per logical loop (paper: 2 for K, 3 for M/N).
    pub max_blockings: Vec<usize>,
    /// Loops allowed to be parallelized (paper: the M and N loops).
    pub parallel_loops: Vec<usize>,
    /// Upper bound on generated candidates.
    pub max_candidates: usize,
}

impl Constraints {
    /// The paper's GEMM defaults: block K up to `ka` times, M/N up to
    /// `mb`/`nb` times, parallelize M (loop 1) and N (loop 2).
    pub fn gemm(ka: usize, mb: usize, nb: usize, max_candidates: usize) -> Self {
        Constraints { max_blockings: vec![ka, mb, nb], parallel_loops: vec![1, 2], max_candidates }
    }
}

/// Prime factorization in ascending order (with multiplicity).
pub fn prime_factors(mut n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut d = 2;
    while d * d <= n {
        while n.is_multiple_of(d) {
            out.push(d);
            n /= d;
        }
        d += 1;
    }
    if n > 1 {
        out.push(n);
    }
    out
}

/// Blocking-step candidates for a loop with `trips` iterations of `step`:
/// prefix products of the prime factors times the step, largest first
/// (outermost blocking first), as in the paper's §II-D item 2.
pub fn blocking_ladder(trips: usize, step: usize) -> Vec<usize> {
    let factors = prime_factors(trips);
    let mut ladder = Vec::new();
    let mut prod = step;
    for f in factors {
        prod *= f;
        ladder.push(prod);
    }
    // Outermost-first order, excluding the full extent (no point blocking
    // by the whole loop).
    ladder.pop();
    ladder.reverse();
    ladder
}

/// Generates up to `max_candidates` distinct spec strings for `num_loops`
/// logical loops under the constraints. Every returned string uses each
/// loop letter `1 + blockings` times and parallelizes either nothing or one
/// consecutive group drawn from `parallel_loops`.
pub fn generate(num_loops: usize, c: &Constraints) -> Vec<String> {
    assert!(num_loops <= 26);
    let mut results: BTreeSet<String> = BTreeSet::new();

    // Enumerate blocking counts per loop: 0..=max.
    let mut counts = vec![0usize; num_loops];
    loop {
        // Multiset of letters for this blocking assignment.
        let mut letters = Vec::new();
        for (l, &extra) in counts.iter().enumerate() {
            for _ in 0..=extra {
                letters.push((b'a' + l as u8) as char);
            }
        }
        permute_into(&mut letters.clone(), 0, &mut |perm| {
            if results.len() >= c.max_candidates {
                return;
            }
            let base: String = perm.iter().collect();
            // Sequential variant.
            results.insert(base.clone());
            // Parallel variants: uppercase each single allowed occurrence,
            // and each adjacent pair of allowed letters (collapse(2)).
            for i in 0..perm.len() {
                let li = (perm[i] as u8 - b'a') as usize;
                if !c.parallel_loops.contains(&li) {
                    continue;
                }
                let mut v: Vec<char> = perm.to_vec();
                v[i] = v[i].to_ascii_uppercase();
                results.insert(v.iter().collect());
                if i + 1 < perm.len() {
                    let lj = (perm[i + 1] as u8 - b'a') as usize;
                    if lj != li && c.parallel_loops.contains(&lj) {
                        let mut w: Vec<char> = perm.to_vec();
                        w[i] = w[i].to_ascii_uppercase();
                        w[i + 1] = w[i + 1].to_ascii_uppercase();
                        results.insert(w.iter().collect());
                    }
                }
            }
        });
        if results.len() >= c.max_candidates {
            break;
        }
        // Odometer increment over blocking counts.
        let mut i = 0;
        loop {
            if i == num_loops {
                break;
            }
            counts[i] += 1;
            if counts[i] <= c.max_blockings[i] {
                break;
            }
            counts[i] = 0;
            i += 1;
        }
        if i == num_loops {
            break;
        }
    }

    results.into_iter().take(c.max_candidates).collect()
}

/// Distinct permutations of a multiset (recursive, with duplicate pruning).
fn permute_into(letters: &mut Vec<char>, start: usize, f: &mut impl FnMut(&[char])) {
    if start == letters.len() {
        f(letters);
        return;
    }
    let mut seen = BTreeSet::new();
    for i in start..letters.len() {
        if !seen.insert(letters[i]) {
            continue;
        }
        letters.swap(start, i);
        permute_into(letters, start + 1, f);
        letters.swap(start, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prime_factorization() {
        assert_eq!(prime_factors(1), Vec::<usize>::new());
        assert_eq!(prime_factors(12), vec![2, 2, 3]);
        assert_eq!(prime_factors(17), vec![17]);
        assert_eq!(prime_factors(64), vec![2; 6]);
    }

    #[test]
    fn ladder_prefix_products() {
        // trips=8, step=2: factors 2,2,2; prefix products x step: 4, 8, 16;
        // drop the full extent (16), outermost first -> [8, 4].
        assert_eq!(blocking_ladder(8, 2), vec![8, 4]);
        assert_eq!(blocking_ladder(1, 4), Vec::<usize>::new());
        // Ladder entries divide each other (perfect nesting by design).
        let l = blocking_ladder(36, 1);
        for w in l.windows(2) {
            assert_eq!(w[0] % w[1], 0);
        }
    }

    #[test]
    fn generation_without_blocking() {
        let c = Constraints {
            max_blockings: vec![0, 0, 0],
            parallel_loops: vec![1, 2],
            max_candidates: 1000,
        };
        let specs = generate(3, &c);
        // 6 permutations of "abc"; each with up to 2 single-uppercase (b,c)
        // and adjacent-pair variants.
        assert!(specs.contains(&"abc".to_string()));
        assert!(specs.contains(&"aBc".to_string()));
        assert!(specs.contains(&"aBC".to_string()));
        assert!(!specs.iter().any(|s| s.contains('A')), "loop a not parallelizable");
        // All distinct.
        let set: BTreeSet<_> = specs.iter().collect();
        assert_eq!(set.len(), specs.len());
    }

    #[test]
    fn generation_respects_occurrence_counts() {
        let c = Constraints {
            max_blockings: vec![1, 1, 0],
            parallel_loops: vec![],
            max_candidates: 10_000,
        };
        let specs = generate(3, &c);
        for s in &specs {
            let na = s.chars().filter(|c| c.eq_ignore_ascii_case(&'a')).count();
            let nb = s.chars().filter(|c| c.eq_ignore_ascii_case(&'b')).count();
            let nc = s.chars().filter(|c| c.eq_ignore_ascii_case(&'c')).count();
            assert!((1..=2).contains(&na), "{s}");
            assert!((1..=2).contains(&nb), "{s}");
            assert_eq!(nc, 1, "{s}");
        }
        // Includes fully blocked variants.
        assert!(specs.iter().any(|s| s.len() == 5));
    }

    #[test]
    fn cap_is_respected() {
        let c = Constraints {
            max_blockings: vec![2, 3, 3],
            parallel_loops: vec![1, 2],
            max_candidates: 100,
        };
        let specs = generate(3, &c);
        assert_eq!(specs.len(), 100);
    }

    #[test]
    fn all_generated_specs_parse() {
        let c = Constraints::gemm(1, 2, 2, 500);
        let specs = generate(3, &c);
        for s in &specs {
            parlooper::spec::parse(s, 3).unwrap_or_else(|e| panic!("spec {s}: {e}"));
        }
    }
}
