//! Search drivers: evaluate candidate spec strings by measurement or by
//! the performance model (paper Fig. 1, boxes B2/B3), keep the best.

use crate::gen::{blocking_ladder, generate, Constraints};
use pl_perfmodel::{GemmModelSpec, Platform};
use pl_tensor::DType;
use std::time::Instant;

/// One evaluated candidate.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The spec string.
    pub spec: String,
    /// Blocking-step lists used for loops a/b/c.
    pub blocks: [Vec<usize>; 3],
    /// Score (GFLOPS — higher is better).
    pub score: f64,
}

/// Search outcome.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// Best candidate found.
    pub best: Candidate,
    /// Everything evaluated, sorted best-first.
    pub evaluated: Vec<Candidate>,
    /// Wall time of the search in seconds.
    pub search_seconds: f64,
}

/// A GEMM tuning problem (block sizes already fixed; the search explores
/// outer-loop structure only — the paper's key search-space reduction
/// versus full tensor compilers, §V-A2).
#[derive(Debug, Clone, Copy)]
pub struct GemmProblem {
    /// GEMM M.
    pub m: usize,
    /// GEMM N.
    pub n: usize,
    /// GEMM K.
    pub k: usize,
    /// M block.
    pub bm: usize,
    /// N block.
    pub bn: usize,
    /// K block.
    pub bk: usize,
    /// Datatype.
    pub dtype: DType,
}

impl GemmProblem {
    fn model_spec(&self, spec: &str, blocks: [Vec<usize>; 3], k_step: usize) -> GemmModelSpec {
        GemmModelSpec {
            m: self.m,
            n: self.n,
            k: self.k,
            bm: self.bm,
            bn: self.bn,
            bk: self.bk,
            k_step,
            spec: spec.to_string(),
            blocks,
            dtype: self.dtype,
        }
    }
}

/// Derives the per-loop blocking lists a candidate spec needs: the first
/// `occurrences - 1` rungs of the loop's prime-factor ladder. Returns
/// `None` when the ladder is too short (spec infeasible for this problem).
pub fn blocks_for_spec(problem: &GemmProblem, spec: &str) -> Option<[Vec<usize>; 3]> {
    let trips = [problem.k / problem.bk, problem.m / problem.bm, problem.n / problem.bn];
    let mut out: [Vec<usize>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for (l, t) in trips.iter().enumerate() {
        let occ = spec.chars().filter(|c| c.to_ascii_lowercase() as u8 == b'a' + l as u8).count();
        if occ == 0 {
            return None;
        }
        let ladder = blocking_ladder(*t, 1);
        if occ - 1 > ladder.len() {
            return None;
        }
        out[l] = ladder[..occ - 1].to_vec();
    }
    Some(out)
}

/// Model-based (offline, cross-platform) tuning of a GEMM problem.
pub fn tune_gemm_modeled(
    problem: &GemmProblem,
    constraints: &Constraints,
    platform: &Platform,
    threads: usize,
) -> TuneResult {
    tune_modeled_filtered(problem, constraints, platform, threads, |_| true)
}

/// Model-based tuning of a Block-SpMM problem: the same constraint-driven
/// candidate space as the GEMM search, restricted to specs feasible for
/// `SpmmTuning` (exactly one K-loop occurrence — the Block-SpMM kernel's K
/// loop supports no extra blocking), scored with the dense-equivalent GEMM
/// model. A measured SpMM search would refine the scores; the *structural*
/// winner (loop order + parallelization) is what the `spmm/...` registry
/// keys need so `lookup_spmm` stops falling through.
pub fn tune_spmm_modeled(
    problem: &GemmProblem,
    constraints: &Constraints,
    platform: &Platform,
    threads: usize,
) -> TuneResult {
    tune_modeled_filtered(problem, constraints, platform, threads, |spec| {
        spec.chars().filter(|c| c.eq_ignore_ascii_case(&'a')).count() == 1
    })
}

fn tune_modeled_filtered(
    problem: &GemmProblem,
    constraints: &Constraints,
    platform: &Platform,
    threads: usize,
    feasible: impl Fn(&str) -> bool,
) -> TuneResult {
    let t0 = Instant::now();
    let mut candidates: Vec<(String, [Vec<usize>; 3])> = Vec::new();
    for spec in generate(3, constraints) {
        if !feasible(&spec) {
            continue;
        }
        let Some(blocks) = blocks_for_spec(problem, &spec) else {
            continue;
        };
        candidates.push((spec, blocks));
    }
    let template = problem.model_spec("abc", [Vec::new(), Vec::new(), Vec::new()], 1);
    let ranked = pl_perfmodel::rank_gemm_candidates(&template, &candidates, platform, threads);
    let evaluated = ranked
        .into_iter()
        .map(|(i, pred)| Candidate {
            spec: candidates[i].0.clone(),
            blocks: candidates[i].1.clone(),
            score: pred.gflops,
        })
        .collect();
    finish(evaluated, t0)
}

/// Measured tuning: the caller provides the evaluation function
/// (e.g. running the real kernel and reporting GFLOPS).
pub fn tune_gemm_measured(
    problem: &GemmProblem,
    constraints: &Constraints,
    mut run: impl FnMut(&str, &[Vec<usize>; 3]) -> Option<f64>,
) -> TuneResult {
    let t0 = Instant::now();
    let mut evaluated = Vec::new();
    for spec in generate(3, constraints) {
        let Some(blocks) = blocks_for_spec(problem, &spec) else {
            continue;
        };
        if let Some(score) = run(&spec, &blocks) {
            evaluated.push(Candidate { spec, blocks, score });
        }
    }
    finish(evaluated, t0)
}

/// Ranked measured tuning — the retune loop's search driver. The
/// analytical model ranks the full constraint-generated candidate space
/// (via [`pl_perfmodel::rank_gemm_candidates`]); only the `top_k`
/// survivors are handed to the caller's measurement function, plus any
/// `extra_specs` (typically the incumbent spec, so a planted or stale
/// winner is re-scored against the challengers rather than surviving by
/// default). The returned [`TuneResult`] is sorted by *measured* score;
/// candidates whose measurement returns `None` (kernel build failure,
/// budget exhausted) are dropped.
pub fn tune_gemm_ranked_measured(
    problem: &GemmProblem,
    constraints: &Constraints,
    platform: &Platform,
    threads: usize,
    top_k: usize,
    extra_specs: &[String],
    mut run: impl FnMut(&str, &[Vec<usize>; 3]) -> Option<f64>,
) -> TuneResult {
    let t0 = Instant::now();
    let ranked = tune_gemm_modeled(problem, constraints, platform, threads).evaluated;
    let mut to_measure: Vec<(String, [Vec<usize>; 3])> = Vec::new();
    for cand in ranked.into_iter().take(top_k) {
        to_measure.push((cand.spec, cand.blocks));
    }
    for spec in extra_specs {
        if to_measure.iter().any(|(s, _)| s == spec) {
            continue;
        }
        if let Some(blocks) = blocks_for_spec(problem, spec) {
            to_measure.push((spec.clone(), blocks));
        }
    }
    let mut evaluated = Vec::new();
    for (spec, blocks) in to_measure {
        if let Some(score) = run(&spec, &blocks) {
            evaluated.push(Candidate { spec, blocks, score });
        }
    }
    finish(evaluated, t0)
}

/// A power-of-two width ladder: `1, 2, 4, ...` up to `max`, plus `max`
/// itself when it is not a power of two. Serving runtimes warm the
/// N-dimension variants of their per-layer GEMMs on this schedule for
/// widths too numerous to enumerate (prompt lengths); consumers round a
/// missed width up to the next rung to reuse the nearest warmed spec.
pub fn batch_ladder(max: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut b = 1usize;
    while b <= max {
        out.push(b);
        b *= 2;
    }
    if *out.last().unwrap_or(&0) != max && max > 0 {
        out.push(max);
    }
    out
}

/// Warms a [`TuningDb`] with the model-based winners for a set of GEMM
/// problems on one platform — the serving runtime calls this at startup for
/// every shape its batcher can produce, so steady-state traffic never pays
/// search latency. Problems already present in the DB (same key) are
/// skipped; returns the number of entries added.
pub fn warm_gemm_db(
    db: &mut crate::db::TuningDb,
    problems: &[GemmProblem],
    constraints: &Constraints,
    platform: &Platform,
    threads: usize,
) -> usize {
    let mut added = 0;
    for p in problems {
        let key = crate::db::TuningDb::gemm_key(platform.name, p.m, p.n, p.k, &p.dtype.to_string());
        if db.get(&key).is_some() {
            continue;
        }
        let result = tune_gemm_modeled(p, constraints, platform, threads);
        db.put(&key, crate::db::DbEntry { spec: result.best.spec, score: result.best.score });
        added += 1;
    }
    added
}

/// SpMM companion of [`warm_gemm_db`] — warms the `spmm/...` keys for a
/// set of problems via [`tune_spmm_modeled`], so a serving runtime's
/// startup warm-up leaves the Block-SpMM bridge's registry lookups hitting
/// instead of always falling through to `default_parallel`. Problems whose
/// key is already present are skipped; returns the number of entries
/// added.
pub fn warm_spmm_db(
    db: &mut crate::db::TuningDb,
    problems: &[GemmProblem],
    constraints: &Constraints,
    platform: &Platform,
    threads: usize,
) -> usize {
    let mut added = 0;
    for p in problems {
        let key = crate::db::TuningDb::spmm_key(platform.name, p.m, p.n, p.k, &p.dtype.to_string());
        if db.get(&key).is_some() {
            continue;
        }
        let result = tune_spmm_modeled(p, constraints, platform, threads);
        db.put(&key, crate::db::DbEntry { spec: result.best.spec, score: result.best.score });
        added += 1;
    }
    added
}

fn finish(mut evaluated: Vec<Candidate>, t0: Instant) -> TuneResult {
    evaluated.sort_by(|a, b| b.score.total_cmp(&a.score));
    let best = evaluated.first().cloned().unwrap_or(Candidate {
        spec: "abc".into(),
        blocks: [Vec::new(), Vec::new(), Vec::new()],
        score: 0.0,
    });
    TuneResult { best, evaluated, search_seconds: t0.elapsed().as_secs_f64() }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problem() -> GemmProblem {
        GemmProblem { m: 256, n: 256, k: 256, bm: 32, bn: 32, bk: 32, dtype: DType::F32 }
    }

    #[test]
    fn modeled_search_prefers_parallel_specs() {
        let c = Constraints::gemm(0, 1, 1, 300);
        let r = tune_gemm_modeled(&problem(), &c, &Platform::zen4(), 16);
        assert!(!r.evaluated.is_empty());
        assert!(
            r.best.spec.chars().any(|ch| ch.is_ascii_uppercase()),
            "best spec {} should be parallel",
            r.best.spec
        );
        // Sorted best-first.
        for w in r.evaluated.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn measured_search_uses_caller_scores() {
        let c = Constraints::gemm(0, 0, 0, 50);
        // Score "cab" artificially highest.
        let r = tune_gemm_measured(&problem(), &c, |spec, _| {
            Some(if spec == "cab" { 100.0 } else { 1.0 })
        });
        assert_eq!(r.best.spec, "cab");
        assert_eq!(r.best.score, 100.0);
    }

    #[test]
    fn ranked_measured_limits_measurements_and_keeps_incumbent() {
        let c = Constraints::gemm(0, 1, 1, 300);
        let mut measured = Vec::new();
        let r = tune_gemm_ranked_measured(
            &problem(),
            &c,
            &Platform::zen4(),
            8,
            4,
            &["abc".to_string()],
            |spec, _| {
                measured.push(spec.to_string());
                // The sequential incumbent "wins" the measurement: measured
                // score overrides the model ranking.
                Some(if spec == "abc" { 1000.0 } else { 10.0 })
            },
        );
        // top_k model picks + the incumbent (which the model would never
        // rank into the top 4 — it is sequential).
        assert_eq!(measured.len(), 5, "measured {measured:?}");
        assert!(measured.contains(&"abc".to_string()));
        assert_eq!(r.best.spec, "abc");
        assert_eq!(r.evaluated.len(), 5);
    }

    #[test]
    fn ranked_measured_dedups_incumbent_already_in_top_k() {
        let c = Constraints::gemm(0, 1, 1, 300);
        let model_best = tune_gemm_modeled(&problem(), &c, &Platform::zen4(), 8).best.spec.clone();
        let mut count = 0usize;
        tune_gemm_ranked_measured(
            &problem(),
            &c,
            &Platform::zen4(),
            8,
            3,
            &[model_best],
            |_, _| {
                count += 1;
                Some(1.0)
            },
        );
        assert_eq!(count, 3, "incumbent inside top_k must not be measured twice");
    }

    #[test]
    fn blocks_follow_ladders() {
        let p = problem(); // 8 blocks per dim -> ladder [4, 2]
        let blocks = blocks_for_spec(&p, "aabbc").unwrap();
        assert_eq!(blocks[0], vec![4]);
        assert_eq!(blocks[1], vec![4]);
        assert!(blocks[2].is_empty());
        // Too many occurrences for the ladder (8 = 2^3 -> at most 2 rungs
        // below the extent, so 4 occurrences are infeasible).
        assert!(blocks_for_spec(&p, "aaaabc").is_none());
    }

    #[test]
    fn warm_gemm_db_records_winners_and_skips_known_shapes() {
        let mut db = crate::db::TuningDb::new();
        let c = Constraints::gemm(0, 1, 1, 100);
        let platform = Platform::zen4();
        let p = problem();
        let added = warm_gemm_db(&mut db, &[p, p], &c, &platform, 8);
        assert_eq!(added, 1, "duplicate shape must be tuned once");
        let key = crate::db::TuningDb::gemm_key(platform.name, p.m, p.n, p.k, &p.dtype.to_string());
        let entry = db.get(&key).expect("warmed entry present");
        assert!(entry.score > 0.0);
        // Re-warming is a no-op.
        assert_eq!(warm_gemm_db(&mut db, &[p], &c, &platform, 8), 0);
    }

    #[test]
    fn spmm_search_is_single_k_feasible_and_warms_db() {
        // Even with K blocking allowed in the candidate space, every spmm
        // candidate must keep exactly one K-loop occurrence (the kernel's
        // K loop supports no extra blocking).
        let c = Constraints::gemm(2, 1, 1, 300);
        let platform = Platform::zen4();
        let r = tune_spmm_modeled(&problem(), &c, &platform, 8);
        assert!(!r.evaluated.is_empty());
        for cand in &r.evaluated {
            assert_eq!(
                cand.spec.chars().filter(|ch| ch.eq_ignore_ascii_case(&'a')).count(),
                1,
                "spec {} infeasible for SpmmTuning",
                cand.spec
            );
        }
        let mut db = crate::db::TuningDb::new();
        let p = problem();
        assert_eq!(warm_spmm_db(&mut db, &[p, p], &c, &platform, 8), 1, "duplicate tuned once");
        let key = crate::db::TuningDb::spmm_key(platform.name, p.m, p.n, p.k, &p.dtype.to_string());
        assert!(db.get(&key).expect("spmm key warmed").score > 0.0);
        // Re-warming is a no-op, and the gemm keys are untouched.
        assert_eq!(warm_spmm_db(&mut db, &[p], &c, &platform, 8), 0);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn batch_ladder_covers_powers_and_ragged_max() {
        assert_eq!(batch_ladder(0), Vec::<usize>::new());
        assert_eq!(batch_ladder(1), vec![1]);
        assert_eq!(batch_ladder(8), vec![1, 2, 4, 8]);
        assert_eq!(batch_ladder(6), vec![1, 2, 4, 6]);
        assert_eq!(batch_ladder(13), vec![1, 2, 4, 8, 13]);
    }

    #[test]
    fn batch_ladder_boundary_widths() {
        // Width 1: the degenerate ladder is exactly the decode width.
        assert_eq!(batch_ladder(1), vec![1]);
        assert_eq!(batch_ladder(2), vec![1, 2]);
        // Exact power-of-two max: no ragged tail rung is appended.
        for exp in 0..=10u32 {
            let max = 1usize << exp;
            let ladder = batch_ladder(max);
            assert_eq!(*ladder.last().unwrap(), max);
            assert_eq!(ladder.len(), exp as usize + 1, "pure power ladder for {max}");
            assert!(ladder.iter().all(|w| w.is_power_of_two()));
        }
        // kv_capacity-shaped maxima (the serving warm-up's upper bound):
        // the capacity itself is always a rung, whether ragged or not.
        for kv in [16usize, 64, 100, 128, 129, 1000] {
            let ladder = batch_ladder(kv);
            assert_eq!(*ladder.last().unwrap(), kv, "kv_capacity {kv} must be warmed");
            assert!(ladder.windows(2).all(|w| w[0] < w[1]), "strictly ascending");
            assert!(ladder.iter().all(|&w| w <= kv), "no rung beyond capacity");
        }
        // Round-up contract for missed widths: for every width w <= max,
        // the consumer rounds up to the next rung — which must exist and
        // be `next_power_of_two(w)` (or `max` itself when that power
        // overshoots the ragged tail).
        for max in [6usize, 8, 13, 100] {
            let ladder = batch_ladder(max);
            for w in 1..=max {
                let rung = *ladder.iter().find(|&&r| r >= w).unwrap_or_else(|| {
                    panic!("width {w} has no rung to round up to in ladder({max})")
                });
                let expect = if w.next_power_of_two() <= max { w.next_power_of_two() } else { max };
                assert_eq!(rung, expect, "width {w} in ladder({max})");
            }
        }
    }

    #[test]
    fn search_reports_wall_time() {
        let c = Constraints::gemm(0, 0, 0, 10);
        let r = tune_gemm_modeled(&problem(), &c, &Platform::zen4(), 4);
        assert!(r.search_seconds >= 0.0);
    }
}
