//! The offline tuning database (paper Fig. 1, "off-line autotuned
//! database"): `(problem, platform) -> best loop_spec_string`, persisted
//! as a plain tab-separated text file (no serialization crates needed).

use std::collections::HashMap;
use std::io::Write;
use std::path::Path;

/// One stored tuning entry.
#[derive(Debug, Clone, PartialEq)]
pub struct DbEntry {
    /// The winning spec string.
    pub spec: String,
    /// Its score (GFLOPS).
    pub score: f64,
}

/// In-memory tuning database with text-file persistence. `Clone` takes a
/// point-in-time snapshot — consumers (e.g. the kernel-selection registry
/// in `pl_dnn`) hold an immutable copy while the warmer keeps extending
/// the original.
#[derive(Debug, Default, Clone)]
pub struct TuningDb {
    entries: HashMap<String, DbEntry>,
}

impl TuningDb {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Canonical key for a GEMM problem on a platform.
    pub fn gemm_key(platform: &str, m: usize, n: usize, k: usize, dtype: &str) -> String {
        format!("gemm/{platform}/{m}x{n}x{k}/{dtype}")
    }

    /// Canonical key for a Block-SpMM problem on a platform.
    pub fn spmm_key(platform: &str, m: usize, n: usize, k: usize, dtype: &str) -> String {
        format!("spmm/{platform}/{m}x{n}x{k}/{dtype}")
    }

    /// Inserts or replaces an entry.
    pub fn put(&mut self, key: &str, entry: DbEntry) {
        self.entries.insert(key.to_string(), entry);
    }

    /// Looks up an entry.
    pub fn get(&self, key: &str) -> Option<&DbEntry> {
        self.entries.get(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the DB is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries as `(key, entry)` pairs, sorted by key — the stable
    /// iteration order consumers (persisted-DB writers, retune reports)
    /// need for reproducible output.
    pub fn entries_sorted(&self) -> Vec<(&str, &DbEntry)> {
        let mut out: Vec<_> = self.entries.iter().map(|(k, e)| (k.as_str(), e)).collect();
        out.sort_by(|a, b| a.0.cmp(b.0));
        out
    }

    /// Saves as `key\tspec\tscore` lines (sorted for reproducible diffs).
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let mut keys: Vec<_> = self.entries.keys().collect();
        keys.sort();
        let mut f = std::fs::File::create(path)?;
        for k in keys {
            let e = &self.entries[k];
            writeln!(f, "{k}\t{}\t{}", e.spec, e.score)?;
        }
        Ok(())
    }

    /// Loads from the text format; unparseable lines are skipped.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        let mut db = Self::new();
        for line in text.lines() {
            let mut parts = line.split('\t');
            let (Some(k), Some(spec), Some(score)) = (parts.next(), parts.next(), parts.next())
            else {
                continue;
            };
            let Ok(score) = score.parse::<f64>() else { continue };
            db.put(k, DbEntry { spec: spec.to_string(), score });
        }
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_file() {
        let mut db = TuningDb::new();
        let k1 = TuningDb::gemm_key("SPR", 512, 512, 512, "bf16");
        db.put(&k1, DbEntry { spec: "bcaBCb".into(), score: 40321.5 });
        db.put("conv/Zen4/l5", DbEntry { spec: "ACDbefg".into(), score: 900.0 });
        let dir = std::env::temp_dir().join("pl_tuning_db_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.tsv");
        db.save(&path).unwrap();
        let loaded = TuningDb::load(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.get(&k1).unwrap().spec, "bcaBCb");
        assert!((loaded.get(&k1).unwrap().score - 40321.5).abs() < 1e-9);
    }

    #[test]
    fn clone_is_a_snapshot() {
        let mut db = TuningDb::new();
        db.put("k1", DbEntry { spec: "abc".into(), score: 1.0 });
        let snap = db.clone();
        db.put("k2", DbEntry { spec: "bca".into(), score: 2.0 });
        assert_eq!(snap.len(), 1);
        assert_eq!(db.len(), 2);
        assert_eq!(snap.get("k1").unwrap().spec, "abc");
    }

    #[test]
    fn spmm_and_gemm_keys_are_disjoint() {
        assert_ne!(
            TuningDb::gemm_key("Zen4", 8, 8, 8, "f32"),
            TuningDb::spmm_key("Zen4", 8, 8, 8, "f32")
        );
    }

    #[test]
    fn entries_sorted_is_key_ordered() {
        let mut db = TuningDb::new();
        db.put("z/last", DbEntry { spec: "abc".into(), score: 1.0 });
        db.put("a/first", DbEntry { spec: "bca".into(), score: 2.0 });
        db.put("m/mid", DbEntry { spec: "cab".into(), score: 3.0 });
        let entries = db.entries_sorted();
        let keys: Vec<&str> = entries.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec!["a/first", "m/mid", "z/last"]);
        assert_eq!(entries[0].1.spec, "bca");
    }

    #[test]
    fn lookup_miss_is_none() {
        let db = TuningDb::new();
        assert!(db.get("nope").is_none());
        assert!(db.is_empty());
    }

    #[test]
    fn malformed_lines_are_skipped() {
        let dir = std::env::temp_dir().join("pl_tuning_db_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.tsv");
        std::fs::write(&path, "good\tabc\t1.5\ngarbage line\nk\tspec\tnot_a_number\n").unwrap();
        let db = TuningDb::load(&path).unwrap();
        assert_eq!(db.len(), 1);
        assert_eq!(db.get("good").unwrap().spec, "abc");
    }
}
