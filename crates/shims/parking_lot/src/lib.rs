//! Offline stand-in for the `parking_lot` crate (this environment builds
//! with no registry access; see `crates/shims/README.md`).
//!
//! Provides the subset of the API this workspace uses — [`Mutex`] and
//! [`RwLock`] whose guards are obtained without a `Result` — implemented
//! over `std::sync` primitives. Poisoning is deliberately ignored (a
//! panicking critical section resumes on the next locker), which matches
//! parking_lot's semantics.

use std::sync::{Mutex as StdMutex, RwLock as StdRwLock};
pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with parking_lot's panic-transparent API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: StdMutex::new(value) }
    }

    /// Acquires the lock, blocking until it is available. Never fails:
    /// poisoning from a panicked holder is cleared.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's panic-transparent API.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock { inner: StdRwLock::new(value) }
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poison_is_cleared() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
