//! Offline stand-in for the `crossbeam` crate (this environment builds
//! with no registry access; see `crates/shims/README.md`).
//!
//! Only the `channel` subset the workspace uses is provided, mapped onto
//! `std::sync::mpsc` (whose `Sender` has been `Sync` and lock-free on the
//! fast path since Rust 1.72 — it *is* a crossbeam-derived implementation).

pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender, TryRecvError};

    /// An unbounded MPSC channel (crossbeam's `unbounded` signature).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unbounded_send_recv() {
        let (tx, rx) = super::channel::unbounded();
        tx.send(42).unwrap();
        assert_eq!(rx.recv().unwrap(), 42);
    }

    #[test]
    fn sender_is_sync_and_clonable_across_threads() {
        let (tx, rx) = super::channel::unbounded::<usize>();
        std::thread::scope(|s| {
            for i in 0..4 {
                let tx = tx.clone();
                s.spawn(move || tx.send(i).unwrap());
            }
        });
        let mut got: Vec<usize> = (0..4).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}
