//! Offline stand-in for the `criterion` crate (this environment builds
//! with no registry access; see `crates/shims/README.md`).
//!
//! Implements the subset the workspace's micro-benchmarks use —
//! `benchmark_group` / `sample_size` / `throughput` / `bench_function` /
//! `iter` plus the `criterion_group!` / `criterion_main!` macros — with a
//! plain median-of-samples timer printing one line per benchmark. No
//! statistics engine, no plots; the goal is that `cargo bench` runs and
//! reports useful numbers, not criterion parity.

use std::time::Instant;

/// Throughput annotation for a benchmark (affects the printed rate).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (or flops) processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-iteration timer handed to the bench closure.
pub struct Bencher {
    samples: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `f`, first calibrating an iteration count so one sample takes
    /// roughly a millisecond, then recording `samples` medians.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Calibrate.
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let dt = t0.elapsed().as_secs_f64();
            if dt > 1e-3 || iters >= 1 << 20 {
                self.iters_per_sample = iters;
                break;
            }
            iters *= 4;
        }
        let n_samples = self.samples.capacity().max(1);
        for _ in 0..n_samples {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(f());
            }
            self.samples.push(t0.elapsed().as_secs_f64() / self.iters_per_sample as f64);
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark and prints its median time (and rate, when a
    /// throughput annotation is set).
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut f = f;
        let mut b = Bencher { samples: Vec::with_capacity(self.sample_size), iters_per_sample: 1 };
        f(&mut b);
        b.samples.sort_by(f64::total_cmp);
        let median = b.samples.get(b.samples.len() / 2).copied().unwrap_or(f64::NAN);
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => format!("  {:>12.1} Melem/s", n as f64 / median / 1e6),
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12.1} MiB/s", n as f64 / median / (1 << 20) as f64)
            }
            None => String::new(),
        };
        println!("{}/{:<32} {:>12.0} ns/iter{}", self.name, id, median * 1e9, rate);
        self
    }

    /// Ends the group (printing nothing extra; provided for API parity).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Fresh driver (the real criterion reads CLI args here; we don't).
    pub fn new() -> Self {
        Criterion {}
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, throughput: None, _criterion: self }
    }
}

/// Mirrors `criterion::black_box` (stable `std::hint` version).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collects bench functions under a group name, as the real macro does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::new();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::new();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        let mut runs = 0u64;
        g.bench_function("count", |b| b.iter(|| runs = runs.wrapping_add(1)));
        assert!(runs > 0);
        g.finish();
    }
}
