//! Chunked prefill jobs: the unit of continuous batching.
//!
//! A prompt submitted through [`crate::Server::submit_prefill`] becomes one
//! [`PrefillJob`]: the whole prompt plus its ladder-aligned chunk widths
//! ([`pl_dnn::prefill_chunk_widths`]). The job itself never sits in a
//! queue — *chunks* do ([`crate::batcher::WorkItem::PrefillChunk`]), one at
//! a time: chunk `i + 1` is enqueued only after chunk `i` executed, so the
//! KV cache always extends in prompt order while decode batches run in
//! between. Outputs accumulate here and the completion channel fires once
//! with the full `hidden x tokens` result after the final chunk.

use crate::session::{SessionId, TenantId};
use crate::StepResult;
use parking_lot::Mutex;
use pl_dnn::prefill_chunk_widths;
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;

/// One in-flight chunked prefill: the prompt, its chunk plan, the
/// accumulated outputs, and the completion channel.
pub struct PrefillJob {
    session: SessionId,
    tenant: TenantId,
    /// The session's program-order ticket for the **whole job** (drawn
    /// from `Session::submit_seq`, like a decode step's
    /// `StepRequest::seq`): every chunk checks out under this ticket and
    /// the cursor advances only when the job finishes (or aborts), so
    /// work pipelined behind the prefill cannot execute between chunks.
    seq: u64,
    hidden: usize,
    prompt: Vec<f32>,
    /// Chunk widths in execution order (sum = prompt tokens).
    widths: Vec<usize>,
    /// Token offset of each chunk (prefix sums of `widths`).
    offsets: Vec<usize>,
    reply: Sender<StepResult>,
    /// Per-chunk outputs, appended in chunk order. At most one chunk of a
    /// job is ever in flight, so this lock is uncontended.
    out: Mutex<Vec<f32>>,
}

impl PrefillJob {
    /// Plans a prefill of `prompt` (`hidden x tokens`, column-major) into
    /// chunks of at most `chunk` tokens; returns the job and the receiver
    /// its completion (or error) will be delivered on.
    pub fn new(
        session: SessionId,
        tenant: TenantId,
        seq: u64,
        hidden: usize,
        prompt: Vec<f32>,
        tokens: usize,
        chunk: usize,
    ) -> (Arc<Self>, Receiver<StepResult>) {
        let widths = prefill_chunk_widths(tokens, chunk);
        let mut offsets = Vec::with_capacity(widths.len());
        let mut at = 0usize;
        for &w in &widths {
            offsets.push(at);
            at += w;
        }
        let (tx, rx) = mpsc::channel();
        let job = PrefillJob {
            session,
            tenant,
            seq,
            hidden,
            prompt,
            widths,
            offsets,
            reply: tx,
            out: Mutex::new(Vec::with_capacity(hidden * tokens)),
        };
        (Arc::new(job), rx)
    }

    /// Target session.
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// The job's program-order ticket (see the field docs).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Submitting tenant (selects the ring).
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// Number of chunks this prefill executes as.
    pub fn chunks(&self) -> usize {
        self.widths.len()
    }

    /// Total prompt tokens.
    pub fn tokens(&self) -> usize {
        self.widths.iter().sum()
    }

    /// Token width of chunk `i`.
    pub fn chunk_tokens(&self, i: usize) -> usize {
        self.widths[i]
    }

    /// Tokens not yet applied as of chunk `i` — this chunk and everything
    /// after it. Batch checkout validates KV capacity against this (not
    /// the single chunk width) so an oversized prefill fails **atomically
    /// at its first chunk**, before any tokens append, instead of leaving
    /// a partial prompt in the session's KV cache.
    pub fn remaining_tokens(&self, i: usize) -> usize {
        self.tokens() - self.offsets[i]
    }

    /// The whole `hidden x tokens` prompt input — what the prefix cache
    /// hashes when the final chunk completes.
    pub fn prompt(&self) -> &[f32] {
        &self.prompt
    }

    /// The `hidden x chunk_tokens(i)` input slice of chunk `i`.
    pub fn chunk_input(&self, i: usize) -> &[f32] {
        let start = self.offsets[i] * self.hidden;
        &self.prompt[start..start + self.widths[i] * self.hidden]
    }

    /// Appends chunk `i`'s output (called in chunk order by the executor).
    pub fn push_output(&self, y: Vec<f32>) {
        self.out.lock().extend(y);
    }

    /// Takes the accumulated `hidden x tokens` output (final-chunk path).
    pub fn take_output(&self) -> Vec<f32> {
        std::mem::take(&mut self.out.lock())
    }

    /// The completion channel (one delivery per job: the full output after
    /// the final chunk, or the error that aborted it).
    pub fn reply(&self) -> &Sender<StepResult> {
        &self.reply
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_plans_ladder_aligned_chunks_and_accumulates() {
        let hidden = 2;
        let tokens = 11;
        let prompt: Vec<f32> = (0..hidden * tokens).map(|i| i as f32).collect();
        let (job, rx) = PrefillJob::new(7, 1, 5, hidden, prompt.clone(), tokens, 4);
        assert_eq!(job.session(), 7);
        assert_eq!(job.tenant(), 1);
        assert_eq!(job.seq(), 5);
        assert_eq!(job.chunks(), 3);
        assert_eq!(job.tokens(), tokens);
        assert_eq!(
            (0..job.chunks()).map(|i| job.chunk_tokens(i)).collect::<Vec<_>>(),
            vec![4, 4, 3]
        );
        assert_eq!(
            (0..job.chunks()).map(|i| job.remaining_tokens(i)).collect::<Vec<_>>(),
            vec![11, 7, 3]
        );
        // Chunk inputs tile the prompt exactly, in order.
        let mut tiled = Vec::new();
        for i in 0..job.chunks() {
            tiled.extend_from_slice(job.chunk_input(i));
            job.push_output(job.chunk_input(i).to_vec());
        }
        assert_eq!(tiled, prompt);
        assert_eq!(job.take_output(), prompt);
        // Completion flows through the job's channel.
        job.reply().send(Ok(vec![1.0])).unwrap();
        assert_eq!(rx.recv().unwrap().unwrap(), vec![1.0]);
    }

    #[test]
    fn single_chunk_prompt_is_never_subdivided() {
        let (job, _rx) = PrefillJob::new(1, 0, 0, 4, vec![0.0; 4 * 3], 3, 16);
        assert_eq!(job.chunks(), 1);
        assert_eq!(job.chunk_tokens(0), 3);
        assert_eq!(job.chunk_input(0).len(), 12);
    }
}
