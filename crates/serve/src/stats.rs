//! `ServerStats` — the serving runtime's metrics surface.
//!
//! Everything is atomics, so the hot path (batcher + client threads)
//! records without locks; a [`ServerStats::snapshot`] folds the counters
//! into human-facing rates and quantiles.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Number of power-of-two latency buckets (bucket i covers
/// `[2^(i-1), 2^i)` microseconds; bucket 0 is `< 1 µs`).
const LATENCY_BUCKETS: usize = 40;

/// A log2-bucketed latency histogram over microseconds.
///
/// Quantile answers are the upper edge of the containing bucket, i.e.
/// within 2x of the true value — the fidelity latency SLOs actually need,
/// at the cost of 40 counters and zero locks.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    total_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Element-wise sum of `other` into `mine`, growing `mine` as needed —
/// the bucket-histogram half of [`StatsSnapshot::merge`], delegating to
/// the workspace-wide implementation in [`pl_metrics::merge_buckets`].
fn merge_buckets(mine: &mut Vec<u64>, other: &[u64]) {
    pl_metrics::merge_buckets(mine, other);
}

/// Quantile estimate from raw log2 bucket counts: the upper edge of the
/// bucket containing rank `ceil(q * n)`. This is the pure fold behind
/// [`LatencyHistogram::quantile_us`], shared with [`StatsSnapshot::merge`]
/// so cross-shard aggregation recomputes quantiles from summed buckets
/// instead of (incorrectly) averaging per-shard quantiles. The single
/// implementation (also behind `pl_trace`'s nanosecond histograms) lives
/// in [`pl_metrics::quantile_from_buckets`]; this re-export keeps the
/// serving-layer API stable.
pub fn quantile_from_buckets(buckets: &[u64], q: f64) -> u64 {
    pl_metrics::quantile_from_buckets(buckets, q)
}

impl LatencyHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_us: AtomicU64::new(0),
        }
    }

    fn bucket_of(us: u64) -> usize {
        pl_metrics::bucket_of(us, LATENCY_BUCKETS)
    }

    /// Point-in-time copy of the raw bucket counts (index i = bucket i).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    /// Records one observation in microseconds.
    pub fn record_us(&self, us: u64) {
        self.buckets[Self::bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.total_us.load(Ordering::Relaxed) as f64 / n as f64
    }

    /// Upper-edge estimate of quantile `q` (`0.0..=1.0`) in microseconds.
    pub fn quantile_us(&self, q: f64) -> u64 {
        quantile_from_buckets(&self.bucket_counts(), q)
    }
}

/// A dense counting histogram over small integer values (batch sizes).
#[derive(Debug)]
pub struct CountHistogram {
    buckets: Vec<AtomicU64>,
}

impl CountHistogram {
    /// Histogram over values `0..=max_value` (larger values clamp).
    pub fn new(max_value: usize) -> Self {
        CountHistogram { buckets: (0..=max_value).map(|_| AtomicU64::new(0)).collect() }
    }

    /// Records one observation.
    pub fn record(&self, value: usize) {
        let i = value.min(self.buckets.len() - 1);
        self.buckets[i].fetch_add(1, Ordering::Relaxed);
    }

    /// Count at `value`.
    pub fn count_at(&self, value: usize) -> u64 {
        self.buckets.get(value).map_or(0, |b| b.load(Ordering::Relaxed))
    }

    /// Largest value with a nonzero count.
    pub fn max_observed(&self) -> usize {
        (0..self.buckets.len())
            .rev()
            .find(|&i| self.buckets[i].load(Ordering::Relaxed) > 0)
            .unwrap_or(0)
    }

    /// `(value, count)` pairs with nonzero counts.
    pub fn nonzero(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then_some((i, c))
            })
            .collect()
    }
}

/// Live counters of a serving runtime.
#[derive(Debug)]
pub struct ServerStats {
    started: Instant,
    /// Step requests accepted into a queue.
    pub submitted: AtomicU64,
    /// Step requests completed (reply delivered).
    pub completed: AtomicU64,
    /// Rejections because the tenant's queue ring was full.
    pub rejected_backpressure: AtomicU64,
    /// Rejections because the session cap was reached.
    pub rejected_sessions: AtomicU64,
    /// Batches executed.
    pub batches: AtomicU64,
    /// Batches that contained at least one decode lane (a batch can also
    /// be a lone prefill chunk).
    pub decode_batches: AtomicU64,
    /// Prefills completed (all chunks executed, reply delivered).
    pub prefills: AtomicU64,
    /// Prefill chunks executed through the batcher.
    pub prefill_chunks: AtomicU64,
    /// Batches that interleaved a prefill chunk with decode lanes — the
    /// continuous-batching signal: nonzero means long prompts shared
    /// regions with live decode traffic instead of blocking it.
    pub mixed_batches: AtomicU64,
    /// Batches executed through the fused cross-session path.
    pub fused_batches: AtomicU64,
    /// Queue-to-reply latency of decode steps (the combined histogram,
    /// kept for artifact compatibility: `queue_wait_latency` +
    /// `execute_latency` split the same interval).
    pub step_latency: LatencyHistogram,
    /// Submit→collect slice of step latency: time a step sat in the
    /// submission ring (plus coalesce linger and deferred replays)
    /// before a batch picked it up. High here = queueing problem.
    pub queue_wait_latency: LatencyHistogram,
    /// Collect→deliver slice of step latency: checkout + the parallel
    /// region + check-in/reply. High here = compute problem.
    pub execute_latency: LatencyHistogram,
    /// Enqueue-to-execution latency of prefill chunks.
    pub prefill_chunk_latency: LatencyHistogram,
    /// Distribution of executed batch sizes.
    pub batch_sizes: CountHistogram,
    /// `(m, n, k) -> GEMMs executed` over all fused batches (n is the
    /// batch size B; the `hidden x hidden` shape runs 4x per layer for
    /// QKV + output, the FFN shapes once per layer). One locked update per
    /// batch — not per GEMM — so the hot path stays effectively lock-free;
    /// the map is how operators *see* decode turning from `hidden x 1`
    /// GEMVs into `hidden x B` GEMMs.
    fused_gemm_shapes: Mutex<BTreeMap<(usize, usize, usize), u64>>,
}

impl ServerStats {
    /// Fresh stats; `max_batch` bounds the batch-size histogram.
    pub fn new(max_batch: usize) -> Self {
        ServerStats {
            started: Instant::now(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected_backpressure: AtomicU64::new(0),
            rejected_sessions: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            decode_batches: AtomicU64::new(0),
            prefills: AtomicU64::new(0),
            prefill_chunks: AtomicU64::new(0),
            mixed_batches: AtomicU64::new(0),
            fused_batches: AtomicU64::new(0),
            step_latency: LatencyHistogram::new(),
            queue_wait_latency: LatencyHistogram::new(),
            execute_latency: LatencyHistogram::new(),
            prefill_chunk_latency: LatencyHistogram::new(),
            batch_sizes: CountHistogram::new(max_batch),
            fused_gemm_shapes: Mutex::new(BTreeMap::new()),
        }
    }

    /// Records one fused batch: each `(shape, count)` entry says the batch
    /// executed `count` GEMMs of that `(m, n, k)` shape.
    pub fn record_fused_batch(&self, gemm_shapes: &[((usize, usize, usize), u64)]) {
        self.fused_batches.fetch_add(1, Ordering::Relaxed);
        let mut shapes = self.fused_gemm_shapes.lock();
        for &(s, count) in gemm_shapes {
            *shapes.entry(s).or_insert(0) += count;
        }
    }

    /// The fused GEMM shapes observed so far, as sorted
    /// `((m, n, k), GEMMs executed)` pairs.
    pub fn fused_gemm_shapes(&self) -> Vec<((usize, usize, usize), u64)> {
        self.fused_gemm_shapes.lock().iter().map(|(&s, &c)| (s, c)).collect()
    }

    /// Folds the counters into a point-in-time summary.
    pub fn snapshot(&self) -> StatsSnapshot {
        let elapsed = self.started.elapsed().as_secs_f64().max(1e-9);
        let completed = self.completed.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        StatsSnapshot {
            elapsed_s: elapsed,
            submitted: self.submitted.load(Ordering::Relaxed),
            completed,
            rejected_backpressure: self.rejected_backpressure.load(Ordering::Relaxed),
            rejected_sessions: self.rejected_sessions.load(Ordering::Relaxed),
            batches,
            decode_batches: self.decode_batches.load(Ordering::Relaxed),
            prefills: self.prefills.load(Ordering::Relaxed),
            prefill_chunks: self.prefill_chunks.load(Ordering::Relaxed),
            mixed_batches: self.mixed_batches.load(Ordering::Relaxed),
            fused_batches: self.fused_batches.load(Ordering::Relaxed),
            fused_gemm_shapes: self.fused_gemm_shapes(),
            tokens_per_s: completed as f64 / elapsed,
            mean_batch: if batches == 0 { 0.0 } else { completed as f64 / batches as f64 },
            max_batch_observed: self.batch_sizes.max_observed(),
            batch_distribution: self.batch_sizes.nonzero(),
            latency_buckets: self.step_latency.bucket_counts(),
            p50_us: self.step_latency.quantile_us(0.50),
            p99_us: self.step_latency.quantile_us(0.99),
            mean_us: self.step_latency.mean_us(),
            queue_wait_buckets: self.queue_wait_latency.bucket_counts(),
            queue_wait_p50_us: self.queue_wait_latency.quantile_us(0.50),
            queue_wait_p99_us: self.queue_wait_latency.quantile_us(0.99),
            execute_buckets: self.execute_latency.bucket_counts(),
            execute_p50_us: self.execute_latency.quantile_us(0.50),
            execute_p99_us: self.execute_latency.quantile_us(0.99),
            chunk_latency_buckets: self.prefill_chunk_latency.bucket_counts(),
            chunk_p50_us: self.prefill_chunk_latency.quantile_us(0.50),
            chunk_p99_us: self.prefill_chunk_latency.quantile_us(0.99),
        }
    }
}

/// Point-in-time summary of [`ServerStats`].
#[derive(Debug, Clone)]
pub struct StatsSnapshot {
    /// Seconds since server start.
    pub elapsed_s: f64,
    /// Steps accepted.
    pub submitted: u64,
    /// Steps completed.
    pub completed: u64,
    /// Backpressure rejections.
    pub rejected_backpressure: u64,
    /// Session-cap rejections.
    pub rejected_sessions: u64,
    /// Batches executed.
    pub batches: u64,
    /// Batches containing at least one decode lane.
    pub decode_batches: u64,
    /// Prefills completed.
    pub prefills: u64,
    /// Prefill chunks executed through the batcher.
    pub prefill_chunks: u64,
    /// Batches that interleaved a prefill chunk with decode lanes.
    pub mixed_batches: u64,
    /// Batches executed through the fused cross-session path.
    pub fused_batches: u64,
    /// `((m, n, k), GEMMs executed)` of the shapes fused batches ran.
    pub fused_gemm_shapes: Vec<((usize, usize, usize), u64)>,
    /// Decode throughput (completed steps per second since start).
    pub tokens_per_s: f64,
    /// Mean executed batch size.
    pub mean_batch: f64,
    /// Largest executed batch.
    pub max_batch_observed: usize,
    /// `(batch size, count)` pairs.
    pub batch_distribution: Vec<(usize, u64)>,
    /// Raw log2 latency bucket counts (bucket i covers `[2^(i-1), 2^i)`
    /// µs) — carried so snapshots from several servers can be **merged**
    /// with correct quantiles (averaging per-shard p99s would be wrong).
    pub latency_buckets: Vec<u64>,
    /// Median queue-to-reply step latency (µs, bucket upper edge).
    pub p50_us: u64,
    /// 99th percentile step latency (µs, bucket upper edge).
    pub p99_us: u64,
    /// Mean step latency (µs).
    pub mean_us: f64,
    /// Raw log2 buckets of the submit→collect (queue wait) slice of
    /// step latency (mergeable, like `latency_buckets`).
    pub queue_wait_buckets: Vec<u64>,
    /// Median queue wait (µs, bucket upper edge).
    pub queue_wait_p50_us: u64,
    /// 99th percentile queue wait (µs).
    pub queue_wait_p99_us: u64,
    /// Raw log2 buckets of the collect→deliver (execute) slice of step
    /// latency (mergeable).
    pub execute_buckets: Vec<u64>,
    /// Median execute latency (µs, bucket upper edge).
    pub execute_p50_us: u64,
    /// 99th percentile execute latency (µs).
    pub execute_p99_us: u64,
    /// Raw log2 prefill-chunk latency buckets (mergeable, like
    /// `latency_buckets`).
    pub chunk_latency_buckets: Vec<u64>,
    /// Median prefill-chunk enqueue-to-execution latency (µs).
    pub chunk_p50_us: u64,
    /// 99th percentile prefill-chunk latency (µs).
    pub chunk_p99_us: u64,
}

impl StatsSnapshot {
    /// The all-zero snapshot — the identity element of [`StatsSnapshot::merge`].
    pub fn empty() -> Self {
        StatsSnapshot {
            elapsed_s: 0.0,
            submitted: 0,
            completed: 0,
            rejected_backpressure: 0,
            rejected_sessions: 0,
            batches: 0,
            decode_batches: 0,
            prefills: 0,
            prefill_chunks: 0,
            mixed_batches: 0,
            fused_batches: 0,
            fused_gemm_shapes: Vec::new(),
            tokens_per_s: 0.0,
            mean_batch: 0.0,
            max_batch_observed: 0,
            batch_distribution: Vec::new(),
            latency_buckets: vec![0; LATENCY_BUCKETS],
            p50_us: 0,
            p99_us: 0,
            mean_us: 0.0,
            queue_wait_buckets: vec![0; LATENCY_BUCKETS],
            queue_wait_p50_us: 0,
            queue_wait_p99_us: 0,
            execute_buckets: vec![0; LATENCY_BUCKETS],
            execute_p50_us: 0,
            execute_p99_us: 0,
            chunk_latency_buckets: vec![0; LATENCY_BUCKETS],
            chunk_p50_us: 0,
            chunk_p99_us: 0,
        }
    }

    /// Latency observations carried by this snapshot (sum of the raw
    /// buckets).
    pub fn latency_count(&self) -> u64 {
        self.latency_buckets.iter().sum()
    }

    /// Folds `other` into `self` — the cross-shard aggregation a serving
    /// router needs. Counters add; `elapsed_s` takes the max (shards run
    /// concurrently, not back-to-back); throughput and means are
    /// recomputed from the merged counters; quantiles are recomputed from
    /// the **summed latency buckets** (never from the per-shard p50/p99
    /// values, which do not compose); batch/shape histograms merge by key.
    pub fn merge(&mut self, other: &StatsSnapshot) {
        let (c_self, c_other) = (self.latency_count() as f64, other.latency_count() as f64);
        self.elapsed_s = self.elapsed_s.max(other.elapsed_s);
        self.submitted += other.submitted;
        self.completed += other.completed;
        self.rejected_backpressure += other.rejected_backpressure;
        self.rejected_sessions += other.rejected_sessions;
        self.batches += other.batches;
        self.decode_batches += other.decode_batches;
        self.prefills += other.prefills;
        self.prefill_chunks += other.prefill_chunks;
        self.mixed_batches += other.mixed_batches;
        self.fused_batches += other.fused_batches;
        self.max_batch_observed = self.max_batch_observed.max(other.max_batch_observed);

        let mut shapes: BTreeMap<(usize, usize, usize), u64> =
            self.fused_gemm_shapes.iter().copied().collect();
        for &(s, c) in &other.fused_gemm_shapes {
            *shapes.entry(s).or_insert(0) += c;
        }
        self.fused_gemm_shapes = shapes.into_iter().collect();

        let mut dist: BTreeMap<usize, u64> = self.batch_distribution.iter().copied().collect();
        for &(b, c) in &other.batch_distribution {
            *dist.entry(b).or_insert(0) += c;
        }
        self.batch_distribution = dist.into_iter().collect();

        merge_buckets(&mut self.latency_buckets, &other.latency_buckets);

        self.tokens_per_s = self.completed as f64 / self.elapsed_s.max(1e-9);
        self.mean_batch =
            if self.batches == 0 { 0.0 } else { self.completed as f64 / self.batches as f64 };
        self.mean_us = if c_self + c_other > 0.0 {
            (self.mean_us * c_self + other.mean_us * c_other) / (c_self + c_other)
        } else {
            0.0
        };
        self.p50_us = quantile_from_buckets(&self.latency_buckets, 0.50);
        self.p99_us = quantile_from_buckets(&self.latency_buckets, 0.99);

        merge_buckets(&mut self.queue_wait_buckets, &other.queue_wait_buckets);
        self.queue_wait_p50_us = quantile_from_buckets(&self.queue_wait_buckets, 0.50);
        self.queue_wait_p99_us = quantile_from_buckets(&self.queue_wait_buckets, 0.99);
        merge_buckets(&mut self.execute_buckets, &other.execute_buckets);
        self.execute_p50_us = quantile_from_buckets(&self.execute_buckets, 0.50);
        self.execute_p99_us = quantile_from_buckets(&self.execute_buckets, 0.99);

        merge_buckets(&mut self.chunk_latency_buckets, &other.chunk_latency_buckets);
        self.chunk_p50_us = quantile_from_buckets(&self.chunk_latency_buckets, 0.50);
        self.chunk_p99_us = quantile_from_buckets(&self.chunk_latency_buckets, 0.99);
    }

    /// Hand-rolled JSON rendering (no serialization crates in this
    /// environment) — every field, machine-readable, for scrapers and the
    /// bench artifact. Array-valued histograms serialize as arrays of
    /// `[key, count]` pairs; the fused shapes as `[[m, n, k], count]`.
    pub fn to_json(&self) -> String {
        let dist: Vec<String> =
            self.batch_distribution.iter().map(|(b, c)| format!("[{b},{c}]")).collect();
        let buckets: Vec<String> = self.latency_buckets.iter().map(u64::to_string).collect();
        let queue_buckets: Vec<String> =
            self.queue_wait_buckets.iter().map(u64::to_string).collect();
        let exec_buckets: Vec<String> = self.execute_buckets.iter().map(u64::to_string).collect();
        let chunk_buckets: Vec<String> =
            self.chunk_latency_buckets.iter().map(u64::to_string).collect();
        let shapes: Vec<String> = self
            .fused_gemm_shapes
            .iter()
            .map(|((m, n, k), c)| format!("[[{m},{n},{k}],{c}]"))
            .collect();
        format!(
            concat!(
                "{{\"elapsed_s\":{:.6},\"submitted\":{},\"completed\":{},",
                "\"rejected_backpressure\":{},\"rejected_sessions\":{},",
                "\"batches\":{},\"decode_batches\":{},\"prefills\":{},",
                "\"prefill_chunks\":{},\"mixed_batches\":{},\"fused_batches\":{},",
                "\"tokens_per_s\":{:.3},\"mean_batch\":{:.4},",
                "\"max_batch_observed\":{},\"batch_distribution\":[{}],",
                "\"latency_buckets\":[{}],\"fused_gemm_shapes\":[{}],",
                "\"p50_us\":{},\"p99_us\":{},\"mean_us\":{:.3},",
                "\"queue_wait_buckets\":[{}],\"queue_wait_p50_us\":{},",
                "\"queue_wait_p99_us\":{},\"execute_buckets\":[{}],",
                "\"execute_p50_us\":{},\"execute_p99_us\":{},",
                "\"chunk_latency_buckets\":[{}],\"chunk_p50_us\":{},\"chunk_p99_us\":{}}}"
            ),
            self.elapsed_s,
            self.submitted,
            self.completed,
            self.rejected_backpressure,
            self.rejected_sessions,
            self.batches,
            self.decode_batches,
            self.prefills,
            self.prefill_chunks,
            self.mixed_batches,
            self.fused_batches,
            self.tokens_per_s,
            self.mean_batch,
            self.max_batch_observed,
            dist.join(","),
            buckets.join(","),
            shapes.join(","),
            self.p50_us,
            self.p99_us,
            self.mean_us,
            queue_buckets.join(","),
            self.queue_wait_p50_us,
            self.queue_wait_p99_us,
            exec_buckets.join(","),
            self.execute_p50_us,
            self.execute_p99_us,
            chunk_buckets.join(","),
            self.chunk_p50_us,
            self.chunk_p99_us,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_quantiles_bracket_observations() {
        let h = LatencyHistogram::new();
        for us in [10u64, 20, 30, 40, 1000] {
            h.record_us(us);
        }
        assert_eq!(h.count(), 5);
        let p50 = h.quantile_us(0.5);
        // 3rd of 5 sorted observations is 30 µs -> bucket upper edge 32.
        assert!((30..=64).contains(&p50), "p50 {p50}");
        let p99 = h.quantile_us(0.99);
        assert!((1000..=2048).contains(&p99), "p99 {p99}");
        assert!((h.mean_us() - 220.0).abs() < 1.0);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_us(0.5), 0);
        assert_eq!(h.mean_us(), 0.0);
    }

    #[test]
    fn count_histogram_tracks_max_and_distribution() {
        let h = CountHistogram::new(8);
        h.record(1);
        h.record(4);
        h.record(4);
        h.record(100); // clamps to 8
        assert_eq!(h.max_observed(), 8);
        assert_eq!(h.count_at(4), 2);
        assert_eq!(h.nonzero(), vec![(1, 1), (4, 2), (8, 1)]);
    }

    #[test]
    fn fused_shapes_accumulate_gemm_counts_per_batch() {
        // Two layers: 8 QKV+WO GEMMs of h x h, 2 of each FFN shape.
        let s = ServerStats::new(8);
        s.record_fused_batch(&[((32, 4, 32), 8), ((64, 4, 32), 2), ((32, 4, 64), 2)]);
        s.record_fused_batch(&[((32, 4, 32), 8), ((64, 4, 32), 2), ((32, 4, 64), 2)]);
        s.record_fused_batch(&[((32, 8, 32), 8), ((64, 8, 32), 2), ((32, 8, 64), 2)]);
        assert_eq!(s.fused_batches.load(Ordering::Relaxed), 3);
        let shapes = s.fused_gemm_shapes();
        assert_eq!(shapes.len(), 6);
        assert!(shapes.contains(&((32, 4, 32), 16)), "counts GEMMs executed, not batches");
        assert!(shapes.contains(&((64, 8, 32), 2)));
        let snap = s.snapshot();
        assert_eq!(snap.fused_batches, 3);
        assert_eq!(snap.fused_gemm_shapes, shapes);
    }

    #[test]
    fn merge_sums_latency_and_batch_histograms() {
        // Two shards with disjoint latency populations: shard A all-fast
        // (16 µs), shard B all-slow (1024 µs). The merged p99 must come
        // from the *summed buckets* (slow tail visible), not from any
        // average of the per-shard quantiles.
        let a = ServerStats::new(8);
        let b = ServerStats::new(8);
        for _ in 0..99 {
            a.step_latency.record_us(16);
            a.completed.fetch_add(1, Ordering::Relaxed);
        }
        b.step_latency.record_us(1024);
        b.completed.fetch_add(1, Ordering::Relaxed);
        a.batches.fetch_add(50, Ordering::Relaxed);
        b.batches.fetch_add(1, Ordering::Relaxed);
        a.batch_sizes.record(2);
        a.batch_sizes.record(2);
        b.batch_sizes.record(2);
        b.batch_sizes.record(8);
        b.prefills.fetch_add(3, Ordering::Relaxed);
        a.record_fused_batch(&[((32, 4, 32), 8)]);
        b.record_fused_batch(&[((32, 4, 32), 8), ((64, 4, 32), 2)]);
        // Chunked-prefill surfaces merge too: counters add, chunk
        // latency quantiles recompute from summed buckets.
        a.prefill_chunks.fetch_add(4, Ordering::Relaxed);
        b.prefill_chunks.fetch_add(2, Ordering::Relaxed);
        a.mixed_batches.fetch_add(1, Ordering::Relaxed);
        a.decode_batches.fetch_add(50, Ordering::Relaxed);
        b.decode_batches.fetch_add(1, Ordering::Relaxed);
        a.prefill_chunk_latency.record_us(8);
        b.prefill_chunk_latency.record_us(512);
        // The queue-wait/execute split merges like the combined
        // histogram: summed buckets, recomputed quantiles.
        a.queue_wait_latency.record_us(4);
        b.queue_wait_latency.record_us(256);
        a.execute_latency.record_us(12);
        b.execute_latency.record_us(768);

        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.completed, 100);
        assert_eq!(merged.batches, 51);
        assert_eq!(merged.prefills, 3);
        assert_eq!(merged.prefill_chunks, 6);
        assert_eq!(merged.mixed_batches, 1);
        assert_eq!(merged.decode_batches, 51);
        assert_eq!(merged.chunk_p50_us, 16, "fast chunk's bucket edge");
        assert_eq!(quantile_from_buckets(&merged.chunk_latency_buckets, 1.0), 1024);
        assert_eq!(merged.queue_wait_buckets.iter().sum::<u64>(), 2);
        assert_eq!(merged.queue_wait_p50_us, 8, "fast queue wait's bucket edge");
        assert_eq!(quantile_from_buckets(&merged.queue_wait_buckets, 1.0), 512);
        assert_eq!(merged.execute_buckets.iter().sum::<u64>(), 2);
        assert_eq!(merged.execute_p50_us, 16);
        assert_eq!(quantile_from_buckets(&merged.execute_buckets, 1.0), 1024);
        assert_eq!(merged.latency_count(), 100);
        // p50 over {99x16, 1x1024} is the 16 µs observation's bucket
        // (upper edge 32); p99 lands on the rank-99 observation (still
        // the fast bucket), p100 on the slow one (bucket edge 2048).
        assert_eq!(merged.p50_us, 32);
        assert_eq!(merged.p99_us, 32);
        assert_eq!(quantile_from_buckets(&merged.latency_buckets, 1.0), 2048);
        // Batch histogram merged by size: three batches of 2, one of 8.
        assert_eq!(merged.batch_distribution, vec![(2, 3), (8, 1)]);
        assert_eq!(merged.max_batch_observed, 8);
        // Fused shape map merged by (m, n, k).
        assert_eq!(merged.fused_gemm_shapes, vec![((32, 4, 32), 16), ((64, 4, 32), 2)]);
        assert_eq!(merged.fused_batches, 2);
        // Mean is count-weighted: (99*16 + 1024) / 100.
        assert!((merged.mean_us - 26.08).abs() < 1e-9, "mean {}", merged.mean_us);
        // Rates recomputed from merged counters.
        assert!((merged.mean_batch - 100.0 / 51.0).abs() < 1e-12);
    }

    #[test]
    fn merge_identity_and_elapsed_is_max_not_sum() {
        let s = ServerStats::new(4);
        s.completed.fetch_add(7, Ordering::Relaxed);
        s.step_latency.record_us(100);
        let base = s.snapshot();
        // empty ⊕ snap == snap ⊕ empty (on every content field; elapsed of
        // the live snapshot dominates the empty one's 0).
        let mut left = StatsSnapshot::empty();
        left.merge(&base);
        let mut right = base.clone();
        right.merge(&StatsSnapshot::empty());
        assert_eq!(left.completed, right.completed);
        assert_eq!(left.latency_buckets, right.latency_buckets);
        assert_eq!(left.p99_us, right.p99_us);
        assert_eq!(left.elapsed_s, right.elapsed_s);
        // Concurrent shards: elapsed is max, so merged throughput is the
        // *sum* of shard throughputs, not their mean.
        let mut x = StatsSnapshot::empty();
        x.elapsed_s = 2.0;
        x.completed = 10;
        let mut y = StatsSnapshot::empty();
        y.elapsed_s = 2.0;
        y.completed = 30;
        x.merge(&y);
        assert_eq!(x.elapsed_s, 2.0);
        assert!((x.tokens_per_s - 20.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_renders_json() {
        let s = ServerStats::new(4);
        s.submitted.fetch_add(5, Ordering::Relaxed);
        s.completed.fetch_add(5, Ordering::Relaxed);
        s.batches.fetch_add(2, Ordering::Relaxed);
        s.batch_sizes.record(2);
        s.batch_sizes.record(3);
        s.step_latency.record_us(10);
        s.record_fused_batch(&[((32, 2, 32), 8)]);
        s.prefill_chunks.fetch_add(3, Ordering::Relaxed);
        s.mixed_batches.fetch_add(1, Ordering::Relaxed);
        s.prefill_chunk_latency.record_us(100);
        s.queue_wait_latency.record_us(3);
        s.execute_latency.record_us(7);
        let json = s.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for needle in [
            "\"completed\":5",
            "\"batches\":2",
            "\"batch_distribution\":[[2,1],[3,1]]",
            "\"fused_gemm_shapes\":[[[32,2,32],8]]",
            "\"latency_buckets\":[",
            "\"p99_us\":16",
            "\"prefill_chunks\":3",
            "\"mixed_batches\":1",
            "\"chunk_latency_buckets\":[",
            "\"chunk_p99_us\":128",
            "\"queue_wait_buckets\":[",
            "\"queue_wait_p99_us\":4",
            "\"execute_buckets\":[",
            "\"execute_p99_us\":8",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        // Braces/brackets balance — the hand-rolled writer stays well-formed.
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn snapshot_derives_rates() {
        let s = ServerStats::new(4);
        s.submitted.fetch_add(10, Ordering::Relaxed);
        s.completed.fetch_add(10, Ordering::Relaxed);
        s.batches.fetch_add(4, Ordering::Relaxed);
        s.batch_sizes.record(2);
        s.batch_sizes.record(4);
        let snap = s.snapshot();
        assert_eq!(snap.completed, 10);
        assert_eq!(snap.max_batch_observed, 4);
        assert!((snap.mean_batch - 2.5).abs() < 1e-12);
        assert!(snap.tokens_per_s > 0.0);
    }
}
