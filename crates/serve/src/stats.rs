//! `ServerStats` — the serving runtime's metrics surface.
//!
//! Everything is atomics, so the hot path (batcher + client threads)
//! records without locks; a [`ServerStats::snapshot`] folds the counters
//! into human-facing rates and quantiles.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Number of power-of-two latency buckets (bucket i covers
/// `[2^(i-1), 2^i)` microseconds; bucket 0 is `< 1 µs`).
const LATENCY_BUCKETS: usize = 40;

/// A log2-bucketed latency histogram over microseconds.
///
/// Quantile answers are the upper edge of the containing bucket, i.e.
/// within 2x of the true value — the fidelity latency SLOs actually need,
/// at the cost of 40 counters and zero locks.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    total_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_us: AtomicU64::new(0),
        }
    }

    fn bucket_of(us: u64) -> usize {
        ((64 - us.leading_zeros()) as usize).min(LATENCY_BUCKETS - 1)
    }

    /// Records one observation in microseconds.
    pub fn record_us(&self, us: u64) {
        self.buckets[Self::bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.total_us.load(Ordering::Relaxed) as f64 / n as f64
    }

    /// Upper-edge estimate of quantile `q` (`0.0..=1.0`) in microseconds.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return 1u64 << i; // upper edge of bucket i
            }
        }
        1u64 << (LATENCY_BUCKETS - 1)
    }
}

/// A dense counting histogram over small integer values (batch sizes).
#[derive(Debug)]
pub struct CountHistogram {
    buckets: Vec<AtomicU64>,
}

impl CountHistogram {
    /// Histogram over values `0..=max_value` (larger values clamp).
    pub fn new(max_value: usize) -> Self {
        CountHistogram { buckets: (0..=max_value).map(|_| AtomicU64::new(0)).collect() }
    }

    /// Records one observation.
    pub fn record(&self, value: usize) {
        let i = value.min(self.buckets.len() - 1);
        self.buckets[i].fetch_add(1, Ordering::Relaxed);
    }

    /// Count at `value`.
    pub fn count_at(&self, value: usize) -> u64 {
        self.buckets.get(value).map_or(0, |b| b.load(Ordering::Relaxed))
    }

    /// Largest value with a nonzero count.
    pub fn max_observed(&self) -> usize {
        (0..self.buckets.len())
            .rev()
            .find(|&i| self.buckets[i].load(Ordering::Relaxed) > 0)
            .unwrap_or(0)
    }

    /// `(value, count)` pairs with nonzero counts.
    pub fn nonzero(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then_some((i, c))
            })
            .collect()
    }
}

/// Live counters of a serving runtime.
#[derive(Debug)]
pub struct ServerStats {
    started: Instant,
    /// Step requests accepted into a queue.
    pub submitted: AtomicU64,
    /// Step requests completed (reply delivered).
    pub completed: AtomicU64,
    /// Rejections because the tenant's queue ring was full.
    pub rejected_backpressure: AtomicU64,
    /// Rejections because the session cap was reached.
    pub rejected_sessions: AtomicU64,
    /// Batches executed.
    pub batches: AtomicU64,
    /// Prefill calls served.
    pub prefills: AtomicU64,
    /// Batches executed through the fused cross-session path.
    pub fused_batches: AtomicU64,
    /// Queue-to-reply latency of decode steps.
    pub step_latency: LatencyHistogram,
    /// Distribution of executed batch sizes.
    pub batch_sizes: CountHistogram,
    /// `(m, n, k) -> GEMMs executed` over all fused batches (n is the
    /// batch size B; the `hidden x hidden` shape runs 4x per layer for
    /// QKV + output, the FFN shapes once per layer). One locked update per
    /// batch — not per GEMM — so the hot path stays effectively lock-free;
    /// the map is how operators *see* decode turning from `hidden x 1`
    /// GEMVs into `hidden x B` GEMMs.
    fused_gemm_shapes: Mutex<BTreeMap<(usize, usize, usize), u64>>,
}

impl ServerStats {
    /// Fresh stats; `max_batch` bounds the batch-size histogram.
    pub fn new(max_batch: usize) -> Self {
        ServerStats {
            started: Instant::now(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected_backpressure: AtomicU64::new(0),
            rejected_sessions: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            prefills: AtomicU64::new(0),
            fused_batches: AtomicU64::new(0),
            step_latency: LatencyHistogram::new(),
            batch_sizes: CountHistogram::new(max_batch),
            fused_gemm_shapes: Mutex::new(BTreeMap::new()),
        }
    }

    /// Records one fused batch: each `(shape, count)` entry says the batch
    /// executed `count` GEMMs of that `(m, n, k)` shape.
    pub fn record_fused_batch(&self, gemm_shapes: &[((usize, usize, usize), u64)]) {
        self.fused_batches.fetch_add(1, Ordering::Relaxed);
        let mut shapes = self.fused_gemm_shapes.lock();
        for &(s, count) in gemm_shapes {
            *shapes.entry(s).or_insert(0) += count;
        }
    }

    /// The fused GEMM shapes observed so far, as sorted
    /// `((m, n, k), GEMMs executed)` pairs.
    pub fn fused_gemm_shapes(&self) -> Vec<((usize, usize, usize), u64)> {
        self.fused_gemm_shapes.lock().iter().map(|(&s, &c)| (s, c)).collect()
    }

    /// Folds the counters into a point-in-time summary.
    pub fn snapshot(&self) -> StatsSnapshot {
        let elapsed = self.started.elapsed().as_secs_f64().max(1e-9);
        let completed = self.completed.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        StatsSnapshot {
            elapsed_s: elapsed,
            submitted: self.submitted.load(Ordering::Relaxed),
            completed,
            rejected_backpressure: self.rejected_backpressure.load(Ordering::Relaxed),
            rejected_sessions: self.rejected_sessions.load(Ordering::Relaxed),
            batches,
            prefills: self.prefills.load(Ordering::Relaxed),
            fused_batches: self.fused_batches.load(Ordering::Relaxed),
            fused_gemm_shapes: self.fused_gemm_shapes(),
            tokens_per_s: completed as f64 / elapsed,
            mean_batch: if batches == 0 { 0.0 } else { completed as f64 / batches as f64 },
            max_batch_observed: self.batch_sizes.max_observed(),
            batch_distribution: self.batch_sizes.nonzero(),
            p50_us: self.step_latency.quantile_us(0.50),
            p99_us: self.step_latency.quantile_us(0.99),
            mean_us: self.step_latency.mean_us(),
        }
    }
}

/// Point-in-time summary of [`ServerStats`].
#[derive(Debug, Clone)]
pub struct StatsSnapshot {
    /// Seconds since server start.
    pub elapsed_s: f64,
    /// Steps accepted.
    pub submitted: u64,
    /// Steps completed.
    pub completed: u64,
    /// Backpressure rejections.
    pub rejected_backpressure: u64,
    /// Session-cap rejections.
    pub rejected_sessions: u64,
    /// Batches executed.
    pub batches: u64,
    /// Prefills served.
    pub prefills: u64,
    /// Batches executed through the fused cross-session path.
    pub fused_batches: u64,
    /// `((m, n, k), GEMMs executed)` of the shapes fused batches ran.
    pub fused_gemm_shapes: Vec<((usize, usize, usize), u64)>,
    /// Decode throughput (completed steps per second since start).
    pub tokens_per_s: f64,
    /// Mean executed batch size.
    pub mean_batch: f64,
    /// Largest executed batch.
    pub max_batch_observed: usize,
    /// `(batch size, count)` pairs.
    pub batch_distribution: Vec<(usize, u64)>,
    /// Median queue-to-reply step latency (µs, bucket upper edge).
    pub p50_us: u64,
    /// 99th percentile step latency (µs, bucket upper edge).
    pub p99_us: u64,
    /// Mean step latency (µs).
    pub mean_us: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_quantiles_bracket_observations() {
        let h = LatencyHistogram::new();
        for us in [10u64, 20, 30, 40, 1000] {
            h.record_us(us);
        }
        assert_eq!(h.count(), 5);
        let p50 = h.quantile_us(0.5);
        // 3rd of 5 sorted observations is 30 µs -> bucket upper edge 32.
        assert!((30..=64).contains(&p50), "p50 {p50}");
        let p99 = h.quantile_us(0.99);
        assert!((1000..=2048).contains(&p99), "p99 {p99}");
        assert!((h.mean_us() - 220.0).abs() < 1.0);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_us(0.5), 0);
        assert_eq!(h.mean_us(), 0.0);
    }

    #[test]
    fn count_histogram_tracks_max_and_distribution() {
        let h = CountHistogram::new(8);
        h.record(1);
        h.record(4);
        h.record(4);
        h.record(100); // clamps to 8
        assert_eq!(h.max_observed(), 8);
        assert_eq!(h.count_at(4), 2);
        assert_eq!(h.nonzero(), vec![(1, 1), (4, 2), (8, 1)]);
    }

    #[test]
    fn fused_shapes_accumulate_gemm_counts_per_batch() {
        // Two layers: 8 QKV+WO GEMMs of h x h, 2 of each FFN shape.
        let s = ServerStats::new(8);
        s.record_fused_batch(&[((32, 4, 32), 8), ((64, 4, 32), 2), ((32, 4, 64), 2)]);
        s.record_fused_batch(&[((32, 4, 32), 8), ((64, 4, 32), 2), ((32, 4, 64), 2)]);
        s.record_fused_batch(&[((32, 8, 32), 8), ((64, 8, 32), 2), ((32, 8, 64), 2)]);
        assert_eq!(s.fused_batches.load(Ordering::Relaxed), 3);
        let shapes = s.fused_gemm_shapes();
        assert_eq!(shapes.len(), 6);
        assert!(shapes.contains(&((32, 4, 32), 16)), "counts GEMMs executed, not batches");
        assert!(shapes.contains(&((64, 8, 32), 2)));
        let snap = s.snapshot();
        assert_eq!(snap.fused_batches, 3);
        assert_eq!(snap.fused_gemm_shapes, shapes);
    }

    #[test]
    fn snapshot_derives_rates() {
        let s = ServerStats::new(4);
        s.submitted.fetch_add(10, Ordering::Relaxed);
        s.completed.fetch_add(10, Ordering::Relaxed);
        s.batches.fetch_add(4, Ordering::Relaxed);
        s.batch_sizes.record(2);
        s.batch_sizes.record(4);
        let snap = s.snapshot();
        assert_eq!(snap.completed, 10);
        assert_eq!(snap.max_batch_observed, 4);
        assert!((snap.mean_batch - 2.5).abs() < 1e-12);
        assert!(snap.tokens_per_s > 0.0);
    }
}
