//! A lock-light bounded MPMC queue for request submission.
//!
//! Same spirit as `pl_runtime::DynamicQueue` (atomic tickets, no mutex on
//! the hot path), extended to carry owned payloads: the classic bounded
//! ring with per-slot sequence numbers (Vyukov's MPMC queue). Producers
//! are client threads submitting requests; consumers are the batcher (and
//! tests). A full ring rejects immediately — that *is* the backpressure
//! signal admission control turns into an error for the caller.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

struct Slot<T> {
    /// Ticket protocol: `seq == index` means free for the producer with
    /// that ticket; `seq == index + 1` means filled for the consumer with
    /// that ticket; after consumption `seq = index + capacity` re-arms the
    /// slot for the next lap.
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// Bounded multi-producer multi-consumer FIFO.
pub struct BoundedQueue<T> {
    slots: Box<[Slot<T>]>,
    capacity: usize,
    /// Consumer ticket counter.
    head: AtomicUsize,
    /// Producer ticket counter.
    tail: AtomicUsize,
}

// SAFETY: slots are handed off between threads via the seq protocol —
// a value written under ticket t is only read by the consumer holding
// ticket t, with Release/Acquire ordering on `seq` publishing the write.
unsafe impl<T: Send> Sync for BoundedQueue<T> {}
unsafe impl<T: Send> Send for BoundedQueue<T> {}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (min 2: with a single slot
    /// the ticket protocol cannot distinguish "free for the next lap" from
    /// "filled one lap ago" — `index + 1 == index + capacity` — so a full
    /// ring would accept a push, leak the unread item, and wedge `pop`).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(2);
        let slots = (0..capacity)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        BoundedQueue { slots, capacity, head: AtomicUsize::new(0), tail: AtomicUsize::new(0) }
    }

    /// Capacity the queue was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of items currently enqueued (approximate under contention).
    pub fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Relaxed);
        tail.saturating_sub(head)
    }

    /// Whether the queue is (approximately) empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `v`, or returns it when the ring is full (backpressure).
    pub fn push(&self, v: T) -> Result<(), T> {
        let mut tail = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[tail % self.capacity];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == tail {
                match self.tail.compare_exchange_weak(
                    tail,
                    tail + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: ticket `tail` grants exclusive write
                        // access to this slot until seq is published.
                        unsafe { (*slot.value.get()).write(v) };
                        slot.seq.store(tail + 1, Ordering::Release);
                        return Ok(());
                    }
                    Err(actual) => tail = actual,
                }
            } else if seq < tail {
                // The slot still holds an unconsumed item from the
                // previous lap: the ring is full.
                return Err(v);
            } else {
                tail = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeues the oldest item, or `None` when empty.
    pub fn pop(&self) -> Option<T> {
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[head % self.capacity];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == head + 1 {
                match self.head.compare_exchange_weak(
                    head,
                    head + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: ticket `head` grants exclusive read
                        // access; the producer published with Release.
                        let v = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.seq.store(head + self.capacity, Ordering::Release);
                        return Some(v);
                    }
                    Err(actual) => head = actual,
                }
            } else if seq <= head {
                // Slot not yet filled for this lap: queue is empty.
                return None;
            } else {
                head = self.head.load(Ordering::Relaxed);
            }
        }
    }
}

impl<T> Drop for BoundedQueue<T> {
    fn drop(&mut self) {
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_single_thread() {
        let q = BoundedQueue::new(4);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        assert_eq!(q.push(9), Err(9), "5th push must be rejected");
        assert_eq!((0..4).map(|_| q.pop().unwrap()).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ring_wraps_across_laps() {
        let q = BoundedQueue::new(2);
        for lap in 0..10 {
            q.push(lap * 2).unwrap();
            q.push(lap * 2 + 1).unwrap();
            assert!(q.push(777).is_err());
            assert_eq!(q.pop(), Some(lap * 2));
            assert_eq!(q.pop(), Some(lap * 2 + 1));
            assert!(q.pop().is_none());
        }
    }

    #[test]
    fn capacity_one_is_clamped_to_a_working_ring() {
        // Regression: with one slot the seq protocol degenerates (a full
        // ring accepted pushes and then wedged). The constructor clamps.
        let q = BoundedQueue::new(1);
        assert_eq!(q.capacity(), 2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.push(3), Err(3), "full ring must reject");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert!(q.pop().is_none());
    }

    #[test]
    fn len_tracks_contents() {
        let q = BoundedQueue::new(8);
        assert!(q.is_empty());
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        let q = std::sync::Arc::new(BoundedQueue::new(64));
        let produced = 4 * 1000;
        let got = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for p in 0..4 {
                let q = std::sync::Arc::clone(&q);
                s.spawn(move || {
                    for i in 0..1000 {
                        let v = p * 1000 + i;
                        loop {
                            if q.push(v).is_ok() {
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    }
                });
            }
            for _ in 0..2 {
                let q = std::sync::Arc::clone(&q);
                let got = &got;
                s.spawn(move || {
                    let mut local = Vec::new();
                    while local.len() < produced / 2 {
                        if let Some(v) = q.pop() {
                            local.push(v);
                        } else {
                            std::hint::spin_loop();
                        }
                    }
                    got.lock().unwrap().extend(local);
                });
            }
        });
        let mut all = got.into_inner().unwrap();
        all.sort_unstable();
        assert_eq!(all, (0..produced).collect::<Vec<_>>());
    }

    #[test]
    fn drop_releases_unconsumed_items() {
        let counter = std::sync::Arc::new(());
        let q = BoundedQueue::new(4);
        q.push(std::sync::Arc::clone(&counter)).unwrap();
        q.push(std::sync::Arc::clone(&counter)).unwrap();
        assert_eq!(std::sync::Arc::strong_count(&counter), 3);
        drop(q);
        assert_eq!(std::sync::Arc::strong_count(&counter), 1);
    }
}
