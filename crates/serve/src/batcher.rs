//! The dynamic batcher: coalesces pending decode steps into
//! BRGEMM-friendly batches with per-tenant fairness.
//!
//! Requests land in one bounded ring per tenant ([`BoundedQueue`]); batch
//! formation round-robins over the tenants starting from a persistent
//! cursor, taking one request per tenant per lap until the batch is full
//! or every ring is empty. The cursor advances each batch, so under
//! saturation every tenant gets within one request of an equal share no
//! matter how asymmetric the offered load is — the admission-control
//! analogue of the paper's PAR-MODE dynamic schedule (work is *pulled*
//! fairly, never pushed to a fixed owner).

use crate::queue::BoundedQueue;
use crate::session::{SessionId, TenantId};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::time::Instant;

/// One pending decode step.
pub struct StepRequest {
    /// Target session.
    pub session: SessionId,
    /// Submitting tenant (also selects the ring).
    pub tenant: TenantId,
    /// The token's `hidden` input values.
    pub x: Vec<f32>,
    /// Submission time (latency accounting).
    pub enqueued: Instant,
    /// Completion channel back to the caller.
    pub reply: Sender<crate::StepResult>,
}

/// Per-tenant rings plus the fairness cursor.
pub struct DynamicBatcher {
    queues: Vec<BoundedQueue<StepRequest>>,
    cursor: AtomicUsize,
}

impl DynamicBatcher {
    /// `tenants` rings of `capacity` requests each.
    pub fn new(tenants: usize, capacity: usize) -> Self {
        DynamicBatcher {
            queues: (0..tenants.max(1)).map(|_| BoundedQueue::new(capacity)).collect(),
            cursor: AtomicUsize::new(0),
        }
    }

    /// Number of tenant rings.
    pub fn tenants(&self) -> usize {
        self.queues.len()
    }

    /// Pending requests across all tenants (approximate).
    pub fn pending(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Pending requests for one tenant (approximate).
    pub fn pending_for(&self, tenant: TenantId) -> usize {
        self.queues.get(tenant).map_or(0, |q| q.len())
    }

    /// Enqueues a request on its tenant's ring; a full ring returns the
    /// request back — the backpressure signal.
    pub fn submit(&self, req: StepRequest) -> Result<(), StepRequest> {
        match self.queues.get(req.tenant) {
            Some(q) => q.push(req),
            None => Err(req),
        }
    }

    /// Forms the next batch: up to `max_batch` requests, round-robin
    /// across tenants from the persistent cursor. Returns an empty vector
    /// when nothing is pending.
    pub fn collect(&self, max_batch: usize) -> Vec<StepRequest> {
        let n = self.queues.len();
        let start = self.cursor.load(Ordering::Relaxed);
        let mut batch = Vec::new();
        let mut exhausted = vec![false; n];
        let mut live = n;
        let mut offset = 0usize;
        while batch.len() < max_batch && live > 0 {
            let t = (start + offset) % n;
            offset = (offset + 1) % n;
            if exhausted[t] {
                continue;
            }
            match self.queues[t].pop() {
                Some(req) => batch.push(req),
                None => {
                    exhausted[t] = true;
                    live -= 1;
                }
            }
        }
        if !batch.is_empty() {
            // Next batch starts one tenant later, so no ring is
            // structurally favored.
            self.cursor.store((start + 1) % n, Ordering::Relaxed);
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    fn req(tenant: TenantId, session: SessionId) -> StepRequest {
        let (tx, _rx) = channel();
        // Keep the receiver alive via leak so sends in tests don't error.
        std::mem::forget(_rx);
        StepRequest { session, tenant, x: vec![0.0], enqueued: Instant::now(), reply: tx }
    }

    #[test]
    fn coalesces_up_to_max_batch() {
        let b = DynamicBatcher::new(1, 16);
        for i in 0..6 {
            b.submit(req(0, i)).unwrap_or_else(|_| panic!("ring full"));
        }
        let batch = b.collect(4);
        assert_eq!(batch.len(), 4);
        assert_eq!(batch.iter().map(|r| r.session).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!(b.collect(4).len(), 2);
        assert!(b.collect(4).is_empty());
    }

    #[test]
    fn round_robin_is_fair_under_asymmetric_load() {
        let b = DynamicBatcher::new(3, 32);
        // Tenant 0 floods; tenants 1 and 2 trickle.
        for i in 0..20 {
            b.submit(req(0, i)).unwrap_or_else(|_| panic!());
        }
        b.submit(req(1, 100)).unwrap_or_else(|_| panic!());
        b.submit(req(2, 200)).unwrap_or_else(|_| panic!());
        let batch = b.collect(6);
        assert_eq!(batch.len(), 6);
        let t1 = batch.iter().filter(|r| r.tenant == 1).count();
        let t2 = batch.iter().filter(|r| r.tenant == 2).count();
        let t0 = batch.iter().filter(|r| r.tenant == 0).count();
        assert_eq!(t1, 1, "trickle tenant 1 must make the batch");
        assert_eq!(t2, 1, "trickle tenant 2 must make the batch");
        assert_eq!(t0, 4, "flooding tenant fills the remainder");
    }

    #[test]
    fn cursor_rotates_start_tenant_across_batches() {
        let b = DynamicBatcher::new(2, 8);
        for i in 0..4 {
            b.submit(req(0, i)).unwrap_or_else(|_| panic!());
            b.submit(req(1, 10 + i)).unwrap_or_else(|_| panic!());
        }
        let first = b.collect(2);
        let second = b.collect(2);
        assert_eq!(first.len(), 2);
        assert_eq!(second.len(), 2);
        // Batch 1 starts at tenant 0, batch 2 at tenant 1.
        assert_eq!(first[0].tenant, 0);
        assert_eq!(second[0].tenant, 1);
    }

    #[test]
    fn backpressure_rejects_when_ring_full() {
        let b = DynamicBatcher::new(1, 2);
        b.submit(req(0, 0)).unwrap_or_else(|_| panic!());
        b.submit(req(0, 1)).unwrap_or_else(|_| panic!());
        let rejected = b.submit(req(0, 2));
        assert!(rejected.is_err(), "third submit into capacity-2 ring must bounce");
        assert_eq!(rejected.err().unwrap().session, 2);
        assert_eq!(b.pending_for(0), 2);
    }

    #[test]
    fn unknown_tenant_is_rejected() {
        let b = DynamicBatcher::new(2, 4);
        assert!(b.submit(req(7, 0)).is_err());
    }
}
