//! The dynamic batcher: coalesces pending work items into
//! BRGEMM-friendly batches with per-tenant fairness.
//!
//! Work items — decode steps *and* prefill chunks ([`WorkItem`]) — land in
//! one bounded ring per tenant ([`BoundedQueue`]); batch formation
//! round-robins over the tenants starting from a cursor **claimed
//! atomically per collect** (`fetch_update`), taking one request per
//! tenant per lap until the batch is full or every ring is empty. Each
//! collect claims a distinct start, so under saturation every tenant gets
//! within one request of an equal share no matter how asymmetric the
//! offered load is — and no matter how many threads pump concurrently
//! (two pumpers reading the *same* cursor value would both start at the
//! same tenant and structurally favor it; the claimed cursor makes their
//! starts rotate) — the admission-control analogue of the paper's
//! PAR-MODE dynamic schedule (work is *pulled* fairly, never pushed to a
//! fixed owner).
//!
//! Ahead of the rings sits a FIFO **side-queue** ([`DynamicBatcher::defer`])
//! drained first by every collect. It carries work that was *already
//! admitted* but could not run in its batch — pipelined duplicate-session
//! steps and continuation prefill chunks. Deferring back to the ring tail
//! would let a session's step N+1 (still ring-queued) execute before its
//! deferred step N; the side-queue preserves program order. Collects take
//! at most **one** prefill chunk from it (surplus chunks are skipped in
//! place, order intact), so concurrent prefill jobs cannot fill every
//! batch with chunks and starve ring-queued decode steps.

use crate::prefill::PrefillJob;
use crate::queue::BoundedQueue;
use crate::session::{SessionId, TenantId};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::time::Instant;

/// One pending decode step.
pub struct StepRequest {
    /// Target session.
    pub session: SessionId,
    /// Submitting tenant (also selects the ring).
    pub tenant: TenantId,
    /// Per-session program-order ticket (drawn from
    /// `Session::submit_seq` at submit): batch checkout only executes
    /// the step whose ticket matches the session's `exec_seq` cursor,
    /// deferring later tickets, so concurrent pumps cannot reorder a
    /// pipelined stream.
    pub seq: u64,
    /// The token's `hidden` input values.
    pub x: Vec<f32>,
    /// Submission time (latency accounting).
    pub enqueued: Instant,
    /// Completion channel back to the caller.
    pub reply: Sender<crate::StepResult>,
}

/// One pending prefill chunk: chunk `chunk` of `job` (the job holds the
/// prompt and accumulates outputs; see [`PrefillJob`]).
pub struct ChunkItem {
    /// The owning prefill job.
    pub job: Arc<PrefillJob>,
    /// Which chunk of the job this is (`0..job.chunks()`).
    pub chunk: usize,
    /// When this chunk was (re-)enqueued (chunk latency accounting).
    pub enqueued: Instant,
}

/// A unit of admitted work the batcher schedules: one decode step or one
/// prefill chunk. Both flow through the same rings and the same batch
/// formation, which is what lets a long prompt interleave with live
/// decode traffic instead of monopolizing the pool.
pub enum WorkItem {
    /// One session's next-token decode step.
    Decode(StepRequest),
    /// One bounded chunk of a session's prefill.
    PrefillChunk(ChunkItem),
}

impl WorkItem {
    /// Target session.
    pub fn session(&self) -> SessionId {
        match self {
            WorkItem::Decode(r) => r.session,
            WorkItem::PrefillChunk(c) => c.job.session(),
        }
    }

    /// Submitting tenant (selects the ring).
    pub fn tenant(&self) -> TenantId {
        match self {
            WorkItem::Decode(r) => r.tenant,
            WorkItem::PrefillChunk(c) => c.job.tenant(),
        }
    }

    /// The reply channel an error/bounce for this item is delivered on.
    pub fn reply(&self) -> &Sender<crate::StepResult> {
        match self {
            WorkItem::Decode(r) => &r.reply,
            WorkItem::PrefillChunk(c) => c.job.reply(),
        }
    }

    /// Token width this item admits into a batch: 1 for a decode step,
    /// the chunk's width for a prefill chunk — the unit the
    /// `max_queued_tokens` admission budget is charged in.
    pub fn tokens(&self) -> usize {
        match self {
            WorkItem::Decode(_) => 1,
            WorkItem::PrefillChunk(c) => c.job.chunk_tokens(c.chunk),
        }
    }
}

/// Per-tenant rings plus the deferred side-queue and fairness cursor.
pub struct DynamicBatcher {
    queues: Vec<BoundedQueue<WorkItem>>,
    /// Already-admitted work replayed ahead of the rings (program-order
    /// deferred duplicates, continuation prefill chunks).
    deferred: Mutex<VecDeque<WorkItem>>,
    cursor: AtomicUsize,
    /// Bound on the summed token widths of ring-queued items (0 =
    /// unlimited). Per-item request *counts* are bounded by the rings;
    /// this bounds the *work* they represent, so a few giant prefill
    /// chunks cannot occupy the same admission share as a few decode
    /// steps.
    max_queued_tokens: usize,
    /// Tokens currently ring-queued against the budget.
    queued_tokens: AtomicUsize,
}

impl DynamicBatcher {
    /// `tenants` rings of `capacity` requests each, with no token budget.
    pub fn new(tenants: usize, capacity: usize) -> Self {
        Self::bounded(tenants, capacity, 0)
    }

    /// [`DynamicBatcher::new`] plus a bound on total queued token width
    /// (`max_queued_tokens`; 0 = unlimited). Submissions that would push
    /// the summed widths of ring-queued items past the bound are rejected
    /// exactly like a full ring — the caller's backpressure path. The
    /// side-queue is exempt: everything there was already admitted and
    /// charged once.
    pub fn bounded(tenants: usize, capacity: usize, max_queued_tokens: usize) -> Self {
        DynamicBatcher {
            queues: (0..tenants.max(1)).map(|_| BoundedQueue::new(capacity)).collect(),
            deferred: Mutex::new(VecDeque::new()),
            cursor: AtomicUsize::new(0),
            max_queued_tokens,
            queued_tokens: AtomicUsize::new(0),
        }
    }

    /// Tokens currently ring-queued against the budget (approximate
    /// under concurrent submits/collects).
    pub fn queued_tokens(&self) -> usize {
        self.queued_tokens.load(Ordering::Acquire)
    }

    fn reserve_tokens(&self, tokens: usize) -> bool {
        if self.max_queued_tokens == 0 {
            return true;
        }
        self.queued_tokens
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                (cur + tokens <= self.max_queued_tokens).then_some(cur + tokens)
            })
            .is_ok()
    }

    fn release_tokens(&self, tokens: usize) {
        if self.max_queued_tokens != 0 {
            self.queued_tokens.fetch_sub(tokens, Ordering::AcqRel);
        }
    }

    /// Number of tenant rings.
    pub fn tenants(&self) -> usize {
        self.queues.len()
    }

    /// Pending items across all tenants plus the side-queue (approximate).
    pub fn pending(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum::<usize>() + self.deferred.lock().len()
    }

    /// Pending items for one tenant, side-queue included (approximate).
    pub fn pending_for(&self, tenant: TenantId) -> usize {
        let ring = self.queues.get(tenant).map_or(0, |q| q.len());
        ring + self.deferred.lock().iter().filter(|i| i.tenant() == tenant).count()
    }

    /// Enqueues an item on its tenant's ring; a full ring — or a token
    /// budget the item's width would blow through — returns the item
    /// back: the backpressure signal.
    pub fn submit(&self, item: WorkItem) -> Result<(), WorkItem> {
        let tokens = item.tokens();
        if !self.reserve_tokens(tokens) {
            return Err(item);
        }
        match self.queues.get(item.tenant()) {
            Some(q) => match q.push(item) {
                Ok(()) => Ok(()),
                Err(item) => {
                    self.release_tokens(tokens);
                    Err(item)
                }
            },
            None => {
                self.release_tokens(tokens);
                Err(item)
            }
        }
    }

    /// Re-queues already-admitted work onto the FIFO side-queue, which the
    /// next collect drains **ahead of the rings**: a deferred step never
    /// falls behind its session's later steps still sitting in a ring,
    /// and a continuation prefill chunk runs at the next opportunity.
    /// Unbounded by design — everything here was already admitted through
    /// a bounded ring, so this cannot grow past the rings' capacity plus
    /// one continuation chunk per live prefill.
    pub fn defer(&self, item: WorkItem) {
        self.deferred.lock().push_back(item);
    }

    /// Forms the next batch: up to `max_batch` items — the side-queue
    /// first (FIFO), then round-robin across tenants from an atomically
    /// claimed cursor. Returns an empty vector when nothing is pending.
    /// Safe to call from multiple threads concurrently: rings are MPMC
    /// and each collect claims its own start tenant.
    pub fn collect(&self, max_batch: usize) -> Vec<WorkItem> {
        let mut batch = Vec::new();
        {
            let mut deferred = self.deferred.lock();
            // At most one prefill chunk rides per batch (`run_batch`
            // admits no more), so surplus chunks are *skipped in place* —
            // relative order preserved — rather than collected and
            // re-deferred. Without the cap, `max_batch` or more concurrent
            // prefill jobs keep that many continuation chunks parked here,
            // every collect fills the whole batch from the side-queue, and
            // ring-queued decode steps starve until the prefills complete:
            // cross-session head-of-line blocking, the very thing chunked
            // admission exists to prevent. Skipped chunks stay at the
            // front, so prefill jobs still round-robin (an executed
            // chunk's continuation re-enters at the back).
            let mut skipped_chunks: Vec<WorkItem> = Vec::new();
            let mut has_chunk = false;
            while batch.len() < max_batch {
                match deferred.pop_front() {
                    Some(item) => {
                        if matches!(item, WorkItem::PrefillChunk(_)) {
                            if has_chunk {
                                skipped_chunks.push(item);
                                continue;
                            }
                            has_chunk = true;
                        }
                        batch.push(item);
                    }
                    None => break,
                }
            }
            for item in skipped_chunks.into_iter().rev() {
                deferred.push_front(item);
            }
        }
        if batch.len() >= max_batch {
            return batch;
        }
        let n = self.queues.len();
        // Claim-then-scan: each collect owns a distinct start tenant, so
        // concurrent pumpers rotate instead of double-starting on the
        // same ring (which would structurally favor it for a whole lap).
        let start = self
            .cursor
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| Some((c + 1) % n))
            .unwrap_or(0);
        let mut exhausted = vec![false; n];
        let mut live = n;
        let mut offset = 0usize;
        while batch.len() < max_batch && live > 0 {
            let t = (start + offset) % n;
            offset = (offset + 1) % n;
            if exhausted[t] {
                continue;
            }
            match self.queues[t].pop() {
                Some(item) => {
                    // Leaving the ring releases the item's token
                    // reservation — once collected it occupies a batch
                    // lane, not queue budget (deferred replays are not
                    // re-charged).
                    self.release_tokens(item.tokens());
                    batch.push(item);
                }
                None => {
                    exhausted[t] = true;
                    live -= 1;
                }
            }
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    fn req(tenant: TenantId, session: SessionId) -> WorkItem {
        let (tx, _rx) = channel();
        // Keep the receiver alive via leak so sends in tests don't error.
        std::mem::forget(_rx);
        WorkItem::Decode(StepRequest {
            session,
            tenant,
            seq: 0,
            x: vec![0.0],
            enqueued: Instant::now(),
            reply: tx,
        })
    }

    #[test]
    fn coalesces_up_to_max_batch() {
        let b = DynamicBatcher::new(1, 16);
        for i in 0..6 {
            b.submit(req(0, i)).unwrap_or_else(|_| panic!("ring full"));
        }
        let batch = b.collect(4);
        assert_eq!(batch.len(), 4);
        assert_eq!(batch.iter().map(|r| r.session()).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!(b.collect(4).len(), 2);
        assert!(b.collect(4).is_empty());
    }

    #[test]
    fn round_robin_is_fair_under_asymmetric_load() {
        let b = DynamicBatcher::new(3, 32);
        // Tenant 0 floods; tenants 1 and 2 trickle.
        for i in 0..20 {
            b.submit(req(0, i)).unwrap_or_else(|_| panic!());
        }
        b.submit(req(1, 100)).unwrap_or_else(|_| panic!());
        b.submit(req(2, 200)).unwrap_or_else(|_| panic!());
        let batch = b.collect(6);
        assert_eq!(batch.len(), 6);
        let t1 = batch.iter().filter(|r| r.tenant() == 1).count();
        let t2 = batch.iter().filter(|r| r.tenant() == 2).count();
        let t0 = batch.iter().filter(|r| r.tenant() == 0).count();
        assert_eq!(t1, 1, "trickle tenant 1 must make the batch");
        assert_eq!(t2, 1, "trickle tenant 2 must make the batch");
        assert_eq!(t0, 4, "flooding tenant fills the remainder");
    }

    #[test]
    fn cursor_rotates_start_tenant_across_batches() {
        let b = DynamicBatcher::new(2, 8);
        for i in 0..4 {
            b.submit(req(0, i)).unwrap_or_else(|_| panic!());
            b.submit(req(1, 10 + i)).unwrap_or_else(|_| panic!());
        }
        let first = b.collect(2);
        let second = b.collect(2);
        assert_eq!(first.len(), 2);
        assert_eq!(second.len(), 2);
        // Batch 1 starts at tenant 0, batch 2 at tenant 1.
        assert_eq!(first[0].tenant(), 0);
        assert_eq!(second[0].tenant(), 1);
    }

    #[test]
    fn deferred_side_queue_is_drained_ahead_of_the_rings_in_fifo_order() {
        let b = DynamicBatcher::new(1, 8);
        b.submit(req(0, 3)).unwrap_or_else(|_| panic!());
        // Steps 1 and 2 of some session were deferred out of an earlier
        // batch; step 3 is still ring-queued behind them in program order.
        b.defer(req(0, 1));
        b.defer(req(0, 2));
        let batch = b.collect(8);
        assert_eq!(
            batch.iter().map(|r| r.session()).collect::<Vec<_>>(),
            vec![1, 2, 3],
            "deferred items replay first, in FIFO order, ahead of the ring"
        );
        // A partial drain leaves the remainder at the side-queue front.
        b.defer(req(0, 4));
        b.defer(req(0, 5));
        assert_eq!(b.pending(), 2);
        assert_eq!(b.collect(1)[0].session(), 4);
        assert_eq!(b.collect(1)[0].session(), 5);
    }

    #[test]
    fn concurrent_pumpers_stay_fair_across_tenants() {
        // Satellite regression: two threads collecting concurrently used
        // to read the *same* cursor value — both batches started at the
        // same tenant and the cursor advanced once for two batches, so one
        // ring was structurally favored for a whole lap. With the claimed
        // (`fetch_update`) cursor, 12 single-item collects over 3 equally
        // loaded tenants must take from each tenant within one request of
        // an equal share, no matter how the two pumpers interleave.
        let b = std::sync::Arc::new(DynamicBatcher::new(3, 32));
        for t in 0..3 {
            for i in 0..8 {
                b.submit(req(t, (t * 100 + i) as SessionId)).unwrap_or_else(|_| panic!());
            }
        }
        let counts = std::sync::Mutex::new([0usize; 3]);
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let b = std::sync::Arc::clone(&b);
                let counts = &counts;
                scope.spawn(move || {
                    for _ in 0..6 {
                        let batch = b.collect(1);
                        assert_eq!(batch.len(), 1, "all rings non-empty");
                        counts.lock().unwrap()[batch[0].tenant()] += 1;
                    }
                });
            }
        });
        let counts = counts.into_inner().unwrap();
        assert_eq!(counts.iter().sum::<usize>(), 12);
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(
            max - min <= 1,
            "per-tenant share must be within one request under concurrent pumps: {counts:?}"
        );
    }

    fn chunk(tenant: TenantId, session: SessionId) -> WorkItem {
        let (job, rx) = PrefillJob::new(session, tenant, 0, 1, vec![0.0; 8], 8, 4);
        std::mem::forget(rx);
        WorkItem::PrefillChunk(ChunkItem { job, chunk: 0, enqueued: Instant::now() })
    }

    #[test]
    fn side_queue_yields_at_most_one_chunk_per_collect_so_decode_cannot_starve() {
        // Regression: `max_batch` (or more) concurrent prefill jobs park
        // that many continuation chunks in the side-queue; collect used to
        // fill the whole batch from it — of which run_batch executes
        // exactly one, re-deferring the rest — so ring-queued decode steps
        // were never collected until every prefill finished:
        // cross-session head-of-line blocking.
        let b = DynamicBatcher::new(1, 8);
        b.defer(chunk(0, 10));
        b.defer(chunk(0, 11));
        b.defer(chunk(0, 12));
        b.submit(req(0, 1)).unwrap_or_else(|_| panic!());
        b.submit(req(0, 2)).unwrap_or_else(|_| panic!());
        let batch = b.collect(3);
        assert_eq!(batch.len(), 3, "decode steps fill the lanes the skipped chunks freed");
        let chunks = |items: &[WorkItem]| {
            items.iter().filter(|i| matches!(i, WorkItem::PrefillChunk(_))).count()
        };
        assert_eq!(chunks(&batch), 1, "at most one prefill chunk per batch");
        assert_eq!(
            batch.iter().map(|i| i.session()).collect::<Vec<_>>(),
            vec![10, 1, 2],
            "FIFO head chunk rides; ring decode steps take the remaining lanes"
        );
        // Skipped chunks stayed at the side-queue front, order intact,
        // still one per subsequent batch.
        let second = b.collect(3);
        assert_eq!(second.iter().map(|i| i.session()).collect::<Vec<_>>(), vec![11]);
        assert_eq!(chunks(&second), 1);
        assert_eq!(b.collect(3).iter().map(|i| i.session()).collect::<Vec<_>>(), vec![12]);
        assert!(b.collect(3).is_empty());
    }

    #[test]
    fn backpressure_rejects_when_ring_full() {
        let b = DynamicBatcher::new(1, 2);
        b.submit(req(0, 0)).unwrap_or_else(|_| panic!());
        b.submit(req(0, 1)).unwrap_or_else(|_| panic!());
        let rejected = b.submit(req(0, 2));
        assert!(rejected.is_err(), "third submit into capacity-2 ring must bounce");
        assert_eq!(rejected.err().unwrap().session(), 2);
        assert_eq!(b.pending_for(0), 2);
        // The side-queue is exempt from ring capacity: already-admitted
        // work is never dropped on re-queue.
        b.defer(req(0, 3));
        assert_eq!(b.pending_for(0), 3);
    }

    #[test]
    fn unknown_tenant_is_rejected() {
        let b = DynamicBatcher::new(2, 4);
        assert!(b.submit(req(7, 0)).is_err());
    }

    /// A width-4 prefill chunk of an 8-token job.
    fn wide_chunk(session: SessionId) -> WorkItem {
        chunk(0, session)
    }

    #[test]
    fn token_budget_bounds_queued_widths_at_the_boundary() {
        // Budget 5: one width-4 chunk + one decode step fill it EXACTLY
        // (boundary: 4 + 1 == 5 admits); the next decode step would make
        // 6 and must bounce even though the ring has plenty of slots.
        let b = DynamicBatcher::bounded(1, 16, 5);
        assert_eq!(wide_chunk(0).tokens(), 4, "test chunk is width 4");
        b.submit(wide_chunk(10)).unwrap_or_else(|_| panic!("4 <= 5 admits"));
        b.submit(req(0, 1)).unwrap_or_else(|_| panic!("4 + 1 == 5 admits at the boundary"));
        assert_eq!(b.queued_tokens(), 5);
        let rejected = b.submit(req(0, 2));
        assert!(rejected.is_err(), "5 + 1 > 5 must bounce");
        assert_eq!(rejected.err().unwrap().session(), 2);
        // Collecting releases the budget; the bounced step now fits.
        let batch = b.collect(4);
        assert_eq!(batch.len(), 2);
        assert_eq!(b.queued_tokens(), 0);
        b.submit(req(0, 2)).unwrap_or_else(|_| panic!("freed budget readmits"));
        // The side-queue is exempt: deferred replays are never re-charged.
        b.defer(wide_chunk(11));
        assert_eq!(b.queued_tokens(), 1, "defer charges nothing");
        // Zero budget = unlimited (the default config).
        let unlimited = DynamicBatcher::new(1, 16);
        for i in 0..8 {
            unlimited.submit(wide_chunk(i)).unwrap_or_else(|_| panic!("no budget, no bounce"));
        }
        assert_eq!(unlimited.queued_tokens(), 0, "no accounting without a budget");
    }
}
