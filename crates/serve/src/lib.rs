//! # pl-serve — batched inference serving on the PARLOOPER/TPP stack
//!
//! The paper proves the kernels (BRGEMM, fused TPPs, KV-cached decoding,
//! §IV-A/Fig. 11); this crate turns them into a *system*: a multi-tenant
//! serving runtime that drives [`pl_dnn::DecoderModel`] under concurrent,
//! bursty load.
//!
//! Architecture (see `crates/serve/README.md` for the full picture):
//!
//! * [`Session`] — one decode stream: a per-session KV cache
//!   ([`pl_dnn::DecoderState`]) over the server's single shared weight
//!   copy, with a prefill → step lifecycle.
//! * [`DynamicBatcher`] — lock-light per-tenant submission rings
//!   ([`BoundedQueue`], Vyukov-style atomic tickets in the spirit of
//!   `pl_runtime::DynamicQueue`) plus round-robin batch formation.
//! * [`Server`] — admission control (session caps, bounded rings =
//!   backpressure), the batch execution path (one
//!   `ThreadPool::parallel_drain` region per batch, PAR-MODE dynamic
//!   scheduling over sessions), and the blocking client API.
//! * [`ServerStats`] — lock-free counters and histograms: throughput,
//!   p50/p99 step latency, batch-size distribution.
//!
//! Decode batches execute in one of two modes:
//!
//! * **serial** (default): each session's step runs serially inside the
//!   region with the same per-element operation order as it would alone
//!   (every GEMM output block is produced by exactly one thread with a
//!   fixed reduction order) — **bit-identical** to unbatched decode,
//!   which the integration tests and `examples/serve_llm.rs` assert
//!   exactly.
//! * **fused** (`ServerConfig::fused`): the B sessions' token vectors are
//!   gathered into one `hidden x B` activation matrix and every layer's
//!   projections run as single `hidden x B` GEMMs
//!   ([`pl_dnn::DecoderModel::step_batch_fused`]) — the
//!   arithmetic-intensity lever batched serving exists for. Outputs agree
//!   with serial decode to floating-point reassociation tolerance
//!   (≤ 1e-5 relative), and [`ServerStats`] records the fused GEMM shapes
//!   actually executed.

pub mod batcher;
pub mod policy;
pub mod prefill;
pub mod queue;
pub mod server;
pub mod session;
pub mod stats;

pub use batcher::{ChunkItem, DynamicBatcher, StepRequest, WorkItem};
pub use policy::BatchModeTable;
pub use prefill::PrefillJob;
pub use queue::BoundedQueue;
pub use server::{Server, ServerConfig, SessionExport};
pub use session::{Session, SessionId, TenantId};
pub use stats::{
    quantile_from_buckets, CountHistogram, LatencyHistogram, ServerStats, StatsSnapshot,
};
// The health/SLO vocabulary servers speak — re-exported so consumers
// (router, examples) need not depend on pl_metrics directly.
pub use pl_metrics::{Health, MetricsRegistry, MetricsSnapshot, SloWindow, Watchdog};

/// What a decode step resolves to.
pub type StepResult = Result<Vec<f32>, ServeError>;

/// Errors surfaced by the serving runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The session id is not live on this server.
    UnknownSession(SessionId),
    /// The tenant index is outside `ServerConfig::tenants`.
    UnknownTenant(TenantId),
    /// The tenant's submission ring is full — retry later (backpressure).
    Backpressure {
        /// The tenant whose ring rejected the request.
        tenant: TenantId,
    },
    /// The server-wide session cap is reached.
    TooManySessions {
        /// The configured cap.
        limit: usize,
    },
    /// The session's KV cache cannot hold the requested tokens.
    KvExhausted {
        /// Tokens currently cached.
        context: usize,
        /// The session's KV capacity.
        capacity: usize,
    },
    /// Input length does not match the model's hidden size.
    BadInput {
        /// Expected element count.
        expected: usize,
        /// Provided element count.
        got: usize,
    },
    /// The server is shutting down.
    ShuttingDown,
    /// The work item carried a program-order ticket the session has
    /// already executed past. Possible only when the one-submitter-per-
    /// session protocol was violated (two threads raced submits and a
    /// backpressure rollback duplicated a ticket); rejected loudly
    /// instead of deferred forever.
    StaleTicket {
        /// The session whose ticket was stale.
        session: SessionId,
    },
    /// The session is momentarily checked out by an executing batch —
    /// retry shortly (export/migration path; batches re-insert their
    /// sessions before delivering replies, so the window is microseconds
    /// wide).
    SessionBusy {
        /// The session that was checked out.
        session: SessionId,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownSession(id) => write!(f, "unknown session {id}"),
            ServeError::UnknownTenant(t) => write!(f, "unknown tenant {t}"),
            ServeError::Backpressure { tenant } => {
                write!(f, "backpressure: tenant {tenant}'s queue is full")
            }
            ServeError::TooManySessions { limit } => {
                write!(f, "session limit {limit} reached")
            }
            ServeError::KvExhausted { context, capacity } => {
                write!(f, "KV cache exhausted ({context}/{capacity} tokens)")
            }
            ServeError::BadInput { expected, got } => {
                write!(f, "bad input: expected {expected} values, got {got}")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::StaleTicket { session } => {
                write!(f, "stale program-order ticket for session {session} (duplicate submit?)")
            }
            ServeError::SessionBusy { session } => {
                write!(f, "session {session} is checked out by an executing batch — retry")
            }
        }
    }
}

impl std::error::Error for ServeError {}
