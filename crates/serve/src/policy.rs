//! Measured serve-level policies: decisions the analytical model cannot
//! make because they depend on this host's actual gather/fuse economics.
//!
//! The committed `BENCH_serve.json` carried a fused row *slower* than its
//! serial twin at the same `{batch, shards}` with nothing able to react —
//! `ServerConfig::fused` is a static flag. [`BatchModeTable`] replaces the
//! flag with a per-batch-width decision built from measured serial vs
//! fused steps/s (the retune loop in `pl_retune` produces it); a server
//! with no installed table behaves exactly as before.

/// A per-batch-width fused-vs-serial decision table, built from measured
/// throughput pairs. Widths are looked up by nearest measured width at or
/// below the request (falling back to the smallest measured width), so a
/// table measured at the ladder `{1, 2, 4, 8}` covers ragged batches.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchModeTable {
    /// `(width, fused, serial_steps_per_s, fused_steps_per_s)`, sorted by
    /// width.
    rows: Vec<(usize, bool, f64, f64)>,
}

impl BatchModeTable {
    /// Builds the table from `(width, serial_steps_per_s,
    /// fused_steps_per_s)` measurements: a width decides *fused* exactly
    /// when the measured fused throughput beats serial. Zero/negative
    /// throughputs count as "not measured" on that side (the other side
    /// wins); rows measured on neither side are dropped.
    pub fn from_measurements(measured: &[(usize, f64, f64)]) -> Self {
        let mut rows: Vec<(usize, bool, f64, f64)> = measured
            .iter()
            .filter(|(_, s, f)| *s > 0.0 || *f > 0.0)
            .map(|&(w, s, f)| (w, f > s, s, f))
            .collect();
        rows.sort_by_key(|r| r.0);
        rows.dedup_by_key(|r| r.0);
        BatchModeTable { rows }
    }

    /// The decision for a batch of `width` decode lanes: the row at the
    /// largest measured width `<= width`, else the smallest measured row.
    /// `None` when the table is empty (caller falls back to the static
    /// `ServerConfig::fused` flag).
    pub fn fused_for(&self, width: usize) -> Option<bool> {
        let below = self.rows.iter().rev().find(|r| r.0 <= width);
        below.or_else(|| self.rows.first()).map(|r| r.1)
    }

    /// Whether any width was measured.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The decision rows: `(width, fused, serial_steps_per_s,
    /// fused_steps_per_s)`, ascending by width.
    pub fn rows(&self) -> &[(usize, bool, f64, f64)] {
        &self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_follow_the_measurements() {
        let t = BatchModeTable::from_measurements(&[
            (1, 100.0, 80.0), // serial wins
            (4, 90.0, 120.0), // fused wins
            (8, 101.0, 78.0), // the committed regression shape: serial wins
        ]);
        assert_eq!(t.fused_for(1), Some(false));
        assert_eq!(t.fused_for(4), Some(true));
        assert_eq!(t.fused_for(8), Some(false));
    }

    #[test]
    fn ragged_widths_round_down_and_underflow_rounds_up() {
        let t = BatchModeTable::from_measurements(&[(2, 50.0, 100.0), (8, 100.0, 50.0)]);
        // 5 lanes -> nearest measured width below is 2 (fused).
        assert_eq!(t.fused_for(5), Some(true));
        assert_eq!(t.fused_for(100), Some(false));
        // Below the smallest measured width: use the smallest row.
        assert_eq!(t.fused_for(1), Some(true));
    }

    #[test]
    fn empty_and_unmeasured_rows() {
        assert_eq!(BatchModeTable::default().fused_for(4), None);
        assert_eq!(BatchModeTable::from_measurements(&[]).fused_for(1), None);
        // A side measured at 0.0 never wins; a row dead on both sides is
        // dropped entirely.
        let t = BatchModeTable::from_measurements(&[(1, 0.0, 10.0), (2, 0.0, 0.0)]);
        assert_eq!(t.fused_for(1), Some(true));
        assert_eq!(t.rows().len(), 1);
    }

    #[test]
    fn duplicate_widths_keep_one_row() {
        let t = BatchModeTable::from_measurements(&[(4, 10.0, 20.0), (4, 20.0, 10.0)]);
        assert_eq!(t.rows().len(), 1);
    }
}
