//! The serving runtime: admission control, the batcher loop, and the
//! request lifecycle.

use crate::batcher::{DynamicBatcher, StepRequest};
use crate::session::{Session, SessionId, TenantId};
use crate::stats::ServerStats;
use crate::{ServeError, StepResult};
use parking_lot::Mutex;
use pl_autotuner::{batch_ladder, warm_gemm_db, warm_spmm_db, Constraints, GemmProblem, TuningDb};
use pl_dnn::{DecoderModel, DecoderState};
use pl_perfmodel::Platform;
use pl_runtime::ThreadPool;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Serving runtime knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of tenants (rings) admitted.
    pub tenants: usize,
    /// Upper bound on a coalesced decode batch.
    pub max_batch: usize,
    /// Per-tenant submission-ring capacity (the backpressure bound).
    pub queue_capacity: usize,
    /// Concurrent-session cap across all tenants.
    pub max_sessions: usize,
    /// KV capacity (tokens) given to every new session.
    pub kv_capacity: usize,
    /// How long a non-full batch lingers for stragglers before executing.
    pub coalesce_wait: Duration,
    /// Batcher sleep when no work is pending.
    pub idle_poll: Duration,
    /// Execute decode batches through the **fused** cross-session path
    /// ([`DecoderModel::step_batch_fused`]): one `hidden x B` GEMM per
    /// layer projection instead of B `hidden x 1` GEMVs. Off by default —
    /// the serial path is bit-identical to unbatched decode, the fused
    /// path trades that for arithmetic intensity (outputs agree to
    /// floating-point reassociation tolerance; see `crates/serve/README.md`
    /// for the accuracy contract).
    pub fused: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            tenants: 1,
            max_batch: 8,
            queue_capacity: 64,
            max_sessions: 64,
            kv_capacity: 128,
            coalesce_wait: Duration::from_micros(200),
            idle_poll: Duration::from_millis(1),
            fused: false,
        }
    }
}

struct ServerInner {
    model: Arc<DecoderModel>,
    pool: Arc<ThreadPool>,
    cfg: ServerConfig,
    sessions: Mutex<HashMap<SessionId, Session>>,
    session_count: AtomicU64,
    next_session: AtomicU64,
    batcher: DynamicBatcher,
    stats: ServerStats,
    shutdown: AtomicBool,
    tuning: Mutex<TuningDb>,
    /// Accepted steps not yet replied to — incremented on successful
    /// submit, decremented at reply delivery ([`ServerInner::deliver`]),
    /// so an accepted step is counted even while its batch holds the
    /// session checked out of the table.
    in_flight: AtomicU64,
}

impl ServerInner {
    /// Delivers a step reply and retires its in-flight count. Every
    /// accepted request's reply must go through here exactly once.
    fn deliver(&self, reply: &mpsc::Sender<StepResult>, result: StepResult) {
        let _ = reply.send(result);
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// The multi-tenant batched serving runtime over one shared
/// [`DecoderModel`].
///
/// Lifecycle: [`Server::new`] → optionally [`Server::warm_tuning`] →
/// either [`Server::start`] (background batcher thread; clients call the
/// blocking [`Server::step`]) or manual [`Server::pump`] (tests,
/// single-threaded drivers). Protocol: **at most one in-flight operation
/// per session** — the blocking API upholds this by construction.
pub struct Server {
    inner: Arc<ServerInner>,
    batcher_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// A server over `model`, executing on `pool`.
    pub fn new(model: Arc<DecoderModel>, pool: Arc<ThreadPool>, cfg: ServerConfig) -> Self {
        let inner = Arc::new(ServerInner {
            batcher: DynamicBatcher::new(cfg.tenants, cfg.queue_capacity),
            stats: ServerStats::new(cfg.max_batch),
            model,
            pool,
            cfg,
            sessions: Mutex::new(HashMap::new()),
            session_count: AtomicU64::new(0),
            next_session: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            tuning: Mutex::new(TuningDb::new()),
            in_flight: AtomicU64::new(0),
        });
        Server { inner, batcher_thread: None }
    }

    /// The metrics surface.
    pub fn stats(&self) -> &ServerStats {
        &self.inner.stats
    }

    /// The shared model.
    pub fn model(&self) -> &Arc<DecoderModel> {
        &self.inner.model
    }

    /// Live session count.
    pub fn session_count(&self) -> usize {
        self.inner.session_count.load(Ordering::Relaxed) as usize
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.inner.cfg
    }

    /// Decode steps queued but not yet executed, across all tenant rings
    /// (approximate — rings are concurrent). This is the queue-depth
    /// signal a fronting router uses for least-loaded placement and for
    /// graceful drains.
    pub fn pending(&self) -> usize {
        self.inner.batcher.pending()
    }

    /// Accepted decode steps whose reply has **not yet been delivered** —
    /// queued in a ring *or* executing inside a batch (where the session
    /// is checked out of the table and [`Server::pending`] no longer sees
    /// it). The counter moves at submit and at reply delivery, so there
    /// is no window where an accepted step is invisible: this is the
    /// quiescence signal for graceful drains (`pending() == 0` alone
    /// races the batch-execution window).
    pub fn in_flight(&self) -> usize {
        self.inner.in_flight.load(Ordering::Acquire) as usize
    }

    /// The per-layer weight GEMMs at token/batch width `n`, reported **by
    /// the model's prepared plans themselves**
    /// ([`DecoderModel::plan_problems`]): each plan names the exact
    /// `(m, n, k)` + blocking its kernel will execute, so the warmed keys
    /// are the shapes that actually run — no hand-maintained shape list to
    /// drift out of sync with the execution layer.
    fn layer_gemm_problems(&self, n: usize, out: &mut Vec<GemmProblem>) {
        self.inner.model.plan_problems(n, out);
    }

    /// Every activation width the batcher can produce: decode widths
    /// `1..=max_batch` plus the prefill prompt-width ladder.
    fn plan_widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = (1..=self.inner.cfg.max_batch.max(1)).collect();
        for t in batch_ladder(self.inner.cfg.kv_capacity) {
            if !widths.contains(&t) {
                widths.push(t);
            }
        }
        widths
    }

    /// GEMM problems the batcher's decode steps can run: for every
    /// transformer block matmul, one instance per batch width the fused
    /// path can see — **every** `B ∈ 1..=max_batch`, since the batcher
    /// hands the fused path whatever ragged width was pending and the
    /// tuning-DB lookup is exact-match. Serial batched decode only ever
    /// runs the `B = 1` entries; the fused path hits the wider ones.
    pub fn decode_gemm_problems(&self) -> Vec<GemmProblem> {
        let mut out = Vec::new();
        for b in 1..=self.inner.cfg.max_batch.max(1) {
            self.layer_gemm_problems(b, &mut out);
        }
        out
    }

    /// GEMM problems prefill forwards run: the same per-layer matmuls at
    /// prompt widths `tokens ∈ {2, 4, 8, …} ∪ {kv_capacity}` (`tokens = 1`
    /// already rides the decode set). Prompts land on arbitrary lengths;
    /// the power-of-two ladder covers the widths the roofline actually
    /// distinguishes, and `pl_dnn::tuning` rounds a missed lookup up to
    /// the next power of two so in-between prompt lengths still reuse the
    /// nearest warmed spec.
    pub fn prefill_gemm_problems(&self) -> Vec<GemmProblem> {
        let mut out = Vec::new();
        for t in batch_ladder(self.inner.cfg.kv_capacity) {
            if t > 1 {
                self.layer_gemm_problems(t, &mut out);
            }
        }
        out
    }

    /// Warms the tuning database for every GEMM shape the server can
    /// execute — decode at **every** batch width `1..=max_batch`
    /// ([`Server::decode_gemm_problems`]) *and* prefill at the prompt-width
    /// ladder ([`Server::prefill_gemm_problems`]) — on `platform`: the
    /// paper's offline search (Fig. 1 boxes B2/B3) runs at server startup
    /// so results are ready before traffic arrives. The same geometry is
    /// also warmed under the `spmm/...` keys ([`warm_spmm_db`], the
    /// minimal model-based SpMM warm-up), so a block-sparse variant served
    /// over this model resolves warmed specs instead of always falling
    /// through to `default_parallel`.
    ///
    /// The warmed snapshot is then **installed** into [`pl_dnn::tuning`]
    /// and the model's prepared plans are warmed *through* it
    /// ([`DecoderModel::warm_plans`] at every width the batcher can
    /// produce): every kernel a steady-state step can hit is constructed
    /// here, against the freshly tuned specs, before traffic arrives.
    /// Returns the number of database entries added (GEMM + SpMM keys).
    pub fn warm_tuning(&self, platform: &Platform, threads: usize) -> usize {
        let mut problems = self.decode_gemm_problems();
        problems.extend(self.prefill_gemm_problems());
        let constraints = Constraints::gemm(0, 1, 1, 200);
        let added = {
            let mut db = self.inner.tuning.lock();
            let gemm_added = warm_gemm_db(&mut db, &problems, &constraints, platform, threads);
            let spmm_added = warm_spmm_db(&mut db, &problems, &constraints, platform, threads);
            pl_dnn::tuning::install(platform.name, db.clone());
            gemm_added + spmm_added
        };
        self.inner.model.warm_plans(&self.plan_widths());
        added
    }

    /// Read access to the warmed tuning database.
    pub fn tuning_db(&self) -> parking_lot::MutexGuard<'_, TuningDb> {
        self.inner.tuning.lock()
    }

    /// Adopts an already-warmed tuning snapshot instead of re-running the
    /// search — the multi-shard path: a router warms **one** shard with
    /// [`Server::warm_tuning`] and hands the resulting snapshot to its
    /// peers, so N shards pay one offline search, not N. The snapshot
    /// replaces this server's local DB and is **unconditionally**
    /// installed into the process-wide [`pl_dnn::tuning`] registry
    /// (kernels resolve from the registry, so skipping the install when
    /// some other snapshot is live would silently leave stale tuning in
    /// effect); the install bumps the registry epoch, and the model's
    /// plans are warmed through the new snapshot before returning.
    /// Returns the number of entries adopted.
    pub fn adopt_tuning(&self, platform_name: &str, db: &TuningDb) -> usize {
        pl_dnn::tuning::install(platform_name, db.clone());
        self.inner.model.warm_plans(&self.plan_widths());
        self.set_tuning_db(db)
    }

    /// Copies `db` into this server's local tuning slot **only** — no
    /// registry install, no plan warm-up. This is the peer-shard fast
    /// path: when another server over the *same shared model* already
    /// installed this snapshot and warmed the plans (both process-wide
    /// effects), repeating them per shard would only bump the registry
    /// epoch and rebuild identical kernels N times. Use
    /// [`Server::adopt_tuning`] when the snapshot is *not* already live
    /// (e.g. loaded from disk). Returns the number of entries copied.
    pub fn set_tuning_db(&self, db: &TuningDb) -> usize {
        *self.inner.tuning.lock() = db.clone();
        db.len()
    }

    /// Admits a new session for `tenant`. Rejects when the session cap is
    /// reached or the tenant id is out of range.
    pub fn create_session(&self, tenant: TenantId) -> Result<SessionId, ServeError> {
        if tenant >= self.inner.cfg.tenants {
            return Err(ServeError::UnknownTenant(tenant));
        }
        if self.inner.shutdown.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        // Optimistic admission: bump, then verify the cap.
        let live = self.inner.session_count.fetch_add(1, Ordering::AcqRel) + 1;
        if live as usize > self.inner.cfg.max_sessions {
            self.inner.session_count.fetch_sub(1, Ordering::AcqRel);
            self.inner.stats.rejected_sessions.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::TooManySessions { limit: self.inner.cfg.max_sessions });
        }
        let id = self.inner.next_session.fetch_add(1, Ordering::Relaxed);
        let state = self.inner.model.new_state(self.inner.cfg.kv_capacity);
        self.inner.sessions.lock().insert(id, Session::new(id, tenant, state));
        Ok(id)
    }

    /// Ends a session, freeing its KV cache. Returns how many tokens it
    /// decoded.
    pub fn close_session(&self, id: SessionId) -> Result<u64, ServeError> {
        let sess = self.inner.sessions.lock().remove(&id).ok_or(ServeError::UnknownSession(id))?;
        self.inner.session_count.fetch_sub(1, Ordering::AcqRel);
        Ok(sess.generated)
    }

    /// Runs a whole-prompt prefill (`hidden x tokens`, column-major) for
    /// `id` on the calling thread. Prefill is compute-bound and already
    /// saturates the pool on its own, so it bypasses the decode batcher.
    pub fn prefill(&self, id: SessionId, x: &[f32], tokens: usize) -> Result<Vec<f32>, ServeError> {
        let hidden = self.inner.model.config().hidden;
        if x.len() != hidden * tokens || tokens == 0 {
            return Err(ServeError::BadInput { expected: hidden * tokens.max(1), got: x.len() });
        }
        let mut sess =
            self.inner.sessions.lock().remove(&id).ok_or(ServeError::UnknownSession(id))?;
        if !sess.fits(tokens) {
            let ctx = sess.context_len();
            self.inner.sessions.lock().insert(id, sess);
            return Err(ServeError::KvExhausted {
                context: ctx,
                capacity: self.inner.cfg.kv_capacity,
            });
        }
        let y = self.inner.model.forward(&mut sess.state, x, tokens, &self.inner.pool);
        self.inner.sessions.lock().insert(id, sess);
        self.inner.stats.prefills.fetch_add(1, Ordering::Relaxed);
        Ok(y)
    }

    /// Submits one decode step without blocking; the result arrives on the
    /// returned channel once a batch containing it executes.
    pub fn submit_step(
        &self,
        id: SessionId,
        x: &[f32],
    ) -> Result<mpsc::Receiver<StepResult>, ServeError> {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        let hidden = self.inner.model.config().hidden;
        if x.len() != hidden {
            return Err(ServeError::BadInput { expected: hidden, got: x.len() });
        }
        let tenant = {
            let sessions = self.inner.sessions.lock();
            sessions.get(&id).ok_or(ServeError::UnknownSession(id))?.tenant
        };
        let (tx, rx) = mpsc::channel();
        let req =
            StepRequest { session: id, tenant, x: x.to_vec(), enqueued: Instant::now(), reply: tx };
        // Counted *before* the request is published: once it is in the
        // ring a concurrent batcher may execute and deliver it (retiring
        // the count) at any moment — incrementing afterwards could
        // transiently wrap the counter below zero.
        self.inner.in_flight.fetch_add(1, Ordering::AcqRel);
        match self.inner.batcher.submit(req) {
            Ok(()) => {
                // Close the check-then-push race with shutdown(): if the
                // flag flipped while we were enqueueing, the batcher (and
                // shutdown's drain) may already be gone — bounce whatever
                // is pending ourselves so no caller blocks forever.
                if self.inner.shutdown.load(Ordering::Acquire) {
                    self.bounce_pending();
                }
                self.inner.stats.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(rx)
            }
            Err(_) => {
                self.inner.in_flight.fetch_sub(1, Ordering::AcqRel);
                self.inner.stats.rejected_backpressure.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Backpressure { tenant })
            }
        }
    }

    /// Drains the submission rings, replying `ShuttingDown` to every
    /// queued request.
    fn bounce_pending(&self) {
        loop {
            let left = self.inner.batcher.collect(usize::MAX);
            if left.is_empty() {
                break;
            }
            for req in left {
                self.inner.deliver(&req.reply, Err(ServeError::ShuttingDown));
            }
        }
    }

    /// Blocking decode step: submit, then wait for the batcher. Requires
    /// [`Server::start`] (or a concurrent [`Server::pump`] driver).
    pub fn step(&self, id: SessionId, x: &[f32]) -> Result<Vec<f32>, ServeError> {
        let rx = self.submit_step(id, x)?;
        match rx.recv() {
            Ok(res) => res,
            Err(_) => Err(ServeError::ShuttingDown),
        }
    }

    /// Collects and executes one batch on the calling thread. Returns the
    /// executed batch size (0 when nothing was pending). This is the same
    /// code path the background batcher runs.
    pub fn pump(&self) -> usize {
        let inner = &self.inner;
        let mut batch = inner.batcher.collect(inner.cfg.max_batch);
        if batch.is_empty() {
            return 0;
        }
        // Linger briefly for stragglers so bursts coalesce into one
        // region even when submitters race the batcher.
        if batch.len() < inner.cfg.max_batch && !inner.cfg.coalesce_wait.is_zero() {
            let deadline = Instant::now() + inner.cfg.coalesce_wait;
            while batch.len() < inner.cfg.max_batch && Instant::now() < deadline {
                let more = inner.batcher.collect(inner.cfg.max_batch - batch.len());
                if more.is_empty() {
                    std::thread::yield_now();
                } else {
                    batch.extend(more);
                }
            }
        }
        self.run_batch(batch)
    }

    /// Executes `batch` in one parallel region and delivers replies.
    fn run_batch(&self, batch: Vec<StepRequest>) -> usize {
        let inner = &self.inner;
        // Pull the target sessions out of the table so the region holds no
        // lock while computing. A session can appear in a batch at most
        // once (its state is stepped sequentially); pipelined duplicates
        // are deferred to the next batch in submission order.
        let mut ready: Vec<(StepRequest, Session)> = Vec::with_capacity(batch.len());
        let mut deferred: Vec<StepRequest> = Vec::new();
        {
            let mut sessions = inner.sessions.lock();
            for req in batch {
                if ready.iter().any(|(r, _)| r.session == req.session) {
                    deferred.push(req);
                    continue;
                }
                match sessions.remove(&req.session) {
                    Some(sess) if sess.fits(1) => ready.push((req, sess)),
                    Some(sess) => {
                        let err = ServeError::KvExhausted {
                            context: sess.context_len(),
                            capacity: inner.cfg.kv_capacity,
                        };
                        sessions.insert(req.session, sess);
                        inner.deliver(&req.reply, Err(err));
                    }
                    None => {
                        inner.deliver(&req.reply, Err(ServeError::UnknownSession(req.session)));
                    }
                }
            }
        }
        for req in deferred {
            if let Err(req) = self.inner.batcher.submit(req) {
                // The ring refilled meanwhile; surface it as backpressure.
                inner.stats.rejected_backpressure.fetch_add(1, Ordering::Relaxed);
                let tenant = req.tenant;
                inner.deliver(&req.reply, Err(ServeError::Backpressure { tenant }));
            }
        }
        if ready.is_empty() {
            return 0;
        }
        let items: Vec<(&mut DecoderState, &[f32])> =
            ready.iter_mut().map(|(req, sess)| (&mut sess.state, req.x.as_slice())).collect();
        let size = items.len();
        let outputs = if inner.cfg.fused {
            let out = inner.model.step_batch_fused(items, &inner.pool);
            let cfg = inner.model.config();
            let (h, f, l) = (cfg.hidden, cfg.ffn, cfg.layers as u64);
            // Per layer: 4 h x h GEMMs (QKV + output) and one of each FFN
            // shape — the actual GEMM executions this batch fused.
            inner.stats.record_fused_batch(&[
                ((h, size, h), 4 * l),
                ((f, size, h), l),
                ((h, size, f), l),
            ]);
            out
        } else {
            inner.model.step_batch(items, &inner.pool)
        };
        inner.stats.batches.fetch_add(1, Ordering::Relaxed);
        inner.stats.batch_sizes.record(size);
        let mut sessions = inner.sessions.lock();
        for ((req, mut sess), y) in ready.into_iter().zip(outputs) {
            sess.generated += 1;
            sessions.insert(req.session, sess);
            let us = req.enqueued.elapsed().as_micros() as u64;
            inner.stats.step_latency.record_us(us);
            inner.stats.completed.fetch_add(1, Ordering::Relaxed);
            inner.deliver(&req.reply, Ok(y));
        }
        size
    }

    /// Spawns the background batcher thread. Idempotent.
    pub fn start(&mut self) {
        if self.batcher_thread.is_some() {
            return;
        }
        let inner = Arc::clone(&self.inner);
        let server = Server { inner, batcher_thread: None };
        self.batcher_thread = Some(
            std::thread::Builder::new()
                .name("pl-serve-batcher".into())
                .spawn(move || loop {
                    let ran = server.pump();
                    if ran == 0 {
                        if server.inner.shutdown.load(Ordering::Acquire)
                            && server.inner.batcher.pending() == 0
                        {
                            break;
                        }
                        std::thread::sleep(server.inner.cfg.idle_poll);
                    }
                })
                .expect("failed to spawn batcher thread"),
        );
    }

    /// Stops admitting work, drains the queues, and joins the batcher.
    pub fn shutdown(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.batcher_thread.take() {
            let _ = h.join();
        }
        // Without a batcher thread, bounce whatever is still queued.
        self.bounce_pending();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.batcher_thread.is_some() {
            self.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pl_dnn::DecoderConfig;
    use pl_tensor::{fill_uniform, Xorshift};

    fn tiny_server(cfg: ServerConfig) -> Server {
        let model = Arc::new(DecoderModel::new(DecoderConfig::scaled_for_tests(), 77));
        let pool = Arc::new(ThreadPool::new(4));
        Server::new(model, pool, cfg)
    }

    fn token(seed: u64, hidden: usize) -> Vec<f32> {
        let mut x = vec![0.0f32; hidden];
        fill_uniform(&mut x, &mut Xorshift::new(seed), -0.5, 0.5);
        x
    }

    #[test]
    fn session_lifecycle_and_caps() {
        let server = tiny_server(ServerConfig { max_sessions: 2, ..Default::default() });
        let a = server.create_session(0).unwrap();
        let b = server.create_session(0).unwrap();
        assert_ne!(a, b);
        assert!(matches!(server.create_session(0), Err(ServeError::TooManySessions { limit: 2 })));
        assert_eq!(server.stats().rejected_sessions.load(Ordering::Relaxed), 1);
        assert_eq!(server.close_session(a).unwrap(), 0);
        // Freed capacity is reusable.
        let c = server.create_session(0).unwrap();
        assert!(matches!(server.close_session(a), Err(ServeError::UnknownSession(_))));
        assert!(matches!(server.create_session(9), Err(ServeError::UnknownTenant(9))));
        let _ = (b, c);
    }

    #[test]
    fn pump_executes_submitted_steps_and_matches_unbatched() {
        let server =
            tiny_server(ServerConfig { coalesce_wait: Duration::ZERO, ..Default::default() });
        let hidden = server.model().config().hidden;
        let n = 4;
        let ids: Vec<SessionId> = (0..n).map(|_| server.create_session(0).unwrap()).collect();
        let xs: Vec<Vec<f32>> = (0..n).map(|s| token(500 + s as u64, hidden)).collect();
        let rxs: Vec<_> =
            ids.iter().zip(&xs).map(|(&id, x)| server.submit_step(id, x).unwrap()).collect();
        assert_eq!(server.pump(), n);
        // Baseline: independent unbatched decoders over the same weights.
        for ((rx, x), _id) in rxs.into_iter().zip(&xs).zip(&ids) {
            let got = rx.recv().unwrap().unwrap();
            let mut st = server.model().new_state(8);
            let want = server.model().forward(&mut st, x, 1, &ThreadPool::new(2));
            assert_eq!(got, want, "batched step must be bit-identical");
        }
        let snap = server.stats().snapshot();
        assert_eq!(snap.completed, n as u64);
        assert_eq!(snap.max_batch_observed, n);
        assert_eq!(snap.batches, 1);
    }

    #[test]
    fn prefill_then_step_continues_the_stream() {
        let server = tiny_server(ServerConfig::default());
        let hidden = server.model().config().hidden;
        let id = server.create_session(0).unwrap();
        let prompt = token(1, hidden * 3);
        let y = server.prefill(id, &prompt, 3).unwrap();
        assert_eq!(y.len(), hidden * 3);
        let rx = server.submit_step(id, &token(2, hidden)).unwrap();
        assert_eq!(server.pump(), 1);
        let stepped = rx.recv().unwrap().unwrap();
        // Baseline continues from the same 3-token context.
        let mut st = server.model().new_state(server.model().config().hidden * 4);
        let pool = ThreadPool::new(2);
        let _ = server.model().forward(&mut st, &prompt, 3, &pool);
        let want = server.model().forward(&mut st, &token(2, hidden), 1, &pool);
        assert_eq!(stepped, want);
    }

    #[test]
    fn pipelined_steps_on_one_session_defer_not_error() {
        // Two queued steps for the same session must both complete (the
        // second rides the next batch), not error with UnknownSession.
        let server =
            tiny_server(ServerConfig { coalesce_wait: Duration::ZERO, ..Default::default() });
        let hidden = server.model().config().hidden;
        let id = server.create_session(0).unwrap();
        let x1 = token(21, hidden);
        let rx1 = server.submit_step(id, &x1).unwrap();
        let rx2 = server.submit_step(id, &token(22, hidden)).unwrap();
        assert_eq!(server.pump(), 1, "first batch runs only the first step");
        let y1 = rx1.recv().unwrap().unwrap();
        assert_eq!(server.pump(), 1, "deferred step rides the next batch");
        let y2 = rx2.recv().unwrap().unwrap();
        assert_ne!(y1, y2);
        // Both steps landed in the KV cache, in order.
        let mut st = server.model().new_state(8);
        let pool = ThreadPool::new(2);
        let w1 = server.model().forward(&mut st, &x1, 1, &pool);
        let w2 = server.model().forward(&mut st, &token(22, hidden), 1, &pool);
        assert_eq!(y1, w1);
        assert_eq!(y2, w2);
    }

    #[test]
    fn in_flight_tracks_accepted_steps_until_reply() {
        let server =
            tiny_server(ServerConfig { coalesce_wait: Duration::ZERO, ..Default::default() });
        let hidden = server.model().config().hidden;
        assert_eq!(server.in_flight(), 0);
        let id = server.create_session(0).unwrap();
        let rx1 = server.submit_step(id, &token(41, hidden)).unwrap();
        let rx2 = server.submit_step(id, &token(42, hidden)).unwrap();
        assert_eq!(server.in_flight(), 2);
        assert_eq!(server.pending(), 2);
        // One pump executes one step (same-session pipelining defers the
        // second): exactly one reply retired.
        assert_eq!(server.pump(), 1);
        assert_eq!(server.in_flight(), 1);
        assert_eq!(server.pump(), 1);
        assert_eq!(server.in_flight(), 0);
        assert_eq!(server.pending(), 0);
        rx1.recv().unwrap().unwrap();
        rx2.recv().unwrap().unwrap();
        // Error replies retire the count too (KV-exhausted session).
        let tiny = tiny_server(ServerConfig {
            kv_capacity: 0,
            coalesce_wait: Duration::ZERO,
            ..Default::default()
        });
        let id = tiny.create_session(0).unwrap();
        let rx = tiny.submit_step(id, &token(43, tiny.model().config().hidden)).unwrap();
        assert_eq!(tiny.in_flight(), 1);
        tiny.pump();
        assert_eq!(tiny.in_flight(), 0);
        assert!(matches!(rx.recv().unwrap(), Err(ServeError::KvExhausted { .. })));
    }

    #[test]
    fn backpressure_surfaces_to_submitter() {
        let server = tiny_server(ServerConfig { queue_capacity: 2, ..Default::default() });
        let hidden = server.model().config().hidden;
        let id = server.create_session(0).unwrap();
        let x = token(3, hidden);
        let _r1 = server.submit_step(id, &x).unwrap();
        let _r2 = server.submit_step(id, &x).unwrap();
        assert!(matches!(server.submit_step(id, &x), Err(ServeError::Backpressure { tenant: 0 })));
        assert_eq!(server.stats().rejected_backpressure.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn kv_exhaustion_is_an_error_not_a_crash() {
        let server = tiny_server(ServerConfig { kv_capacity: 2, ..Default::default() });
        let hidden = server.model().config().hidden;
        let id = server.create_session(0).unwrap();
        let _ = server.prefill(id, &token(4, hidden * 2), 2).unwrap();
        // Prefill beyond capacity rejected up front.
        assert!(matches!(
            server.prefill(id, &token(5, hidden), 1),
            Err(ServeError::KvExhausted { context: 2, capacity: 2 })
        ));
        // A queued step on a full session errors through the reply channel.
        let rx = server.submit_step(id, &token(6, hidden)).unwrap();
        server.pump();
        assert!(matches!(rx.recv().unwrap(), Err(ServeError::KvExhausted { .. })));
        // The session survives for inspection/closing.
        assert_eq!(server.close_session(id).unwrap(), 0);
    }

    #[test]
    fn bad_input_length_is_rejected() {
        let server = tiny_server(ServerConfig::default());
        let id = server.create_session(0).unwrap();
        assert!(matches!(server.submit_step(id, &[1.0, 2.0]), Err(ServeError::BadInput { .. })));
        assert!(matches!(server.prefill(id, &[1.0], 1), Err(ServeError::BadInput { .. })));
    }

    #[test]
    fn background_batcher_serves_blocking_steps() {
        let mut server = tiny_server(ServerConfig {
            tenants: 2,
            coalesce_wait: Duration::from_micros(100),
            ..Default::default()
        });
        server.start();
        let hidden = server.model().config().hidden;
        let ids: Vec<SessionId> = (0..4).map(|s| server.create_session(s % 2).unwrap()).collect();
        std::thread::scope(|scope| {
            for (s, &id) in ids.iter().enumerate() {
                let server = &server;
                scope.spawn(move || {
                    let x = token(900 + s as u64, hidden);
                    for _ in 0..3 {
                        let y = server.step(id, &x).unwrap();
                        assert_eq!(y.len(), hidden);
                    }
                });
            }
        });
        server.shutdown();
        let snap = server.stats().snapshot();
        assert_eq!(snap.completed, 12);
        assert!(matches!(
            server.submit_step(ids[0], &token(1, hidden)),
            Err(ServeError::ShuttingDown)
        ));
    }

    #[test]
    fn warm_tuning_covers_decode_and_prefill_shapes() {
        let server = tiny_server(ServerConfig { kv_capacity: 16, ..Default::default() });
        let decode = server.decode_gemm_problems();
        // Every width 1..=max_batch (8) x the three per-layer GEMMs: the
        // batcher can hand the fused path any ragged B and the DB lookup
        // is exact-match, so all of them must be warmed.
        assert_eq!(decode.len(), 24);
        for b in 1..=8 {
            assert!(decode.iter().any(|p| p.n == b), "decode width {b} warmed");
        }
        let prefill = server.prefill_gemm_problems();
        assert!(!prefill.is_empty());
        assert!(prefill.iter().all(|p| p.n > 1), "tokens = 1 rides the decode set");
        assert!(prefill.iter().any(|p| p.n == 16), "kv-capacity prompt width present");
        // Warm count = distinct (m, n, k) across both sets, once under the
        // gemm keys and once under the spmm keys (the SpMM warm-up rides
        // the same geometry).
        let distinct: std::collections::BTreeSet<(usize, usize, usize)> =
            decode.iter().chain(&prefill).map(|p| (p.m, p.n, p.k)).collect();
        let tuned = server.warm_tuning(&Platform::zen4(), 4);
        assert_eq!(tuned, 2 * distinct.len());
        assert_eq!(server.tuning_db().len(), 2 * distinct.len());
        // The warmed snapshot is live in the kernel-selection registry —
        // and the spmm keys now *hit* instead of falling through.
        assert!(pl_dnn::tuning::is_installed());
        let p = &decode[0];
        let shape = pl_kernels::GemmShape::with_default_blocks(p.m, p.n, p.k);
        assert!(
            pl_dnn::tuning::lookup_spmm(&shape).is_some(),
            "spmm lookup must hit after warm_tuning"
        );
        // Idempotent.
        assert_eq!(server.warm_tuning(&Platform::zen4(), 4), 0);
    }

    #[test]
    fn fused_pump_matches_serial_within_tolerance_and_records_shapes() {
        let mk = |fused| {
            tiny_server(ServerConfig { fused, coalesce_wait: Duration::ZERO, ..Default::default() })
        };
        let fused_server = mk(true);
        let serial_server = mk(false);
        let hidden = fused_server.model().config().hidden;
        let (h, f) = (hidden, fused_server.model().config().ffn);
        let n = 4;
        let xs: Vec<Vec<f32>> = (0..n).map(|s| token(700 + s as u64, hidden)).collect();

        let run = |server: &Server| -> Vec<Vec<f32>> {
            let ids: Vec<SessionId> = (0..n).map(|_| server.create_session(0).unwrap()).collect();
            let rxs: Vec<_> =
                ids.iter().zip(&xs).map(|(&id, x)| server.submit_step(id, x).unwrap()).collect();
            assert_eq!(server.pump(), n);
            rxs.into_iter().map(|rx| rx.recv().unwrap().unwrap()).collect()
        };
        let got_fused = run(&fused_server);
        let got_serial = run(&serial_server);
        for (s, (a, b)) in got_fused.iter().zip(&got_serial).enumerate() {
            let err = pl_tensor::max_rel_err(a, b);
            assert!(err <= 1e-5, "session {s}: rel err {err}");
        }
        let snap = fused_server.stats().snapshot();
        assert_eq!(snap.fused_batches, 1);
        let layers = fused_server.model().config().layers as u64;
        assert_eq!(
            snap.fused_gemm_shapes,
            vec![((h, n, h), 4 * layers), ((h, n, f), layers), ((f, n, h), layers)],
            "the hidden x B GEMM executions are observable"
        );
        assert_eq!(serial_server.stats().snapshot().fused_batches, 0);
    }
}
